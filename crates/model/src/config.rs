//! Recommendation model configurations (Figure 2(b)).

use recnmp_trace::EmbeddingTableSpec;
use serde::{Deserialize, Serialize};

/// The four model classes the paper evaluates.
///
/// RM1 and RM2 are the two canonical Facebook model classes (over 30% and
/// 25% of production ML cycles respectively); small/large vary the number
/// of embedding tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecModelKind {
    /// 8 embedding tables.
    Rm1Small,
    /// 12 embedding tables.
    Rm1Large,
    /// 24 embedding tables.
    Rm2Small,
    /// 64 embedding tables.
    Rm2Large,
}

impl RecModelKind {
    /// All four configurations, in the paper's order.
    pub const ALL: [RecModelKind; 4] = [
        RecModelKind::Rm1Small,
        RecModelKind::Rm1Large,
        RecModelKind::Rm2Small,
        RecModelKind::Rm2Large,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            RecModelKind::Rm1Small => "RM1-small",
            RecModelKind::Rm1Large => "RM1-large",
            RecModelKind::Rm2Small => "RM2-small",
            RecModelKind::Rm2Large => "RM2-large",
        }
    }

    /// Builds the full configuration for this model class.
    pub fn config(self) -> ModelConfig {
        ModelConfig::new(self)
    }
}

impl std::fmt::Display for RecModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full structural description of one recommendation model.
///
/// Figure 2(b) pins the embedding side (tables × 1 M rows, pooling factor
/// 20–80, 6 FC layers). The FC shapes are chosen so that (a) BottomFC and
/// RM1's TopFC fit in the 1 MiB L2 while RM2's TopFC weights spill to the
/// LLC — the distinction Figure 17 turns on — and (b) the operator time
/// breakdown lands near Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Which class this is.
    pub kind: RecModelKind,
    /// Number of embedding tables.
    pub num_tables: usize,
    /// Shape shared by all embedding tables.
    pub table_spec: EmbeddingTableSpec,
    /// Average pooling factor (lookups reduced per output vector). The
    /// paper's evaluation uses 80.
    pub pooling: usize,
    /// Dense-feature input dimension.
    pub dense_dim: usize,
    /// Bottom MLP layer widths, input first.
    pub bottom_fc: Vec<usize>,
    /// Top MLP layer widths, input first (input = interaction features).
    pub top_fc: Vec<usize>,
}

impl ModelConfig {
    /// Builds the paper configuration for `kind`.
    pub fn new(kind: RecModelKind) -> Self {
        let num_tables = match kind {
            RecModelKind::Rm1Small => 8,
            RecModelKind::Rm1Large => 12,
            RecModelKind::Rm2Small => 24,
            RecModelKind::Rm2Large => 64,
        };
        let table_spec = EmbeddingTableSpec::dlrm_default();
        let emb_dim = table_spec.dims();
        // Dot-product feature interaction over (tables + bottom output)
        // vectors, concatenated with the bottom output.
        let interact = Self::interaction_dim(num_tables, emb_dim);
        // RM1's TopFC is sized to stay L2-resident (< 1 MiB of weights);
        // RM2's TopFC spills to the LLC — the contrast Figure 17 studies.
        let top_width = match kind {
            RecModelKind::Rm1Small | RecModelKind::Rm1Large => 384,
            RecModelKind::Rm2Small | RecModelKind::Rm2Large => 512,
        };
        Self {
            kind,
            num_tables,
            table_spec,
            pooling: 80,
            dense_dim: 13,
            bottom_fc: vec![13, 512, 256, emb_dim],
            top_fc: vec![interact, top_width, top_width, 1],
        }
    }

    /// Pairwise-dot interaction feature count: `C(T+1, 2)` dots over the
    /// table outputs plus the bottom output, concatenated with the bottom
    /// output itself.
    pub fn interaction_dim(num_tables: usize, emb_dim: usize) -> usize {
        let v = num_tables + 1;
        v * (v - 1) / 2 + emb_dim
    }

    /// FLOPs of one sample through an MLP (2 per multiply-accumulate).
    fn mlp_flops(widths: &[usize]) -> u64 {
        widths
            .windows(2)
            .map(|w| 2 * (w[0] as u64) * (w[1] as u64))
            .sum()
    }

    /// Weight bytes of an MLP (FP32, ignoring biases).
    fn mlp_bytes(widths: &[usize]) -> u64 {
        widths
            .windows(2)
            .map(|w| 4 * (w[0] as u64) * (w[1] as u64))
            .sum()
    }

    /// FLOPs per sample in the bottom MLP.
    pub fn bottom_fc_flops(&self) -> u64 {
        Self::mlp_flops(&self.bottom_fc)
    }

    /// FLOPs per sample in the top MLP.
    pub fn top_fc_flops(&self) -> u64 {
        Self::mlp_flops(&self.top_fc)
    }

    /// Weight bytes of the bottom MLP.
    pub fn bottom_fc_bytes(&self) -> u64 {
        Self::mlp_bytes(&self.bottom_fc)
    }

    /// Weight bytes of the top MLP.
    pub fn top_fc_bytes(&self) -> u64 {
        Self::mlp_bytes(&self.top_fc)
    }

    /// Embedding bytes gathered per sample (all tables, ignoring reuse).
    pub fn sls_bytes_per_sample(&self) -> u64 {
        self.num_tables as u64 * self.pooling as u64 * self.table_spec.vector_bytes
    }

    /// Total embedding storage footprint.
    pub fn embedding_bytes(&self) -> u64 {
        self.num_tables as u64 * self.table_spec.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_types::units::MIB;

    #[test]
    fn table_counts_match_figure_2b() {
        assert_eq!(ModelConfig::new(RecModelKind::Rm1Small).num_tables, 8);
        assert_eq!(ModelConfig::new(RecModelKind::Rm1Large).num_tables, 12);
        assert_eq!(ModelConfig::new(RecModelKind::Rm2Small).num_tables, 24);
        assert_eq!(ModelConfig::new(RecModelKind::Rm2Large).num_tables, 64);
    }

    #[test]
    fn six_fc_layers_total() {
        let c = ModelConfig::new(RecModelKind::Rm1Small);
        let layers = (c.bottom_fc.len() - 1) + (c.top_fc.len() - 1);
        assert_eq!(layers, 6);
    }

    #[test]
    fn rm1_topfc_fits_l2_rm2_does_not() {
        let l2 = MIB;
        let rm1 = ModelConfig::new(RecModelKind::Rm1Small);
        let rm2 = ModelConfig::new(RecModelKind::Rm2Large);
        assert!(rm1.top_fc_bytes() < l2, "{}", rm1.top_fc_bytes());
        assert!(rm2.top_fc_bytes() > l2, "{}", rm2.top_fc_bytes());
    }

    #[test]
    fn sls_bytes_scale_with_tables() {
        let rm1 = ModelConfig::new(RecModelKind::Rm1Small);
        let rm2 = ModelConfig::new(RecModelKind::Rm2Large);
        assert_eq!(rm1.sls_bytes_per_sample(), 8 * 80 * 128);
        assert_eq!(rm2.sls_bytes_per_sample(), 64 * 80 * 128);
    }

    #[test]
    fn interaction_dim_formula() {
        // 8 tables + bottom = 9 vectors -> 36 dots + 16 passthrough.
        assert_eq!(ModelConfig::interaction_dim(8, 16), 52);
    }

    #[test]
    fn embedding_footprint_is_tens_of_gb_for_rm2_large() {
        let c = ModelConfig::new(RecModelKind::Rm2Large);
        // 64 tables x 128 MB = 8 GiB at the public DLRM scale.
        assert_eq!(c.embedding_bytes(), 64 * 128_000_000);
    }

    #[test]
    fn names_render() {
        assert_eq!(RecModelKind::Rm2Large.to_string(), "RM2-large");
        assert_eq!(RecModelKind::ALL.len(), 4);
    }
}
