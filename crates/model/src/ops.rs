//! The SparseLengths (SLS) operator family — functional reference
//! implementations.
//!
//! These define the semantics the RecNMP datapath must reproduce. The
//! paper's NMP opcodes map onto them directly (Figure 8(d)):
//!
//! | NMP opcode                     | function                    |
//! |--------------------------------|-----------------------------|
//! | `nmp_sum` / `nmp_mean`         | [`SlsOp::Sum`] / [`SlsOp::Mean`] |
//! | `nmp_weightedsum` / `..mean`   | [`SlsOp::WeightedSum`] / [`SlsOp::WeightedMean`] |
//! | `nmp_weightedsum_8bits` / `..` | the same ops over a [`QuantizedTable`] |

use recnmp_trace::SlsBatch;
use serde::{Deserialize, Serialize};

use crate::table::{EmbeddingTable, QuantizedTable};

/// Which reduction an SLS invocation performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SlsOp {
    /// Plain element-wise sum of the gathered vectors.
    Sum,
    /// Sum divided by the pooling size.
    Mean,
    /// Per-index weighted sum.
    WeightedSum,
    /// Weighted sum divided by the pooling size.
    WeightedMean,
}

impl SlsOp {
    /// All variants.
    pub const ALL: [SlsOp; 4] = [
        SlsOp::Sum,
        SlsOp::Mean,
        SlsOp::WeightedSum,
        SlsOp::WeightedMean,
    ];

    /// Whether the variant consumes per-index weights.
    pub fn weighted(self) -> bool {
        matches!(self, SlsOp::WeightedSum | SlsOp::WeightedMean)
    }

    /// Whether the variant averages at the end.
    pub fn averaged(self) -> bool {
        matches!(self, SlsOp::Mean | SlsOp::WeightedMean)
    }

    /// Executes the operator against an FP32 table.
    ///
    /// Returns one output vector per pooling.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range, or if a weighted variant is
    /// given a pooling without weights.
    pub fn execute(self, table: &EmbeddingTable, batch: &SlsBatch) -> Vec<Vec<f32>> {
        let dims = table.spec().dims();
        batch
            .poolings
            .iter()
            .map(|p| {
                let mut acc = vec![0.0f32; dims];
                for (i, &idx) in p.indices.iter().enumerate() {
                    let w = if self.weighted() {
                        assert!(
                            !p.weights.is_empty(),
                            "weighted SLS requires weights in the pooling"
                        );
                        p.weight(i)
                    } else {
                        1.0
                    };
                    for (a, &v) in acc.iter_mut().zip(table.row(idx)) {
                        *a += w * v;
                    }
                }
                if self.averaged() && !p.is_empty() {
                    let n = p.len() as f32;
                    for a in &mut acc {
                        *a /= n;
                    }
                }
                acc
            })
            .collect()
    }

    /// Executes the operator against an 8-bit quantized table, performing
    /// the per-row `code * scale + bias` dequantization inline — exactly
    /// what the rank-NMP datapath's Scalar/Bias registers implement.
    pub fn execute_quantized(self, table: &QuantizedTable, batch: &SlsBatch) -> Vec<Vec<f32>> {
        let dims = table.spec().dims();
        batch
            .poolings
            .iter()
            .map(|p| {
                let mut acc = vec![0.0f32; dims];
                for (i, &idx) in p.indices.iter().enumerate() {
                    let w = if self.weighted() { p.weight(i) } else { 1.0 };
                    let (scale, bias) = table.row_scale_bias(idx);
                    for (a, &c) in acc.iter_mut().zip(table.row_codes(idx)) {
                        *a += w * (c as f32 * scale + bias);
                    }
                }
                if self.averaged() && !p.is_empty() {
                    let n = p.len() as f32;
                    for a in &mut acc {
                        *a /= n;
                    }
                }
                acc
            })
            .collect()
    }

    /// FLOPs performed by this operator over `batch` with vector dimension
    /// `dims` (used for roofline analysis; weighted variants add one
    /// multiply per element).
    pub fn flops(self, total_lookups: usize, dims: usize) -> u64 {
        let per_elem = if self.weighted() { 2 } else { 1 };
        (total_lookups * dims * per_elem) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_trace::{EmbeddingTableSpec, Pooling};
    use recnmp_types::TableId;

    fn table() -> EmbeddingTable {
        // 4 rows x 4 dims with recognizable contents.
        EmbeddingTable::from_data(
            EmbeddingTableSpec::new(4, 16),
            vec![
                1.0, 0.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 0.0, //
                1.0, 1.0, 1.0, 1.0,
            ],
        )
    }

    fn batch(poolings: Vec<Pooling>) -> SlsBatch {
        SlsBatch {
            table: TableId::new(0),
            spec: EmbeddingTableSpec::new(4, 16),
            poolings,
        }
    }

    #[test]
    fn sum_gathers_and_adds() {
        let out = SlsOp::Sum.execute(&table(), &batch(vec![Pooling::unweighted(vec![0, 1, 3])]));
        assert_eq!(out, vec![vec![2.0, 2.0, 1.0, 1.0]]);
    }

    #[test]
    fn mean_divides_by_pool_size() {
        let out = SlsOp::Mean.execute(&table(), &batch(vec![Pooling::unweighted(vec![0, 3])]));
        assert_eq!(out, vec![vec![1.0, 0.5, 0.5, 0.5]]);
    }

    #[test]
    fn weighted_sum_applies_weights() {
        let p = Pooling::weighted(vec![0, 3], vec![2.0, 0.5]);
        let out = SlsOp::WeightedSum.execute(&table(), &batch(vec![p]));
        assert_eq!(out, vec![vec![2.5, 0.5, 0.5, 0.5]]);
    }

    #[test]
    fn weighted_mean_divides() {
        let p = Pooling::weighted(vec![0, 3], vec![2.0, 0.5]);
        let out = SlsOp::WeightedMean.execute(&table(), &batch(vec![p]));
        assert_eq!(out, vec![vec![1.25, 0.25, 0.25, 0.25]]);
    }

    #[test]
    fn multiple_poolings_produce_multiple_outputs() {
        let b = batch(vec![
            Pooling::unweighted(vec![0]),
            Pooling::unweighted(vec![1]),
            Pooling::unweighted(vec![]),
        ]);
        let out = SlsOp::Sum.execute(&table(), &b);
        assert_eq!(out.len(), 3);
        assert_eq!(out[2], vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "requires weights")]
    fn weighted_requires_weights() {
        SlsOp::WeightedSum.execute(&table(), &batch(vec![Pooling::unweighted(vec![0])]));
    }

    #[test]
    fn quantized_matches_fp32_within_tolerance() {
        let t = EmbeddingTable::random(EmbeddingTableSpec::new(64, 64), 9);
        let q = QuantizedTable::quantize(&t);
        let b = SlsBatch {
            table: TableId::new(0),
            spec: *t.spec(),
            poolings: vec![Pooling::unweighted((0..64).collect())],
        };
        let exact = SlsOp::Sum.execute(&t, &b);
        let approx = SlsOp::Sum.execute_quantized(&q, &b);
        for (e, a) in exact[0].iter().zip(&approx[0]) {
            // 64 lookups, each with quantization error <= scale/2 (~2/255).
            assert!((e - a).abs() < 64.0 * 0.01, "{e} vs {a}");
        }
    }

    #[test]
    fn flops_accounting() {
        assert_eq!(SlsOp::Sum.flops(100, 16), 1600);
        assert_eq!(SlsOp::WeightedSum.flops(100, 16), 3200);
    }
}
