//! Functional embedding tables (FP32 and 8-bit row-wise quantized).

use rand::Rng;
use recnmp_trace::EmbeddingTableSpec;
use recnmp_types::rng::DetRng;

/// A dense FP32 embedding table with real contents.
///
/// Used by the functional operators and correctness tests; the performance
/// experiments are trace-driven and do not materialize tables.
///
/// # Examples
///
/// ```
/// use recnmp_model::EmbeddingTable;
/// use recnmp_trace::EmbeddingTableSpec;
///
/// let t = EmbeddingTable::random(EmbeddingTableSpec::new(100, 64), 1);
/// assert_eq!(t.row(5).len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct EmbeddingTable {
    spec: EmbeddingTableSpec,
    data: Vec<f32>,
}

impl EmbeddingTable {
    /// Creates a table with uniformly random values in `[-1, 1)`.
    pub fn random(spec: EmbeddingTableSpec, seed: u64) -> Self {
        let mut rng = DetRng::seed(seed);
        let n = spec.rows as usize * spec.dims();
        let data = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        Self { spec, data }
    }

    /// Creates a table from explicit row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * dims`.
    pub fn from_data(spec: EmbeddingTableSpec, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            spec.rows as usize * spec.dims(),
            "data must be rows x dims"
        );
        Self { spec, data }
    }

    /// The table's shape.
    pub fn spec(&self) -> &EmbeddingTableSpec {
        &self.spec
    }

    /// Embedding vector for `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: u64) -> &[f32] {
        let d = self.spec.dims();
        let start = row as usize * d;
        &self.data[start..start + d]
    }
}

/// An 8-bit row-wise quantized embedding table.
///
/// Each row stores `u8` codes plus an FP32 (scale, bias) pair, matching
/// Caffe2's `SparseLengthsSum8BitsRowwise` layout that the paper's
/// `nmp_weightedsum/mean_8bits` opcode serves: the dequantized value is
/// `code * scale + bias`.
#[derive(Debug, Clone)]
pub struct QuantizedTable {
    spec: EmbeddingTableSpec,
    codes: Vec<u8>,
    scale_bias: Vec<(f32, f32)>,
}

impl QuantizedTable {
    /// Quantizes an FP32 table row by row (min/max affine quantization).
    pub fn quantize(table: &EmbeddingTable) -> Self {
        let spec = *table.spec();
        let d = spec.dims();
        let mut codes = Vec::with_capacity(spec.rows as usize * d);
        let mut scale_bias = Vec::with_capacity(spec.rows as usize);
        for r in 0..spec.rows {
            let row = table.row(r);
            let min = row.iter().copied().fold(f32::INFINITY, f32::min);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let scale = if max > min { (max - min) / 255.0 } else { 1.0 };
            let bias = min;
            scale_bias.push((scale, bias));
            for &v in row {
                let code = ((v - bias) / scale).round().clamp(0.0, 255.0) as u8;
                codes.push(code);
            }
        }
        Self {
            spec,
            codes,
            scale_bias,
        }
    }

    /// The table's shape (of the dequantized values).
    pub fn spec(&self) -> &EmbeddingTableSpec {
        &self.spec
    }

    /// The (scale, bias) pair of `row`.
    pub fn row_scale_bias(&self, row: u64) -> (f32, f32) {
        self.scale_bias[row as usize]
    }

    /// The quantized codes of `row`.
    pub fn row_codes(&self, row: u64) -> &[u8] {
        let d = self.spec.dims();
        let start = row as usize * d;
        &self.codes[start..start + d]
    }

    /// Dequantizes `row` into FP32.
    pub fn dequantize_row(&self, row: u64) -> Vec<f32> {
        let (scale, bias) = self.row_scale_bias(row);
        self.row_codes(row)
            .iter()
            .map(|&c| c as f32 * scale + bias)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EmbeddingTable {
        EmbeddingTable::random(EmbeddingTableSpec::new(50, 64), 42)
    }

    #[test]
    fn random_table_has_right_shape() {
        let t = small();
        assert_eq!(t.row(0).len(), 16);
        assert_eq!(t.row(49).len(), 16);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = EmbeddingTable::random(EmbeddingTableSpec::new(10, 64), 7);
        let b = EmbeddingTable::random(EmbeddingTableSpec::new(10, 64), 7);
        assert_eq!(a.row(3), b.row(3));
    }

    #[test]
    fn from_data_roundtrips() {
        let spec = EmbeddingTableSpec::new(2, 8);
        let t = EmbeddingTable::from_data(spec, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "rows x dims")]
    fn from_data_checks_shape() {
        EmbeddingTable::from_data(EmbeddingTableSpec::new(2, 8), vec![1.0]);
    }

    #[test]
    fn quantization_error_is_bounded() {
        let t = small();
        let q = QuantizedTable::quantize(&t);
        for r in 0..50u64 {
            let orig = t.row(r);
            let deq = q.dequantize_row(r);
            let (scale, _) = q.row_scale_bias(r);
            for (o, d) in orig.iter().zip(&deq) {
                assert!((o - d).abs() <= scale / 2.0 + 1e-6, "{o} vs {d}");
            }
        }
    }

    #[test]
    fn constant_row_quantizes_exactly() {
        let spec = EmbeddingTableSpec::new(1, 16);
        let t = EmbeddingTable::from_data(spec, vec![0.5; 4]);
        let q = QuantizedTable::quantize(&t);
        assert_eq!(q.dequantize_row(0), vec![0.5; 4]);
    }
}
