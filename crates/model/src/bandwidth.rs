//! Memory-bandwidth saturation model (Figure 6).
//!
//! The paper measures how parallel SLS threads saturate the 4-channel
//! DDR4-2400 system: the ideal peak is 76.8 GB/s, the Intel-MLC empirical
//! bound is 62.1 GB/s, and SLS alone reaches 67.4% of peak (51.8 GB/s) at
//! batch 256 with 30 threads — beyond which latency climbs steeply.

use serde::{Deserialize, Serialize};

/// Saturating bandwidth model of a multi-channel memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthModel {
    /// Theoretical peak (GB/s).
    pub ideal_gbs: f64,
    /// Empirical achievable bound, e.g. Intel MLC (GB/s).
    pub empirical_gbs: f64,
    /// Asymptotic per-thread SLS demand at large batch (GB/s).
    pub per_thread_max_gbs: f64,
    /// Batch size at which a thread reaches half its asymptotic demand.
    pub batch_half: f64,
}

impl BandwidthModel {
    /// The paper's 4-channel DDR4-2400 test system.
    pub const fn table1() -> Self {
        Self {
            ideal_gbs: 76.8,
            empirical_gbs: 62.1,
            per_thread_max_gbs: 2.6,
            batch_half: 64.0,
        }
    }

    /// Raw bandwidth demand of `threads` SLS threads at `batch` size, were
    /// the memory system unlimited.
    pub fn demand_gbs(&self, threads: usize, batch: usize) -> f64 {
        let per_thread = self.per_thread_max_gbs * batch as f64 / (batch as f64 + self.batch_half);
        per_thread * threads as f64
    }

    /// Achieved bandwidth: demand soft-clamped to the empirical bound
    /// (p-norm soft-min, so the curve bends rather than kinks — matching
    /// the measured saturation shape).
    pub fn achieved_gbs(&self, threads: usize, batch: usize) -> f64 {
        let d = self.demand_gbs(threads, batch);
        if d == 0.0 {
            return 0.0;
        }
        let p = 8.0;
        let e = self.empirical_gbs;
        (d.powf(-p) + e.powf(-p)).powf(-1.0 / p)
    }

    /// Bus utilization relative to the empirical bound.
    pub fn utilization(&self, threads: usize, batch: usize) -> f64 {
        self.achieved_gbs(threads, batch) / self.empirical_gbs
    }

    /// Memory-latency inflation under contention: when aggregate demand
    /// exceeds what the system delivers, every thread's memory phase
    /// stretches by `demand / achieved` (fair sharing), plus a mild
    /// queueing term near saturation — the effect the paper cites for why
    /// pushing past ~67% of peak is undesirable.
    pub fn latency_multiplier(&self, threads: usize, batch: usize) -> f64 {
        let d = self.demand_gbs(threads, batch);
        let a = self.achieved_gbs(threads, batch);
        if a == 0.0 {
            return 1.0;
        }
        (d / a).clamp(1.0, 10.0)
    }
}

impl Default for BandwidthModel {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> BandwidthModel {
        BandwidthModel::table1()
    }

    #[test]
    fn demand_scales_linearly_with_threads() {
        let one = m().demand_gbs(1, 128);
        let ten = m().demand_gbs(10, 128);
        assert!((ten - 10.0 * one).abs() < 1e-9);
    }

    #[test]
    fn demand_grows_with_batch() {
        assert!(m().demand_gbs(10, 256) > m().demand_gbs(10, 16));
    }

    #[test]
    fn achieved_never_exceeds_empirical() {
        for threads in [1, 5, 10, 20, 30, 40] {
            for batch in [16, 64, 128, 256] {
                let a = m().achieved_gbs(threads, batch);
                assert!(a <= m().empirical_gbs + 1e-9, "{a}");
            }
        }
    }

    #[test]
    fn saturation_point_matches_paper() {
        // Paper: batch 256 x 30 threads exceeds 67.4% of the 76.8 GB/s
        // ideal peak (i.e. > 51.8 GB/s).
        let a = m().achieved_gbs(30, 256);
        assert!(a > 0.674 * 76.8, "achieved {a}");
    }

    #[test]
    fn low_thread_counts_unsaturated() {
        let a = m().achieved_gbs(4, 64);
        assert!(a < 0.25 * 76.8, "achieved {a}");
    }

    #[test]
    fn latency_multiplier_grows_with_saturation() {
        let low = m().latency_multiplier(2, 64);
        let high = m().latency_multiplier(40, 256);
        assert!(low < 1.2, "{low}");
        assert!(high > 1.3, "{high}");
        assert!(high <= 10.0);
    }

    #[test]
    fn achieved_is_monotonic_in_threads() {
        let mut prev = 0.0;
        for threads in 1..=40 {
            let a = m().achieved_gbs(threads, 256);
            assert!(a >= prev);
            prev = a;
        }
    }
}
