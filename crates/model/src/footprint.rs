//! Operator compute/memory footprints (Figure 1(a)).
//!
//! The paper opens by contrasting the footprint of sparse embedding
//! operators (SLS) against FC, RNN and convolution layers across batch
//! sizes: SLS has tiny compute but a table footprint of tens of GB, while
//! the dense operators have the opposite profile. The FC and SLS entries
//! here are computed from our model configurations; the RNN and CNN
//! entries use representative layer shapes (an LSTM layer and a ResNet-
//! style 3x3 convolution) since they appear in the figure only as
//! reference points.

use serde::{Deserialize, Serialize};

use crate::config::ModelConfig;

/// Compute and memory footprint of one operator invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorFootprint {
    /// Operator label.
    pub name: String,
    /// Batch size.
    pub batch: usize,
    /// Total floating-point operations.
    pub flops: u64,
    /// Bytes of state + activations touched.
    pub bytes: u64,
}

impl OperatorFootprint {
    /// Operational intensity in FLOP/byte.
    pub fn oi(&self) -> f64 {
        self.flops as f64 / self.bytes as f64
    }
}

/// SLS footprint: negligible compute (one add per element), table-scale
/// memory.
pub fn sls_footprint(config: &ModelConfig, batch: usize) -> OperatorFootprint {
    let lookups = (batch * config.num_tables * config.pooling) as u64;
    OperatorFootprint {
        name: "SLS".into(),
        batch,
        flops: lookups * config.table_spec.dims() as u64,
        // Working set: the tables themselves dominate.
        bytes: config.embedding_bytes(),
    }
}

/// FC footprint: weight-scale memory, batch-scaled compute.
pub fn fc_footprint(config: &ModelConfig, batch: usize) -> OperatorFootprint {
    let flops = batch as u64 * (config.bottom_fc_flops() + config.top_fc_flops());
    OperatorFootprint {
        name: "FC".into(),
        batch,
        flops,
        bytes: config.bottom_fc_bytes() + config.top_fc_bytes(),
    }
}

/// Reference LSTM layer (hidden 1024, input 1024): 8*H*(H+I) MACs/step.
pub fn rnn_footprint(batch: usize) -> OperatorFootprint {
    let h: u64 = 1024;
    let i: u64 = 1024;
    let weights = 4 * h * (h + i) * 4;
    OperatorFootprint {
        name: "RNN".into(),
        batch,
        flops: batch as u64 * 8 * h * (h + i),
        bytes: weights,
    }
}

/// Reference ResNet-style conv layer: 3x3, 256 channels, 14x14 map.
pub fn conv_footprint(batch: usize) -> OperatorFootprint {
    let (k, c, hw): (u64, u64, u64) = (3, 256, 14 * 14);
    let weights = k * k * c * c * 4;
    OperatorFootprint {
        name: "Conv".into(),
        batch,
        flops: batch as u64 * 2 * k * k * c * c * hw,
        bytes: weights + batch as u64 * c * hw * 4 * 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RecModelKind;

    #[test]
    fn sls_oi_orders_of_magnitude_below_fc() {
        // The Figure 1 contrast: at batch 64, SLS OI is far below FC/Conv.
        let cfg = RecModelKind::Rm1Small.config();
        let sls = sls_footprint(&cfg, 64);
        let fc = fc_footprint(&cfg, 64);
        let conv = conv_footprint(64);
        assert!(sls.oi() * 100.0 < fc.oi(), "{} vs {}", sls.oi(), fc.oi());
        assert!(sls.oi() * 100.0 < conv.oi());
    }

    #[test]
    fn sls_memory_dwarfs_dense_operators() {
        let cfg = RecModelKind::Rm2Large.config();
        let sls = sls_footprint(&cfg, 8);
        let rnn = rnn_footprint(8);
        assert!(sls.bytes > 100 * rnn.bytes);
    }

    #[test]
    fn dense_flops_scale_with_batch() {
        let cfg = RecModelKind::Rm1Small.config();
        let f1 = fc_footprint(&cfg, 1).flops;
        let f256 = fc_footprint(&cfg, 256).flops;
        assert_eq!(f256, 256 * f1);
    }

    #[test]
    fn conv_is_compute_dense() {
        let c = conv_footprint(32);
        assert!(c.oi() > 50.0, "{}", c.oi());
    }
}
