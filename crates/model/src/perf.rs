//! Calibrated CPU performance model.
//!
//! The paper's Figures 4, 17 and 18 come from measurements on an 18-core
//! Skylake server (Table I). We do not have that machine, so this module
//! provides an analytic stand-in with the same structure:
//!
//! * **SLS** is memory-bound: time scales with gathered bytes over an
//!   effective gather bandwidth,
//! * **FC** pays a fixed weight-streaming cost (amortized over the batch)
//!   plus a batch-linear compute cost,
//! * **co-location** degrades TopFC by evicting its weights from the LLC;
//!   offloading SLS to RecNMP removes that pressure (Figure 17).
//!
//! The effective constants below are *calibrated*, not derived: they are
//! chosen so the operator breakdown (Figure 4 shape: SLS share 35–75%,
//! growing with batch and table count) and the end-to-end speedups
//! (Figure 18) land near the published values. `EXPERIMENTS.md` records
//! the deviations.

use serde::{Deserialize, Serialize};

use crate::config::ModelConfig;

/// Hardware parameters of the paper's test system (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Physical cores.
    pub cores: u32,
    /// Base frequency in GHz.
    pub freq_ghz: f64,
    /// Peak FP32 throughput in GFLOP/s (the paper's roofline compute bound).
    pub peak_gflops: f64,
    /// Empirical DRAM bandwidth in GB/s (Intel MLC measurement).
    pub dram_bw_gbs: f64,
    /// Theoretical peak DRAM bandwidth in GB/s (4 channels DDR4-2400).
    pub ideal_bw_gbs: f64,
    /// Per-core L2 capacity in bytes.
    pub l2_bytes: u64,
    /// Shared LLC capacity in bytes.
    pub llc_bytes: u64,
}

impl CpuSpec {
    /// The Table I Skylake configuration.
    pub const fn table1() -> Self {
        Self {
            cores: 18,
            freq_ghz: 1.6,
            peak_gflops: 980.0,
            dram_bw_gbs: 62.1,
            ideal_bw_gbs: 76.8,
            l2_bytes: 1024 * 1024,
            llc_bytes: 25_952_256, // 24.75 MiB
        }
    }
}

impl Default for CpuSpec {
    fn default() -> Self {
        Self::table1()
    }
}

/// Calibrated effective-throughput constants (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfCalibration {
    /// Effective SLS gather bandwidth per model instance, GB/s.
    pub sls_eff_gbs: f64,
    /// Effective batched-GEMM throughput, GFLOP/s.
    pub fc_eff_gflops: f64,
    /// Weight-streaming bandwidth when weights are LLC-resident, GB/s.
    pub llc_stream_gbs: f64,
    /// Weight-streaming bandwidth when weights spill to DRAM, GB/s.
    pub dram_stream_gbs: f64,
    /// Non-SLS/non-FC operator overhead as a fraction of (SLS + FC) time.
    pub other_op_frac: f64,
}

impl Default for PerfCalibration {
    fn default() -> Self {
        Self {
            sls_eff_gbs: 6.0,
            fc_eff_gflops: 300.0,
            llc_stream_gbs: 60.0,
            dram_stream_gbs: 12.0,
            other_op_frac: 0.10,
        }
    }
}

/// Per-operator time breakdown of one model inference, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OperatorBreakdown {
    /// Embedding (SLS-family) time.
    pub sls_us: f64,
    /// BottomFC time.
    pub bottom_fc_us: f64,
    /// TopFC time.
    pub top_fc_us: f64,
    /// Everything else (interaction, concat, framework).
    pub other_us: f64,
}

impl OperatorBreakdown {
    /// Total inference latency.
    pub fn total_us(&self) -> f64 {
        self.sls_us + self.bottom_fc_us + self.top_fc_us + self.other_us
    }

    /// FC time (bottom + top).
    pub fn fc_us(&self) -> f64 {
        self.bottom_fc_us + self.top_fc_us
    }

    /// Fraction of time in SLS operators.
    pub fn sls_fraction(&self) -> f64 {
        if self.total_us() == 0.0 {
            0.0
        } else {
            self.sls_us / self.total_us()
        }
    }
}

/// The analytic CPU performance model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CpuPerfModel {
    /// Hardware parameters.
    pub spec: CpuSpec,
    /// Calibrated constants.
    pub cal: PerfCalibration,
}

impl CpuPerfModel {
    /// Builds the default (Table I + calibrated) model.
    pub fn table1() -> Self {
        Self::default()
    }

    /// Operator breakdown for one inference of `config` at `batch` size,
    /// running alone (no co-location).
    pub fn breakdown(&self, config: &ModelConfig, batch: usize) -> OperatorBreakdown {
        self.breakdown_colocated(config, batch, 1, false)
    }

    /// Operator breakdown with `co_located` model instances sharing the
    /// machine. When `nmp` is true, SLS traffic is offloaded to RecNMP so
    /// it no longer pressures the cache hierarchy (only the FC effect;
    /// SLS time itself is replaced by the NMP simulation elsewhere).
    pub fn breakdown_colocated(
        &self,
        config: &ModelConfig,
        batch: usize,
        co_located: usize,
        nmp: bool,
    ) -> OperatorBreakdown {
        let batch = batch.max(1) as f64;
        let sls_bytes = config.sls_bytes_per_sample() as f64 * batch;
        let sls_us = sls_bytes / (self.cal.sls_eff_gbs * 1e3);

        let bottom_fc_us = self.fc_time_us(
            config.bottom_fc_bytes(),
            config.bottom_fc_flops(),
            batch,
            co_located,
            config.pooling,
            nmp,
        );
        let top_fc_us = self.fc_time_us(
            config.top_fc_bytes(),
            config.top_fc_flops(),
            batch,
            co_located,
            config.pooling,
            nmp,
        );
        let other_us = self.cal.other_op_frac * (sls_us + bottom_fc_us + top_fc_us);
        OperatorBreakdown {
            sls_us,
            bottom_fc_us,
            top_fc_us,
            other_us,
        }
    }

    /// Time of one FC stack invocation over a batch.
    fn fc_time_us(
        &self,
        weight_bytes: u64,
        flops_per_sample: u64,
        batch: f64,
        co_located: usize,
        pooling: usize,
        nmp: bool,
    ) -> f64 {
        let stream_us = weight_bytes as f64 / (self.cal.llc_stream_gbs * 1e3);
        let compute_us = batch * flops_per_sample as f64 / (self.cal.fc_eff_gflops * 1e3);
        let base = stream_us + compute_us;
        base * (1.0 + self.fc_contention(weight_bytes, co_located, pooling, nmp))
    }

    /// Fractional TopFC slowdown from co-location cache contention
    /// (Figure 17). FC stacks whose weights fit in the private L2 are
    /// nearly immune; LLC-resident stacks suffer up to ~35% as SLS streams
    /// evict their weights. RecNMP removes the SLS traffic, leaving a
    /// small residual.
    pub fn fc_contention(
        &self,
        weight_bytes: u64,
        co_located: usize,
        pooling: usize,
        nmp: bool,
    ) -> f64 {
        if co_located <= 1 {
            return 0.0;
        }
        let max_degradation = if weight_bytes <= self.spec.l2_bytes {
            0.045
        } else {
            0.35
        };
        let pressure = (co_located - 1) as f64 * pooling as f64 / 80.0;
        let degradation = max_degradation * (1.0 - (-0.5 * pressure).exp());
        if nmp {
            degradation * 0.15
        } else {
            degradation
        }
    }

    /// End-to-end latency (µs) when SLS runs on RecNMP with the given
    /// memory-latency speedup, including the FC co-location relief.
    pub fn nmp_latency_us(
        &self,
        config: &ModelConfig,
        batch: usize,
        co_located: usize,
        sls_speedup: f64,
    ) -> f64 {
        assert!(sls_speedup > 0.0, "speedup must be positive");
        let nmp = self.breakdown_colocated(config, batch, co_located, true);
        nmp.sls_us / sls_speedup + nmp.bottom_fc_us + nmp.top_fc_us + nmp.other_us
    }

    /// End-to-end speedup of RecNMP over the CPU baseline.
    pub fn end_to_end_speedup(
        &self,
        config: &ModelConfig,
        batch: usize,
        co_located: usize,
        sls_speedup: f64,
    ) -> f64 {
        let base = self
            .breakdown_colocated(config, batch, co_located, false)
            .total_us();
        base / self.nmp_latency_us(config, batch, co_located, sls_speedup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RecModelKind;

    fn model() -> CpuPerfModel {
        CpuPerfModel::table1()
    }

    #[test]
    fn sls_fraction_grows_with_batch() {
        let m = model();
        let cfg = RecModelKind::Rm1Small.config();
        let f8 = m.breakdown(&cfg, 8).sls_fraction();
        let f256 = m.breakdown(&cfg, 256).sls_fraction();
        assert!(f256 > f8, "{f8} -> {f256}");
    }

    #[test]
    fn sls_fraction_grows_with_tables() {
        let m = model();
        let f_rm1 = m
            .breakdown(&RecModelKind::Rm1Small.config(), 8)
            .sls_fraction();
        let f_rm2 = m
            .breakdown(&RecModelKind::Rm2Small.config(), 8)
            .sls_fraction();
        assert!(f_rm2 > f_rm1, "{f_rm1} vs {f_rm2}");
    }

    #[test]
    fn breakdown_in_paper_band() {
        // Figure 4: SLS share between roughly 35% and 80% across models
        // at batch 8, and higher at batch 256.
        let m = model();
        for kind in RecModelKind::ALL {
            let f = m.breakdown(&kind.config(), 8).sls_fraction();
            assert!((0.3..0.85).contains(&f), "{kind}: {f}");
            let f256 = m.breakdown(&kind.config(), 256).sls_fraction();
            assert!((0.55..0.95).contains(&f256), "{kind}@256: {f256}");
        }
    }

    #[test]
    fn rm2_large_is_several_times_rm1_large() {
        // Paper: RM2-large total is ~3.6x RM1-large (batch 8).
        let m = model();
        let rm1 = m.breakdown(&RecModelKind::Rm1Large.config(), 8).total_us();
        let rm2 = m.breakdown(&RecModelKind::Rm2Large.config(), 8).total_us();
        let ratio = rm2 / rm1;
        assert!((2.0..6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn contention_immune_when_alone() {
        let m = model();
        assert_eq!(m.fc_contention(10 << 20, 1, 80, false), 0.0);
    }

    #[test]
    fn contention_larger_for_llc_resident_weights() {
        let m = model();
        let small = m.fc_contention(512 * 1024, 4, 80, false);
        let large = m.fc_contention(8 << 20, 4, 80, false);
        assert!(large > 3.0 * small, "{small} vs {large}");
        // In the paper's ballpark: 12-30% for large FCs.
        assert!((0.10..0.36).contains(&large), "{large}");
    }

    #[test]
    fn nmp_relieves_contention() {
        let m = model();
        let base = m.fc_contention(8 << 20, 4, 80, false);
        let nmp = m.fc_contention(8 << 20, 4, 80, true);
        assert!(nmp < 0.3 * base);
    }

    #[test]
    fn contention_grows_with_pooling() {
        let m = model();
        let lo = m.fc_contention(8 << 20, 4, 20, false);
        let hi = m.fc_contention(8 << 20, 4, 80, false);
        assert!(hi > lo);
    }

    #[test]
    fn end_to_end_speedup_exceeds_one_and_respects_amdahl() {
        let m = model();
        let cfg = RecModelKind::Rm2Large.config();
        let s = m.end_to_end_speedup(&cfg, 256, 1, 9.8);
        let f = m.breakdown(&cfg, 256).sls_fraction();
        let amdahl = 1.0 / (1.0 - f + f / 9.8);
        assert!(s > 1.0);
        // FC relief can push slightly past plain Amdahl but not wildly.
        assert!(s <= amdahl * 1.3, "{s} vs amdahl {amdahl}");
    }

    #[test]
    fn speedup_ordering_matches_figure_18() {
        // RM2-large > RM2-small > RM1-large > RM1-small at batch 256.
        let m = model();
        let s: Vec<f64> = RecModelKind::ALL
            .iter()
            .map(|k| m.end_to_end_speedup(&k.config(), 256, 1, 9.8))
            .collect();
        assert!(s[3] > s[2] && s[2] > s[1] && s[1] > s[0], "{s:?}");
    }
}
