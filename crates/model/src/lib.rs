//! DLRM workload models, operators and the CPU performance model.
//!
//! This crate is the workload side of the RecNMP reproduction:
//!
//! * [`config`] — the four recommendation model configurations the paper
//!   evaluates (RM1-small/large, RM2-small/large, Figure 2(b)), with
//!   concrete FC layer shapes chosen to match the published operator
//!   breakdown and cache-residency behavior,
//! * [`table`] / [`ops`] — functional embedding tables and the
//!   SLS operator family (sum, mean, weighted, 8-bit row-wise quantized),
//!   the reference semantics the NMP datapath must match,
//! * [`fc`] / [`dlrm`] — fully-connected layers and the assembled DLRM
//!   forward pass (bottom MLP → embedding lookups → feature interaction →
//!   top MLP),
//! * [`perf`] — the calibrated analytic CPU model standing in for the
//!   paper's 18-core Skylake measurements (operator latency breakdown,
//!   Figure 4; co-location FC contention, Figure 17),
//! * [`bandwidth`] — the memory-bandwidth saturation model (Figure 6),
//! * [`roofline`] — roofline analysis (Figures 1(b) and 5), and
//! * [`footprint`] — operator compute/memory footprints (Figure 1(a)).

pub mod bandwidth;
pub mod config;
pub mod dlrm;
pub mod fc;
pub mod footprint;
pub mod ops;
pub mod perf;
pub mod roofline;
pub mod table;

pub use bandwidth::BandwidthModel;
pub use config::{ModelConfig, RecModelKind};
pub use dlrm::DlrmModel;
pub use fc::{FcLayer, Mlp};
pub use ops::SlsOp;
pub use perf::{CpuPerfModel, CpuSpec, OperatorBreakdown};
pub use roofline::{Roofline, RooflinePoint};
pub use table::{EmbeddingTable, QuantizedTable};
