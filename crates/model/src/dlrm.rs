//! The assembled DLRM forward pass.
//!
//! Mirrors the architecture of Figure 2(a): dense features go through the
//! bottom MLP; sparse features index embedding tables via SLS; the pooled
//! vectors and the bottom output interact via pairwise dot products; the
//! top MLP produces the click-through-rate prediction.

use recnmp_trace::SlsBatch;
use recnmp_types::rng::DetRng;

use crate::config::ModelConfig;
use crate::fc::Mlp;
use crate::ops::SlsOp;
use crate::table::EmbeddingTable;

/// A functional DLRM instance with materialized weights and tables.
///
/// Performance experiments are trace-driven and never materialize tables;
/// this type exists for functional correctness (examples, operator
/// equivalence tests). Use a scaled-down [`recnmp_trace::EmbeddingTableSpec`]
/// via [`DlrmModel::build_with_spec`] to keep memory reasonable.
#[derive(Debug, Clone)]
pub struct DlrmModel {
    config: ModelConfig,
    bottom: Mlp,
    top: Mlp,
    tables: Vec<EmbeddingTable>,
}

impl DlrmModel {
    /// Materializes a model, overriding the table shape (row count) so
    /// functional tests don't allocate production-sized tables.
    ///
    /// # Panics
    ///
    /// Panics if the spec's vector dimension differs from the config's.
    pub fn build_with_spec(
        mut config: ModelConfig,
        spec: recnmp_trace::EmbeddingTableSpec,
        seed: u64,
    ) -> Self {
        assert_eq!(
            spec.dims(),
            config.table_spec.dims(),
            "vector dimension must match the model configuration"
        );
        config.table_spec = spec;
        let mut rng = DetRng::seed(seed);
        let bottom = Mlp::random(&config.bottom_fc, &mut rng);
        let top = Mlp::random(&config.top_fc, &mut rng);
        let tables = (0..config.num_tables)
            .map(|t| EmbeddingTable::random(spec, seed.wrapping_add(1 + t as u64)))
            .collect();
        Self {
            config,
            bottom,
            top,
            tables,
        }
    }

    /// The model configuration (with the possibly overridden table spec).
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The embedding tables.
    pub fn tables(&self) -> &[EmbeddingTable] {
        &self.tables
    }

    /// Pairwise-dot feature interaction (upper triangle, no diagonal),
    /// concatenated with the bottom output.
    fn interact(bottom_out: &[f32], pooled: &[Vec<f32>]) -> Vec<f32> {
        let mut vectors: Vec<&[f32]> = Vec::with_capacity(pooled.len() + 1);
        vectors.push(bottom_out);
        for p in pooled {
            vectors.push(p);
        }
        let mut feats = Vec::new();
        for i in 0..vectors.len() {
            for j in (i + 1)..vectors.len() {
                let dot: f32 = vectors[i].iter().zip(vectors[j]).map(|(a, b)| a * b).sum();
                feats.push(dot);
            }
        }
        feats.extend_from_slice(bottom_out);
        feats
    }

    /// Runs one sample: `dense` features plus one pooling per table.
    ///
    /// `sparse` holds, for each table, the rows to pool for this sample.
    ///
    /// # Panics
    ///
    /// Panics if `sparse.len()` differs from the table count or `dense`
    /// has the wrong width.
    pub fn forward(&self, dense: &[f32], sparse: &[Vec<u64>]) -> f32 {
        assert_eq!(
            sparse.len(),
            self.config.num_tables,
            "one pooling per table"
        );
        let bottom_out = self.bottom.forward(dense);
        let pooled: Vec<Vec<f32>> = sparse
            .iter()
            .zip(&self.tables)
            .map(|(indices, table)| {
                let batch = SlsBatch {
                    table: recnmp_types::TableId::new(0),
                    spec: *table.spec(),
                    poolings: vec![recnmp_trace::Pooling::unweighted(indices.clone())],
                };
                SlsOp::Sum.execute(table, &batch).remove(0)
            })
            .collect();
        let feats = Self::interact(&bottom_out, &pooled);
        let out = self.top.forward(&feats);
        sigmoid(out[0])
    }

    /// Runs a batch of samples; returns one CTR prediction each.
    pub fn forward_batch(&self, dense: &[Vec<f32>], sparse: &[Vec<Vec<u64>>]) -> Vec<f32> {
        assert_eq!(dense.len(), sparse.len(), "batch sizes must match");
        dense
            .iter()
            .zip(sparse)
            .map(|(d, s)| self.forward(d, s))
            .collect()
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RecModelKind;
    use recnmp_trace::EmbeddingTableSpec;

    fn tiny_model() -> DlrmModel {
        DlrmModel::build_with_spec(
            ModelConfig::new(RecModelKind::Rm1Small),
            EmbeddingTableSpec::new(100, 128),
            11,
        )
    }

    #[test]
    fn forward_produces_probability() {
        let m = tiny_model();
        let dense = vec![0.5; 13];
        let sparse: Vec<Vec<u64>> = (0..8).map(|t| vec![t, t + 1, t + 2]).collect();
        let y = m.forward(&dense, &sparse);
        assert!((0.0..=1.0).contains(&y), "{y}");
    }

    #[test]
    fn forward_is_deterministic() {
        let m = tiny_model();
        let dense = vec![0.1; 13];
        let sparse: Vec<Vec<u64>> = (0..8).map(|_| vec![1, 2]).collect();
        assert_eq!(m.forward(&dense, &sparse), m.forward(&dense, &sparse));
    }

    #[test]
    fn different_sparse_ids_change_output() {
        let m = tiny_model();
        let dense = vec![0.1; 13];
        let a: Vec<Vec<u64>> = (0..8).map(|_| vec![1, 2]).collect();
        let b: Vec<Vec<u64>> = (0..8).map(|_| vec![50, 60]).collect();
        assert_ne!(m.forward(&dense, &a), m.forward(&dense, &b));
    }

    #[test]
    fn batch_matches_singles() {
        let m = tiny_model();
        let dense = vec![vec![0.2; 13], vec![0.9; 13]];
        let sparse: Vec<Vec<Vec<u64>>> = vec![
            (0..8).map(|_| vec![3]).collect(),
            (0..8).map(|_| vec![4, 5]).collect(),
        ];
        let batch = m.forward_batch(&dense, &sparse);
        assert_eq!(batch[0], m.forward(&dense[0], &sparse[0]));
        assert_eq!(batch[1], m.forward(&dense[1], &sparse[1]));
    }

    #[test]
    fn interaction_dim_matches_config() {
        let m = tiny_model();
        let dims = m.config().table_spec.dims();
        let feats = DlrmModel::interact(&vec![1.0; dims], &vec![vec![0.5; dims]; 8]);
        assert_eq!(feats.len(), ModelConfig::interaction_dim(8, dims));
        assert_eq!(feats.len(), m.config().top_fc[0]);
    }

    #[test]
    #[should_panic(expected = "one pooling per table")]
    fn forward_checks_table_count() {
        let m = tiny_model();
        m.forward(&[0.0; 13], &[vec![1]]);
    }
}
