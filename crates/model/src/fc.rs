//! Fully-connected layers and MLP stacks.

use rand::Rng;
use recnmp_types::rng::DetRng;

/// One fully-connected layer with ReLU activation.
#[derive(Debug, Clone)]
pub struct FcLayer {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `[out_dim][in_dim]` weights.
    weights: Vec<f32>,
    bias: Vec<f32>,
    relu: bool,
}

impl FcLayer {
    /// Creates a layer with small random weights.
    pub fn random(in_dim: usize, out_dim: usize, relu: bool, rng: &mut DetRng) -> Self {
        let scale = (2.0 / in_dim as f32).sqrt();
        Self {
            in_dim,
            out_dim,
            weights: (0..in_dim * out_dim)
                .map(|_| rng.gen_range(-scale..scale))
                .collect(),
            bias: vec![0.0; out_dim],
            relu,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Weight footprint in bytes (FP32, including bias).
    pub fn param_bytes(&self) -> u64 {
        4 * (self.weights.len() + self.bias.len()) as u64
    }

    /// FLOPs per sample (2 per MAC).
    pub fn flops_per_sample(&self) -> u64 {
        2 * (self.in_dim as u64) * (self.out_dim as u64)
    }

    /// Forward pass for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.in_dim, "input width mismatch");
        let mut out = Vec::with_capacity(self.out_dim);
        for o in 0..self.out_dim {
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.bias[o];
            for (w, v) in row.iter().zip(x) {
                acc += w * v;
            }
            out.push(if self.relu { acc.max(0.0) } else { acc });
        }
        out
    }
}

/// A stack of FC layers.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<FcLayer>,
}

impl Mlp {
    /// Builds an MLP from layer widths (input first). All hidden layers use
    /// ReLU; the final layer is linear.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn random(widths: &[usize], rng: &mut DetRng) -> Self {
        assert!(widths.len() >= 2, "an MLP needs at least one layer");
        let last = widths.len() - 2;
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| FcLayer::random(w[0], w[1], i != last, rng))
            .collect();
        Self { layers }
    }

    /// The layers.
    pub fn layers(&self) -> &[FcLayer] {
        &self.layers
    }

    /// Forward pass for one sample.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut cur = x.to_vec();
        for layer in &self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Total parameter bytes.
    pub fn param_bytes(&self) -> u64 {
        self.layers.iter().map(FcLayer::param_bytes).sum()
    }

    /// Total FLOPs per sample.
    pub fn flops_per_sample(&self) -> u64 {
        self.layers.iter().map(FcLayer::flops_per_sample).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_determinism() {
        let mut rng = DetRng::seed(1);
        let mlp = Mlp::random(&[8, 16, 4], &mut rng);
        let y = mlp.forward(&[1.0; 8]);
        assert_eq!(y.len(), 4);
        let mut rng2 = DetRng::seed(1);
        let mlp2 = Mlp::random(&[8, 16, 4], &mut rng2);
        assert_eq!(y, mlp2.forward(&[1.0; 8]));
    }

    #[test]
    fn relu_applies_to_hidden_only() {
        let mut rng = DetRng::seed(2);
        // Single-layer MLP: output must be allowed to go negative.
        let mlp = Mlp::random(&[4, 1], &mut rng);
        let ys: Vec<f32> = (0..100)
            .map(|i| mlp.forward(&[i as f32, -(i as f32), 1.0, -1.0])[0])
            .collect();
        assert!(ys.iter().any(|&y| y < 0.0), "linear output never negative");
    }

    #[test]
    fn param_and_flop_accounting() {
        let mut rng = DetRng::seed(3);
        let layer = FcLayer::random(10, 20, true, &mut rng);
        assert_eq!(layer.param_bytes(), 4 * (200 + 20));
        assert_eq!(layer.flops_per_sample(), 400);
        let mlp = Mlp::random(&[10, 20, 5], &mut rng);
        assert_eq!(mlp.flops_per_sample(), 400 + 200);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn forward_checks_width() {
        let mut rng = DetRng::seed(4);
        FcLayer::random(4, 2, false, &mut rng).forward(&[0.0; 3]);
    }

    #[test]
    fn known_weights_compute_exactly() {
        let mut rng = DetRng::seed(5);
        let mut layer = FcLayer::random(2, 1, false, &mut rng);
        layer.weights = vec![2.0, -1.0];
        layer.bias = vec![0.5];
        assert_eq!(layer.forward(&[3.0, 4.0]), vec![2.5]);
    }
}
