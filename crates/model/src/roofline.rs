//! Roofline analysis (Figures 1(b) and 5).

use serde::{Deserialize, Serialize};

use crate::config::ModelConfig;
use crate::perf::CpuPerfModel;

/// A roofline machine model: one compute ceiling, one bandwidth slope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Compute bound in GFLOP/s.
    pub peak_gflops: f64,
    /// Memory bandwidth in GB/s.
    pub bw_gbs: f64,
}

impl Roofline {
    /// The paper's test system: 0.98 TFLOP/s, 62.1 GB/s.
    pub const fn table1() -> Self {
        Self {
            peak_gflops: 980.0,
            bw_gbs: 62.1,
        }
    }

    /// The roofline with memory bandwidth lifted by `factor` — RecNMP's
    /// internal-bandwidth effect (8x for a 4 DIMM x 2 rank channel).
    pub fn lifted(&self, factor: f64) -> Self {
        Self {
            peak_gflops: self.peak_gflops,
            bw_gbs: self.bw_gbs * factor,
        }
    }

    /// Attainable performance (GFLOP/s) at the given operational
    /// intensity (FLOP/byte).
    pub fn attainable_gflops(&self, oi: f64) -> f64 {
        (self.bw_gbs * oi).min(self.peak_gflops)
    }

    /// The ridge point: intensity where the machine turns compute-bound.
    pub fn ridge_oi(&self) -> f64 {
        self.peak_gflops / self.bw_gbs
    }
}

/// One operator or model placed on the roofline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Label, e.g. `"SLS"`, `"FC"`, `"RM1-large"`.
    pub name: String,
    /// Batch size the point was computed at.
    pub batch: usize,
    /// Operational intensity, FLOP/byte.
    pub oi: f64,
    /// Achieved performance, GFLOP/s.
    pub gflops: f64,
}

/// Computes roofline points for a model and its FC / SLS operators across
/// a batch sweep, using the calibrated CPU model for achieved performance.
pub fn model_points(
    config: &ModelConfig,
    batches: &[usize],
    perf: &CpuPerfModel,
) -> Vec<RooflinePoint> {
    let mut points = Vec::new();
    for &batch in batches {
        let b = config.kind.name();
        let bd = perf.breakdown(config, batch);
        let batch_f = batch as f64;

        // SLS: one add (and implicitly a load) per gathered element; the
        // paper's key observation is that OI is low and batch-independent.
        let sls_flops =
            batch_f * (config.num_tables * config.pooling * config.table_spec.dims()) as f64;
        let sls_bytes = batch_f * config.sls_bytes_per_sample() as f64;
        points.push(RooflinePoint {
            name: format!("SLS ({b})"),
            batch,
            oi: sls_flops / sls_bytes,
            gflops: sls_flops / 1e3 / bd.sls_us.max(1e-9),
        });

        // FC: weights are read once per batch, activations per sample —
        // OI grows with batch (weight reuse).
        let fc_flops = batch_f * (config.bottom_fc_flops() + config.top_fc_flops()) as f64;
        let fc_weight_bytes = (config.bottom_fc_bytes() + config.top_fc_bytes()) as f64;
        let fc_act_bytes = batch_f
            * 4.0
            * (config.bottom_fc.iter().sum::<usize>() + config.top_fc.iter().sum::<usize>()) as f64;
        let fc_bytes = fc_weight_bytes + fc_act_bytes;
        points.push(RooflinePoint {
            name: format!("FC ({b})"),
            batch,
            oi: fc_flops / fc_bytes,
            gflops: fc_flops / 1e3 / bd.fc_us().max(1e-9),
        });

        // Whole model.
        points.push(RooflinePoint {
            name: b.to_string(),
            batch,
            oi: (sls_flops + fc_flops) / (sls_bytes + fc_bytes),
            gflops: (sls_flops + fc_flops) / 1e3 / bd.total_us().max(1e-9),
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RecModelKind;

    #[test]
    fn attainable_has_two_regimes() {
        let r = Roofline::table1();
        // Memory-bound region: linear in OI.
        assert!((r.attainable_gflops(0.25) - 62.1 * 0.25).abs() < 1e-9);
        // Compute-bound region: flat at peak.
        assert_eq!(r.attainable_gflops(1000.0), 980.0);
    }

    #[test]
    fn ridge_point_divides_regimes() {
        let r = Roofline::table1();
        let ridge = r.ridge_oi();
        assert!((r.attainable_gflops(ridge) - 980.0).abs() < 1e-6);
        assert!(r.attainable_gflops(ridge * 0.9) < 980.0);
    }

    #[test]
    fn lift_scales_memory_region_only() {
        let r = Roofline::table1();
        let l = r.lifted(8.0);
        assert!((l.attainable_gflops(0.25) - 8.0 * r.attainable_gflops(0.25)).abs() < 1e-9);
        assert_eq!(l.attainable_gflops(1e6), r.attainable_gflops(1e6));
    }

    #[test]
    fn sls_oi_is_low_and_fixed() {
        let cfg = RecModelKind::Rm1Large.config();
        let pts = model_points(&cfg, &[1, 64, 256], &CpuPerfModel::table1());
        let sls: Vec<&RooflinePoint> = pts.iter().filter(|p| p.name.starts_with("SLS")).collect();
        // OI = dims/vector_bytes = 16/64 = 0.25 FLOP/B, batch-independent.
        for p in &sls {
            assert!((p.oi - 0.25).abs() < 1e-12, "{}", p.oi);
        }
    }

    #[test]
    fn fc_oi_grows_with_batch() {
        let cfg = RecModelKind::Rm1Large.config();
        let pts = model_points(&cfg, &[1, 256], &CpuPerfModel::table1());
        let fc: Vec<&RooflinePoint> = pts.iter().filter(|p| p.name.starts_with("FC")).collect();
        assert!(fc[1].oi > 10.0 * fc[0].oi, "{} -> {}", fc[0].oi, fc[1].oi);
    }

    #[test]
    fn achieved_stays_under_roofline() {
        let r = Roofline::table1();
        for kind in RecModelKind::ALL {
            let pts = model_points(&kind.config(), &[8, 64, 256], &CpuPerfModel::table1());
            for p in pts {
                assert!(
                    p.gflops <= r.attainable_gflops(p.oi) * 1.05,
                    "{} at batch {}: {} > roof {}",
                    p.name,
                    p.batch,
                    p.gflops,
                    r.attainable_gflops(p.oi)
                );
            }
        }
    }

    #[test]
    fn models_are_memory_bound() {
        // Paper Figure 5: RM1/RM2 sit in the bandwidth-constrained region.
        let r = Roofline::table1();
        for kind in [RecModelKind::Rm1Large, RecModelKind::Rm2Large] {
            let pts = model_points(&kind.config(), &[256], &CpuPerfModel::table1());
            let model_pt = pts.iter().find(|p| p.name == kind.name()).unwrap();
            assert!(model_pt.oi < r.ridge_oi(), "{}", model_pt.oi);
        }
    }
}
