//! DRAM energy accounting.
//!
//! Uses the latency/energy parameters from Table I of the paper:
//! `DDR Activate = 2.1 nJ`, `DDR RD/WR = 14 pJ/b`, `Off-chip IO = 22 pJ/b`.

use serde::{Deserialize, Serialize};

use crate::stats::DramStats;

/// Per-event DRAM energy constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Energy of one ACT/PRE pair, in nanojoules.
    pub act_nj: f64,
    /// Read/write array access energy, picojoules per bit.
    pub rdwr_pj_per_bit: f64,
    /// Off-chip (DIMM interface) I/O energy, picojoules per bit.
    pub io_pj_per_bit: f64,
}

impl EnergyParams {
    /// Table I constants.
    pub const fn table1() -> Self {
        Self {
            act_nj: 2.1,
            rdwr_pj_per_bit: 14.0,
            io_pj_per_bit: 22.0,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::table1()
    }
}

/// Energy consumed by a DRAM channel, broken down by component.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DramEnergy {
    /// Row activation energy (nJ).
    pub act_nj: f64,
    /// Array read/write energy (nJ).
    pub rdwr_nj: f64,
    /// Off-chip I/O energy (nJ).
    pub io_nj: f64,
}

impl DramEnergy {
    /// Computes energy from raw event counts.
    ///
    /// `io_bytes` is accounted separately from array traffic because
    /// near-memory processing reads the array without sending every burst
    /// across the DIMM interface.
    pub fn from_counts(acts: u64, burst_bytes: u64, io_bytes: u64, p: &EnergyParams) -> Self {
        Self {
            act_nj: acts as f64 * p.act_nj,
            rdwr_nj: burst_bytes as f64 * 8.0 * p.rdwr_pj_per_bit / 1000.0,
            io_nj: io_bytes as f64 * 8.0 * p.io_pj_per_bit / 1000.0,
        }
    }

    /// Computes host-path energy from controller statistics: every serviced
    /// burst crosses the DIMM interface.
    pub fn from_stats(stats: &DramStats, p: &EnergyParams) -> Self {
        let bytes = stats.data_bytes();
        Self::from_counts(stats.acts, bytes, bytes, p)
    }

    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.act_nj + self.rdwr_nj + self.io_nj
    }

    /// Adds another breakdown to this one.
    pub fn accumulate(&mut self, other: &DramEnergy) {
        self.act_nj += other.act_nj;
        self.rdwr_nj += other.rdwr_nj;
        self.io_nj += other.io_nj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_read_burst_energy() {
        let p = EnergyParams::table1();
        // One ACT + one 64 B burst crossing the interface.
        let e = DramEnergy::from_counts(1, 64, 64, &p);
        assert!((e.act_nj - 2.1).abs() < 1e-12);
        // 64 B = 512 bits; 512 * 14 pJ = 7.168 nJ.
        assert!((e.rdwr_nj - 7.168).abs() < 1e-9);
        // 512 * 22 pJ = 11.264 nJ.
        assert!((e.io_nj - 11.264).abs() < 1e-9);
        assert!((e.total_nj() - 20.532).abs() < 1e-9);
    }

    #[test]
    fn nmp_saves_io_energy() {
        let p = EnergyParams::table1();
        let host = DramEnergy::from_counts(10, 640, 640, &p);
        // NMP: same array traffic, but only one 64 B sum crosses the pins.
        let nmp = DramEnergy::from_counts(10, 640, 64, &p);
        assert!(nmp.total_nj() < host.total_nj());
        assert!((host.io_nj / nmp.io_nj - 10.0).abs() < 1e-9);
    }

    #[test]
    fn accumulate_sums_components() {
        let p = EnergyParams::table1();
        let mut a = DramEnergy::from_counts(1, 64, 64, &p);
        let b = a;
        a.accumulate(&b);
        assert!((a.total_nj() - 2.0 * b.total_nj()).abs() < 1e-9);
    }

    #[test]
    fn from_stats_uses_all_bursts() {
        let p = EnergyParams::table1();
        let mut s = DramStats::new();
        s.reads = 4;
        s.acts = 2;
        let e = DramEnergy::from_stats(&s, &p);
        assert!((e.act_nj - 4.2).abs() < 1e-12);
        assert!(e.io_nj > 0.0);
    }
}
