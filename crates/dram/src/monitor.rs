//! Independent DDR protocol legality checker.
//!
//! [`ProtocolMonitor`] keeps its own shadow copy of bank/rank state and
//! verifies every command the controller issues against the timing rules.
//! It is deliberately a *separate implementation* from the scheduler's
//! ready-time bookkeeping, so the test suite can cross-check the two.
//!
//! The monitor reasons only about absolute issue cycles, never about how
//! the clock advanced between commands — so it validates the event-driven
//! engine's skip-ahead jumps exactly as it validates per-cycle stepping,
//! and the equivalence suite runs it under both engines.
//!
//! `observe` is on the per-command hot path, so it allocates nothing
//! unless a violation actually fires: broken-rule names are collected in a
//! fixed stack buffer and only formatted into `String`s when present.

use recnmp_types::Cycle;

use crate::address::Geometry;
use crate::command::{DdrCommand, DdrCommandKind};
use crate::timing::DdrTiming;

/// Allocation-free accumulator for the rules one command breaks.
#[derive(Debug, Default)]
struct RuleBuf {
    rules: [&'static str; 8],
    len: usize,
}

impl RuleBuf {
    fn push(&mut self, rule: &'static str) {
        debug_assert!(self.len < self.rules.len(), "rule buffer overflow");
        if self.len < self.rules.len() {
            self.rules[self.len] = rule;
            self.len += 1;
        }
    }

    fn as_slice(&self) -> &[&'static str] {
        &self.rules[..self.len]
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ShadowBank {
    open_row: Option<u32>,
    last_act: Option<Cycle>,
    last_pre: Option<Cycle>,
    last_rd: Option<Cycle>,
    last_wr: Option<Cycle>,
}

#[derive(Debug, Clone, Default)]
struct ShadowRank {
    act_times: Vec<Cycle>,
    last_act_any: Option<Cycle>,
    last_act_bg: Vec<Option<Cycle>>,
    last_col_any: Option<Cycle>,
    last_col_bg: Vec<Option<Cycle>>,
    busy_until: Cycle,
}

/// Observes issued commands and records timing violations.
#[derive(Debug, Clone)]
pub struct ProtocolMonitor {
    geo: Geometry,
    t: DdrTiming,
    banks: Vec<Vec<ShadowBank>>,
    ranks: Vec<ShadowRank>,
    data_busy_until: Cycle,
    violations: Vec<String>,
    commands_seen: u64,
}

impl ProtocolMonitor {
    /// Creates a monitor for the given geometry and timing.
    pub fn new(geo: Geometry, t: DdrTiming) -> Self {
        let banks = (0..geo.ranks)
            .map(|_| vec![ShadowBank::default(); geo.banks_per_rank()])
            .collect();
        let ranks = (0..geo.ranks)
            .map(|_| ShadowRank {
                last_act_bg: vec![None; geo.bank_groups as usize],
                last_col_bg: vec![None; geo.bank_groups as usize],
                ..ShadowRank::default()
            })
            .collect();
        Self {
            geo,
            t,
            banks,
            ranks,
            data_busy_until: 0,
            violations: Vec::new(),
            commands_seen: 0,
        }
    }

    /// All violations observed so far, as human-readable strings.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Total commands observed.
    pub fn commands_seen(&self) -> u64 {
        self.commands_seen
    }

    fn flag(&mut self, now: Cycle, cmd: DdrCommand, rule: &str) {
        self.violations
            .push(format!("cycle {now}: {cmd} violates {rule}"));
    }

    /// Observes one command issued at cycle `now`.
    pub fn observe(&mut self, now: Cycle, cmd: DdrCommand) {
        self.commands_seen += 1;
        let r = cmd.addr.rank as usize;
        let bg = cmd.addr.bank_group as usize;
        let flat = cmd.addr.flat_bank(self.geo.banks_per_group);
        let t = self.t;

        // Collect violations first to appease the borrow checker. A fixed
        // stack buffer: no command can break more rules than this, and the
        // hot no-violation path must not allocate.
        let mut broken = RuleBuf::default();
        {
            let rank = &self.ranks[r];
            let bank = &self.banks[r][flat];
            match cmd.kind {
                DdrCommandKind::Act => {
                    if bank.open_row.is_some() {
                        broken.push("ACT-to-open-bank");
                    }
                    if let Some(a) = bank.last_act {
                        if now < a + t.t_rc {
                            broken.push("tRC");
                        }
                    }
                    if let Some(p) = bank.last_pre {
                        if now < p + t.t_rp {
                            broken.push("tRP");
                        }
                    }
                    if let Some(a) = rank.last_act_any {
                        if now < a + t.t_rrd_s {
                            broken.push("tRRD_S");
                        }
                    }
                    if let Some(a) = rank.last_act_bg[bg] {
                        if now < a + t.t_rrd_l {
                            broken.push("tRRD_L");
                        }
                    }
                    if rank.act_times.len() >= 4 {
                        let fourth_back = rank.act_times[rank.act_times.len() - 4];
                        if now < fourth_back + t.t_faw {
                            broken.push("tFAW");
                        }
                    }
                    if now < rank.busy_until {
                        broken.push("tRFC");
                    }
                }
                DdrCommandKind::Rd | DdrCommandKind::Wr => {
                    match bank.open_row {
                        None => broken.push("column-to-closed-bank"),
                        Some(row) if row != cmd.addr.row => broken.push("column-to-wrong-row"),
                        _ => {}
                    }
                    if let Some(a) = bank.last_act {
                        if now < a + t.t_rcd {
                            broken.push("tRCD");
                        }
                    }
                    if let Some(c) = rank.last_col_any {
                        if now < c + t.t_ccd_s {
                            broken.push("tCCD_S");
                        }
                    }
                    if let Some(c) = rank.last_col_bg[bg] {
                        if now < c + t.t_ccd_l {
                            broken.push("tCCD_L");
                        }
                    }
                    if now < rank.busy_until {
                        broken.push("tRFC");
                    }
                }
                DdrCommandKind::Pre => {
                    if let Some(a) = bank.last_act {
                        if now < a + t.t_ras {
                            broken.push("tRAS");
                        }
                    }
                    if let Some(rd) = bank.last_rd {
                        if now < rd + t.t_rtp {
                            broken.push("tRTP");
                        }
                    }
                    if let Some(wr) = bank.last_wr {
                        if now < wr + t.t_cwl + t.t_bl + t.t_wr {
                            broken.push("tWR");
                        }
                    }
                }
                DdrCommandKind::Ref => {
                    let any_open = self.banks[r].iter().any(|b| b.open_row.is_some());
                    if any_open {
                        broken.push("REF-with-open-bank");
                    }
                    if now < rank.busy_until {
                        broken.push("tRFC");
                    }
                    for b in &self.banks[r] {
                        if let Some(p) = b.last_pre {
                            if now < p + t.t_rp {
                                broken.push("REF-tRP");
                                break;
                            }
                        }
                    }
                }
            }
        }
        // Data-bus overlap check for column commands.
        if matches!(cmd.kind, DdrCommandKind::Rd | DdrCommandKind::Wr) {
            let start = now
                + if cmd.kind == DdrCommandKind::Rd {
                    t.t_cl
                } else {
                    t.t_cwl
                };
            if start < self.data_busy_until {
                broken.push("data-bus-overlap");
            }
            self.data_busy_until = self.data_busy_until.max(start + t.t_bl);
        }
        for rule in broken.as_slice() {
            self.flag(now, cmd, rule);
        }

        // Update shadow state.
        let rank = &mut self.ranks[r];
        let bank = &mut self.banks[r][flat];
        match cmd.kind {
            DdrCommandKind::Act => {
                bank.open_row = Some(cmd.addr.row);
                bank.last_act = Some(now);
                rank.last_act_any = Some(now);
                rank.last_act_bg[bg] = Some(now);
                rank.act_times.push(now);
                if rank.act_times.len() > 8 {
                    rank.act_times.remove(0);
                }
            }
            DdrCommandKind::Rd => {
                bank.last_rd = Some(now);
                rank.last_col_any = Some(now);
                rank.last_col_bg[bg] = Some(now);
            }
            DdrCommandKind::Wr => {
                bank.last_wr = Some(now);
                rank.last_col_any = Some(now);
                rank.last_col_bg[bg] = Some(now);
            }
            DdrCommandKind::Pre => {
                bank.open_row = None;
                bank.last_pre = Some(now);
            }
            DdrCommandKind::Ref => {
                rank.busy_until = now + t.t_rfc;
                for b in &mut self.banks[r] {
                    b.open_row = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::DramAddr;

    fn setup() -> ProtocolMonitor {
        ProtocolMonitor::new(Geometry::ddr4_8gb_x8(2), DdrTiming::ddr4_2400())
    }

    fn addr(rank: u8, bg: u8, bank: u8, row: u32) -> DramAddr {
        DramAddr {
            rank,
            bank_group: bg,
            bank,
            row,
            column: 0,
        }
    }

    #[test]
    fn legal_sequence_passes() {
        let mut m = setup();
        let t = DdrTiming::ddr4_2400();
        m.observe(0, DdrCommand::new(DdrCommandKind::Act, addr(0, 0, 0, 5)));
        m.observe(
            t.t_rcd,
            DdrCommand::new(DdrCommandKind::Rd, addr(0, 0, 0, 5)),
        );
        m.observe(
            t.t_ras.max(t.t_rcd + t.t_rtp),
            DdrCommand::new(DdrCommandKind::Pre, addr(0, 0, 0, 5)),
        );
        assert!(m.violations().is_empty(), "{:?}", m.violations());
        assert_eq!(m.commands_seen(), 3);
    }

    #[test]
    fn early_rd_flags_trcd() {
        let mut m = setup();
        m.observe(0, DdrCommand::new(DdrCommandKind::Act, addr(0, 0, 0, 5)));
        m.observe(3, DdrCommand::new(DdrCommandKind::Rd, addr(0, 0, 0, 5)));
        assert!(m.violations().iter().any(|v| v.contains("tRCD")));
    }

    #[test]
    fn rd_to_closed_bank_flags() {
        let mut m = setup();
        m.observe(0, DdrCommand::new(DdrCommandKind::Rd, addr(0, 0, 0, 5)));
        assert!(m
            .violations()
            .iter()
            .any(|v| v.contains("column-to-closed-bank")));
    }

    #[test]
    fn five_fast_acts_flag_tfaw() {
        let mut m = setup();
        let t = DdrTiming::ddr4_2400();
        // Four ACTs at exactly tRRD_S spacing are legal...
        for i in 0..4u8 {
            m.observe(
                i as Cycle * t.t_rrd_s,
                DdrCommand::new(DdrCommandKind::Act, addr(0, i % 4, 0, 1)),
            );
        }
        assert!(m.violations().is_empty(), "{:?}", m.violations());
        // ...but a fifth inside the tFAW window is not.
        m.observe(
            4 * t.t_rrd_s,
            DdrCommand::new(DdrCommandKind::Act, addr(0, 0, 1, 1)),
        );
        assert!(m.violations().iter().any(|v| v.contains("tFAW")));
    }

    #[test]
    fn early_pre_flags_tras() {
        let mut m = setup();
        m.observe(0, DdrCommand::new(DdrCommandKind::Act, addr(0, 0, 0, 5)));
        m.observe(10, DdrCommand::new(DdrCommandKind::Pre, addr(0, 0, 0, 5)));
        assert!(m.violations().iter().any(|v| v.contains("tRAS")));
    }

    #[test]
    fn back_to_back_rd_same_bg_flags_ccd_l() {
        let mut m = setup();
        let t = DdrTiming::ddr4_2400();
        m.observe(0, DdrCommand::new(DdrCommandKind::Act, addr(0, 0, 0, 5)));
        m.observe(0, DdrCommand::new(DdrCommandKind::Act, addr(0, 0, 1, 5)));
        let rd_at = t.t_rcd;
        m.observe(rd_at, DdrCommand::new(DdrCommandKind::Rd, addr(0, 0, 0, 5)));
        m.observe(
            rd_at + t.t_ccd_s,
            DdrCommand::new(DdrCommandKind::Rd, addr(0, 0, 1, 5)),
        );
        assert!(m.violations().iter().any(|v| v.contains("tCCD_L")));
    }

    #[test]
    fn different_ranks_are_independent_for_trrd() {
        let mut m = setup();
        m.observe(0, DdrCommand::new(DdrCommandKind::Act, addr(0, 0, 0, 5)));
        m.observe(1, DdrCommand::new(DdrCommandKind::Act, addr(1, 0, 0, 5)));
        assert!(m.violations().is_empty(), "{:?}", m.violations());
    }

    #[test]
    fn ref_with_open_bank_flags() {
        let mut m = setup();
        m.observe(0, DdrCommand::new(DdrCommandKind::Act, addr(0, 0, 0, 5)));
        m.observe(100, DdrCommand::new(DdrCommandKind::Ref, addr(0, 0, 0, 0)));
        assert!(m
            .violations()
            .iter()
            .any(|v| v.contains("REF-with-open-bank")));
    }
}
