//! The cycle-level memory-channel engine.

use std::collections::VecDeque;

use recnmp_types::{Cycle, PhysAddr, RequestId, SimError};

use crate::address::{DramAddr, Geometry};
use crate::bank::{Bank, BankState, RankTimer};
use crate::command::{DdrCommand, DdrCommandKind};
use crate::controller::{DramConfig, SimEngine};
use crate::monitor::ProtocolMonitor;
use crate::request::{CompletedRequest, Request, RequestKind, RowOutcome};
use crate::stats::DramStats;
use crate::timing::DdrTiming;

/// An in-service request tracked by the controller.
#[derive(Debug, Clone)]
struct Queued {
    id: RequestId,
    kind: RequestKind,
    addr: DramAddr,
    arrival: Cycle,
    seq: u64,
    acts: u8,
    pres: u8,
}

impl Queued {
    fn outcome(&self) -> RowOutcome {
        match (self.pres, self.acts) {
            (0, 0) => RowOutcome::Hit,
            (0, _) => RowOutcome::Miss,
            _ => RowOutcome::Conflict,
        }
    }
}

/// One simulated memory channel: DDR4 devices plus an FR-FCFS controller.
///
/// The model issues at most one DDR command per cycle (the command/address
/// bus limit that RecNMP's compressed instructions work around). Time
/// advances either one DRAM clock per [`tick`](Self::tick), or — inside
/// [`run_until_idle`](Self::run_until_idle) with the default
/// [`SimEngine::EventDriven`] — by skipping the clock directly to
/// [`next_event_cycle`](Self::next_event_cycle) whenever no command can
/// issue, which is cycle-identical but does O(commands) instead of
/// O(cycles) work.
///
/// # Examples
///
/// ```
/// use recnmp_dram::{DramConfig, MemorySystem};
/// use recnmp_types::PhysAddr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mem = MemorySystem::new(DramConfig::single_rank())?;
/// for i in 0..8u64 {
///     mem.enqueue_read(PhysAddr::new(i * 64), 0);
/// }
/// let done = mem.run_until_idle()?;
/// assert_eq!(done.len(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    config: DramConfig,
    timing: DdrTiming,
    geo: Geometry,
    cycle: Cycle,
    banks: Vec<Vec<Bank>>,
    ranks: Vec<RankTimer>,
    refresh_pending: Vec<bool>,
    data_bus_free: Cycle,
    last_data_rank: Option<u8>,
    staged: VecDeque<Queued>,
    read_q: Vec<Queued>,
    write_q: Vec<Queued>,
    completed: Vec<CompletedRequest>,
    next_seq: u64,
    next_auto_id: u64,
    stats: DramStats,
    monitor: Option<ProtocolMonitor>,
    loop_iters: u64,
}

impl MemorySystem {
    /// Builds a memory system for the given channel configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`recnmp_types::ConfigError`] when the configuration is
    /// inconsistent (see [`DramConfig::validate`]).
    pub fn new(config: DramConfig) -> Result<Self, recnmp_types::ConfigError> {
        config.validate()?;
        let geo = config.geometry();
        let timing = config.timing;
        let ranks = (0..geo.ranks)
            .map(|_| RankTimer::new(geo.bank_groups, &timing))
            .collect();
        let banks = (0..geo.ranks)
            .map(|_| vec![Bank::new(); geo.banks_per_rank()])
            .collect();
        Ok(Self {
            refresh_pending: vec![false; geo.ranks as usize],
            config,
            timing,
            geo,
            cycle: 0,
            banks,
            ranks,
            data_bus_free: 0,
            last_data_rank: None,
            staged: VecDeque::new(),
            read_q: Vec::new(),
            write_q: Vec::new(),
            completed: Vec::new(),
            next_seq: 0,
            next_auto_id: 0,
            stats: DramStats::new(),
            monitor: None,
            loop_iters: 0,
        })
    }

    /// Returns the active configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Returns the channel geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Attaches an independent protocol monitor that checks every issued
    /// command against the DDR timing rules (used by the test suite).
    pub fn attach_monitor(&mut self) {
        self.monitor = Some(ProtocolMonitor::new(self.geo, self.timing));
    }

    /// Timing violations recorded by the attached monitor, if any.
    pub fn monitor_violations(&self) -> &[String] {
        self.monitor.as_ref().map_or(&[], |m| m.violations())
    }

    /// Requests known to the controller but not yet completed.
    pub fn pending(&self) -> usize {
        self.staged.len() + self.read_q.len() + self.write_q.len()
    }

    /// Enqueues a request built by the caller.
    pub fn enqueue(&mut self, req: Request) {
        let addr = self.config.mapping.decode(req.addr, &self.geo);
        self.enqueue_decoded(addr, req.kind, req.arrival, req.id);
    }

    /// Enqueues a read of the burst containing `addr`, arriving at
    /// `arrival`, and returns the auto-assigned request id.
    pub fn enqueue_read(&mut self, addr: PhysAddr, arrival: Cycle) -> RequestId {
        let id = RequestId::new(self.next_auto_id);
        self.next_auto_id += 1;
        self.enqueue(Request::read(id, addr, arrival));
        id
    }

    /// Enqueues a request at pre-decoded DRAM coordinates. Rank-NMP modules
    /// use this path: their instructions carry device coordinates directly.
    pub fn enqueue_decoded(
        &mut self,
        addr: DramAddr,
        kind: RequestKind,
        arrival: Cycle,
        id: RequestId,
    ) {
        assert!(
            addr.rank < self.geo.ranks
                && addr.bank_group < self.geo.bank_groups
                && addr.bank < self.geo.banks_per_group
                && addr.row < self.geo.rows
                && addr.column < self.geo.columns,
            "decoded address out of range for geometry"
        );
        let q = Queued {
            id,
            kind,
            addr,
            arrival,
            seq: self.next_seq,
            acts: 0,
            pres: 0,
        };
        self.next_seq += 1;
        self.staged.push_back(q);
    }

    /// Advances the channel by one cycle.
    pub fn tick(&mut self) {
        self.tick_inner();
    }

    /// One controller cycle: admit arrivals, progress refresh, issue at
    /// most one command. Returns whether a command slot was consumed.
    fn tick_inner(&mut self) -> bool {
        self.loop_iters += 1;
        self.admit_arrivals();
        if self.config.refresh {
            self.update_refresh_state();
        }
        let mut issued = if self.config.refresh {
            self.try_issue_refresh()
        } else {
            false
        };
        if !issued {
            issued = self.issue_request_command();
        }
        self.cycle += 1;
        issued
    }

    /// Main-loop iterations executed so far (ticks, across both engines).
    ///
    /// For the per-cycle engine this equals elapsed cycles; for the
    /// event-driven engine it is O(issued commands). The `event_equivalence`
    /// suite uses it to prove the skip-ahead engine does less work.
    pub fn loop_iterations(&self) -> u64 {
        self.loop_iters
    }

    /// Switches the main-loop strategy (the configuration default is
    /// [`SimEngine::EventDriven`]). State and statistics carry over; both
    /// engines are cycle-identical.
    pub fn set_engine(&mut self, engine: SimEngine) {
        self.config.engine = engine;
    }

    /// Runs until every request has completed, returning all completions
    /// (also recorded in [`stats`](Self::stats)).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] if the controller stops making
    /// forward progress while requests are pending (a scheduling livelock;
    /// see [`DramConfig::stall_iterations`]). The seed engine `assert!`ed
    /// after 500M cycles instead.
    pub fn run_until_idle(&mut self) -> Result<Vec<CompletedRequest>, SimError> {
        match self.config.engine {
            SimEngine::EventDriven => self.run_event_driven()?,
            SimEngine::PerCycle => self.run_per_cycle()?,
        }
        Ok(self.drain_completed())
    }

    fn stalled(&self) -> SimError {
        SimError::Stalled {
            cycle: self.cycle,
            pending: self.pending(),
        }
    }

    /// Stall bookkeeping shared by both engines. Progress means a request
    /// moved: it completed (pending shrank) or was admitted from the
    /// staged queue (staged shrank). Mere command issue — refresh steps,
    /// re-ACTs — does NOT count, or a livelocked controller that keeps
    /// refreshing on schedule would never trip the bound; both progress
    /// forms are bounded by the finite request count, so neither can mask
    /// a livelock indefinitely. The only *unbounded* legitimate wait
    /// without progress is a staged arrival in the far future; any other
    /// wait is bounded by the DDR timing constants, far below
    /// [`DramConfig::stall_iterations`].
    fn note_progress(&self, last: &mut (usize, usize), idle: &mut u64) -> Result<(), SimError> {
        let state = self.progress_state();
        if state.0 < last.0 || state.1 < last.1 {
            *last = state;
            *idle = 0;
            return Ok(());
        }
        *idle += 1;
        if *idle > self.config.stall_iterations {
            match self.next_admissible_arrival() {
                Some(at) if at > self.cycle => *idle = 0,
                _ => return Err(self.stalled()),
            }
        }
        Ok(())
    }

    fn progress_state(&self) -> (usize, usize) {
        (self.pending(), self.staged.len())
    }

    /// Reference main loop: one DRAM clock per iteration.
    fn run_per_cycle(&mut self) -> Result<(), SimError> {
        let mut last = self.progress_state();
        let mut idle = 0u64;
        while self.pending() > 0 {
            self.tick_inner();
            self.note_progress(&mut last, &mut idle)?;
        }
        self.drain_data_bus();
        Ok(())
    }

    /// Event-driven main loop: whenever a tick issues nothing, jump the
    /// clock to the next cycle at which anything could change.
    fn run_event_driven(&mut self) -> Result<(), SimError> {
        let mut last = self.progress_state();
        let mut idle = 0u64;
        while self.pending() > 0 {
            let issued = self.tick_inner();
            self.note_progress(&mut last, &mut idle)?;
            if !issued {
                match self.next_event_cycle() {
                    Some(e) => self.cycle = e.max(self.cycle),
                    None => return Err(self.stalled()),
                }
            }
        }
        self.drain_data_bus();
        Ok(())
    }

    /// Lets in-flight data bursts (and any refresh that falls due while
    /// they stream) finish.
    fn drain_data_bus(&mut self) {
        let drain_to = self.data_bus_free.max(self.cycle);
        while self.cycle < drain_to {
            let issued = self.tick_inner();
            if self.config.engine == SimEngine::EventDriven && !issued {
                let e = self
                    .next_event_cycle()
                    .map_or(drain_to, |e| e.min(drain_to));
                self.cycle = e.max(self.cycle);
            }
        }
    }

    /// The next cycle (>= the current one) at which the controller state
    /// can change: the earliest of the next admissible staged arrival, the
    /// next refresh deadline or refresh-step legality, and the earliest
    /// bank/rank/data-bus readiness of any schedulable queued request.
    ///
    /// Returns `None` when no such cycle exists — with requests pending
    /// that is a livelock, which `run_until_idle` reports as
    /// [`SimError::Stalled`].
    pub fn next_event_cycle(&self) -> Option<Cycle> {
        let now = self.cycle;
        let mut next: Option<Cycle> = None;
        let mut consider = |at: Cycle| {
            let at = at.max(now);
            next = Some(next.map_or(at, |n| n.min(at)));
        };

        // Staged admission (FIFO: only the front can unblock by arrival;
        // a full queue unblocks via an issue, which is its own event).
        if let Some(at) = self.next_admissible_arrival() {
            consider(at);
        }

        // Refresh: pending flags flip at `refresh_due`; the first pending
        // rank (the only one `try_issue_refresh` progresses) has a step —
        // PRE of an open bank or the REF itself — with a known ready cycle.
        if self.config.refresh {
            let mut first_pending = true;
            for r in 0..self.geo.ranks as usize {
                if !self.refresh_pending[r] {
                    consider(self.ranks[r].refresh_due);
                } else if first_pending {
                    first_pending = false;
                    consider(self.refresh_step_ready(r));
                }
            }
        }

        // Queued requests: the cycle their next command (column, PRE or
        // ACT) becomes legal. Writes only participate when the controller
        // would drain them — drain mode flips only on admissions or
        // issues, which are events themselves.
        for q in &self.read_q {
            if let Some(at) = self.request_ready(true, q) {
                consider(at);
            }
        }
        if self.drain_writes() {
            for q in &self.write_q {
                if let Some(at) = self.request_ready(false, q) {
                    consider(at);
                }
            }
        }
        next
    }

    /// Arrival cycle of the staged-queue front, if its target queue has
    /// room to admit it.
    fn next_admissible_arrival(&self) -> Option<Cycle> {
        let front = self.staged.front()?;
        let (q, cap) = if front.kind == RequestKind::Read {
            (&self.read_q, self.config.read_queue)
        } else {
            (&self.write_q, self.config.write_queue)
        };
        (q.len() < cap).then_some(front.arrival)
    }

    /// Earliest cycle queued request `q`'s next command could issue, or
    /// `None` while its rank has a refresh pending (the refresh events
    /// cover the unblock).
    fn request_ready(&self, is_read: bool, q: &Queued) -> Option<Cycle> {
        let rank = q.addr.rank as usize;
        if self.refresh_pending[rank] {
            return None;
        }
        let flat = q.addr.flat_bank(self.geo.banks_per_group);
        let bank = &self.banks[rank][flat];
        Some(match bank.state {
            BankState::Open(row) if row == q.addr.row => {
                let data_offset = if is_read {
                    self.timing.t_cl
                } else {
                    self.timing.t_cwl
                };
                let mut bus_free = self.data_bus_free;
                if self.last_data_rank.is_some() && self.last_data_rank != Some(q.addr.rank) {
                    bus_free += self.timing.rank_switch;
                }
                bank.col_ready(is_read)
                    .max(self.ranks[rank].col_ready(is_read, q.addr.bank_group))
                    .max(bus_free.saturating_sub(data_offset))
            }
            BankState::Open(_) => bank.pre_ready(),
            BankState::Closed => bank
                .act_ready()
                .max(self.ranks[rank].act_ready(q.addr.bank_group)),
        })
    }

    /// Earliest cycle rank `r`'s next refresh step (PRE of the first open
    /// bank, or the REF itself) becomes legal.
    fn refresh_step_ready(&self, r: usize) -> Cycle {
        if let Some(b) = self.banks[r]
            .iter()
            .position(|b| matches!(b.state, BankState::Open(_)))
        {
            self.banks[r][b].pre_ready()
        } else {
            self.banks[r]
                .iter()
                .map(Bank::act_ready)
                .max()
                .unwrap_or(0)
                .max(self.ranks[r].busy_until)
        }
    }

    /// Whether the controller is in write-drain mode (the same predicate
    /// `issue_request_command` applies).
    fn drain_writes(&self) -> bool {
        self.write_q.len() * 4 >= self.config.write_queue * 3
            || (self.read_q.is_empty() && !self.write_q.is_empty())
    }

    /// Removes and returns all completions whose data has fully transferred
    /// by the current cycle.
    pub fn drain_completed(&mut self) -> Vec<CompletedRequest> {
        let now = self.cycle;
        // Common case after `run_until_idle`: everything is done — hand the
        // buffer over without copying or re-partitioning.
        if self.completed.iter().all(|c| c.finish_cycle <= now) {
            return std::mem::take(&mut self.completed);
        }
        let mut done = Vec::new();
        self.completed.retain(|c| {
            if c.finish_cycle <= now {
                done.push(*c);
                false
            } else {
                true
            }
        });
        done
    }

    fn admit_arrivals(&mut self) {
        while let Some(front) = self.staged.front() {
            if front.arrival > self.cycle {
                // Staged requests are admitted in FIFO order; later arrivals
                // cannot jump the queue.
                break;
            }
            let is_read = front.kind == RequestKind::Read;
            let q = if is_read {
                &mut self.read_q
            } else {
                &mut self.write_q
            };
            let cap = if is_read {
                self.config.read_queue
            } else {
                self.config.write_queue
            };
            if q.len() >= cap {
                break;
            }
            q.push(self.staged.pop_front().expect("front checked"));
        }
    }

    fn update_refresh_state(&mut self) {
        for r in 0..self.geo.ranks as usize {
            if self.cycle >= self.ranks[r].refresh_due {
                self.refresh_pending[r] = true;
            }
        }
    }

    /// Tries to make progress on a pending refresh; returns true if a
    /// command slot was consumed.
    fn try_issue_refresh(&mut self) -> bool {
        let now = self.cycle;
        for r in 0..self.geo.ranks as usize {
            if !self.refresh_pending[r] {
                continue;
            }
            // Close any open bank first.
            if let Some(b) = self.banks[r]
                .iter()
                .position(|b| matches!(b.state, BankState::Open(_)))
            {
                if self.banks[r][b].pre_ready() <= now {
                    let addr = self.bank_addr(r as u8, b);
                    self.issue(DdrCommand::new(DdrCommandKind::Pre, addr));
                    self.banks[r][b].do_pre(now, &self.timing);
                    self.stats.pres += 1;
                    return true;
                }
                // An open bank is not yet precharge-able; wait.
                return false;
            }
            // All banks closed: wait out tRP, then refresh.
            let ready = self.banks[r].iter().map(Bank::act_ready).max().unwrap_or(0);
            if ready <= now && self.ranks[r].busy_until <= now {
                let addr = self.bank_addr(r as u8, 0);
                self.issue(DdrCommand::new(DdrCommandKind::Ref, addr));
                self.ranks[r].did_ref(now, &self.timing);
                let done = now + self.timing.t_rfc;
                for bank in &mut self.banks[r] {
                    bank.finish_refresh(done);
                }
                self.stats.refs += 1;
                self.refresh_pending[r] = false;
                return true;
            }
            return false;
        }
        false
    }

    fn bank_addr(&self, rank: u8, flat_bank: usize) -> DramAddr {
        DramAddr {
            rank,
            bank_group: (flat_bank / self.geo.banks_per_group as usize) as u8,
            bank: (flat_bank % self.geo.banks_per_group as usize) as u8,
            row: 0,
            column: 0,
        }
    }

    /// FR-FCFS issue: one command per cycle. Returns whether a command was
    /// issued.
    fn issue_request_command(&mut self) -> bool {
        let drain_writes = self.drain_writes();

        // Order of consideration: reads oldest-first, then writes when in
        // drain mode.
        let mut order: Vec<(bool, usize)> = Vec::with_capacity(self.read_q.len());
        let mut read_idx: Vec<usize> = (0..self.read_q.len()).collect();
        read_idx.sort_by_key(|&i| self.read_q[i].seq);
        order.extend(read_idx.into_iter().map(|i| (true, i)));
        if drain_writes {
            let mut wr_idx: Vec<usize> = (0..self.write_q.len()).collect();
            wr_idx.sort_by_key(|&i| self.write_q[i].seq);
            order.extend(wr_idx.into_iter().map(|i| (false, i)));
        }
        if order.is_empty() {
            return false;
        }

        // Starvation guard: when the oldest request has waited too long,
        // skip the row-hit pass so it makes progress.
        let oldest_age = {
            let (is_read, i) = order[0];
            let q = if is_read {
                &self.read_q[i]
            } else {
                &self.write_q[i]
            };
            self.cycle.saturating_sub(q.arrival)
        };
        let allow_fr = oldest_age < self.config.starvation_cycles;

        if allow_fr {
            // Pass 1: first-ready — any request whose row is open and whose
            // column command is legal right now.
            for &(is_read, i) in &order {
                if self.try_issue_column(is_read, i, true) {
                    return true;
                }
            }
        }
        // Pass 2: oldest-first — issue whatever command the request needs
        // next, if legal.
        for &(is_read, i) in &order {
            if self.try_progress(is_read, i) {
                return true;
            }
        }
        false
    }

    /// Attempts the column command for queue entry `i`; `require_open`
    /// restricts to row hits. Returns true if a command was issued.
    fn try_issue_column(&mut self, is_read: bool, i: usize, require_open: bool) -> bool {
        let now = self.cycle;
        let q = if is_read {
            &self.read_q[i]
        } else {
            &self.write_q[i]
        };
        let (rank, bg) = (q.addr.rank, q.addr.bank_group);
        if self.refresh_pending[rank as usize] {
            return false;
        }
        let flat = q.addr.flat_bank(self.geo.banks_per_group);
        let bank = &self.banks[rank as usize][flat];
        match bank.state {
            BankState::Open(row) if row == q.addr.row => {}
            _ if require_open => return false,
            _ => return false,
        }
        let (bank_ready, rank_ready, data_offset) = if is_read {
            (
                bank.rd_ready(),
                self.ranks[rank as usize].rd_ready(bg),
                self.timing.t_cl,
            )
        } else {
            (
                bank.wr_ready(),
                self.ranks[rank as usize].wr_ready(bg),
                self.timing.t_cwl,
            )
        };
        if bank_ready > now || rank_ready > now {
            return false;
        }
        // Data-bus reservation, including the rank-to-rank switch penalty.
        let mut bus_free = self.data_bus_free;
        if self.last_data_rank.is_some() && self.last_data_rank != Some(rank) {
            bus_free += self.timing.rank_switch;
        }
        if now + data_offset < bus_free {
            return false;
        }

        // Legal: issue.
        let kind = if is_read {
            DdrCommandKind::Rd
        } else {
            DdrCommandKind::Wr
        };
        let q = if is_read {
            self.read_q.swap_remove(i)
        } else {
            self.write_q.swap_remove(i)
        };
        self.issue(DdrCommand::new(kind, q.addr));
        let bank = &mut self.banks[rank as usize][flat];
        if is_read {
            bank.do_rd(now, &self.timing);
            self.ranks[rank as usize].did_rd(now, bg, &self.timing);
            self.stats.reads += 1;
        } else {
            bank.do_wr(now, &self.timing);
            self.ranks[rank as usize].did_wr(now, bg, &self.timing);
            self.stats.writes += 1;
        }
        let finish = now + data_offset + self.timing.t_bl;
        self.data_bus_free = now + data_offset + self.timing.t_bl;
        self.last_data_rank = Some(rank);
        self.stats.data_bus_busy += self.timing.t_bl;
        let outcome = q.outcome();
        self.stats.record_outcome(outcome);
        self.stats.record_latency(finish - q.arrival);
        self.completed.push(CompletedRequest {
            id: q.id,
            addr: q.addr,
            kind: q.kind,
            arrival: q.arrival,
            finish_cycle: finish,
            outcome,
        });
        true
    }

    /// Issues whatever command queue entry `i` needs next (PRE, ACT or the
    /// column command). Returns true if a command was issued.
    fn try_progress(&mut self, is_read: bool, i: usize) -> bool {
        let now = self.cycle;
        let (addr, _seq) = {
            let q = if is_read {
                &self.read_q[i]
            } else {
                &self.write_q[i]
            };
            (q.addr, q.seq)
        };
        if self.refresh_pending[addr.rank as usize] {
            return false;
        }
        let flat = addr.flat_bank(self.geo.banks_per_group);
        let state = self.banks[addr.rank as usize][flat].state;
        match state {
            BankState::Open(row) if row == addr.row => self.try_issue_column(is_read, i, true),
            BankState::Open(_) => {
                // Row conflict: precharge.
                let bank = &mut self.banks[addr.rank as usize][flat];
                if bank.pre_ready() > now {
                    return false;
                }
                bank.do_pre(now, &self.timing);
                self.stats.pres += 1;
                let q = if is_read {
                    &mut self.read_q[i]
                } else {
                    &mut self.write_q[i]
                };
                q.pres = q.pres.saturating_add(1);
                self.issue(DdrCommand::new(DdrCommandKind::Pre, addr));
                true
            }
            BankState::Closed => {
                let bank_ready = self.banks[addr.rank as usize][flat].act_ready();
                let rank_ready = self.ranks[addr.rank as usize].act_ready(addr.bank_group);
                if bank_ready > now || rank_ready > now {
                    return false;
                }
                self.banks[addr.rank as usize][flat].do_act(now, addr.row, &self.timing);
                self.ranks[addr.rank as usize].did_act(now, addr.bank_group, &self.timing);
                self.stats.acts += 1;
                let q = if is_read {
                    &mut self.read_q[i]
                } else {
                    &mut self.write_q[i]
                };
                q.acts = q.acts.saturating_add(1);
                self.issue(DdrCommand::new(DdrCommandKind::Act, addr));
                true
            }
        }
    }

    fn issue(&mut self, cmd: DdrCommand) {
        self.stats.cmd_bus_busy += 1;
        if let Some(m) = self.monitor.as_mut() {
            m.observe(self.cycle, cmd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_types::units::CACHELINE_BYTES;

    fn single_rank() -> MemorySystem {
        MemorySystem::new(DramConfig::single_rank()).expect("valid config")
    }

    #[test]
    fn cold_read_latency_is_trcd_tcl_tbl() {
        let mut mem = single_rank();
        mem.enqueue_read(PhysAddr::new(0), 0);
        let done = mem.run_until_idle().expect("drain");
        assert_eq!(done.len(), 1);
        let t = DdrTiming::ddr4_2400();
        // ACT at cycle 0 is legal immediately; RD at tRCD; data done
        // tCL + tBL later.
        assert_eq!(done[0].finish_cycle, t.t_rcd + t.t_cl + t.t_bl);
        assert_eq!(done[0].outcome, RowOutcome::Miss);
    }

    #[test]
    fn row_hit_follows_open_row() {
        let mut mem = single_rank();
        mem.enqueue_read(PhysAddr::new(0), 0);
        mem.enqueue_read(PhysAddr::new(64), 0);
        let done = mem.run_until_idle().expect("drain");
        assert_eq!(done.len(), 2);
        assert_eq!(done[1].outcome, RowOutcome::Hit);
        // Second burst streams tCCD after the first RD.
        assert!(done[1].finish_cycle <= done[0].finish_cycle + 7);
    }

    #[test]
    fn row_conflict_requires_pre_act() {
        let mut mem = single_rank();
        let geo = *mem.geometry();
        // Same bank, different row: stride by one full row of bursts.
        let row_bytes = geo.columns as u64 * CACHELINE_BYTES;
        let banks = geo.banks_per_rank() as u64;
        mem.enqueue_read(PhysAddr::new(0), 0);
        mem.enqueue_read(PhysAddr::new(row_bytes * banks), 0);
        let done = mem.run_until_idle().expect("drain");
        assert_eq!(done[1].outcome, RowOutcome::Conflict);
        let t = DdrTiming::ddr4_2400();
        assert!(done[1].finish_cycle >= t.t_ras + t.t_rp + t.t_rcd);
    }

    #[test]
    fn bank_interleaved_reads_saturate_bus() {
        let mut mem = single_rank();
        // 64 reads spread across banks in open rows: after warm-up the data
        // bus should stream a burst every tBL cycles.
        let geo = *mem.geometry();
        let row_bytes = geo.columns as u64 * CACHELINE_BYTES;
        for i in 0..64u64 {
            // Rotate across all 16 banks, two bursts each.
            let bank = i % 16;
            let col = i / 16;
            mem.enqueue_read(PhysAddr::new(bank * row_bytes + col * 64), 0);
        }
        let done = mem.run_until_idle().expect("drain");
        assert_eq!(done.len(), 64);
        let finish = done.iter().map(|c| c.finish_cycle).max().unwrap();
        // Perfect streaming would take 64*4 = 256 cycles of data after the
        // first word; allow generous startup slack.
        assert!(finish < 450, "took {finish} cycles");
    }

    #[test]
    fn monitor_sees_no_violations_under_load() {
        let mut mem = MemorySystem::new(DramConfig::table1_baseline()).unwrap();
        mem.attach_monitor();
        for i in 0..200u64 {
            mem.enqueue_read(PhysAddr::new(i * 64 * 4097), 0);
        }
        let done = mem.run_until_idle().expect("drain");
        assert_eq!(done.len(), 200);
        assert!(
            mem.monitor_violations().is_empty(),
            "{:?}",
            mem.monitor_violations()
        );
    }

    #[test]
    fn refresh_occurs_periodically() {
        let mut mem = single_rank();
        // Run past several tREFI windows with sparse traffic.
        for i in 0..32u64 {
            mem.enqueue_read(PhysAddr::new(i * 64), i * 2000);
        }
        let _ = mem.run_until_idle().expect("drain");
        assert!(mem.stats().refs >= 5, "refs = {}", mem.stats().refs);
    }

    #[test]
    fn writes_complete_and_count() {
        let mut mem = single_rank();
        let id = RequestId::new(77);
        mem.enqueue(Request::write(id, PhysAddr::new(64), 0));
        let done = mem.run_until_idle().expect("drain");
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert_eq!(mem.stats().writes, 1);
    }

    #[test]
    fn arrival_times_are_respected() {
        let mut mem = single_rank();
        mem.enqueue_read(PhysAddr::new(0), 1000);
        let done = mem.run_until_idle().expect("drain");
        assert!(done[0].finish_cycle >= 1000);
        assert!(done[0].latency() < 1000);
    }

    #[test]
    fn two_ranks_overlap_activation() {
        // The same request stream takes fewer cycles on 2 ranks than 1 when
        // requests conflict in banks.
        let run = |ranks: u8| {
            let mut cfg = DramConfig::with_ranks(1, ranks);
            cfg.refresh = false;
            let mut mem = MemorySystem::new(cfg).unwrap();
            // Strided addresses that pound a few banks.
            for i in 0..128u64 {
                mem.enqueue_read(PhysAddr::new(i * 1024 * 1024), 0);
            }
            let done = mem.run_until_idle().expect("drain");
            done.iter().map(|c| c.finish_cycle).max().unwrap()
        };
        let one = run(1);
        let two = run(2);
        assert!(two < one, "1-rank {one} vs 2-rank {two}");
    }

    #[test]
    fn stats_outcomes_sum_to_reads() {
        let mut mem = single_rank();
        for i in 0..50u64 {
            mem.enqueue_read(PhysAddr::new(i * 640_000), 0);
        }
        mem.run_until_idle().expect("drain");
        let s = mem.stats();
        assert_eq!(s.row_hits + s.row_misses + s.row_conflicts, s.reads);
    }

    #[test]
    fn stall_reports_instead_of_aborting() {
        // A livelock must surface as `SimError::Stalled`, not a panic. A
        // correct scheduler cannot livelock from the public API, so wedge
        // the controller directly: a stuck refresh-pending flag with
        // refresh simulation disabled blocks the request forever.
        for engine in [SimEngine::EventDriven, SimEngine::PerCycle] {
            let mut cfg = DramConfig::single_rank();
            cfg.refresh = false;
            cfg.engine = engine;
            cfg.stall_iterations = cfg.timing.t_rfc + cfg.timing.t_refi + 1;
            let mut mem = MemorySystem::new(cfg).unwrap();
            mem.enqueue_read(PhysAddr::new(0), 0);
            mem.refresh_pending[0] = true;
            let err = mem.run_until_idle().unwrap_err();
            assert!(
                matches!(err, SimError::Stalled { pending: 1, .. }),
                "{engine:?}: {err}"
            );
        }
    }

    #[test]
    fn refresh_commands_do_not_mask_a_stall() {
        // Regression: refresh keeps issuing commands (PRE/REF, plus the
        // re-ACTs it forces) on schedule even when no request ever
        // completes, so "a command issued" must not reset the no-progress
        // bound. Wedge: the data bus reserved absurdly far in the future
        // blocks every column command while refresh marches on.
        let mut cfg = DramConfig::single_rank();
        cfg.engine = SimEngine::PerCycle;
        cfg.stall_iterations = cfg.timing.t_rfc + cfg.timing.t_refi + 1;
        let mut mem = MemorySystem::new(cfg).unwrap();
        mem.enqueue_read(PhysAddr::new(0), 0);
        mem.data_bus_free = 1 << 40;
        let err = mem.run_until_idle().unwrap_err();
        assert!(matches!(err, SimError::Stalled { pending: 1, .. }), "{err}");
    }

    #[test]
    fn distant_arrivals_are_not_a_stall() {
        // Waiting out a long quiet gap before a known future arrival is
        // legitimate in both engines.
        for engine in [SimEngine::EventDriven, SimEngine::PerCycle] {
            let mut cfg = DramConfig::single_rank();
            cfg.refresh = false;
            cfg.engine = engine;
            cfg.stall_iterations = cfg.timing.t_rfc + cfg.timing.t_refi + 1;
            let far = 10 * cfg.stall_iterations;
            let mut mem = MemorySystem::new(cfg).unwrap();
            mem.enqueue_read(PhysAddr::new(0), far);
            let done = mem.run_until_idle().expect("drain");
            assert_eq!(done.len(), 1);
            assert!(done[0].finish_cycle >= far);
        }
    }

    #[test]
    fn event_engine_skips_idle_cycles() {
        // Sparse refresh-enabled traffic: the per-cycle engine burns one
        // iteration per DRAM clock; the event engine does O(commands).
        let run = |engine: SimEngine| {
            let mut cfg = DramConfig::single_rank();
            cfg.engine = engine;
            let mut mem = MemorySystem::new(cfg).unwrap();
            for i in 0..32u64 {
                mem.enqueue_read(PhysAddr::new(i * 64), i * 2000);
            }
            let done = mem.run_until_idle().expect("drain");
            (
                done,
                mem.cycle(),
                mem.stats().clone(),
                mem.loop_iterations(),
            )
        };
        let (done_pc, cycle_pc, stats_pc, iters_pc) = run(SimEngine::PerCycle);
        let (done_ev, cycle_ev, stats_ev, iters_ev) = run(SimEngine::EventDriven);
        assert_eq!(done_pc, done_ev);
        assert_eq!(cycle_pc, cycle_ev);
        assert_eq!(stats_pc, stats_ev);
        assert!(
            iters_ev * 10 <= iters_pc,
            "event {iters_ev} vs per-cycle {iters_pc} iterations"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decoded_enqueue_validates_bounds() {
        let mut mem = single_rank();
        mem.enqueue_decoded(
            DramAddr {
                rank: 3,
                ..DramAddr::default()
            },
            RequestKind::Read,
            0,
            RequestId::new(0),
        );
    }
}
