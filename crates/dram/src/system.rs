//! The cycle-level memory-channel engine.

use std::collections::VecDeque;

use recnmp_types::{Cycle, PhysAddr, RequestId};

use crate::address::{DramAddr, Geometry};
use crate::bank::{Bank, BankState, RankTimer};
use crate::command::{DdrCommand, DdrCommandKind};
use crate::controller::DramConfig;
use crate::monitor::ProtocolMonitor;
use crate::request::{CompletedRequest, Request, RequestKind, RowOutcome};
use crate::stats::DramStats;
use crate::timing::DdrTiming;

/// An in-service request tracked by the controller.
#[derive(Debug, Clone)]
struct Queued {
    id: RequestId,
    kind: RequestKind,
    addr: DramAddr,
    arrival: Cycle,
    seq: u64,
    acts: u8,
    pres: u8,
}

impl Queued {
    fn outcome(&self) -> RowOutcome {
        match (self.pres, self.acts) {
            (0, 0) => RowOutcome::Hit,
            (0, _) => RowOutcome::Miss,
            _ => RowOutcome::Conflict,
        }
    }
}

/// One simulated memory channel: DDR4 devices plus an FR-FCFS controller.
///
/// The system advances one DRAM clock cycle per [`tick`](Self::tick) and
/// issues at most one DDR command per cycle (the command/address bus limit
/// that RecNMP's compressed instructions work around).
///
/// # Examples
///
/// ```
/// use recnmp_dram::{DramConfig, MemorySystem};
/// use recnmp_types::PhysAddr;
///
/// # fn main() -> Result<(), recnmp_types::ConfigError> {
/// let mut mem = MemorySystem::new(DramConfig::single_rank())?;
/// for i in 0..8u64 {
///     mem.enqueue_read(PhysAddr::new(i * 64), 0);
/// }
/// let done = mem.run_until_idle();
/// assert_eq!(done.len(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    config: DramConfig,
    timing: DdrTiming,
    geo: Geometry,
    cycle: Cycle,
    banks: Vec<Vec<Bank>>,
    ranks: Vec<RankTimer>,
    refresh_pending: Vec<bool>,
    data_bus_free: Cycle,
    last_data_rank: Option<u8>,
    staged: VecDeque<Queued>,
    read_q: Vec<Queued>,
    write_q: Vec<Queued>,
    completed: Vec<CompletedRequest>,
    next_seq: u64,
    next_auto_id: u64,
    stats: DramStats,
    monitor: Option<ProtocolMonitor>,
}

impl MemorySystem {
    /// Builds a memory system for the given channel configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`recnmp_types::ConfigError`] when the configuration is
    /// inconsistent (see [`DramConfig::validate`]).
    pub fn new(config: DramConfig) -> Result<Self, recnmp_types::ConfigError> {
        config.validate()?;
        let geo = config.geometry();
        let timing = config.timing;
        let ranks = (0..geo.ranks)
            .map(|_| RankTimer::new(geo.bank_groups, &timing))
            .collect();
        let banks = (0..geo.ranks)
            .map(|_| vec![Bank::new(); geo.banks_per_rank()])
            .collect();
        Ok(Self {
            refresh_pending: vec![false; geo.ranks as usize],
            config,
            timing,
            geo,
            cycle: 0,
            banks,
            ranks,
            data_bus_free: 0,
            last_data_rank: None,
            staged: VecDeque::new(),
            read_q: Vec::new(),
            write_q: Vec::new(),
            completed: Vec::new(),
            next_seq: 0,
            next_auto_id: 0,
            stats: DramStats::new(),
            monitor: None,
        })
    }

    /// Returns the active configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Returns the channel geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Attaches an independent protocol monitor that checks every issued
    /// command against the DDR timing rules (used by the test suite).
    pub fn attach_monitor(&mut self) {
        self.monitor = Some(ProtocolMonitor::new(self.geo, self.timing));
    }

    /// Timing violations recorded by the attached monitor, if any.
    pub fn monitor_violations(&self) -> &[String] {
        self.monitor.as_ref().map_or(&[], |m| m.violations())
    }

    /// Requests known to the controller but not yet completed.
    pub fn pending(&self) -> usize {
        self.staged.len() + self.read_q.len() + self.write_q.len()
    }

    /// Enqueues a request built by the caller.
    pub fn enqueue(&mut self, req: Request) {
        let addr = self.config.mapping.decode(req.addr, &self.geo);
        self.enqueue_decoded(addr, req.kind, req.arrival, req.id);
    }

    /// Enqueues a read of the burst containing `addr`, arriving at
    /// `arrival`, and returns the auto-assigned request id.
    pub fn enqueue_read(&mut self, addr: PhysAddr, arrival: Cycle) -> RequestId {
        let id = RequestId::new(self.next_auto_id);
        self.next_auto_id += 1;
        self.enqueue(Request::read(id, addr, arrival));
        id
    }

    /// Enqueues a request at pre-decoded DRAM coordinates. Rank-NMP modules
    /// use this path: their instructions carry device coordinates directly.
    pub fn enqueue_decoded(
        &mut self,
        addr: DramAddr,
        kind: RequestKind,
        arrival: Cycle,
        id: RequestId,
    ) {
        assert!(
            addr.rank < self.geo.ranks
                && addr.bank_group < self.geo.bank_groups
                && addr.bank < self.geo.banks_per_group
                && addr.row < self.geo.rows
                && addr.column < self.geo.columns,
            "decoded address out of range for geometry"
        );
        let q = Queued {
            id,
            kind,
            addr,
            arrival,
            seq: self.next_seq,
            acts: 0,
            pres: 0,
        };
        self.next_seq += 1;
        self.staged.push_back(q);
    }

    /// Advances the channel by one cycle.
    pub fn tick(&mut self) {
        self.admit_arrivals();
        if self.config.refresh {
            self.update_refresh_state();
        }
        let issued = if self.config.refresh {
            self.try_issue_refresh()
        } else {
            false
        };
        if !issued {
            self.issue_request_command();
        }
        self.cycle += 1;
    }

    /// Runs until every request has completed, returning all completions
    /// (also recorded in [`stats`](Self::stats)).
    ///
    /// # Panics
    ///
    /// Panics if the system fails to drain within a very large bound
    /// (indicating a scheduling deadlock bug).
    pub fn run_until_idle(&mut self) -> Vec<CompletedRequest> {
        let bound = self.cycle + 500_000_000;
        while self.pending() > 0 {
            self.tick();
            assert!(self.cycle < bound, "memory system failed to drain");
        }
        // Let in-flight data bursts finish.
        let drain_to = self.data_bus_free.max(self.cycle);
        while self.cycle < drain_to {
            self.tick();
        }
        self.drain_completed()
    }

    /// Removes and returns all completions whose data has fully transferred
    /// by the current cycle.
    pub fn drain_completed(&mut self) -> Vec<CompletedRequest> {
        let now = self.cycle;
        let (done, rest): (Vec<_>, Vec<_>) = self
            .completed
            .drain(..)
            .partition(|c| c.finish_cycle <= now);
        self.completed = rest;
        done
    }

    fn admit_arrivals(&mut self) {
        while let Some(front) = self.staged.front() {
            if front.arrival > self.cycle {
                // Staged requests are admitted in FIFO order; later arrivals
                // cannot jump the queue.
                break;
            }
            let is_read = front.kind == RequestKind::Read;
            let q = if is_read {
                &mut self.read_q
            } else {
                &mut self.write_q
            };
            let cap = if is_read {
                self.config.read_queue
            } else {
                self.config.write_queue
            };
            if q.len() >= cap {
                break;
            }
            q.push(self.staged.pop_front().expect("front checked"));
        }
    }

    fn update_refresh_state(&mut self) {
        for r in 0..self.geo.ranks as usize {
            if self.cycle >= self.ranks[r].refresh_due {
                self.refresh_pending[r] = true;
            }
        }
    }

    /// Tries to make progress on a pending refresh; returns true if a
    /// command slot was consumed.
    fn try_issue_refresh(&mut self) -> bool {
        let now = self.cycle;
        for r in 0..self.geo.ranks as usize {
            if !self.refresh_pending[r] {
                continue;
            }
            // Close any open bank first.
            if let Some(b) = self.banks[r]
                .iter()
                .position(|b| matches!(b.state, BankState::Open(_)))
            {
                if self.banks[r][b].pre_ready() <= now {
                    let addr = self.bank_addr(r as u8, b);
                    self.issue(DdrCommand::new(DdrCommandKind::Pre, addr));
                    self.banks[r][b].do_pre(now, &self.timing);
                    self.stats.pres += 1;
                    return true;
                }
                // An open bank is not yet precharge-able; wait.
                return false;
            }
            // All banks closed: wait out tRP, then refresh.
            let ready = self.banks[r].iter().map(Bank::act_ready).max().unwrap_or(0);
            if ready <= now && self.ranks[r].busy_until <= now {
                let addr = self.bank_addr(r as u8, 0);
                self.issue(DdrCommand::new(DdrCommandKind::Ref, addr));
                self.ranks[r].did_ref(now, &self.timing);
                let done = now + self.timing.t_rfc;
                for bank in &mut self.banks[r] {
                    bank.finish_refresh(done);
                }
                self.stats.refs += 1;
                self.refresh_pending[r] = false;
                return true;
            }
            return false;
        }
        false
    }

    fn bank_addr(&self, rank: u8, flat_bank: usize) -> DramAddr {
        DramAddr {
            rank,
            bank_group: (flat_bank / self.geo.banks_per_group as usize) as u8,
            bank: (flat_bank % self.geo.banks_per_group as usize) as u8,
            row: 0,
            column: 0,
        }
    }

    /// FR-FCFS issue: one command per cycle.
    fn issue_request_command(&mut self) {
        let drain_writes = self.write_q.len() * 4 >= self.config.write_queue * 3
            || (self.read_q.is_empty() && !self.write_q.is_empty());

        // Order of consideration: reads oldest-first, then writes when in
        // drain mode.
        let mut order: Vec<(bool, usize)> = Vec::with_capacity(self.read_q.len());
        let mut read_idx: Vec<usize> = (0..self.read_q.len()).collect();
        read_idx.sort_by_key(|&i| self.read_q[i].seq);
        order.extend(read_idx.into_iter().map(|i| (true, i)));
        if drain_writes {
            let mut wr_idx: Vec<usize> = (0..self.write_q.len()).collect();
            wr_idx.sort_by_key(|&i| self.write_q[i].seq);
            order.extend(wr_idx.into_iter().map(|i| (false, i)));
        }
        if order.is_empty() {
            return;
        }

        // Starvation guard: when the oldest request has waited too long,
        // skip the row-hit pass so it makes progress.
        let oldest_age = {
            let (is_read, i) = order[0];
            let q = if is_read {
                &self.read_q[i]
            } else {
                &self.write_q[i]
            };
            self.cycle.saturating_sub(q.arrival)
        };
        let allow_fr = oldest_age < self.config.starvation_cycles;

        if allow_fr {
            // Pass 1: first-ready — any request whose row is open and whose
            // column command is legal right now.
            for &(is_read, i) in &order {
                if self.try_issue_column(is_read, i, true) {
                    return;
                }
            }
        }
        // Pass 2: oldest-first — issue whatever command the request needs
        // next, if legal.
        for &(is_read, i) in &order {
            if self.try_progress(is_read, i) {
                return;
            }
        }
    }

    /// Attempts the column command for queue entry `i`; `require_open`
    /// restricts to row hits. Returns true if a command was issued.
    fn try_issue_column(&mut self, is_read: bool, i: usize, require_open: bool) -> bool {
        let now = self.cycle;
        let q = if is_read {
            &self.read_q[i]
        } else {
            &self.write_q[i]
        };
        let (rank, bg) = (q.addr.rank, q.addr.bank_group);
        if self.refresh_pending[rank as usize] {
            return false;
        }
        let flat = q.addr.flat_bank(self.geo.banks_per_group);
        let bank = &self.banks[rank as usize][flat];
        match bank.state {
            BankState::Open(row) if row == q.addr.row => {}
            _ if require_open => return false,
            _ => return false,
        }
        let (bank_ready, rank_ready, data_offset) = if is_read {
            (
                bank.rd_ready(),
                self.ranks[rank as usize].rd_ready(bg),
                self.timing.t_cl,
            )
        } else {
            (
                bank.wr_ready(),
                self.ranks[rank as usize].wr_ready(bg),
                self.timing.t_cwl,
            )
        };
        if bank_ready > now || rank_ready > now {
            return false;
        }
        // Data-bus reservation, including the rank-to-rank switch penalty.
        let mut bus_free = self.data_bus_free;
        if self.last_data_rank.is_some() && self.last_data_rank != Some(rank) {
            bus_free += self.timing.rank_switch;
        }
        if now + data_offset < bus_free {
            return false;
        }

        // Legal: issue.
        let kind = if is_read {
            DdrCommandKind::Rd
        } else {
            DdrCommandKind::Wr
        };
        let q = if is_read {
            self.read_q.swap_remove(i)
        } else {
            self.write_q.swap_remove(i)
        };
        self.issue(DdrCommand::new(kind, q.addr));
        let bank = &mut self.banks[rank as usize][flat];
        if is_read {
            bank.do_rd(now, &self.timing);
            self.ranks[rank as usize].did_rd(now, bg, &self.timing);
            self.stats.reads += 1;
        } else {
            bank.do_wr(now, &self.timing);
            self.ranks[rank as usize].did_wr(now, bg, &self.timing);
            self.stats.writes += 1;
        }
        let finish = now + data_offset + self.timing.t_bl;
        self.data_bus_free = now + data_offset + self.timing.t_bl;
        self.last_data_rank = Some(rank);
        self.stats.data_bus_busy += self.timing.t_bl;
        let outcome = q.outcome();
        self.stats.record_outcome(outcome);
        self.stats.record_latency(finish - q.arrival);
        self.completed.push(CompletedRequest {
            id: q.id,
            addr: q.addr,
            kind: q.kind,
            arrival: q.arrival,
            finish_cycle: finish,
            outcome,
        });
        true
    }

    /// Issues whatever command queue entry `i` needs next (PRE, ACT or the
    /// column command). Returns true if a command was issued.
    fn try_progress(&mut self, is_read: bool, i: usize) -> bool {
        let now = self.cycle;
        let (addr, _seq) = {
            let q = if is_read {
                &self.read_q[i]
            } else {
                &self.write_q[i]
            };
            (q.addr, q.seq)
        };
        if self.refresh_pending[addr.rank as usize] {
            return false;
        }
        let flat = addr.flat_bank(self.geo.banks_per_group);
        let state = self.banks[addr.rank as usize][flat].state;
        match state {
            BankState::Open(row) if row == addr.row => self.try_issue_column(is_read, i, true),
            BankState::Open(_) => {
                // Row conflict: precharge.
                let bank = &mut self.banks[addr.rank as usize][flat];
                if bank.pre_ready() > now {
                    return false;
                }
                bank.do_pre(now, &self.timing);
                self.stats.pres += 1;
                let q = if is_read {
                    &mut self.read_q[i]
                } else {
                    &mut self.write_q[i]
                };
                q.pres = q.pres.saturating_add(1);
                self.issue(DdrCommand::new(DdrCommandKind::Pre, addr));
                true
            }
            BankState::Closed => {
                let bank_ready = self.banks[addr.rank as usize][flat].act_ready();
                let rank_ready = self.ranks[addr.rank as usize].act_ready(addr.bank_group);
                if bank_ready > now || rank_ready > now {
                    return false;
                }
                self.banks[addr.rank as usize][flat].do_act(now, addr.row, &self.timing);
                self.ranks[addr.rank as usize].did_act(now, addr.bank_group, &self.timing);
                self.stats.acts += 1;
                let q = if is_read {
                    &mut self.read_q[i]
                } else {
                    &mut self.write_q[i]
                };
                q.acts = q.acts.saturating_add(1);
                self.issue(DdrCommand::new(DdrCommandKind::Act, addr));
                true
            }
        }
    }

    fn issue(&mut self, cmd: DdrCommand) {
        self.stats.cmd_bus_busy += 1;
        if let Some(m) = self.monitor.as_mut() {
            m.observe(self.cycle, cmd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_types::units::CACHELINE_BYTES;

    fn single_rank() -> MemorySystem {
        MemorySystem::new(DramConfig::single_rank()).expect("valid config")
    }

    #[test]
    fn cold_read_latency_is_trcd_tcl_tbl() {
        let mut mem = single_rank();
        mem.enqueue_read(PhysAddr::new(0), 0);
        let done = mem.run_until_idle();
        assert_eq!(done.len(), 1);
        let t = DdrTiming::ddr4_2400();
        // ACT at cycle 0 is legal immediately; RD at tRCD; data done
        // tCL + tBL later.
        assert_eq!(done[0].finish_cycle, t.t_rcd + t.t_cl + t.t_bl);
        assert_eq!(done[0].outcome, RowOutcome::Miss);
    }

    #[test]
    fn row_hit_follows_open_row() {
        let mut mem = single_rank();
        mem.enqueue_read(PhysAddr::new(0), 0);
        mem.enqueue_read(PhysAddr::new(64), 0);
        let done = mem.run_until_idle();
        assert_eq!(done.len(), 2);
        assert_eq!(done[1].outcome, RowOutcome::Hit);
        // Second burst streams tCCD after the first RD.
        assert!(done[1].finish_cycle <= done[0].finish_cycle + 7);
    }

    #[test]
    fn row_conflict_requires_pre_act() {
        let mut mem = single_rank();
        let geo = *mem.geometry();
        // Same bank, different row: stride by one full row of bursts.
        let row_bytes = geo.columns as u64 * CACHELINE_BYTES;
        let banks = geo.banks_per_rank() as u64;
        mem.enqueue_read(PhysAddr::new(0), 0);
        mem.enqueue_read(PhysAddr::new(row_bytes * banks), 0);
        let done = mem.run_until_idle();
        assert_eq!(done[1].outcome, RowOutcome::Conflict);
        let t = DdrTiming::ddr4_2400();
        assert!(done[1].finish_cycle >= t.t_ras + t.t_rp + t.t_rcd);
    }

    #[test]
    fn bank_interleaved_reads_saturate_bus() {
        let mut mem = single_rank();
        // 64 reads spread across banks in open rows: after warm-up the data
        // bus should stream a burst every tBL cycles.
        let geo = *mem.geometry();
        let row_bytes = geo.columns as u64 * CACHELINE_BYTES;
        for i in 0..64u64 {
            // Rotate across all 16 banks, two bursts each.
            let bank = i % 16;
            let col = i / 16;
            mem.enqueue_read(PhysAddr::new(bank * row_bytes + col * 64), 0);
        }
        let done = mem.run_until_idle();
        assert_eq!(done.len(), 64);
        let finish = done.iter().map(|c| c.finish_cycle).max().unwrap();
        // Perfect streaming would take 64*4 = 256 cycles of data after the
        // first word; allow generous startup slack.
        assert!(finish < 450, "took {finish} cycles");
    }

    #[test]
    fn monitor_sees_no_violations_under_load() {
        let mut mem = MemorySystem::new(DramConfig::table1_baseline()).unwrap();
        mem.attach_monitor();
        for i in 0..200u64 {
            mem.enqueue_read(PhysAddr::new(i * 64 * 4097), 0);
        }
        let done = mem.run_until_idle();
        assert_eq!(done.len(), 200);
        assert!(
            mem.monitor_violations().is_empty(),
            "{:?}",
            mem.monitor_violations()
        );
    }

    #[test]
    fn refresh_occurs_periodically() {
        let mut mem = single_rank();
        // Run past several tREFI windows with sparse traffic.
        for i in 0..32u64 {
            mem.enqueue_read(PhysAddr::new(i * 64), i * 2000);
        }
        let _ = mem.run_until_idle();
        assert!(mem.stats().refs >= 5, "refs = {}", mem.stats().refs);
    }

    #[test]
    fn writes_complete_and_count() {
        let mut mem = single_rank();
        let id = RequestId::new(77);
        mem.enqueue(Request::write(id, PhysAddr::new(64), 0));
        let done = mem.run_until_idle();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert_eq!(mem.stats().writes, 1);
    }

    #[test]
    fn arrival_times_are_respected() {
        let mut mem = single_rank();
        mem.enqueue_read(PhysAddr::new(0), 1000);
        let done = mem.run_until_idle();
        assert!(done[0].finish_cycle >= 1000);
        assert!(done[0].latency() < 1000);
    }

    #[test]
    fn two_ranks_overlap_activation() {
        // The same request stream takes fewer cycles on 2 ranks than 1 when
        // requests conflict in banks.
        let run = |ranks: u8| {
            let mut cfg = DramConfig::with_ranks(1, ranks);
            cfg.refresh = false;
            let mut mem = MemorySystem::new(cfg).unwrap();
            // Strided addresses that pound a few banks.
            for i in 0..128u64 {
                mem.enqueue_read(PhysAddr::new(i * 1024 * 1024), 0);
            }
            let done = mem.run_until_idle();
            done.iter().map(|c| c.finish_cycle).max().unwrap()
        };
        let one = run(1);
        let two = run(2);
        assert!(two < one, "1-rank {one} vs 2-rank {two}");
    }

    #[test]
    fn stats_outcomes_sum_to_reads() {
        let mut mem = single_rank();
        for i in 0..50u64 {
            mem.enqueue_read(PhysAddr::new(i * 640_000), 0);
        }
        mem.run_until_idle();
        let s = mem.stats();
        assert_eq!(s.row_hits + s.row_misses + s.row_conflicts, s.reads);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decoded_enqueue_validates_bounds() {
        let mut mem = single_rank();
        mem.enqueue_decoded(
            DramAddr {
                rank: 3,
                ..DramAddr::default()
            },
            RequestKind::Read,
            0,
            RequestId::new(0),
        );
    }
}
