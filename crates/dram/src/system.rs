//! The cycle-level memory-channel engine.

use std::collections::VecDeque;

use recnmp_types::{Cycle, PhysAddr, RequestId, SimError};

use crate::address::{DramAddr, Geometry};
use crate::bank::{Bank, BankState, RankTimer};
use crate::command::{DdrCommand, DdrCommandKind};
use crate::controller::{DramConfig, SimEngine};
use crate::monitor::ProtocolMonitor;
use crate::request::{CompletedRequest, Request, RequestKind, RowOutcome};
use crate::stats::DramStats;
use crate::timing::DdrTiming;

/// An in-service request tracked by the controller.
#[derive(Debug, Clone)]
struct Queued {
    id: RequestId,
    kind: RequestKind,
    addr: DramAddr,
    arrival: Cycle,
    seq: u64,
    acts: u8,
    pres: u8,
    /// Global flat bank index (`rank * banks_per_rank + flat_bank`),
    /// decoded once at enqueue so the issue loop never re-derives it.
    gbank: u32,
}

impl Queued {
    fn outcome(&self) -> RowOutcome {
        match (self.pres, self.acts) {
            (0, 0) => RowOutcome::Hit,
            (0, _) => RowOutcome::Miss,
            _ => RowOutcome::Conflict,
        }
    }
}

/// One entry of a per-(rank,bank) FR-FCFS queue: the slab slot plus the
/// two fields the scheduling passes actually compare (`row` for hit
/// classification, `seq` for age ordering), kept inline so candidate
/// selection never dereferences the slab.
#[derive(Debug, Clone, Copy)]
struct BankEntry {
    slot: u32,
    row: u32,
    seq: u64,
}

/// The command a pass-2 candidate needs next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NextCmd {
    Column,
    Pre,
    Act,
}

/// What one direction's candidate traversal produced.
#[derive(Debug, Clone, Copy)]
struct ScanResult {
    /// Pass-1 winner: oldest legal row-hit column command.
    col_winner: Option<u32>,
    /// Pass-2 winner: oldest legal next command.
    other_winner: Option<(u32, NextCmd)>,
    /// Earliest future readiness over every not-yet-legal candidate.
    min_ready: Option<Cycle>,
    /// How many candidates were legal this cycle. When the issued winner
    /// was the only one, `min_ready` (plus the issued bank's fresh
    /// candidates) bounds every surviving candidate and the engine can
    /// jump; with more, the next cycle usually issues again and is
    /// ticked normally.
    legal: u32,
}

/// The smaller of two optional cycles.
fn min_cycle(a: Option<Cycle>, b: Option<Cycle>) -> Option<Cycle> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// What one controller cycle did.
///
/// A tick that issued nothing hands back the earliest future cycle at
/// which any *queued-request command* could become legal, computed for
/// free from the same candidate traversal that just failed to find a
/// legal command (nothing mutated, so the readiness cycles it gathered
/// are still exact). The event-driven engine combines it with the cheap
/// non-bank events (staged arrival, refresh) to pick its jump target —
/// no second traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TickOutcome {
    /// A command slot was consumed. The payload, when present, is a *safe
    /// lower bound* on the next bank-candidate event: the pre-issue scan
    /// minimum (an issue only ever pushes timing constraints later, so
    /// surviving candidates cannot become ready earlier than it) combined
    /// with the issued bank's freshly recomputed candidates. A
    /// lower-bound jump can cost at most a no-op tick; it can never skip
    /// a decision cycle. `None` means no safe bound is available (e.g. a
    /// refresh issued, or drain mode flipped) — tick the next cycle
    /// normally.
    Issued(Option<Cycle>),
    /// Nothing issued; the earliest future bank-candidate readiness, if
    /// any request is queued.
    Idle(Option<Cycle>),
}

/// Cached scheduling candidates of one (bank, direction), packed into a
/// single 64-byte cache line — the scan over active banks touches exactly
/// one unique line per bank.
///
/// A bank has at most two candidate classes at a time: when its row
/// buffer is open, the earliest row-hit entry (column command) and the
/// earliest row-mismatch entry (PRE); when closed, only the earliest
/// entry (ACT). The cache stores them as `col` and `alt`, with
/// `alt_is_act` recording which command the `alt` slot needs. A
/// `u64::MAX` sequence number marks an absent candidate.
///
/// Valid while the owning bank's stamp is unchanged — i.e. until the
/// bank's timing state, row state or queue contents change. Rank-level
/// timers and the shared data bus change on almost every issue, so those
/// parts are deliberately **not** cached: they are read live (cheap
/// inline loads) and combined at query time. Mere passage of time never
/// invalidates the cache — legality is a comparison of the cached cycle
/// against `now`.
#[derive(Debug, Clone, Copy)]
#[repr(align(64))]
struct CandCache {
    /// The bank's stamp value this cache was computed at (0 = never).
    epoch: u64,
    /// Sequence of the earliest row-hit entry (`u64::MAX` = none).
    col_seq: u64,
    /// Sequence of the earliest PRE/ACT entry (`u64::MAX` = none).
    alt_seq: u64,
    /// Bank-local earliest-legal cycle of the column command.
    col_ready: Cycle,
    /// Bank-local earliest-legal cycle of the PRE/ACT command.
    alt_ready: Cycle,
    /// Slab slots of the two candidates.
    col_slot: u32,
    alt_slot: u32,
    /// Whether `alt` is an ACT (closed bank) rather than a PRE.
    alt_is_act: bool,
}

impl Default for CandCache {
    fn default() -> Self {
        Self {
            epoch: 0,
            col_seq: u64::MAX,
            alt_seq: u64::MAX,
            col_ready: 0,
            alt_ready: 0,
            col_slot: 0,
            alt_slot: 0,
            alt_is_act: false,
        }
    }
}

/// One simulated memory channel: DDR4 devices plus an FR-FCFS controller.
///
/// The model issues at most one DDR command per cycle (the command/address
/// bus limit that RecNMP's compressed instructions work around). Time
/// advances either one DRAM clock per [`tick`](Self::tick), or — inside
/// [`run_until_idle`](Self::run_until_idle) with the default
/// [`SimEngine::EventDriven`] — by skipping the clock directly to
/// [`next_event_cycle`](Self::next_event_cycle) whenever no command can
/// issue, which is cycle-identical but does O(commands) instead of
/// O(cycles) work.
///
/// # Examples
///
/// ```
/// use recnmp_dram::{DramConfig, MemorySystem};
/// use recnmp_types::PhysAddr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mem = MemorySystem::new(DramConfig::single_rank())?;
/// for i in 0..8u64 {
///     mem.enqueue_read(PhysAddr::new(i * 64), 0);
/// }
/// let done = mem.run_until_idle()?;
/// assert_eq!(done.len(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    config: DramConfig,
    timing: DdrTiming,
    geo: Geometry,
    /// `geo.banks_per_rank()`, cached for the flat bank indexing below.
    bpr: usize,
    cycle: Cycle,
    /// All banks, flattened rank-major: `banks[rank * bpr + flat_bank]`.
    banks: Vec<Bank>,
    ranks: Vec<RankTimer>,
    refresh_pending: Vec<bool>,
    data_bus_free: Cycle,
    last_data_rank: Option<u8>,
    staged: VecDeque<Queued>,
    /// Slab of admitted requests; slots are recycled through `free_slots`
    /// so the steady-state issue loop never allocates.
    slab: Vec<Queued>,
    free_slots: Vec<u32>,
    /// Admitted reads/writes as slab indices in arrival (`seq`) order —
    /// the FR-FCFS consideration order. Removal preserves order.
    read_order: VecDeque<u32>,
    write_order: VecDeque<u32>,
    /// Per-(rank,bank) FR-FCFS queues in `seq` order, one pair per global
    /// flat bank. Small (queue caps bound them), capacity reused.
    bank_reads: Vec<Vec<BankEntry>>,
    bank_writes: Vec<Vec<BankEntry>>,
    /// Banks with at least one admitted request — the only banks the
    /// scheduling passes and `next_event_cycle` have to look at.
    active_banks: Vec<u32>,
    bank_active: Vec<bool>,
    /// Per-bank rank and bank-group lookup tables (indexed by global flat
    /// bank), so the hot loops never divide.
    bank_rank: Vec<u8>,
    bank_bg: Vec<u8>,
    /// Per-bank cache-invalidation stamps (dense, a few cache lines for
    /// the whole channel) and the per-(bank, direction) candidate caches
    /// (one 64-byte line each). Write caches live in their own array so
    /// read-only traffic never touches them.
    bank_stamp: Vec<u64>,
    cand_rd: Vec<CandCache>,
    cand_wr: Vec<CandCache>,
    epoch_ctr: u64,
    completed: Vec<CompletedRequest>,
    next_seq: u64,
    next_auto_id: u64,
    stats: DramStats,
    monitor: Option<ProtocolMonitor>,
    loop_iters: u64,
}

impl MemorySystem {
    /// Builds a memory system for the given channel configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`recnmp_types::ConfigError`] when the configuration is
    /// inconsistent (see [`DramConfig::validate`]).
    pub fn new(config: DramConfig) -> Result<Self, recnmp_types::ConfigError> {
        config.validate()?;
        let geo = config.geometry();
        let timing = config.timing;
        let ranks = (0..geo.ranks)
            .map(|_| RankTimer::new(geo.bank_groups, &timing))
            .collect();
        let bpr = geo.banks_per_rank();
        let total_banks = geo.ranks as usize * bpr;
        Ok(Self {
            refresh_pending: vec![false; geo.ranks as usize],
            config,
            timing,
            geo,
            bpr,
            cycle: 0,
            banks: vec![Bank::new(); total_banks],
            ranks,
            data_bus_free: 0,
            last_data_rank: None,
            staged: VecDeque::new(),
            slab: Vec::new(),
            free_slots: Vec::new(),
            read_order: VecDeque::new(),
            write_order: VecDeque::new(),
            bank_reads: vec![Vec::new(); total_banks],
            bank_writes: vec![Vec::new(); total_banks],
            active_banks: Vec::new(),
            bank_active: vec![false; total_banks],
            bank_rank: (0..total_banks).map(|g| (g / bpr) as u8).collect(),
            bank_bg: (0..total_banks)
                .map(|g| ((g % bpr) / geo.banks_per_group as usize) as u8)
                .collect(),
            bank_stamp: vec![1; total_banks],
            cand_rd: vec![CandCache::default(); total_banks],
            cand_wr: vec![CandCache::default(); total_banks],
            epoch_ctr: 1,
            completed: Vec::new(),
            next_seq: 0,
            next_auto_id: 0,
            stats: DramStats::new(),
            monitor: None,
            loop_iters: 0,
        })
    }

    /// Returns the active configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Returns the channel geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Attaches an independent protocol monitor that checks every issued
    /// command against the DDR timing rules (used by the test suite).
    pub fn attach_monitor(&mut self) {
        self.monitor = Some(ProtocolMonitor::new(self.geo, self.timing));
    }

    /// Timing violations recorded by the attached monitor, if any.
    pub fn monitor_violations(&self) -> &[String] {
        self.monitor.as_ref().map_or(&[], |m| m.violations())
    }

    /// Requests known to the controller but not yet completed.
    pub fn pending(&self) -> usize {
        self.staged.len() + self.read_order.len() + self.write_order.len()
    }

    /// Enqueues a request built by the caller.
    pub fn enqueue(&mut self, req: Request) {
        let addr = self.config.mapping.decode(req.addr, &self.geo);
        self.enqueue_decoded(addr, req.kind, req.arrival, req.id);
    }

    /// Enqueues a read of the burst containing `addr`, arriving at
    /// `arrival`, and returns the auto-assigned request id.
    pub fn enqueue_read(&mut self, addr: PhysAddr, arrival: Cycle) -> RequestId {
        let id = RequestId::new(self.next_auto_id);
        self.next_auto_id += 1;
        self.enqueue(Request::read(id, addr, arrival));
        id
    }

    /// Enqueues a request at pre-decoded DRAM coordinates. Rank-NMP modules
    /// use this path: their instructions carry device coordinates directly.
    pub fn enqueue_decoded(
        &mut self,
        addr: DramAddr,
        kind: RequestKind,
        arrival: Cycle,
        id: RequestId,
    ) {
        assert!(
            addr.rank < self.geo.ranks
                && addr.bank_group < self.geo.bank_groups
                && addr.bank < self.geo.banks_per_group
                && addr.row < self.geo.rows
                && addr.column < self.geo.columns,
            "decoded address out of range for geometry"
        );
        let gbank =
            (addr.rank as usize * self.bpr + addr.flat_bank(self.geo.banks_per_group)) as u32;
        let q = Queued {
            id,
            kind,
            addr,
            arrival,
            seq: self.next_seq,
            acts: 0,
            pres: 0,
            gbank,
        };
        self.next_seq += 1;
        self.staged.push_back(q);
    }

    /// Advances the channel by one cycle.
    pub fn tick(&mut self) {
        self.tick_inner();
    }

    /// One controller cycle: admit arrivals, progress refresh, issue at
    /// most one command. Returns whether a command slot was consumed and,
    /// when it was not, the earliest future bank-candidate readiness.
    fn tick_inner(&mut self) -> TickOutcome {
        self.loop_iters += 1;
        self.admit_arrivals();
        if self.config.refresh {
            self.update_refresh_state();
            if self.try_issue_refresh() {
                self.cycle += 1;
                return TickOutcome::Issued(None);
            }
        }
        let outcome = self.issue_request_command();
        self.cycle += 1;
        outcome
    }

    /// Main-loop iterations executed so far (ticks, across both engines).
    ///
    /// For the per-cycle engine this equals elapsed cycles; for the
    /// event-driven engine it is O(issued commands). The `event_equivalence`
    /// suite uses it to prove the skip-ahead engine does less work.
    pub fn loop_iterations(&self) -> u64 {
        self.loop_iters
    }

    /// Switches the main-loop strategy (the configuration default is
    /// [`SimEngine::EventDriven`]). State and statistics carry over; both
    /// engines are cycle-identical.
    pub fn set_engine(&mut self, engine: SimEngine) {
        self.config.engine = engine;
    }

    /// Runs until every request has completed, returning all completions
    /// (also recorded in [`stats`](Self::stats)).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] if the controller stops making
    /// forward progress while requests are pending (a scheduling livelock;
    /// see [`DramConfig::stall_iterations`]). The seed engine `assert!`ed
    /// after 500M cycles instead.
    pub fn run_until_idle(&mut self) -> Result<Vec<CompletedRequest>, SimError> {
        self.run_to_idle()?;
        Ok(self.drain_completed())
    }

    /// Runs until every request has completed, leaving the completion
    /// records in the internal buffer (see [`completions`](Self::completions)).
    ///
    /// This is the allocation-free counterpart of
    /// [`run_until_idle`](Self::run_until_idle): callers that only
    /// inspect completions can read the borrowed slice and then
    /// [`clear_completions`](Self::clear_completions), so the buffer's
    /// capacity is reused run after run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] exactly as
    /// [`run_until_idle`](Self::run_until_idle) does.
    pub fn run_to_idle(&mut self) -> Result<(), SimError> {
        match self.config.engine {
            SimEngine::EventDriven => self.run_event_driven(),
            SimEngine::PerCycle => self.run_per_cycle(),
        }
    }

    /// Completion records accumulated since the last drain/clear, in
    /// data-transfer order (`finish_cycle` is non-decreasing).
    pub fn completions(&self) -> &[CompletedRequest] {
        &self.completed
    }

    /// Clears the completion buffer, retaining its capacity.
    pub fn clear_completions(&mut self) {
        self.completed.clear();
    }

    fn stalled(&self) -> SimError {
        SimError::Stalled {
            cycle: self.cycle,
            pending: self.pending(),
        }
    }

    /// Stall bookkeeping shared by both engines. Progress means a request
    /// moved: it completed (pending shrank) or was admitted from the
    /// staged queue (staged shrank). Mere command issue — refresh steps,
    /// re-ACTs — does NOT count, or a livelocked controller that keeps
    /// refreshing on schedule would never trip the bound; both progress
    /// forms are bounded by the finite request count, so neither can mask
    /// a livelock indefinitely. The only *unbounded* legitimate wait
    /// without progress is a staged arrival in the far future; any other
    /// wait is bounded by the DDR timing constants, far below
    /// [`DramConfig::stall_iterations`].
    fn note_progress(&self, last: &mut (usize, usize), idle: &mut u64) -> Result<(), SimError> {
        let state = self.progress_state();
        if state.0 < last.0 || state.1 < last.1 {
            *last = state;
            *idle = 0;
            return Ok(());
        }
        *idle += 1;
        if *idle > self.config.stall_iterations {
            match self.next_admissible_arrival() {
                Some(at) if at > self.cycle => *idle = 0,
                _ => return Err(self.stalled()),
            }
        }
        Ok(())
    }

    fn progress_state(&self) -> (usize, usize) {
        (self.pending(), self.staged.len())
    }

    /// Reference main loop: one DRAM clock per iteration.
    fn run_per_cycle(&mut self) -> Result<(), SimError> {
        let mut last = self.progress_state();
        let mut idle = 0u64;
        while self.pending() > 0 {
            self.tick_inner();
            self.note_progress(&mut last, &mut idle)?;
        }
        self.drain_data_bus();
        Ok(())
    }

    /// Event-driven main loop: whenever a tick issues nothing, jump the
    /// clock to the next cycle at which anything could change. The
    /// bank-candidate part of that jump target comes straight out of the
    /// failed tick's own scheduling scan (nothing mutated, so the
    /// readiness cycles it gathered are exact); only the cheap non-bank
    /// events (staged arrival, refresh deadlines) are added here.
    fn run_event_driven(&mut self) -> Result<(), SimError> {
        let mut last = self.progress_state();
        let mut idle = 0u64;
        while self.pending() > 0 {
            let outcome = self.tick_inner();
            self.note_progress(&mut last, &mut idle)?;
            match outcome {
                TickOutcome::Idle(cand) => match self.light_event_cycle(cand) {
                    Some(e) => self.cycle = e.max(self.cycle),
                    None => return Err(self.stalled()),
                },
                // Post-issue skip: jump over the cycles where provably
                // nothing can happen. The bound is conservative (never
                // late), so at worst the next tick is a no-op. Skipped
                // when the issue emptied the queues (the run ends at the
                // current cycle) or no safe bound exists.
                TickOutcome::Issued(Some(bound)) if self.pending() > 0 => {
                    if let Some(e) = self.light_event_cycle(Some(bound)) {
                        self.cycle = e.max(self.cycle);
                    }
                }
                TickOutcome::Issued(_) => {}
            }
        }
        self.drain_data_bus();
        Ok(())
    }

    /// Lets in-flight data bursts (and any refresh that falls due while
    /// they stream) finish.
    fn drain_data_bus(&mut self) {
        let drain_to = self.data_bus_free.max(self.cycle);
        while self.cycle < drain_to {
            let outcome = self.tick_inner();
            if self.config.engine == SimEngine::EventDriven {
                if let TickOutcome::Idle(cand) = outcome {
                    let e = self
                        .light_event_cycle(cand)
                        .map_or(drain_to, |e| e.min(drain_to));
                    self.cycle = e.max(self.cycle);
                }
                // Issued ticks keep stepping cycle by cycle; the drain
                // window is a handful of cycles, not worth bounding.
            }
        }
    }

    /// The non-bank events plus a precomputed bank-candidate readiness:
    /// the jump target of a tick that issued nothing. Equals
    /// [`next_event_cycle`](Self::next_event_cycle) when `cand` is the
    /// minimum readiness over every schedulable queued request (which is
    /// exactly what the failed tick's scan produced).
    fn light_event_cycle(&self, cand: Option<Cycle>) -> Option<Cycle> {
        let now = self.cycle;
        let mut next: Option<Cycle> = None;
        let mut consider = |at: Cycle| {
            let at = at.max(now);
            next = Some(next.map_or(at, |n| n.min(at)));
        };
        if let Some(at) = cand {
            consider(at);
        }
        if let Some(at) = self.next_admissible_arrival() {
            consider(at);
        }
        if self.config.refresh {
            let mut first_pending = true;
            for r in 0..self.geo.ranks as usize {
                if !self.refresh_pending[r] {
                    consider(self.ranks[r].refresh_due);
                } else if first_pending {
                    first_pending = false;
                    consider(self.refresh_step_ready(r));
                }
            }
        }
        next
    }

    /// The next cycle (>= the current one) at which the controller state
    /// can change: the earliest of the next admissible staged arrival, the
    /// next refresh deadline or refresh-step legality, and the earliest
    /// bank/rank/data-bus readiness of any schedulable queued request.
    ///
    /// Returns `None` when no such cycle exists — with requests pending
    /// that is a livelock, which `run_until_idle` reports as
    /// [`SimError::Stalled`].
    pub fn next_event_cycle(&self) -> Option<Cycle> {
        // Queued requests: the cycle their next command (column, PRE or
        // ACT) becomes legal. Command legality is a property of the bank,
        // not the request, so each *active bank* contributes at most two
        // candidate cycles per direction (column for open-row matches,
        // PRE for mismatches; ACT when closed) — served from the per-bank
        // candidate caches, no per-request rescan. Writes only
        // participate when the controller would drain them — drain mode
        // flips only on admissions or issues, which are events themselves.
        let mut cand: Option<Cycle> = None;
        let mut consider = |at: Cycle| {
            cand = Some(cand.map_or(at, |n| n.min(at)));
        };
        let drain = self.drain_writes();
        for &gb in &self.active_banks {
            let gbank = gb as usize;
            let rank = self.bank_rank[gbank] as usize;
            if self.refresh_pending[rank] {
                // The refresh-step event (in `light_event_cycle`) covers
                // the unblock.
                continue;
            }
            self.consider_bank_events(true, gbank, &mut consider);
            if drain {
                self.consider_bank_events(false, gbank, &mut consider);
            }
        }
        // The non-bank events (staged admission, refresh deadlines and
        // steps) live in the same helper the run loop uses, so the
        // standalone query and the engine's jump targets cannot drift
        // apart.
        self.light_event_cycle(cand)
    }

    /// Feeds the earliest-legal cycles of one (bank, direction)'s
    /// candidates into `consider`, reading through the candidate cache
    /// (recomputing on the fly when stale — this is a `&self` query).
    fn consider_bank_events(&self, is_read: bool, gbank: usize, consider: &mut impl FnMut(Cycle)) {
        let cached = if is_read {
            &self.cand_rd[gbank]
        } else {
            &self.cand_wr[gbank]
        };
        let fresh;
        let c = if cached.epoch == self.bank_stamp[gbank] {
            cached
        } else {
            fresh = self.compute_cand(is_read, gbank);
            &fresh
        };
        let (col, alt) = self.cand_effective_ready(c, is_read, gbank);
        if col != Cycle::MAX {
            consider(col);
        }
        if alt != Cycle::MAX {
            consider(alt);
        }
    }

    /// The effective earliest-legal cycles of a cache's candidates: the
    /// cached bank-local parts combined with the **live** rank timers and
    /// data-bus reservation — the one place (besides the inlined hot loop
    /// in `scan_direction`, kept in sync by the equivalence suites) that
    /// spells out the candidate-readiness formula. `Cycle::MAX` marks an
    /// absent candidate.
    fn cand_effective_ready(&self, c: &CandCache, is_read: bool, gbank: usize) -> (Cycle, Cycle) {
        let rank = self.bank_rank[gbank] as usize;
        let bg = self.bank_bg[gbank];
        let col = if c.col_seq != u64::MAX {
            c.col_ready
                .max(self.ranks[rank].col_ready(is_read, bg))
                .max(self.bus_part(is_read, rank as u8))
        } else {
            Cycle::MAX
        };
        let alt = if c.alt_seq == u64::MAX {
            Cycle::MAX
        } else if c.alt_is_act {
            c.alt_ready.max(self.ranks[rank].act_ready(bg))
        } else {
            c.alt_ready
        };
        (col, alt)
    }

    /// The data-bus contribution to column legality for `rank`: the cycle
    /// from which a column command's data (offset by CL/CWL) no longer
    /// collides with the current bus reservation, including the
    /// rank-to-rank switch penalty.
    fn bus_part(&self, is_read: bool, rank: u8) -> Cycle {
        let data_offset = if is_read {
            self.timing.t_cl
        } else {
            self.timing.t_cwl
        };
        let mut bus_free = self.data_bus_free;
        if self.last_data_rank.is_some() && self.last_data_rank != Some(rank) {
            bus_free += self.timing.rank_switch;
        }
        bus_free.saturating_sub(data_offset)
    }

    /// Recomputes the candidate cache of one (bank, direction) from its
    /// queue and bank state.
    fn compute_cand(&self, is_read: bool, gbank: usize) -> CandCache {
        let bank_q = if is_read {
            &self.bank_reads[gbank]
        } else {
            &self.bank_writes[gbank]
        };
        let bank = &self.banks[gbank];
        let mut c = CandCache {
            epoch: self.bank_stamp[gbank],
            ..CandCache::default()
        };
        match bank.state {
            BankState::Closed => {
                if let Some(e) = bank_q.first() {
                    c.alt_seq = e.seq;
                    c.alt_slot = e.slot;
                    c.alt_ready = bank.act_ready();
                    c.alt_is_act = true;
                }
            }
            BankState::Open(row) => {
                for e in bank_q {
                    if e.row == row {
                        if c.col_seq == u64::MAX {
                            c.col_seq = e.seq;
                            c.col_slot = e.slot;
                        }
                    } else if c.alt_seq == u64::MAX {
                        c.alt_seq = e.seq;
                        c.alt_slot = e.slot;
                    }
                    if c.col_seq != u64::MAX && c.alt_seq != u64::MAX {
                        break;
                    }
                }
                if c.col_seq != u64::MAX {
                    c.col_ready = bank.col_ready(is_read);
                }
                if c.alt_seq != u64::MAX {
                    c.alt_ready = bank.pre_ready();
                }
            }
        }
        c
    }

    /// Marks `gbank`'s candidate caches stale (timing state, row state or
    /// queue contents changed).
    fn touch_bank(&mut self, gbank: usize) {
        self.epoch_ctr += 1;
        self.bank_stamp[gbank] = self.epoch_ctr;
    }

    /// Arrival cycle of the staged-queue front, if its target queue has
    /// room to admit it.
    fn next_admissible_arrival(&self) -> Option<Cycle> {
        let front = self.staged.front()?;
        let (len, cap) = if front.kind == RequestKind::Read {
            (self.read_order.len(), self.config.read_queue)
        } else {
            (self.write_order.len(), self.config.write_queue)
        };
        (len < cap).then_some(front.arrival)
    }

    /// Earliest cycle rank `r`'s next refresh step (PRE of the first open
    /// bank, or the REF itself) becomes legal.
    fn refresh_step_ready(&self, r: usize) -> Cycle {
        let banks = self.rank_banks(r);
        if let Some(b) = banks
            .iter()
            .position(|b| matches!(b.state, BankState::Open(_)))
        {
            banks[b].pre_ready()
        } else {
            banks
                .iter()
                .map(Bank::act_ready)
                .max()
                .unwrap_or(0)
                .max(self.ranks[r].busy_until)
        }
    }

    /// The banks of rank `r` as a slice of the flat bank array.
    fn rank_banks(&self, r: usize) -> &[Bank] {
        &self.banks[r * self.bpr..(r + 1) * self.bpr]
    }

    /// Whether the controller is in write-drain mode (the same predicate
    /// `issue_request_command` applies).
    fn drain_writes(&self) -> bool {
        self.write_order.len() * 4 >= self.config.write_queue * 3
            || (self.read_order.is_empty() && !self.write_order.is_empty())
    }

    /// Removes and returns all completions whose data has fully transferred
    /// by the current cycle.
    ///
    /// Completions are recorded in data-transfer order (the shared data
    /// bus serializes bursts), so the buffer is always sorted by
    /// `finish_cycle`: the common all-done case hands the whole buffer
    /// over, and a partial drain splits off a prefix — no re-partitioning
    /// scan of the remainder.
    pub fn drain_completed(&mut self) -> Vec<CompletedRequest> {
        let now = self.cycle;
        if self.completed.last().is_none_or(|c| c.finish_cycle <= now) {
            return std::mem::take(&mut self.completed);
        }
        let k = self.completed.partition_point(|c| c.finish_cycle <= now);
        self.completed.drain(..k).collect()
    }

    fn admit_arrivals(&mut self) {
        while let Some(front) = self.staged.front() {
            if front.arrival > self.cycle {
                // Staged requests are admitted in FIFO order; later arrivals
                // cannot jump the queue.
                break;
            }
            let is_read = front.kind == RequestKind::Read;
            let (len, cap) = if is_read {
                (self.read_order.len(), self.config.read_queue)
            } else {
                (self.write_order.len(), self.config.write_queue)
            };
            if len >= cap {
                break;
            }
            let q = self.staged.pop_front().expect("front checked");
            let gbank = q.gbank as usize;
            let entry_row = q.addr.row;
            let entry_seq = q.seq;
            let slot = match self.free_slots.pop() {
                Some(s) => {
                    self.slab[s as usize] = q;
                    s
                }
                None => {
                    self.slab.push(q);
                    (self.slab.len() - 1) as u32
                }
            };
            let entry = BankEntry {
                slot,
                row: entry_row,
                seq: entry_seq,
            };
            if is_read {
                self.read_order.push_back(slot);
                self.bank_reads[gbank].push(entry);
            } else {
                self.write_order.push_back(slot);
                self.bank_writes[gbank].push(entry);
            }
            self.touch_bank(gbank);
            if !self.bank_active[gbank] {
                self.bank_active[gbank] = true;
                self.active_banks.push(gbank as u32);
            }
        }
    }

    fn update_refresh_state(&mut self) {
        for r in 0..self.geo.ranks as usize {
            if self.cycle >= self.ranks[r].refresh_due {
                self.refresh_pending[r] = true;
            }
        }
    }

    /// Tries to make progress on a pending refresh; returns true if a
    /// command slot was consumed.
    fn try_issue_refresh(&mut self) -> bool {
        let now = self.cycle;
        for r in 0..self.geo.ranks as usize {
            if !self.refresh_pending[r] {
                continue;
            }
            let base = r * self.bpr;
            // Close any open bank first.
            if let Some(b) = self
                .rank_banks(r)
                .iter()
                .position(|b| matches!(b.state, BankState::Open(_)))
            {
                if self.banks[base + b].pre_ready() <= now {
                    let addr = self.bank_addr(r as u8, b);
                    self.issue(DdrCommand::new(DdrCommandKind::Pre, addr));
                    self.banks[base + b].do_pre(now, &self.timing);
                    self.touch_bank(base + b);
                    self.stats.pres += 1;
                    return true;
                }
                // An open bank is not yet precharge-able; wait.
                return false;
            }
            // All banks closed: wait out tRP, then refresh.
            let ready = self
                .rank_banks(r)
                .iter()
                .map(Bank::act_ready)
                .max()
                .unwrap_or(0);
            if ready <= now && self.ranks[r].busy_until <= now {
                let addr = self.bank_addr(r as u8, 0);
                self.issue(DdrCommand::new(DdrCommandKind::Ref, addr));
                self.ranks[r].did_ref(now, &self.timing);
                let done = now + self.timing.t_rfc;
                for bank in &mut self.banks[base..base + self.bpr] {
                    bank.finish_refresh(done);
                }
                for gbank in base..base + self.bpr {
                    self.touch_bank(gbank);
                }
                self.stats.refs += 1;
                self.refresh_pending[r] = false;
                return true;
            }
            return false;
        }
        false
    }

    fn bank_addr(&self, rank: u8, flat_bank: usize) -> DramAddr {
        DramAddr {
            rank,
            bank_group: (flat_bank / self.geo.banks_per_group as usize) as u8,
            bank: (flat_bank % self.geo.banks_per_group as usize) as u8,
            row: 0,
            column: 0,
        }
    }

    /// FR-FCFS issue: one command per cycle.
    ///
    /// The decision procedure is unchanged from the flat-queue scheduler —
    /// pass 1 issues the oldest row-hit column command that is legal right
    /// now, pass 2 the oldest request whose next command (column, PRE or
    /// ACT) is legal, reads always ahead of writes, writes only in drain
    /// mode — but both passes run over the per-bank candidate caches: each
    /// active bank contributes its earliest eligible request per command
    /// class (requests needing the same command on the same bank share one
    /// legality verdict), and the oldest legal candidate across banks
    /// wins. No allocation, no sort, no per-request timing re-checks. When
    /// nothing is legal, the same traversal has already produced the
    /// earliest future readiness, which the event-driven engine jumps to.
    fn issue_request_command(&mut self) -> TickOutcome {
        let drain_writes = self.drain_writes();
        let has_reads = !self.read_order.is_empty();
        if !has_reads && (!drain_writes || self.write_order.is_empty()) {
            return TickOutcome::Idle(None);
        }

        // Starvation guard: when the oldest request has waited too long,
        // skip the row-hit pass so it makes progress.
        let oldest = if has_reads {
            self.read_order[0]
        } else {
            self.write_order[0]
        };
        let oldest_age = self
            .cycle
            .saturating_sub(self.slab[oldest as usize].arrival);
        let allow_fr = oldest_age < self.config.starvation_cycles;

        let reads = self.scan_direction(true, allow_fr);
        if allow_fr {
            // Pass 1: first-ready — the oldest request whose row is open
            // and whose column command is legal right now, reads first.
            if let Some(slot) = reads.col_winner {
                let gbank = self.slab[slot as usize].gbank as usize;
                self.issue_column(true, slot);
                let hint = self.post_issue_hint(gbank, drain_writes, &reads);
                return TickOutcome::Issued(hint);
            }
            if drain_writes {
                let writes = self.scan_direction(false, allow_fr);
                if let Some(slot) = writes.col_winner {
                    self.issue_column(false, slot);
                    return TickOutcome::Issued(None);
                }
                // Pass 2 with both directions already scanned.
                if let Some((slot, cmd)) = reads.other_winner {
                    self.issue_progress(true, slot, cmd);
                    return TickOutcome::Issued(None);
                }
                if let Some((slot, cmd)) = writes.other_winner {
                    self.issue_progress(false, slot, cmd);
                    return TickOutcome::Issued(None);
                }
                return TickOutcome::Idle(min_cycle(reads.min_ready, writes.min_ready));
            }
        }
        // Pass 2: oldest-first — issue whatever command the oldest
        // serviceable request needs next, if legal. When pass 1 ran,
        // row-hit column commands are already proven illegal (legality is
        // bank state that cannot change without an issue), so only PRE
        // and ACT candidates remain in play.
        if let Some((slot, cmd)) = reads.other_winner {
            let gbank = self.slab[slot as usize].gbank as usize;
            self.issue_progress(true, slot, cmd);
            let hint = self.post_issue_hint(gbank, drain_writes, &reads);
            return TickOutcome::Issued(hint);
        }
        if drain_writes {
            let writes = self.scan_direction(false, allow_fr);
            if let Some((slot, cmd)) = writes.other_winner {
                self.issue_progress(false, slot, cmd);
                return TickOutcome::Issued(None);
            }
            return TickOutcome::Idle(min_cycle(reads.min_ready, writes.min_ready));
        }
        TickOutcome::Idle(reads.min_ready)
    }

    /// A safe lower bound on the next bank-candidate event after an
    /// issue in read-only (non-drain) mode, or `None` when the very next
    /// cycle must be ticked normally.
    ///
    /// Only taken when the issued command was the *only* legal candidate
    /// this cycle. Then every surviving candidate was not-yet-legal, and
    /// `min_ready` bounds their readiness from below (an issue only ever
    /// pushes timing constraints later). The issued bank's candidate
    /// structure did change, so its candidates are recomputed fresh. A
    /// lower-bound jump can cost at most a no-op tick; it can never skip
    /// a decision cycle. Drain-mode flips change which candidates
    /// participate at all, so any flip bails out.
    fn post_issue_hint(
        &mut self,
        gbank: usize,
        drain_before: bool,
        scan: &ScanResult,
    ) -> Option<Cycle> {
        if scan.legal != 1 || drain_before || self.drain_writes() {
            return None;
        }
        let mut m = scan.min_ready;
        let fresh = self.compute_cand(true, gbank);
        self.cand_rd[gbank] = fresh;
        let (col, alt) = self.cand_effective_ready(&fresh, true, gbank);
        if col != Cycle::MAX {
            m = min_cycle(m, Some(col));
        }
        if alt != Cycle::MAX {
            m = min_cycle(m, Some(alt));
        }
        m
    }

    fn scan_direction(&mut self, is_read: bool, fr: bool) -> ScanResult {
        let now = self.cycle;
        let mut best_col_seq = u64::MAX;
        let mut best_col = 0u32;
        let mut best_other_seq = u64::MAX;
        let mut best_other = (0u32, NextCmd::Pre);
        let mut min_ready = Cycle::MAX;
        let mut legal = 0u32;
        // Data-bus reservation, hoisted: one value for the rank that last
        // owned the bus, one (with the switch penalty) for every other.
        let data_offset = if is_read {
            self.timing.t_cl
        } else {
            self.timing.t_cwl
        };
        let bus_same = self.data_bus_free.saturating_sub(data_offset);
        let bus_other = (self.data_bus_free + self.timing.rank_switch).saturating_sub(data_offset);
        let last_rank = self.last_data_rank;
        for i in 0..self.active_banks.len() {
            let gbank = self.active_banks[i] as usize;
            let rank = self.bank_rank[gbank] as usize;
            if self.refresh_pending[rank] {
                continue;
            }
            let cands = if is_read {
                &self.cand_rd[gbank]
            } else {
                &self.cand_wr[gbank]
            };
            if cands.epoch != self.bank_stamp[gbank] {
                let fresh = self.compute_cand(is_read, gbank);
                if is_read {
                    self.cand_rd[gbank] = fresh;
                } else {
                    self.cand_wr[gbank] = fresh;
                }
            }
            let c = if is_read {
                &self.cand_rd[gbank]
            } else {
                &self.cand_wr[gbank]
            };
            let bg = self.bank_bg[gbank];
            if c.col_seq != u64::MAX {
                let bus = if last_rank.is_some() && last_rank != Some(rank as u8) {
                    bus_other
                } else {
                    bus_same
                };
                let ready = c
                    .col_ready
                    .max(self.ranks[rank].col_ready(is_read, bg))
                    .max(bus);
                if ready <= now {
                    legal += 1;
                    if fr {
                        if c.col_seq < best_col_seq {
                            best_col_seq = c.col_seq;
                            best_col = c.col_slot;
                        }
                    } else if c.col_seq < best_other_seq {
                        best_other_seq = c.col_seq;
                        best_other = (c.col_slot, NextCmd::Column);
                    }
                } else {
                    min_ready = min_ready.min(ready);
                }
            }
            if c.alt_seq != u64::MAX {
                let (ready, cmd) = if c.alt_is_act {
                    (
                        c.alt_ready.max(self.ranks[rank].act_ready(bg)),
                        NextCmd::Act,
                    )
                } else {
                    (c.alt_ready, NextCmd::Pre)
                };
                if ready <= now {
                    legal += 1;
                    if c.alt_seq < best_other_seq {
                        best_other_seq = c.alt_seq;
                        best_other = (c.alt_slot, cmd);
                    }
                } else {
                    min_ready = min_ready.min(ready);
                }
            }
        }
        ScanResult {
            col_winner: (best_col_seq != u64::MAX).then_some(best_col),
            other_winner: (best_other_seq != u64::MAX).then_some(best_other),
            min_ready: (min_ready != Cycle::MAX).then_some(min_ready),
            legal,
        }
    }

    /// Issues the already-verified-legal column command for `slot`,
    /// completing the request.
    fn issue_column(&mut self, is_read: bool, slot: u32) {
        let now = self.cycle;
        let q = self.remove_queued(is_read, slot);
        let gbank = q.gbank as usize;
        let (rank, bg) = (q.addr.rank, q.addr.bank_group);
        let kind = if is_read {
            DdrCommandKind::Rd
        } else {
            DdrCommandKind::Wr
        };
        self.issue(DdrCommand::new(kind, q.addr));
        let bank = &mut self.banks[gbank];
        let data_offset = if is_read {
            bank.do_rd(now, &self.timing);
            self.ranks[rank as usize].did_rd(now, bg, &self.timing);
            self.stats.reads += 1;
            self.timing.t_cl
        } else {
            bank.do_wr(now, &self.timing);
            self.ranks[rank as usize].did_wr(now, bg, &self.timing);
            self.stats.writes += 1;
            self.timing.t_cwl
        };
        self.touch_bank(gbank);
        let finish = now + data_offset + self.timing.t_bl;
        self.data_bus_free = finish;
        self.last_data_rank = Some(rank);
        self.stats.data_bus_busy += self.timing.t_bl;
        let outcome = q.outcome();
        self.stats.record_outcome(outcome);
        self.stats.record_latency(finish - q.arrival);
        self.completed.push(CompletedRequest {
            id: q.id,
            addr: q.addr,
            kind: q.kind,
            arrival: q.arrival,
            finish_cycle: finish,
            outcome,
        });
    }

    /// Issues the already-verified-legal pass-2 command for `slot`.
    fn issue_progress(&mut self, is_read: bool, slot: u32, cmd: NextCmd) {
        let now = self.cycle;
        match cmd {
            NextCmd::Column => self.issue_column(is_read, slot),
            NextCmd::Pre => {
                let addr = self.slab[slot as usize].addr;
                let gbank = self.slab[slot as usize].gbank as usize;
                self.banks[gbank].do_pre(now, &self.timing);
                self.touch_bank(gbank);
                self.stats.pres += 1;
                let q = &mut self.slab[slot as usize];
                q.pres = q.pres.saturating_add(1);
                self.issue(DdrCommand::new(DdrCommandKind::Pre, addr));
            }
            NextCmd::Act => {
                let addr = self.slab[slot as usize].addr;
                let gbank = self.slab[slot as usize].gbank as usize;
                self.banks[gbank].do_act(now, addr.row, &self.timing);
                self.touch_bank(gbank);
                self.ranks[addr.rank as usize].did_act(now, addr.bank_group, &self.timing);
                self.stats.acts += 1;
                let q = &mut self.slab[slot as usize];
                q.acts = q.acts.saturating_add(1);
                self.issue(DdrCommand::new(DdrCommandKind::Act, addr));
            }
        }
    }

    /// Unlinks `slot` from its order queue and its bank queue, recycles
    /// the slab slot, and retires the bank from the active list when it
    /// has no queued requests left. Returns the request.
    fn remove_queued(&mut self, is_read: bool, slot: u32) -> Queued {
        let order = if is_read {
            &mut self.read_order
        } else {
            &mut self.write_order
        };
        let pos = order
            .iter()
            .position(|&s| s == slot)
            .expect("slot is in its order queue");
        order.remove(pos);
        let q = self.slab[slot as usize].clone();
        let gbank = q.gbank as usize;
        let bank_q = if is_read {
            &mut self.bank_reads[gbank]
        } else {
            &mut self.bank_writes[gbank]
        };
        let bpos = bank_q
            .iter()
            .position(|e| e.slot == slot)
            .expect("slot is in its bank queue");
        bank_q.remove(bpos);
        self.touch_bank(gbank);
        self.free_slots.push(slot);
        if self.bank_reads[gbank].is_empty() && self.bank_writes[gbank].is_empty() {
            self.bank_active[gbank] = false;
            let apos = self
                .active_banks
                .iter()
                .position(|&g| g as usize == gbank)
                .expect("queued bank is active");
            self.active_banks.swap_remove(apos);
        }
        q
    }

    fn issue(&mut self, cmd: DdrCommand) {
        self.stats.cmd_bus_busy += 1;
        if let Some(m) = self.monitor.as_mut() {
            m.observe(self.cycle, cmd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_types::units::CACHELINE_BYTES;

    fn single_rank() -> MemorySystem {
        MemorySystem::new(DramConfig::single_rank()).expect("valid config")
    }

    #[test]
    fn cold_read_latency_is_trcd_tcl_tbl() {
        let mut mem = single_rank();
        mem.enqueue_read(PhysAddr::new(0), 0);
        let done = mem.run_until_idle().expect("drain");
        assert_eq!(done.len(), 1);
        let t = DdrTiming::ddr4_2400();
        // ACT at cycle 0 is legal immediately; RD at tRCD; data done
        // tCL + tBL later.
        assert_eq!(done[0].finish_cycle, t.t_rcd + t.t_cl + t.t_bl);
        assert_eq!(done[0].outcome, RowOutcome::Miss);
    }

    #[test]
    fn row_hit_follows_open_row() {
        let mut mem = single_rank();
        mem.enqueue_read(PhysAddr::new(0), 0);
        mem.enqueue_read(PhysAddr::new(64), 0);
        let done = mem.run_until_idle().expect("drain");
        assert_eq!(done.len(), 2);
        assert_eq!(done[1].outcome, RowOutcome::Hit);
        // Second burst streams tCCD after the first RD.
        assert!(done[1].finish_cycle <= done[0].finish_cycle + 7);
    }

    #[test]
    fn row_conflict_requires_pre_act() {
        let mut mem = single_rank();
        let geo = *mem.geometry();
        // Same bank, different row: stride by one full row of bursts.
        let row_bytes = geo.columns as u64 * CACHELINE_BYTES;
        let banks = geo.banks_per_rank() as u64;
        mem.enqueue_read(PhysAddr::new(0), 0);
        mem.enqueue_read(PhysAddr::new(row_bytes * banks), 0);
        let done = mem.run_until_idle().expect("drain");
        assert_eq!(done[1].outcome, RowOutcome::Conflict);
        let t = DdrTiming::ddr4_2400();
        assert!(done[1].finish_cycle >= t.t_ras + t.t_rp + t.t_rcd);
    }

    #[test]
    fn bank_interleaved_reads_saturate_bus() {
        let mut mem = single_rank();
        // 64 reads spread across banks in open rows: after warm-up the data
        // bus should stream a burst every tBL cycles.
        let geo = *mem.geometry();
        let row_bytes = geo.columns as u64 * CACHELINE_BYTES;
        for i in 0..64u64 {
            // Rotate across all 16 banks, two bursts each.
            let bank = i % 16;
            let col = i / 16;
            mem.enqueue_read(PhysAddr::new(bank * row_bytes + col * 64), 0);
        }
        let done = mem.run_until_idle().expect("drain");
        assert_eq!(done.len(), 64);
        let finish = done.iter().map(|c| c.finish_cycle).max().unwrap();
        // Perfect streaming would take 64*4 = 256 cycles of data after the
        // first word; allow generous startup slack.
        assert!(finish < 450, "took {finish} cycles");
    }

    #[test]
    fn monitor_sees_no_violations_under_load() {
        let mut mem = MemorySystem::new(DramConfig::table1_baseline()).unwrap();
        mem.attach_monitor();
        for i in 0..200u64 {
            mem.enqueue_read(PhysAddr::new(i * 64 * 4097), 0);
        }
        let done = mem.run_until_idle().expect("drain");
        assert_eq!(done.len(), 200);
        assert!(
            mem.monitor_violations().is_empty(),
            "{:?}",
            mem.monitor_violations()
        );
    }

    #[test]
    fn refresh_occurs_periodically() {
        let mut mem = single_rank();
        // Run past several tREFI windows with sparse traffic.
        for i in 0..32u64 {
            mem.enqueue_read(PhysAddr::new(i * 64), i * 2000);
        }
        let _ = mem.run_until_idle().expect("drain");
        assert!(mem.stats().refs >= 5, "refs = {}", mem.stats().refs);
    }

    #[test]
    fn writes_complete_and_count() {
        let mut mem = single_rank();
        let id = RequestId::new(77);
        mem.enqueue(Request::write(id, PhysAddr::new(64), 0));
        let done = mem.run_until_idle().expect("drain");
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert_eq!(mem.stats().writes, 1);
    }

    #[test]
    fn arrival_times_are_respected() {
        let mut mem = single_rank();
        mem.enqueue_read(PhysAddr::new(0), 1000);
        let done = mem.run_until_idle().expect("drain");
        assert!(done[0].finish_cycle >= 1000);
        assert!(done[0].latency() < 1000);
    }

    #[test]
    fn two_ranks_overlap_activation() {
        // The same request stream takes fewer cycles on 2 ranks than 1 when
        // requests conflict in banks.
        let run = |ranks: u8| {
            let mut cfg = DramConfig::with_ranks(1, ranks);
            cfg.refresh = false;
            let mut mem = MemorySystem::new(cfg).unwrap();
            // Strided addresses that pound a few banks.
            for i in 0..128u64 {
                mem.enqueue_read(PhysAddr::new(i * 1024 * 1024), 0);
            }
            let done = mem.run_until_idle().expect("drain");
            done.iter().map(|c| c.finish_cycle).max().unwrap()
        };
        let one = run(1);
        let two = run(2);
        assert!(two < one, "1-rank {one} vs 2-rank {two}");
    }

    #[test]
    fn stats_outcomes_sum_to_reads() {
        let mut mem = single_rank();
        for i in 0..50u64 {
            mem.enqueue_read(PhysAddr::new(i * 640_000), 0);
        }
        mem.run_until_idle().expect("drain");
        let s = mem.stats();
        assert_eq!(s.row_hits + s.row_misses + s.row_conflicts, s.reads);
    }

    #[test]
    fn stall_reports_instead_of_aborting() {
        // A livelock must surface as `SimError::Stalled`, not a panic. A
        // correct scheduler cannot livelock from the public API, so wedge
        // the controller directly: a stuck refresh-pending flag with
        // refresh simulation disabled blocks the request forever.
        for engine in [SimEngine::EventDriven, SimEngine::PerCycle] {
            let mut cfg = DramConfig::single_rank();
            cfg.refresh = false;
            cfg.engine = engine;
            cfg.stall_iterations = cfg.timing.t_rfc + cfg.timing.t_refi + 1;
            let mut mem = MemorySystem::new(cfg).unwrap();
            mem.enqueue_read(PhysAddr::new(0), 0);
            mem.refresh_pending[0] = true;
            let err = mem.run_until_idle().unwrap_err();
            assert!(
                matches!(err, SimError::Stalled { pending: 1, .. }),
                "{engine:?}: {err}"
            );
        }
    }

    #[test]
    fn refresh_commands_do_not_mask_a_stall() {
        // Regression: refresh keeps issuing commands (PRE/REF, plus the
        // re-ACTs it forces) on schedule even when no request ever
        // completes, so "a command issued" must not reset the no-progress
        // bound. Wedge: the data bus reserved absurdly far in the future
        // blocks every column command while refresh marches on.
        let mut cfg = DramConfig::single_rank();
        cfg.engine = SimEngine::PerCycle;
        cfg.stall_iterations = cfg.timing.t_rfc + cfg.timing.t_refi + 1;
        let mut mem = MemorySystem::new(cfg).unwrap();
        mem.enqueue_read(PhysAddr::new(0), 0);
        mem.data_bus_free = 1 << 40;
        let err = mem.run_until_idle().unwrap_err();
        assert!(matches!(err, SimError::Stalled { pending: 1, .. }), "{err}");
    }

    #[test]
    fn distant_arrivals_are_not_a_stall() {
        // Waiting out a long quiet gap before a known future arrival is
        // legitimate in both engines.
        for engine in [SimEngine::EventDriven, SimEngine::PerCycle] {
            let mut cfg = DramConfig::single_rank();
            cfg.refresh = false;
            cfg.engine = engine;
            cfg.stall_iterations = cfg.timing.t_rfc + cfg.timing.t_refi + 1;
            let far = 10 * cfg.stall_iterations;
            let mut mem = MemorySystem::new(cfg).unwrap();
            mem.enqueue_read(PhysAddr::new(0), far);
            let done = mem.run_until_idle().expect("drain");
            assert_eq!(done.len(), 1);
            assert!(done[0].finish_cycle >= far);
        }
    }

    #[test]
    fn event_engine_skips_idle_cycles() {
        // Sparse refresh-enabled traffic: the per-cycle engine burns one
        // iteration per DRAM clock; the event engine does O(commands).
        let run = |engine: SimEngine| {
            let mut cfg = DramConfig::single_rank();
            cfg.engine = engine;
            let mut mem = MemorySystem::new(cfg).unwrap();
            for i in 0..32u64 {
                mem.enqueue_read(PhysAddr::new(i * 64), i * 2000);
            }
            let done = mem.run_until_idle().expect("drain");
            (
                done,
                mem.cycle(),
                mem.stats().clone(),
                mem.loop_iterations(),
            )
        };
        let (done_pc, cycle_pc, stats_pc, iters_pc) = run(SimEngine::PerCycle);
        let (done_ev, cycle_ev, stats_ev, iters_ev) = run(SimEngine::EventDriven);
        assert_eq!(done_pc, done_ev);
        assert_eq!(cycle_pc, cycle_ev);
        assert_eq!(stats_pc, stats_ev);
        assert!(
            iters_ev * 10 <= iters_pc,
            "event {iters_ev} vs per-cycle {iters_pc} iterations"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decoded_enqueue_validates_bounds() {
        let mut mem = single_rank();
        mem.enqueue_decoded(
            DramAddr {
                rank: 3,
                ..DramAddr::default()
            },
            RequestKind::Read,
            0,
            RequestId::new(0),
        );
    }
}
