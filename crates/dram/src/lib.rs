//! Cycle-level DDR4 DRAM simulator.
//!
//! This crate is the memory substrate of the RecNMP reproduction. The paper
//! evaluates its design with Ramulator (Kim et al., CAL 2015) configured
//! with Micron 8 Gb ×8 DDR4-2400 timing; no established DRAM-simulator crate
//! exists, so this crate re-implements the necessary subset from scratch:
//!
//! * the DDR4 device hierarchy — channel / DIMM / rank / bank group / bank —
//!   with per-bank row-buffer state ([`bank`]),
//! * the full timing-constraint set from Table I of the paper (tRC, tRCD,
//!   tCL, tRP, tBL, tCCD_S/L, tRRD_S/L, tFAW, plus the standard tRAS, tRTP,
//!   tWR, tWTR, tCWL, tREFI, tRFC needed for a working protocol) ([`timing`]),
//! * a command-level model of the shared command and data buses,
//! * an FR-FCFS memory controller with open-page policy and a 32-entry read
//!   queue (Table I) ([`controller`]),
//! * physical-address → DRAM-coordinate mapping, both a simple
//!   row–bank–rank–column interleave and the Skylake-style XOR mapping the
//!   paper cites ([`address`]),
//! * counters for bandwidth, row-buffer outcomes and per-request latency
//!   ([`stats`]), and DRAM energy accounting with the paper's constants
//!   ([`energy`]),
//! * a [`monitor::ProtocolMonitor`] that independently checks every issued
//!   command against the timing rules — used heavily by the test suite.
//!
//! The top-level entry point is [`MemorySystem`], one instance per memory
//! channel. RecNMP's rank-NMP modules each own a single-rank `MemorySystem`;
//! the host baseline uses one multi-rank instance so rank/bank interleaving
//! and command-bus contention are emergent rather than assumed.
//!
//! # Simulator performance
//!
//! The scheduler hot path is allocation-free and index-structured:
//! admitted requests live in a slab with recycled slots, reached through
//! per-(rank,bank) queues and seq-ordered order deques, with decoded
//! coordinates computed once at enqueue. Each bank caches its earliest
//! candidates per command class (one 64-byte line, stamp-invalidated
//! only when that bank changes), so an FR-FCFS decision is one traversal
//! of the banks that have work — requests needing the same command on
//! the same bank share one legality verdict.
//!
//! `run_until_idle` is **event-driven** by default ([`SimEngine`]): when
//! no command can issue, the clock jumps straight to the next cycle at
//! which anything could change — and the jump target falls out of the
//! same traversal that failed to issue, so there is no separate event
//! rescan. The result is cycle-identical to the per-cycle reference
//! engine — same completions (and completion order), same statistics,
//! same final cycle — while doing O(commands) instead of O(cycles) work;
//! the `event_equivalence` suite and the `sched_props` proptests enforce
//! this, and [`MemorySystem::loop_iterations`] exposes the work saved.
//! Hot callers avoid the completion-vector hand-off entirely via
//! [`MemorySystem::run_to_idle`] + [`MemorySystem::completions`] +
//! [`MemorySystem::clear_completions`] (a counting-allocator test proves
//! the steady-state loop performs zero allocations).
//!
//! # Examples
//!
//! ```
//! use recnmp_dram::{DramConfig, MemorySystem, Request};
//! use recnmp_types::PhysAddr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mem = MemorySystem::new(DramConfig::table1_baseline())?;
//! mem.enqueue_read(PhysAddr::new(0x40), 0);
//! let done = mem.run_until_idle()?;
//! assert_eq!(done.len(), 1);
//! // A cold read costs at least tRCD + tCL + tBL cycles.
//! assert!(done[0].finish_cycle >= 36);
//! # Ok(())
//! # }
//! ```

pub mod address;
pub mod bank;
pub mod command;
pub mod controller;
pub mod energy;
pub mod monitor;
pub mod request;
pub mod stats;
pub mod system;
pub mod timing;

pub use address::{AddressMapping, DramAddr};
pub use command::{DdrCommand, DdrCommandKind};
pub use controller::{DramConfig, SimEngine};
pub use energy::{DramEnergy, EnergyParams};
pub use request::{CompletedRequest, Request, RequestKind};
pub use stats::DramStats;
pub use system::MemorySystem;
pub use timing::DdrTiming;
