//! DDR command vocabulary.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::address::DramAddr;

/// The kind of a DDR command, without its target coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DdrCommandKind {
    /// Activate: open a row into the bank's row buffer.
    Act,
    /// Read a column burst from the open row.
    Rd,
    /// Write a column burst into the open row.
    Wr,
    /// Precharge: close the bank's open row.
    Pre,
    /// Refresh one rank (all banks must be precharged).
    Ref,
}

impl fmt::Display for DdrCommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Act => "ACT",
            Self::Rd => "RD",
            Self::Wr => "WR",
            Self::Pre => "PRE",
            Self::Ref => "REF",
        };
        f.write_str(s)
    }
}

/// A DDR command together with its target DRAM coordinates.
///
/// For [`DdrCommandKind::Ref`] only the rank coordinate is meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DdrCommand {
    /// What the command does.
    pub kind: DdrCommandKind,
    /// Where it is applied.
    pub addr: DramAddr,
}

impl DdrCommand {
    /// Creates a command.
    pub const fn new(kind: DdrCommandKind, addr: DramAddr) -> Self {
        Self { kind, addr }
    }
}

impl fmt::Display for DdrCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} r{} bg{} b{} row{} col{}",
            self.kind,
            self.addr.rank,
            self.addr.bank_group,
            self.addr.bank,
            self.addr.row,
            self.addr.column
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(DdrCommandKind::Act.to_string(), "ACT");
        assert_eq!(DdrCommandKind::Pre.to_string(), "PRE");
        assert_eq!(DdrCommandKind::Ref.to_string(), "REF");
    }

    #[test]
    fn command_display_includes_coordinates() {
        let cmd = DdrCommand::new(
            DdrCommandKind::Rd,
            DramAddr {
                rank: 1,
                bank_group: 2,
                bank: 3,
                row: 40,
                column: 5,
            },
        );
        assert_eq!(cmd.to_string(), "RD r1 bg2 b3 row40 col5");
    }
}
