//! Counters collected by the memory controller.

use recnmp_types::{units, Cycle};
use serde::{Deserialize, Serialize};

use crate::request::RowOutcome;

/// Aggregate statistics for one [`MemorySystem`](crate::MemorySystem).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DramStats {
    /// Completed read requests.
    pub reads: u64,
    /// Completed write requests.
    pub writes: u64,
    /// ACT commands issued.
    pub acts: u64,
    /// PRE commands issued.
    pub pres: u64,
    /// REF commands issued.
    pub refs: u64,
    /// Requests serviced from an already-open row.
    pub row_hits: u64,
    /// Requests that required an ACT into a closed bank.
    pub row_misses: u64,
    /// Requests that required closing another row first.
    pub row_conflicts: u64,
    /// Cycles the data bus carried a burst.
    pub data_bus_busy: Cycle,
    /// Cycles a command was driven on the command bus.
    pub cmd_bus_busy: Cycle,
    /// Sum of request latencies (cycles).
    pub latency_sum: Cycle,
    /// Worst observed request latency.
    pub latency_max: Cycle,
    /// Log2-bucketed latency histogram: bucket `i` counts latencies in
    /// `[2^i, 2^(i+1))`.
    pub latency_hist: [u64; 24],
}

impl DramStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed request's latency.
    pub fn record_latency(&mut self, latency: Cycle) {
        self.latency_sum += latency;
        self.latency_max = self.latency_max.max(latency);
        let bucket = (64 - latency.max(1).leading_zeros() as usize - 1).min(23);
        self.latency_hist[bucket] += 1;
    }

    /// Records the row-buffer outcome of a serviced request.
    pub fn record_outcome(&mut self, outcome: RowOutcome) {
        match outcome {
            RowOutcome::Hit => self.row_hits += 1,
            RowOutcome::Miss => self.row_misses += 1,
            RowOutcome::Conflict => self.row_conflicts += 1,
        }
    }

    /// Completed requests (reads + writes).
    pub fn completed(&self) -> u64 {
        self.reads + self.writes
    }

    /// Mean request latency in cycles (zero when nothing completed).
    pub fn mean_latency(&self) -> f64 {
        if self.completed() == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.completed() as f64
        }
    }

    /// Row-hit fraction over serviced requests.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Data bytes moved (64 per completed request).
    pub fn data_bytes(&self) -> u64 {
        self.completed() * units::CACHELINE_BYTES
    }

    /// Achieved bandwidth in GB/s over `elapsed` cycles.
    pub fn bandwidth_gbs(&self, elapsed: Cycle) -> f64 {
        units::bandwidth_gbs(self.data_bytes(), elapsed)
    }

    /// Data-bus utilization over `elapsed` cycles.
    pub fn bus_utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.data_bus_busy as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_recording_updates_all_aggregates() {
        let mut s = DramStats::new();
        s.reads = 2;
        s.record_latency(36);
        s.record_latency(100);
        assert_eq!(s.latency_sum, 136);
        assert_eq!(s.latency_max, 100);
        assert_eq!(s.mean_latency(), 68.0);
        // 36 lands in [32,64) = bucket 5; 100 in [64,128) = bucket 6.
        assert_eq!(s.latency_hist[5], 1);
        assert_eq!(s.latency_hist[6], 1);
    }

    #[test]
    fn outcome_counting() {
        let mut s = DramStats::new();
        s.record_outcome(RowOutcome::Hit);
        s.record_outcome(RowOutcome::Hit);
        s.record_outcome(RowOutcome::Conflict);
        assert_eq!(s.row_hits, 2);
        assert_eq!(s.row_conflicts, 1);
        assert!((s.row_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_of_fully_busy_bus() {
        let mut s = DramStats::new();
        // 1000 reads back to back: each keeps the bus busy 4 cycles.
        s.reads = 1000;
        s.data_bus_busy = 4000;
        let bw = s.bandwidth_gbs(4000);
        // 64 B / 4 cycles at 1.2 GHz = 19.2 GB/s.
        assert!((bw - 19.2).abs() < 0.01, "{bw}");
        assert!((s.bus_utilization(4000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = DramStats::new();
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.bus_utilization(0), 0.0);
    }
}
