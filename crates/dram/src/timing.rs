//! DDR4 timing parameters.
//!
//! All values are in DRAM clock cycles (1200 MHz for DDR4-2400). The
//! paper's Table I pins the core parameters; the remaining standard
//! parameters (tRAS, tRTP, tWR, tWTR, tCWL, tREFI, tRFC) are taken from the
//! Micron 8 Gb ×8 DDR4-2400 datasheet the paper cites, since a working
//! protocol model needs them.

use recnmp_types::ConfigError;
use serde::{Deserialize, Serialize};

/// The DDR4 timing-constraint set used by the simulator.
///
/// Construct with [`DdrTiming::ddr4_2400`] (the paper's configuration) or
/// build a custom set and validate it with [`DdrTiming::validate`].
///
/// # Examples
///
/// ```
/// let t = recnmp_dram::DdrTiming::ddr4_2400();
/// assert_eq!(t.t_rcd, 16);
/// assert_eq!(t.t_faw, 26);
/// assert!(t.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DdrTiming {
    /// ACT-to-ACT delay, same bank (row cycle time).
    pub t_rc: u64,
    /// ACT-to-RD/WR delay (RAS-to-CAS).
    pub t_rcd: u64,
    /// RD-to-first-data delay (CAS latency).
    pub t_cl: u64,
    /// PRE-to-ACT delay (row precharge).
    pub t_rp: u64,
    /// Data burst duration (burst length 8 at double data rate = 4 cycles).
    pub t_bl: u64,
    /// RD-to-RD delay, different bank group.
    pub t_ccd_s: u64,
    /// RD-to-RD delay, same bank group.
    pub t_ccd_l: u64,
    /// ACT-to-ACT delay, different bank group.
    pub t_rrd_s: u64,
    /// ACT-to-ACT delay, same bank group.
    pub t_rrd_l: u64,
    /// Four-activate window: at most 4 ACTs per rank in this many cycles.
    pub t_faw: u64,
    /// ACT-to-PRE minimum (row active time).
    pub t_ras: u64,
    /// RD-to-PRE minimum (read-to-precharge).
    pub t_rtp: u64,
    /// WR-to-data delay (CAS write latency).
    pub t_cwl: u64,
    /// Write recovery: last write data to PRE.
    pub t_wr: u64,
    /// Write-to-read turnaround, same rank.
    pub t_wtr: u64,
    /// Average refresh interval (one REF per rank every tREFI).
    pub t_refi: u64,
    /// Refresh cycle time (rank is busy for tRFC after REF).
    pub t_rfc: u64,
    /// Extra data-bus cycles when consecutive bursts come from different
    /// ranks (rank-to-rank switch).
    pub rank_switch: u64,
}

impl DdrTiming {
    /// The DDR4-2400 timing set from Table I of the paper, completed with
    /// the Micron MT40A 8 Gb datasheet values for the parameters Table I
    /// omits.
    pub const fn ddr4_2400() -> Self {
        Self {
            t_rc: 55,
            t_rcd: 16,
            t_cl: 16,
            t_rp: 16,
            t_bl: 4,
            t_ccd_s: 4,
            t_ccd_l: 6,
            t_rrd_s: 4,
            t_rrd_l: 6,
            t_faw: 26,
            // tRAS = tRC - tRP = 39 cycles (32.5 ns).
            t_ras: 39,
            // tRTP = max(4 nCK, 7.5 ns) = 9 cycles.
            t_rtp: 9,
            // CWL for DDR4-2400 = 12.
            t_cwl: 12,
            // tWR = 15 ns = 18 cycles.
            t_wr: 18,
            // tWTR_L = 7.5 ns = 9 cycles.
            t_wtr: 9,
            // tREFI = 7.8 us = 9360 cycles.
            t_refi: 9360,
            // tRFC for 8 Gb = 350 ns = 420 cycles.
            t_rfc: 420,
            rank_switch: 2,
        }
    }

    /// Checks internal consistency of the timing set.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first inconsistent field, e.g.
    /// when `t_rc < t_ras + t_rp` or any parameter that must be positive is
    /// zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let positive: [(&str, u64); 10] = [
            ("t_rc", self.t_rc),
            ("t_rcd", self.t_rcd),
            ("t_cl", self.t_cl),
            ("t_rp", self.t_rp),
            ("t_bl", self.t_bl),
            ("t_ccd_s", self.t_ccd_s),
            ("t_ccd_l", self.t_ccd_l),
            ("t_rrd_s", self.t_rrd_s),
            ("t_rrd_l", self.t_rrd_l),
            ("t_faw", self.t_faw),
        ];
        for (name, v) in positive {
            if v == 0 {
                return Err(ConfigError::new(name, "must be positive"));
            }
        }
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(ConfigError::new("t_rc", "must be at least t_ras + t_rp"));
        }
        if self.t_ccd_l < self.t_ccd_s {
            return Err(ConfigError::new("t_ccd_l", "must be at least t_ccd_s"));
        }
        if self.t_rrd_l < self.t_rrd_s {
            return Err(ConfigError::new("t_rrd_l", "must be at least t_rrd_s"));
        }
        if self.t_faw < 4 * self.t_rrd_s {
            return Err(ConfigError::new("t_faw", "must cover four tRRD_S gaps"));
        }
        if self.t_ras < self.t_rcd {
            return Err(ConfigError::new("t_ras", "must be at least t_rcd"));
        }
        Ok(())
    }

    /// Cycles from RD issue until the last data beat has transferred.
    pub const fn read_to_done(&self) -> u64 {
        self.t_cl + self.t_bl
    }

    /// Cycles from WR issue until the last data beat has transferred.
    pub const fn write_to_done(&self) -> u64 {
        self.t_cwl + self.t_bl
    }
}

impl Default for DdrTiming {
    fn default() -> Self {
        Self::ddr4_2400()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        let t = DdrTiming::ddr4_2400();
        assert_eq!(
            (t.t_rc, t.t_rcd, t.t_cl, t.t_rp, t.t_bl),
            (55, 16, 16, 16, 4)
        );
        assert_eq!(
            (t.t_ccd_s, t.t_ccd_l, t.t_rrd_s, t.t_rrd_l, t.t_faw),
            (4, 6, 4, 6, 26)
        );
    }

    #[test]
    fn default_validates() {
        assert!(DdrTiming::default().validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_field() {
        let mut t = DdrTiming::ddr4_2400();
        t.t_rcd = 0;
        let err = t.validate().unwrap_err();
        assert_eq!(err.field(), "t_rcd");
    }

    #[test]
    fn validate_rejects_short_trc() {
        let mut t = DdrTiming::ddr4_2400();
        t.t_rc = 10;
        assert_eq!(t.validate().unwrap_err().field(), "t_rc");
    }

    #[test]
    fn validate_rejects_inverted_ccd() {
        let mut t = DdrTiming::ddr4_2400();
        t.t_ccd_l = 2;
        assert_eq!(t.validate().unwrap_err().field(), "t_ccd_l");
    }

    #[test]
    fn validate_rejects_short_faw() {
        let mut t = DdrTiming::ddr4_2400();
        t.t_faw = 10;
        assert_eq!(t.validate().unwrap_err().field(), "t_faw");
    }

    #[test]
    fn derived_latencies() {
        let t = DdrTiming::ddr4_2400();
        assert_eq!(t.read_to_done(), 20);
        assert_eq!(t.write_to_done(), 16);
    }
}
