//! Memory requests and their completion records.

use recnmp_types::{Cycle, PhysAddr, RequestId};
use serde::{Deserialize, Serialize};

use crate::address::DramAddr;

/// Whether a request reads or writes one 64-byte burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// Read one burst.
    Read,
    /// Write one burst.
    Write,
}

/// A 64-byte memory request presented to a [`MemorySystem`].
///
/// [`MemorySystem`]: crate::MemorySystem
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Caller-chosen identifier, echoed in the completion record.
    pub id: RequestId,
    /// Physical byte address (the containing 64-byte burst is accessed).
    pub addr: PhysAddr,
    /// Read or write.
    pub kind: RequestKind,
    /// Cycle at which the request becomes visible to the controller.
    pub arrival: Cycle,
}

impl Request {
    /// Creates a read request.
    pub fn read(id: RequestId, addr: PhysAddr, arrival: Cycle) -> Self {
        Self {
            id,
            addr,
            kind: RequestKind::Read,
            arrival,
        }
    }

    /// Creates a write request.
    pub fn write(id: RequestId, addr: PhysAddr, arrival: Cycle) -> Self {
        Self {
            id,
            addr,
            kind: RequestKind::Write,
            arrival,
        }
    }
}

/// How the row buffer treated a serviced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowOutcome {
    /// The needed row was already open: column command only.
    Hit,
    /// The bank was closed: ACT + column command.
    Miss,
    /// Another row was open: PRE + ACT + column command.
    Conflict,
}

/// Completion record for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletedRequest {
    /// Identifier from the originating [`Request`].
    pub id: RequestId,
    /// Decoded coordinates the request was serviced at.
    pub addr: DramAddr,
    /// Read or write.
    pub kind: RequestKind,
    /// Cycle the request arrived at the controller.
    pub arrival: Cycle,
    /// Cycle the last data beat transferred.
    pub finish_cycle: Cycle,
    /// Row-buffer outcome.
    pub outcome: RowOutcome,
}

impl CompletedRequest {
    /// End-to-end latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.finish_cycle - self.arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let r = Request::read(RequestId::new(1), PhysAddr::new(64), 5);
        assert_eq!(r.kind, RequestKind::Read);
        let w = Request::write(RequestId::new(2), PhysAddr::new(128), 6);
        assert_eq!(w.kind, RequestKind::Write);
        assert_eq!(w.arrival, 6);
    }

    #[test]
    fn latency_is_finish_minus_arrival() {
        let c = CompletedRequest {
            id: RequestId::new(0),
            addr: DramAddr::default(),
            kind: RequestKind::Read,
            arrival: 10,
            finish_cycle: 46,
            outcome: RowOutcome::Miss,
        };
        assert_eq!(c.latency(), 36);
    }
}
