//! Per-bank and per-rank DRAM timing state machines.

use recnmp_types::Cycle;
use serde::{Deserialize, Serialize};

use crate::timing::DdrTiming;

/// Row-buffer state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BankState {
    /// All rows closed; an ACT is required before column commands.
    #[default]
    Closed,
    /// The given row is open in the row buffer.
    Open(u32),
}

/// Timing state of a single bank.
///
/// Each field records the earliest cycle at which the corresponding command
/// may legally be issued to this bank. The bank does not know about
/// rank-level constraints (tRRD, tFAW, tCCD); those live in [`RankTimer`].
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Bank {
    /// Current row-buffer state.
    pub state: BankState,
    next_act: Cycle,
    next_rd: Cycle,
    next_wr: Cycle,
    next_pre: Cycle,
}

impl Bank {
    /// Creates a closed bank with no pending constraints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Earliest cycle an ACT may be issued.
    pub fn act_ready(&self) -> Cycle {
        self.next_act
    }

    /// Earliest cycle a RD may be issued (assuming the row is open).
    pub fn rd_ready(&self) -> Cycle {
        self.next_rd
    }

    /// Earliest cycle a WR may be issued (assuming the row is open).
    pub fn wr_ready(&self) -> Cycle {
        self.next_wr
    }

    /// Earliest cycle a PRE may be issued.
    pub fn pre_ready(&self) -> Cycle {
        self.next_pre
    }

    /// Earliest cycle the column command of the given direction may be
    /// issued (assuming the row is open) — the bank-level "earliest ready"
    /// query the event-driven engine skips ahead to.
    pub fn col_ready(&self, is_read: bool) -> Cycle {
        if is_read {
            self.next_rd
        } else {
            self.next_wr
        }
    }

    /// Applies an ACT issued at `now` for `row`.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if the bank is open or the ACT violates
    /// timing; the controller must check legality first.
    pub fn do_act(&mut self, now: Cycle, row: u32, t: &DdrTiming) {
        debug_assert_eq!(self.state, BankState::Closed, "ACT to open bank");
        debug_assert!(now >= self.next_act, "ACT violates tRC/tRP");
        self.state = BankState::Open(row);
        self.next_act = now + t.t_rc;
        self.next_rd = now + t.t_rcd;
        self.next_wr = now + t.t_rcd;
        self.next_pre = now + t.t_ras;
    }

    /// Applies a RD issued at `now`.
    pub fn do_rd(&mut self, now: Cycle, t: &DdrTiming) {
        debug_assert!(
            matches!(self.state, BankState::Open(_)),
            "RD to closed bank"
        );
        debug_assert!(now >= self.next_rd, "RD violates tRCD/tCCD");
        // Reads delay a following precharge by tRTP.
        self.next_pre = self.next_pre.max(now + t.t_rtp);
    }

    /// Applies a WR issued at `now`.
    pub fn do_wr(&mut self, now: Cycle, t: &DdrTiming) {
        debug_assert!(
            matches!(self.state, BankState::Open(_)),
            "WR to closed bank"
        );
        debug_assert!(now >= self.next_wr, "WR violates tRCD");
        // Writes delay a following precharge until write recovery is done.
        self.next_pre = self.next_pre.max(now + t.t_cwl + t.t_bl + t.t_wr);
    }

    /// Applies a PRE issued at `now`.
    pub fn do_pre(&mut self, now: Cycle, t: &DdrTiming) {
        debug_assert!(now >= self.next_pre, "PRE violates tRAS/tRTP/tWR");
        self.state = BankState::Closed;
        self.next_act = self.next_act.max(now + t.t_rp);
    }

    /// Forces the bank closed with the post-refresh constraint applied
    /// (used when a refresh completes).
    pub fn finish_refresh(&mut self, refresh_done: Cycle) {
        self.state = BankState::Closed;
        self.next_act = self.next_act.max(refresh_done);
    }
}

/// The most bank groups a rank timer supports (DDR4 x8 devices have 4;
/// the fixed bound keeps the per-group timing state inline — the issue
/// loop queries it on every scheduling decision, and a heap indirection
/// here is a measurable fraction of simulator wall-clock).
pub const MAX_BANK_GROUPS: usize = 8;

/// Rank-level timing state: tRRD, tFAW, tCCD, write-to-read turnaround and
/// refresh bookkeeping.
#[derive(Debug, Clone)]
pub struct RankTimer {
    /// Issue times of the most recent ACTs (for the four-activate
    /// window), oldest first; only the first `act_count` are valid.
    act_history: [Cycle; 4],
    act_count: usize,
    next_act_any: Cycle,
    next_act_same_bg: [Cycle; MAX_BANK_GROUPS],
    next_rd_any: Cycle,
    next_rd_same_bg: [Cycle; MAX_BANK_GROUPS],
    next_wr_any: Cycle,
    faw: Cycle,
    /// Rank unavailable until this cycle (refresh in progress).
    pub busy_until: Cycle,
    /// Next cycle a refresh becomes due.
    pub refresh_due: Cycle,
}

impl RankTimer {
    /// Creates an idle rank timer for a rank with `bank_groups` groups.
    ///
    /// # Panics
    ///
    /// Panics if `bank_groups` exceeds [`MAX_BANK_GROUPS`].
    pub fn new(bank_groups: u8, t: &DdrTiming) -> Self {
        assert!(
            bank_groups as usize <= MAX_BANK_GROUPS,
            "RankTimer supports at most {MAX_BANK_GROUPS} bank groups"
        );
        Self {
            act_history: [0; 4],
            act_count: 0,
            next_act_any: 0,
            next_act_same_bg: [0; MAX_BANK_GROUPS],
            next_rd_any: 0,
            next_rd_same_bg: [0; MAX_BANK_GROUPS],
            next_wr_any: 0,
            faw: t.t_faw,
            busy_until: 0,
            refresh_due: t.t_refi,
        }
    }

    /// Earliest cycle an ACT to `bank_group` satisfies tRRD and tFAW.
    pub fn act_ready(&self, bank_group: u8) -> Cycle {
        let mut ready = self
            .next_act_any
            .max(self.next_act_same_bg[bank_group as usize])
            .max(self.busy_until);
        if self.act_count == 4 {
            // tFAW counts from the oldest of the last four ACTs.
            ready = ready.max(self.act_history[0] + self.faw_window());
        }
        ready
    }

    fn faw_window(&self) -> Cycle {
        self.faw
    }

    /// Earliest cycle a RD to `bank_group` satisfies tCCD and turnaround.
    pub fn rd_ready(&self, bank_group: u8) -> Cycle {
        self.next_rd_any
            .max(self.next_rd_same_bg[bank_group as usize])
            .max(self.busy_until)
    }

    /// Earliest cycle a WR to `bank_group` satisfies tCCD.
    pub fn wr_ready(&self, bank_group: u8) -> Cycle {
        // Writes share the CCD structure with reads; we track the rank-wide
        // constraint only (writes are rare in inference workloads).
        self.next_wr_any
            .max(self.next_rd_same_bg[bank_group as usize])
            .max(self.busy_until)
    }

    /// Earliest cycle the column command of the given direction satisfies
    /// the rank-level constraints — the rank-side counterpart of
    /// [`Bank::col_ready`] used by the event-driven engine.
    pub fn col_ready(&self, is_read: bool, bank_group: u8) -> Cycle {
        if is_read {
            self.rd_ready(bank_group)
        } else {
            self.wr_ready(bank_group)
        }
    }

    /// Records an ACT issued at `now` to `bank_group`.
    pub fn did_act(&mut self, now: Cycle, bank_group: u8, t: &DdrTiming) {
        self.next_act_any = now + t.t_rrd_s;
        self.next_act_same_bg[bank_group as usize] = now + t.t_rrd_l;
        if self.act_count == 4 {
            self.act_history.copy_within(1..4, 0);
            self.act_history[3] = now;
        } else {
            self.act_history[self.act_count] = now;
            self.act_count += 1;
        }
        self.faw = t.t_faw;
    }

    /// Records a RD issued at `now` to `bank_group`.
    pub fn did_rd(&mut self, now: Cycle, bank_group: u8, t: &DdrTiming) {
        self.next_rd_any = now + t.t_ccd_s;
        self.next_rd_same_bg[bank_group as usize] = now + t.t_ccd_l;
    }

    /// Records a WR issued at `now` to `bank_group`.
    pub fn did_wr(&mut self, now: Cycle, bank_group: u8, t: &DdrTiming) {
        self.next_wr_any = now + t.t_ccd_s;
        self.next_rd_same_bg[bank_group as usize] = now + t.t_ccd_l;
        // Write-to-read turnaround applies rank-wide.
        self.next_rd_any = self.next_rd_any.max(now + t.t_cwl + t.t_bl + t.t_wtr);
    }

    /// Records a REF issued at `now`; the rank is busy for tRFC.
    pub fn did_ref(&mut self, now: Cycle, t: &DdrTiming) {
        self.busy_until = now + t.t_rfc;
        self.refresh_due = now + t.t_refi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DdrTiming {
        DdrTiming::ddr4_2400()
    }

    #[test]
    fn act_opens_row_and_arms_timers() {
        let timing = t();
        let mut b = Bank::new();
        b.do_act(0, 42, &timing);
        assert_eq!(b.state, BankState::Open(42));
        assert_eq!(b.rd_ready(), timing.t_rcd);
        assert_eq!(b.act_ready(), timing.t_rc);
        assert_eq!(b.pre_ready(), timing.t_ras);
    }

    #[test]
    fn rd_extends_pre_by_trtp() {
        let timing = t();
        let mut b = Bank::new();
        b.do_act(0, 1, &timing);
        b.do_rd(timing.t_rcd + 100, &timing);
        assert_eq!(b.pre_ready(), timing.t_rcd + 100 + timing.t_rtp);
    }

    #[test]
    fn pre_closes_and_requires_trp() {
        let timing = t();
        let mut b = Bank::new();
        b.do_act(0, 1, &timing);
        b.do_pre(timing.t_ras, &timing);
        assert_eq!(b.state, BankState::Closed);
        // After PRE at tRAS, the next ACT must wait tRP more, but also the
        // original tRC from the first ACT.
        assert_eq!(b.act_ready(), timing.t_rc.max(timing.t_ras + timing.t_rp));
    }

    #[test]
    fn write_recovery_blocks_pre() {
        let timing = t();
        let mut b = Bank::new();
        b.do_act(0, 1, &timing);
        let wr_at = timing.t_rcd;
        b.do_wr(wr_at, &timing);
        assert_eq!(
            b.pre_ready(),
            (wr_at + timing.t_cwl + timing.t_bl + timing.t_wr).max(timing.t_ras)
        );
    }

    #[test]
    fn rank_faw_limits_fifth_act() {
        let timing = t();
        let mut r = RankTimer::new(4, &timing);
        // Issue four ACTs as fast as tRRD_S allows, rotating bank groups.
        let mut now = 0;
        for i in 0..4u8 {
            now = r.act_ready(i % 4).max(now);
            r.did_act(now, i % 4, &timing);
        }
        // Fifth ACT must wait for the tFAW window from the first ACT.
        let fifth = r.act_ready(0);
        assert!(fifth >= timing.t_faw, "fifth ACT at {fifth}");
    }

    #[test]
    fn rank_ccd_long_within_group() {
        let timing = t();
        let mut r = RankTimer::new(4, &timing);
        r.did_rd(10, 2, &timing);
        assert_eq!(r.rd_ready(2), 10 + timing.t_ccd_l);
        assert_eq!(r.rd_ready(1), 10 + timing.t_ccd_s);
    }

    #[test]
    fn refresh_blocks_rank() {
        let timing = t();
        let mut r = RankTimer::new(4, &timing);
        r.did_ref(100, &timing);
        assert_eq!(r.busy_until, 100 + timing.t_rfc);
        assert_eq!(r.refresh_due, 100 + timing.t_refi);
        assert!(r.act_ready(0) >= 100 + timing.t_rfc);
    }

    #[test]
    fn write_to_read_turnaround() {
        let timing = t();
        let mut r = RankTimer::new(4, &timing);
        r.did_wr(50, 0, &timing);
        assert!(r.rd_ready(1) >= 50 + timing.t_cwl + timing.t_bl + timing.t_wtr);
    }
}
