//! Physical-address to DRAM-coordinate mapping.
//!
//! A [`MemorySystem`](crate::MemorySystem) models one memory channel; the
//! mapper translates a channel-local physical byte address into
//! (rank, bank group, bank, row, column-burst) coordinates.
//!
//! Two mappings are provided:
//!
//! * [`AddressMapping::RowRankBankColumn`] — a textbook open-page
//!   interleave with the column bits lowest: sequential addresses sweep
//!   one row of one bank (maximizing row hits, which is what matters for
//!   multi-burst embedding vectors), with bank-group/bank/rank bits above
//!   the columns.
//! * [`AddressMapping::SkylakeXor`] — the Skylake-style mapping the paper
//!   uses (Table I cites the DRAMA reverse-engineering work): bank and
//!   bank-group bits are XOR-folded with row bits so that row-conflicting
//!   streams spread across banks.

use recnmp_types::{ConfigError, PhysAddr};
use serde::{Deserialize, Serialize};

/// Coordinates of one 64-byte burst within a memory channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DramAddr {
    /// Rank index within the channel (DIMM-major: `dimm * ranks_per_dimm +
    /// rank_in_dimm`).
    pub rank: u8,
    /// Bank group within the rank.
    pub bank_group: u8,
    /// Bank within the bank group.
    pub bank: u8,
    /// Row within the bank.
    pub row: u32,
    /// Column in 64-byte burst units.
    pub column: u32,
}

impl DramAddr {
    /// Returns the flat bank index `bank_group * banks_per_group + bank`.
    pub fn flat_bank(&self, banks_per_group: u8) -> usize {
        self.bank_group as usize * banks_per_group as usize + self.bank as usize
    }
}

/// Channel geometry: how many ranks/banks/rows/columns the mapper targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Ranks in the channel (`dimms * ranks_per_dimm`).
    pub ranks: u8,
    /// Bank groups per rank (4 for DDR4 ×8).
    pub bank_groups: u8,
    /// Banks per bank group (4 for DDR4).
    pub banks_per_group: u8,
    /// Rows per bank.
    pub rows: u32,
    /// Columns per row, in 64-byte burst units (128 for an 8 KiB row
    /// buffer).
    pub columns: u32,
}

impl Geometry {
    /// DDR4 8 Gb ×8 devices forming a 64-bit rank: 4 bank groups × 4 banks,
    /// 65536 rows, 8 KiB row buffer (128 bursts), 8 GiB per rank.
    pub const fn ddr4_8gb_x8(ranks: u8) -> Self {
        Self {
            ranks,
            bank_groups: 4,
            banks_per_group: 4,
            rows: 65536,
            columns: 128,
        }
    }

    /// Total channel capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.ranks as u64
            * self.bank_groups as u64
            * self.banks_per_group as u64
            * self.rows as u64
            * self.columns as u64
            * 64
    }

    /// Total banks in the channel.
    pub fn total_banks(&self) -> usize {
        self.ranks as usize * self.banks_per_rank()
    }

    /// Banks per rank.
    pub fn banks_per_rank(&self) -> usize {
        self.bank_groups as usize * self.banks_per_group as usize
    }

    /// Checks that every field is a positive power of two (so bit slicing
    /// is exact).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let fields: [(&str, u64); 5] = [
            ("ranks", self.ranks as u64),
            ("bank_groups", self.bank_groups as u64),
            ("banks_per_group", self.banks_per_group as u64),
            ("rows", self.rows as u64),
            ("columns", self.columns as u64),
        ];
        for (name, v) in fields {
            if v == 0 || !v.is_power_of_two() {
                return Err(ConfigError::new(name, "must be a positive power of two"));
            }
        }
        Ok(())
    }
}

/// Strategy for translating physical addresses to DRAM coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AddressMapping {
    /// `[row | rank | bank | bank-group | column]` from most to least
    /// significant. Sequential addresses sweep a row and rotate bank groups
    /// every burst.
    RowRankBankColumn,
    /// Skylake-style mapping: like `RowRankBankColumn` but bank, bank-group
    /// and rank bits are XOR-folded with low row bits, matching the
    /// open-page-conflict behavior of the paper's test system.
    #[default]
    SkylakeXor,
}

impl AddressMapping {
    /// Decodes a physical address into channel-local DRAM coordinates.
    ///
    /// Addresses beyond the channel capacity wrap (the high bits are
    /// ignored), which keeps the mapper total; trace generators are
    /// responsible for staying within capacity.
    pub fn decode(self, addr: PhysAddr, geo: &Geometry) -> DramAddr {
        let burst = addr.get() >> 6; // 64-byte burst index
        let col_bits = geo.columns.trailing_zeros();
        let bg_bits = geo.bank_groups.trailing_zeros();
        let bank_bits = geo.banks_per_group.trailing_zeros();
        let rank_bits = geo.ranks.trailing_zeros();
        let row_bits = geo.rows.trailing_zeros();

        let mut x = burst;
        let mut take = |bits: u32| -> u64 {
            let v = x & ((1u64 << bits) - 1);
            x >>= bits;
            v
        };

        let column = take(col_bits) as u32;
        let mut bank_group = take(bg_bits) as u8;
        let mut bank = take(bank_bits) as u8;
        let mut rank = take(rank_bits) as u8;
        let row = (take(row_bits) as u32) & (geo.rows - 1);

        if self == Self::SkylakeXor {
            // Fold low row bits into the bank/rank selectors, in the spirit
            // of the XOR bank functions reverse-engineered for Skylake.
            if bg_bits > 0 {
                bank_group ^= (row & (geo.bank_groups as u32 - 1)) as u8;
            }
            if bank_bits > 0 {
                bank ^= ((row >> bg_bits) & (geo.banks_per_group as u32 - 1)) as u8;
            }
            if rank_bits > 0 {
                rank ^= ((row >> (bg_bits + bank_bits)) & (geo.ranks as u32 - 1)) as u8;
            }
        }

        DramAddr {
            rank,
            bank_group,
            bank,
            row,
            column,
        }
    }

    /// Returns the rank that `addr` maps to, without computing the rest of
    /// the coordinates.
    pub fn rank_of(self, addr: PhysAddr, geo: &Geometry) -> u8 {
        self.decode(addr, geo).rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> Geometry {
        Geometry::ddr4_8gb_x8(2)
    }

    #[test]
    fn capacity_matches_8gib_per_rank() {
        assert_eq!(geo().capacity_bytes(), 2 * 8 * 1024 * 1024 * 1024);
        assert_eq!(geo().total_banks(), 32);
    }

    #[test]
    fn sequential_bursts_share_a_row() {
        let m = AddressMapping::RowRankBankColumn;
        let g = geo();
        let a0 = m.decode(PhysAddr::new(0), &g);
        let a1 = m.decode(PhysAddr::new(64), &g);
        assert_eq!(a0.row, a1.row);
        assert_eq!(a0.rank, a1.rank);
        assert_eq!(a1.column, a0.column + 1);
    }

    #[test]
    fn same_burst_same_coordinates() {
        let m = AddressMapping::SkylakeXor;
        let g = geo();
        let a0 = m.decode(PhysAddr::new(0x1000), &g);
        let a1 = m.decode(PhysAddr::new(0x103f), &g);
        assert_eq!(a0, a1);
    }

    #[test]
    fn decode_stays_in_bounds() {
        let g = geo();
        for mapping in [
            AddressMapping::RowRankBankColumn,
            AddressMapping::SkylakeXor,
        ] {
            for i in 0..10_000u64 {
                let a = mapping.decode(PhysAddr::new(i * 4097), &g);
                assert!(a.rank < g.ranks);
                assert!(a.bank_group < g.bank_groups);
                assert!(a.bank < g.banks_per_group);
                assert!(a.row < g.rows);
                assert!(a.column < g.columns);
            }
        }
    }

    #[test]
    fn xor_mapping_spreads_row_strided_stream() {
        // A stream striding by exactly one row hits the same bank forever
        // under the plain mapping but spreads under the XOR mapping.
        let g = geo();
        let row_stride = 64 * g.columns as u64 * 4; // row bit 2 positions up
        let plain: Vec<u8> = (0..16)
            .map(|i| {
                AddressMapping::RowRankBankColumn
                    .decode(PhysAddr::new(i * row_stride * 1024), &g)
                    .bank_group
            })
            .collect();
        let xor: Vec<u8> = (0..16)
            .map(|i| {
                AddressMapping::SkylakeXor
                    .decode(PhysAddr::new(i * row_stride * 1024), &g)
                    .bank_group
            })
            .collect();
        let plain_distinct = plain.iter().collect::<std::collections::HashSet<_>>().len();
        let xor_distinct = xor.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(xor_distinct >= plain_distinct);
    }

    #[test]
    fn validate_rejects_non_power_of_two() {
        let mut g = geo();
        g.columns = 100;
        assert_eq!(g.validate().unwrap_err().field(), "columns");
        assert!(geo().validate().is_ok());
    }

    #[test]
    fn flat_bank_indexing() {
        let a = DramAddr {
            rank: 0,
            bank_group: 2,
            bank: 3,
            row: 0,
            column: 0,
        };
        assert_eq!(a.flat_bank(4), 11);
    }

    #[test]
    fn single_rank_geometry_decodes_rank_zero() {
        let g = Geometry::ddr4_8gb_x8(1);
        for i in 0..1000u64 {
            let a = AddressMapping::SkylakeXor.decode(PhysAddr::new(i * 640009), &g);
            assert_eq!(a.rank, 0);
        }
    }
}
