//! Memory-controller configuration.

use recnmp_types::ConfigError;
use serde::{Deserialize, Serialize};

use crate::address::{AddressMapping, Geometry};
use crate::timing::DdrTiming;

/// Main-loop strategy of the cycle-level engine.
///
/// Both engines are *cycle-accurate* and produce identical statistics and
/// completion times; they differ only in how many loop iterations it takes
/// to get there (see the `event_equivalence` test suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SimEngine {
    /// Skip ahead: when no command can issue this cycle, jump the clock to
    /// the next cycle at which anything could change (a staged arrival, a
    /// refresh deadline, a bank/rank timing expiry, or the data bus coming
    /// free). Does O(commands) work instead of O(cycles).
    #[default]
    EventDriven,
    /// Advance one DRAM clock per loop iteration. The reference engine the
    /// event-driven path is validated against.
    PerCycle,
}

/// Configuration of one memory channel and its controller.
///
/// Use [`DramConfig::table1_baseline`] for the paper's per-channel baseline
/// (1 DIMM × 2 ranks of 8 Gb ×8 devices, FR-FCFS, 32-entry read queue,
/// open-page policy) or [`DramConfig::single_rank`] for the DRAM devices
/// behind one rank-NMP module.
///
/// # Examples
///
/// ```
/// use recnmp_dram::DramConfig;
///
/// let cfg = DramConfig::with_ranks(2, 2); // 2 DIMMs x 2 ranks
/// assert_eq!(cfg.geometry().ranks, 4);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// DIMMs on the channel.
    pub dimms: u8,
    /// Ranks per DIMM.
    pub ranks_per_dimm: u8,
    /// DDR timing set.
    pub timing: DdrTiming,
    /// Physical-address mapping policy.
    pub mapping: AddressMapping,
    /// Read-queue capacity (Table I: 32).
    pub read_queue: usize,
    /// Write-queue capacity.
    pub write_queue: usize,
    /// Whether periodic refresh is simulated.
    pub refresh: bool,
    /// Age (cycles) after which the oldest request preempts row-hit
    /// prioritization, bounding FR-FCFS starvation.
    pub starvation_cycles: u64,
    /// Main-loop strategy (event-driven skip-ahead by default).
    pub engine: SimEngine,
    /// Loop iterations without any request progress after which
    /// `run_until_idle` reports [`recnmp_types::SimError::Stalled`]
    /// instead of spinning forever.
    pub stall_iterations: u64,
}

impl DramConfig {
    /// The paper's Table I per-channel baseline: 1 DIMM × 2 ranks,
    /// DDR4-2400, FR-FCFS with a 32-entry read queue, open-page policy,
    /// Skylake-style address mapping.
    pub fn table1_baseline() -> Self {
        Self::with_ranks(1, 2)
    }

    /// A channel with `dimms × ranks_per_dimm` ranks and default policies.
    pub fn with_ranks(dimms: u8, ranks_per_dimm: u8) -> Self {
        Self {
            dimms,
            ranks_per_dimm,
            timing: DdrTiming::ddr4_2400(),
            mapping: AddressMapping::SkylakeXor,
            read_queue: 32,
            write_queue: 32,
            refresh: true,
            starvation_cycles: 2048,
            engine: SimEngine::EventDriven,
            stall_iterations: 1_000_000,
        }
    }

    /// The DRAM devices behind a single rank, as seen by a rank-NMP module:
    /// one rank, no host-side mapping games (identity interleave), refresh
    /// on.
    pub fn single_rank() -> Self {
        let mut cfg = Self::with_ranks(1, 1);
        cfg.mapping = AddressMapping::RowRankBankColumn;
        cfg
    }

    /// Channel geometry implied by the DIMM/rank counts.
    pub fn geometry(&self) -> Geometry {
        Geometry::ddr4_8gb_x8(self.dimms * self.ranks_per_dimm)
    }

    /// Total ranks on the channel.
    pub fn total_ranks(&self) -> u8 {
        self.dimms * self.ranks_per_dimm
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the rank count is not a positive power
    /// of two, a queue is empty, or the timing set is inconsistent.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.dimms == 0 {
            return Err(ConfigError::new("dimms", "must be positive"));
        }
        if self.ranks_per_dimm == 0 {
            return Err(ConfigError::new("ranks_per_dimm", "must be positive"));
        }
        if self.read_queue == 0 {
            return Err(ConfigError::new("read_queue", "must be positive"));
        }
        if self.write_queue == 0 {
            return Err(ConfigError::new("write_queue", "must be positive"));
        }
        if self.stall_iterations <= self.timing.t_rfc + self.timing.t_refi {
            // A per-cycle engine legitimately idles for a whole refresh
            // epoch; a smaller bound would misreport it as a livelock.
            return Err(ConfigError::new(
                "stall_iterations",
                "must exceed tRFC + tREFI",
            ));
        }
        self.timing.validate()?;
        self.geometry().validate()
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::table1_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let cfg = DramConfig::table1_baseline();
        assert_eq!(cfg.total_ranks(), 2);
        assert_eq!(cfg.read_queue, 32);
        assert!(cfg.refresh);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn single_rank_geometry() {
        let cfg = DramConfig::single_rank();
        assert_eq!(cfg.geometry().ranks, 1);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_dimms() {
        let mut cfg = DramConfig::table1_baseline();
        cfg.dimms = 0;
        assert_eq!(cfg.validate().unwrap_err().field(), "dimms");
    }

    #[test]
    fn validate_rejects_empty_queue() {
        let mut cfg = DramConfig::table1_baseline();
        cfg.read_queue = 0;
        assert_eq!(cfg.validate().unwrap_err().field(), "read_queue");
    }

    #[test]
    fn validate_rejects_tiny_stall_bound() {
        let mut cfg = DramConfig::table1_baseline();
        cfg.stall_iterations = cfg.timing.t_refi;
        assert_eq!(cfg.validate().unwrap_err().field(), "stall_iterations");
    }

    #[test]
    fn default_engine_is_event_driven() {
        assert_eq!(DramConfig::table1_baseline().engine, SimEngine::EventDriven);
    }

    #[test]
    fn capacity_scales_with_ranks() {
        let small = DramConfig::with_ranks(1, 2).geometry().capacity_bytes();
        let large = DramConfig::with_ranks(4, 2).geometry().capacity_bytes();
        assert_eq!(large, 4 * small);
    }
}
