//! Memory-controller configuration.

use recnmp_types::ConfigError;
use serde::{Deserialize, Serialize};

use crate::address::{AddressMapping, Geometry};
use crate::timing::DdrTiming;

/// Configuration of one memory channel and its controller.
///
/// Use [`DramConfig::table1_baseline`] for the paper's per-channel baseline
/// (1 DIMM × 2 ranks of 8 Gb ×8 devices, FR-FCFS, 32-entry read queue,
/// open-page policy) or [`DramConfig::single_rank`] for the DRAM devices
/// behind one rank-NMP module.
///
/// # Examples
///
/// ```
/// use recnmp_dram::DramConfig;
///
/// let cfg = DramConfig::with_ranks(2, 2); // 2 DIMMs x 2 ranks
/// assert_eq!(cfg.geometry().ranks, 4);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// DIMMs on the channel.
    pub dimms: u8,
    /// Ranks per DIMM.
    pub ranks_per_dimm: u8,
    /// DDR timing set.
    pub timing: DdrTiming,
    /// Physical-address mapping policy.
    pub mapping: AddressMapping,
    /// Read-queue capacity (Table I: 32).
    pub read_queue: usize,
    /// Write-queue capacity.
    pub write_queue: usize,
    /// Whether periodic refresh is simulated.
    pub refresh: bool,
    /// Age (cycles) after which the oldest request preempts row-hit
    /// prioritization, bounding FR-FCFS starvation.
    pub starvation_cycles: u64,
}

impl DramConfig {
    /// The paper's Table I per-channel baseline: 1 DIMM × 2 ranks,
    /// DDR4-2400, FR-FCFS with a 32-entry read queue, open-page policy,
    /// Skylake-style address mapping.
    pub fn table1_baseline() -> Self {
        Self::with_ranks(1, 2)
    }

    /// A channel with `dimms × ranks_per_dimm` ranks and default policies.
    pub fn with_ranks(dimms: u8, ranks_per_dimm: u8) -> Self {
        Self {
            dimms,
            ranks_per_dimm,
            timing: DdrTiming::ddr4_2400(),
            mapping: AddressMapping::SkylakeXor,
            read_queue: 32,
            write_queue: 32,
            refresh: true,
            starvation_cycles: 2048,
        }
    }

    /// The DRAM devices behind a single rank, as seen by a rank-NMP module:
    /// one rank, no host-side mapping games (identity interleave), refresh
    /// on.
    pub fn single_rank() -> Self {
        let mut cfg = Self::with_ranks(1, 1);
        cfg.mapping = AddressMapping::RowRankBankColumn;
        cfg
    }

    /// Channel geometry implied by the DIMM/rank counts.
    pub fn geometry(&self) -> Geometry {
        Geometry::ddr4_8gb_x8(self.dimms * self.ranks_per_dimm)
    }

    /// Total ranks on the channel.
    pub fn total_ranks(&self) -> u8 {
        self.dimms * self.ranks_per_dimm
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the rank count is not a positive power
    /// of two, a queue is empty, or the timing set is inconsistent.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.dimms == 0 {
            return Err(ConfigError::new("dimms", "must be positive"));
        }
        if self.ranks_per_dimm == 0 {
            return Err(ConfigError::new("ranks_per_dimm", "must be positive"));
        }
        if self.read_queue == 0 {
            return Err(ConfigError::new("read_queue", "must be positive"));
        }
        if self.write_queue == 0 {
            return Err(ConfigError::new("write_queue", "must be positive"));
        }
        self.timing.validate()?;
        self.geometry().validate()
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::table1_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let cfg = DramConfig::table1_baseline();
        assert_eq!(cfg.total_ranks(), 2);
        assert_eq!(cfg.read_queue, 32);
        assert!(cfg.refresh);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn single_rank_geometry() {
        let cfg = DramConfig::single_rank();
        assert_eq!(cfg.geometry().ranks, 1);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_dimms() {
        let mut cfg = DramConfig::table1_baseline();
        cfg.dimms = 0;
        assert_eq!(cfg.validate().unwrap_err().field(), "dimms");
    }

    #[test]
    fn validate_rejects_empty_queue() {
        let mut cfg = DramConfig::table1_baseline();
        cfg.read_queue = 0;
        assert_eq!(cfg.validate().unwrap_err().field(), "read_queue");
    }

    #[test]
    fn capacity_scales_with_ranks() {
        let small = DramConfig::with_ranks(1, 2).geometry().capacity_bytes();
        let large = DramConfig::with_ranks(4, 2).geometry().capacity_bytes();
        assert_eq!(large, 4 * small);
    }
}
