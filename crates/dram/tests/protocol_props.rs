//! Property-based tests: the FR-FCFS controller never violates DDR timing,
//! never loses requests, and respects basic latency bounds, under random
//! request streams and random (valid) configurations.

use proptest::prelude::*;
use recnmp_dram::{AddressMapping, DramConfig, MemorySystem};
use recnmp_types::PhysAddr;

fn arb_config() -> impl Strategy<Value = DramConfig> {
    (
        prop_oneof![Just(1u8), Just(2u8), Just(4u8)],
        prop_oneof![Just(1u8), Just(2u8)],
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(dimms, ranks, refresh, skylake)| {
            let mut cfg = DramConfig::with_ranks(dimms, ranks);
            cfg.refresh = refresh;
            cfg.mapping = if skylake {
                AddressMapping::SkylakeXor
            } else {
                AddressMapping::RowRankBankColumn
            };
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_streams_obey_protocol(
        cfg in arb_config(),
        addrs in prop::collection::vec(0u64..(1 << 33), 1..120),
        gap in 0u64..12,
    ) {
        let mut mem = MemorySystem::new(cfg).expect("valid config");
        mem.attach_monitor();
        for (i, a) in addrs.iter().enumerate() {
            mem.enqueue_read(PhysAddr::new(a & !63), i as u64 * gap);
        }
        let done = mem.run_until_idle().expect("drain");
        // Every request completes exactly once.
        prop_assert_eq!(done.len(), addrs.len());
        // The independent protocol monitor saw no timing violations.
        prop_assert!(
            mem.monitor_violations().is_empty(),
            "violations: {:?}",
            mem.monitor_violations()
        );
        // No read can complete faster than tCL + tBL.
        let t = mem.config().timing;
        for c in &done {
            prop_assert!(c.latency() >= t.t_cl + t.t_bl);
        }
    }

    #[test]
    fn same_address_twice_completes_twice(
        addr in 0u64..(1 << 30),
    ) {
        let mut mem = MemorySystem::new(DramConfig::single_rank()).unwrap();
        mem.enqueue_read(PhysAddr::new(addr & !63), 0);
        mem.enqueue_read(PhysAddr::new(addr & !63), 0);
        let done = mem.run_until_idle().expect("drain");
        prop_assert_eq!(done.len(), 2);
        // Second access is a row hit.
        prop_assert_eq!(done[1].outcome, recnmp_dram::request::RowOutcome::Hit);
    }

    #[test]
    fn stats_consistency(
        addrs in prop::collection::vec(0u64..(1 << 32), 1..80),
    ) {
        let mut cfg = DramConfig::table1_baseline();
        cfg.refresh = false;
        let mut mem = MemorySystem::new(cfg).unwrap();
        for a in &addrs {
            mem.enqueue_read(PhysAddr::new(a & !63), 0);
        }
        let done = mem.run_until_idle().expect("drain");
        let s = mem.stats();
        prop_assert_eq!(s.reads, done.len() as u64);
        prop_assert_eq!(s.row_hits + s.row_misses + s.row_conflicts, s.reads);
        // Every non-hit request triggers at least one ACT; thrashing (an
        // older conflicting request closing the row before the column
        // command issues) can add more.
        prop_assert!(s.acts >= s.row_misses + s.row_conflicts);
        prop_assert_eq!(s.data_bus_busy, 4 * s.reads);
    }

    #[test]
    fn completion_order_matches_data_bus_order(
        addrs in prop::collection::vec(0u64..(1 << 28), 2..60),
    ) {
        let mut mem = MemorySystem::new(DramConfig::single_rank()).unwrap();
        for a in &addrs {
            mem.enqueue_read(PhysAddr::new(a & !63), 0);
        }
        let done = mem.run_until_idle().expect("drain");
        // Data bursts on one channel cannot overlap: finish cycles must be
        // pairwise distinct and separated by at least tBL.
        let mut finishes: Vec<u64> = done.iter().map(|c| c.finish_cycle).collect();
        finishes.sort_unstable();
        for w in finishes.windows(2) {
            prop_assert!(w[1] >= w[0] + 4, "bursts overlap: {w:?}");
        }
    }
}
