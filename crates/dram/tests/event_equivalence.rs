//! Golden-equivalence suite: the event-driven skip-ahead engine must be
//! *cycle-identical* to the per-cycle reference engine — same completion
//! records (ids, cycles, outcomes), same final clock, same `DramStats`,
//! and zero protocol-monitor violations — across refresh on/off, FR-FCFS
//! starvation, write drains and multi-rank workloads, while doing at
//! least 10x less main-loop work on sparse refresh-enabled traffic.

use recnmp_dram::request::Request;
use recnmp_dram::{DramConfig, DramStats, MemorySystem, SimEngine};
use recnmp_types::rng::DetRng;
use recnmp_types::{Cycle, PhysAddr, RequestId};

/// Outcome of one engine run, everything identity cares about.
#[derive(Debug, PartialEq)]
struct Golden {
    completions: Vec<(u64, Cycle, Cycle)>,
    final_cycle: Cycle,
    stats: DramStats,
    violations: usize,
}

fn run(cfg: &DramConfig, engine: SimEngine, reqs: &[Request]) -> (Golden, u64) {
    let mut cfg = cfg.clone();
    cfg.engine = engine;
    let mut mem = MemorySystem::new(cfg).expect("valid config");
    mem.attach_monitor();
    for r in reqs {
        mem.enqueue(*r);
    }
    let done = mem.run_until_idle().expect("drain");
    let golden = Golden {
        completions: done
            .iter()
            .map(|c| (c.id.get(), c.arrival, c.finish_cycle))
            .collect(),
        final_cycle: mem.cycle(),
        stats: mem.stats().clone(),
        violations: mem.monitor_violations().len(),
    };
    (golden, mem.loop_iterations())
}

/// Runs `reqs` under both engines and asserts identity; returns
/// (per-cycle iterations, event iterations).
fn assert_equivalent(cfg: &DramConfig, reqs: &[Request]) -> (u64, u64) {
    let (ref_run, ref_iters) = run(cfg, SimEngine::PerCycle, reqs);
    let (ev_run, ev_iters) = run(cfg, SimEngine::EventDriven, reqs);
    assert_eq!(ref_run.violations, 0, "reference engine broke protocol");
    assert_eq!(ev_run.violations, 0, "event engine broke protocol");
    assert_eq!(ref_run, ev_run, "engines diverged");
    (ref_iters, ev_iters)
}

fn reads(n: u64, seed: u64, span: u64, gap: u64) -> Vec<Request> {
    let mut rng = DetRng::seed(seed);
    (0..n)
        .map(|i| {
            Request::read(
                RequestId::new(i),
                PhysAddr::new(rng.below(span) & !63),
                i * gap,
            )
        })
        .collect()
}

#[test]
fn dense_random_multi_rank_refresh_on() {
    let cfg = DramConfig::with_ranks(2, 2);
    assert_equivalent(&cfg, &reads(400, 11, 8 << 30, 1));
}

#[test]
fn dense_random_refresh_off() {
    let mut cfg = DramConfig::table1_baseline();
    cfg.refresh = false;
    assert_equivalent(&cfg, &reads(400, 12, 8 << 30, 2));
}

#[test]
fn single_rank_device_config() {
    // The rank-NMP device configuration (identity mapping, refresh on).
    let cfg = DramConfig::single_rank();
    assert_equivalent(&cfg, &reads(300, 13, 1 << 30, 7));
}

#[test]
fn frfcfs_starvation_guard_fires_identically() {
    // A stream of row hits to one row plus conflicting rows in the same
    // bank; with a tiny starvation bound the oldest-first preemption path
    // is exercised in both engines.
    let mut cfg = DramConfig::table1_baseline();
    cfg.starvation_cycles = 48;
    cfg.refresh = false;
    let row_stride = 8u64 * 1024 * 1024; // same bank, different row
    let mut reqs = Vec::new();
    for i in 0..96u64 {
        let addr = if i % 8 == 0 {
            PhysAddr::new((i / 8 + 1) * row_stride)
        } else {
            PhysAddr::new((i % 8) * 64)
        };
        reqs.push(Request::read(RequestId::new(i), addr, i / 4));
    }
    assert_equivalent(&cfg, &reqs);
}

#[test]
fn write_drain_mode_is_identical() {
    // Enough writes to trip the 3/4 write-drain threshold, mixed with
    // reads, so write scheduling and turnaround timing are covered.
    let mut cfg = DramConfig::table1_baseline();
    cfg.refresh = false;
    cfg.write_queue = 8;
    let mut rng = DetRng::seed(21);
    let mut reqs = Vec::new();
    for i in 0..200u64 {
        let addr = PhysAddr::new(rng.below(4 << 30) & !63);
        let id = RequestId::new(i);
        reqs.push(if i % 3 == 0 {
            Request::read(id, addr, i)
        } else {
            Request::write(id, addr, i)
        });
    }
    assert_equivalent(&cfg, &reqs);
}

#[test]
fn sparse_refresh_workload_with_queue_pressure() {
    // Sparse arrivals with a small read queue: admission back-pressure,
    // refresh epochs and long idle gaps all in one trace.
    let mut cfg = DramConfig::with_ranks(1, 2);
    cfg.read_queue = 4;
    let reqs = reads(128, 31, 8 << 30, 500);
    assert_equivalent(&cfg, &reqs);
}

#[test]
fn event_engine_is_10x_cheaper_on_sparse_refresh_traffic() {
    // The headline claim: refresh-enabled low-rate traffic is where the
    // per-cycle engine wastes almost every iteration.
    let cfg = DramConfig::table1_baseline();
    let reqs = reads(64, 41, 8 << 30, 3000);
    let (ref_iters, ev_iters) = assert_equivalent(&cfg, &reqs);
    assert!(
        ev_iters * 10 <= ref_iters,
        "event engine not >=10x cheaper: {ev_iters} vs {ref_iters} iterations"
    );
}
