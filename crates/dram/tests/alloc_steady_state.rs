//! Allocation guard for the scheduler hot path.
//!
//! The restructured engine holds every queue, slab slot, candidate cache
//! and completion record in reusable storage, so once the capacities are
//! warmed up, a steady-state enqueue → issue → complete loop must not
//! allocate at all. A counting global allocator proves it: after a
//! warm-up round, further rounds of the same traffic leave the
//! allocation counter untouched.
//!
//! This file holds exactly one test so no concurrent test thread can
//! pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use recnmp_dram::{DramConfig, MemorySystem};
use recnmp_types::PhysAddr;

/// One round of the per-rank traffic pattern: a burst of reads with
/// staggered arrivals, run to idle through the borrow-based completion
/// API (the hot path `RankNmp::process` uses).
fn round(mem: &mut MemorySystem, salt: u64) -> u64 {
    let base = mem.cycle();
    for i in 0..256u64 {
        mem.enqueue_read(
            PhysAddr::new(((i * 131 + salt * 7919) * 128) & ((1 << 30) - 1)),
            base + i / 2,
        );
    }
    mem.run_to_idle().expect("drain");
    let last = mem.completions().last().expect("completions").finish_cycle;
    mem.clear_completions();
    last
}

#[test]
fn steady_state_issue_loop_does_not_allocate() {
    let mut mem = MemorySystem::new(DramConfig::single_rank()).expect("config");

    // Warm-up: grows the staged queue, slab, per-bank queues and the
    // completion buffer to their steady-state capacities.
    for salt in 0..4 {
        round(&mut mem, salt);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut checksum = 0u64;
    for salt in 4..12 {
        checksum = checksum.wrapping_add(round(&mut mem, salt));
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(checksum > 0);
    assert_eq!(
        after - before,
        0,
        "steady-state issue loop allocated {} time(s)",
        after - before
    );
}
