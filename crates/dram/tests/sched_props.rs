//! Property-based equivalence of the restructured FR-FCFS scheduler.
//!
//! The per-bank candidate-cache scheduler with event skipping must be
//! *observationally identical* to the per-cycle reference engine — which
//! runs the exact same decision procedure one DRAM clock at a time, with
//! no candidate caches consulted across jumps and no event arithmetic —
//! across randomized traces: arrival jitter, refresh on and off, mixed
//! read/write traffic, and tight queue capacities. Identity covers the
//! full completion *vector* (ids, addresses, arrival and finish cycles,
//! row outcomes, and their order), the final clock, every statistics
//! counter, and protocol-monitor cleanliness.

use proptest::prelude::*;
use recnmp_dram::request::Request;
use recnmp_dram::{DramConfig, MemorySystem, SimEngine};
use recnmp_types::{PhysAddr, RequestId};

/// Builds a request trace from randomized per-request raw material.
fn trace(raw: &[(u64, u64, bool)], span: u64, gap: u64) -> Vec<Request> {
    raw.iter()
        .enumerate()
        .map(|(i, &(addr, jitter, write))| {
            let addr = PhysAddr::new((addr % span) & !63);
            // Arrivals are non-decreasing with random jitter, so traces
            // mix back-to-back bursts with quiet gaps.
            let arrival = i as u64 * gap + jitter;
            let id = RequestId::new(i as u64);
            if write {
                Request::write(id, addr, arrival)
            } else {
                Request::read(id, addr, arrival)
            }
        })
        .collect()
}

/// Everything identity cares about from one engine run.
type RunFingerprint = (
    Vec<(u64, u64, u64)>,
    u64,
    recnmp_dram::DramStats,
    usize,
    u64,
);

/// Runs `reqs` under one engine and returns everything identity cares
/// about.
fn run(cfg: &DramConfig, engine: SimEngine, reqs: &[Request]) -> RunFingerprint {
    let mut cfg = cfg.clone();
    cfg.engine = engine;
    let mut mem = MemorySystem::new(cfg).expect("valid config");
    mem.attach_monitor();
    for r in reqs {
        mem.enqueue(*r);
    }
    let done = mem.run_until_idle().expect("drain");
    (
        done.iter()
            .map(|c| (c.id.get(), c.arrival, c.finish_cycle))
            .collect(),
        mem.cycle(),
        mem.stats().clone(),
        mem.monitor_violations().len(),
        mem.loop_iterations(),
    )
}

fn assert_engines_agree(cfg: &DramConfig, reqs: &[Request]) {
    let (done_pc, cycle_pc, stats_pc, viol_pc, _) = run(cfg, SimEngine::PerCycle, reqs);
    let (done_ev, cycle_ev, stats_ev, viol_ev, _) = run(cfg, SimEngine::EventDriven, reqs);
    assert_eq!(viol_pc, 0, "reference engine broke the DDR protocol");
    assert_eq!(viol_ev, 0, "event engine broke the DDR protocol");
    // Completion-order identity: the vectors (not sets) must match.
    assert_eq!(done_pc, done_ev, "completion records or order diverged");
    assert_eq!(cycle_pc, cycle_ev, "final clock diverged");
    assert_eq!(stats_pc, stats_ev, "statistics diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Dense random reads with jittered arrivals, refresh on/off.
    #[test]
    fn read_traces_are_engine_invariant(
        raw in prop::collection::vec((0u64..u64::MAX, 0u64..8, Just(false)), 1..220),
        refresh in any::<bool>(),
        gap in prop_oneof![Just(0u64), Just(2), Just(37), Just(900)],
    ) {
        let mut cfg = DramConfig::table1_baseline();
        cfg.refresh = refresh;
        assert_engines_agree(&cfg, &trace(&raw, 8 << 30, gap));
    }

    // Mixed read/write traffic exercising drain mode and turnaround.
    #[test]
    fn mixed_rw_traces_are_engine_invariant(
        raw in prop::collection::vec((0u64..u64::MAX, 0u64..5, any::<bool>()), 1..200),
        refresh in any::<bool>(),
        write_queue in prop_oneof![Just(4usize), Just(8), Just(32)],
        gap in prop_oneof![Just(0u64), Just(3), Just(150)],
    ) {
        let mut cfg = DramConfig::with_ranks(1, 2);
        cfg.refresh = refresh;
        cfg.write_queue = write_queue;
        assert_engines_agree(&cfg, &trace(&raw, 4 << 30, gap));
    }

    // The rank-NMP device configuration (single rank, identity mapping)
    // under queue back-pressure and a tight starvation bound.
    #[test]
    fn rank_device_traces_are_engine_invariant(
        raw in prop::collection::vec((0u64..u64::MAX, 0u64..4, Just(false)), 1..200),
        read_queue in prop_oneof![Just(4usize), Just(32)],
        starvation in prop_oneof![Just(64u64), Just(2048)],
    ) {
        let mut cfg = DramConfig::single_rank();
        cfg.read_queue = read_queue;
        cfg.starvation_cycles = starvation;
        assert_engines_agree(&cfg, &trace(&raw, 1 << 30, 1));
    }

    // Multi-rank channels: rank-switch bus penalties and per-rank
    // refresh interleave with scheduling.
    #[test]
    fn multi_rank_traces_are_engine_invariant(
        raw in prop::collection::vec((0u64..u64::MAX, 0u64..6, any::<bool>()), 1..160),
        ranks in prop_oneof![Just((1u8, 2u8)), Just((2, 2)), Just((4, 2))],
    ) {
        let cfg = DramConfig::with_ranks(ranks.0, ranks.1);
        assert_engines_agree(&cfg, &trace(&raw, 8 << 30, 5));
    }

    // The public `next_event_cycle` query must never be *late*: whenever
    // any externally visible change happens at a cycle (a command
    // issues, a request completes or is admitted), the event estimate
    // computed just before that tick must not have promised a later
    // cycle. (The run loop computes its jump targets from the issue scan
    // itself, so this pins the standalone query against drift.)
    #[test]
    fn next_event_cycle_is_never_late(
        raw in prop::collection::vec((0u64..u64::MAX, 0u64..6, any::<bool>()), 1..120),
        refresh in any::<bool>(),
    ) {
        let mut cfg = DramConfig::with_ranks(1, 2);
        cfg.refresh = refresh;
        cfg.engine = SimEngine::PerCycle;
        let mut mem = MemorySystem::new(cfg).expect("valid config");
        for r in trace(&raw, 4 << 30, 40) {
            mem.enqueue(r);
        }
        let mut guard = 0u64;
        while mem.pending() > 0 {
            let promised = mem.next_event_cycle();
            let now = mem.cycle();
            let before = (mem.stats().cmd_bus_busy, mem.pending());
            mem.tick();
            let after = (mem.stats().cmd_bus_busy, mem.pending());
            if before != after {
                let e = promised.expect("visible change with no predicted event");
                assert!(
                    e <= now,
                    "change at cycle {now} but next_event_cycle promised {e}"
                );
            }
            guard += 1;
            assert!(guard < 20_000_000, "trace did not drain");
        }
    }
}

/// The event engine must never do *more* scheduling work than the
/// reference on sparse traffic (the whole point of the restructure).
#[test]
fn event_engine_is_cheaper_on_sparse_traffic() {
    let cfg = DramConfig::table1_baseline();
    let reqs: Vec<Request> = (0..64u64)
        .map(|i| {
            Request::read(
                RequestId::new(i),
                PhysAddr::new((i * 7919 * 64) & !63),
                i * 2500,
            )
        })
        .collect();
    let (.., iters_pc) = run(&cfg, SimEngine::PerCycle, &reqs);
    let (.., iters_ev) = run(&cfg, SimEngine::EventDriven, &reqs);
    assert!(
        iters_ev * 10 <= iters_pc,
        "event engine not >=10x cheaper: {iters_ev} vs {iters_pc}"
    );
}
