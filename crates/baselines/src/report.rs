//! Shared result type for baseline runs.

use recnmp_dram::DramStats;
use recnmp_types::Cycle;
use serde::{Deserialize, Serialize};

/// Result of serving an SLS lookup trace on a baseline system.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BaselineReport {
    /// System label (`"host"`, `"tensordimm"`, `"chameleon"`).
    pub system: String,
    /// Cycles from first request to last data beat.
    pub total_cycles: Cycle,
    /// Embedding vectors served.
    pub vectors: u64,
    /// 64-byte bursts read.
    pub bursts: u64,
    /// Aggregated DRAM statistics (summed over controllers).
    pub dram: DramStats,
}

impl BaselineReport {
    /// Cycles per vector — the throughput figure used for the Figure 16
    /// comparison.
    pub fn cycles_per_lookup(&self) -> f64 {
        if self.vectors == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.vectors as f64
        }
    }

    /// Achieved data bandwidth in GB/s.
    pub fn bandwidth_gbs(&self) -> f64 {
        recnmp_types::units::bandwidth_gbs(self.bursts * 64, self.total_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_per_lookup_math() {
        let r = BaselineReport {
            system: "host".into(),
            total_cycles: 1000,
            vectors: 250,
            bursts: 250,
            dram: DramStats::new(),
        };
        assert_eq!(r.cycles_per_lookup(), 4.0);
        assert!(r.bandwidth_gbs() > 0.0);
    }

    #[test]
    fn empty_report_is_zero() {
        assert_eq!(BaselineReport::default().cycles_per_lookup(), 0.0);
    }
}
