//! Comparator systems for RecNMP (Figure 16).
//!
//! Three baselines serve the same SLS lookup traces as
//! [`recnmp::RecNmpSystem`], all through the unified
//! [`SlsBackend`](recnmp_backend::SlsBackend) execution API:
//!
//! * [`HostBaseline`] — the conventional path: every embedding burst is
//!   read over the memory channel by the CPU, which performs the pooling.
//!   One channel-level FR-FCFS controller (from `recnmp-dram`) models the
//!   shared command/address and data buses exactly.
//! * [`TensorDimm`] — DIMM-level near-memory processing (Kwon et al.,
//!   MICRO 2019): an NMP core per DIMM reduces vectors locally, and large
//!   vectors interleave 64-byte bursts across DIMMs. Commands still come
//!   from the host over the shared C/A bus (three per low-locality
//!   vector), which is what caps it for the paper's 64-byte vectors.
//! * [`Chameleon`] — NDA-style CGRA accelerators in the data buffer
//!   devices (Asghari-Moghaddam et al., MICRO 2016): same DIMM-level
//!   reduction, but its temporally/spatially multiplexed C/A protocol
//!   costs an extra command slot per vector.
//!
//! The comparison methodology follows the paper: all systems see the same
//! physical-address [`SlsTrace`](recnmp_backend::SlsTrace) and return the
//! same [`RunReport`](recnmp_backend::RunReport) type; memory-latency
//! speedup is `cycles_per_lookup(baseline) / cycles_per_lookup(system)`.

pub mod dimm_nmp_baseline;
pub mod host;

pub use dimm_nmp_baseline::{Chameleon, DimmLevelNmp, TensorDimm};
pub use host::HostBaseline;
pub use recnmp_backend::{RunReport, SlsBackend, SlsTrace};
