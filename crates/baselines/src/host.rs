//! The conventional CPU/DRAM baseline.

use recnmp_backend::report::dram_delta;
use recnmp_backend::{RunReport, SlsBackend, SlsTrace};
use recnmp_dram::{DramConfig, MemorySystem};
use recnmp_types::{ConfigError, PhysAddr, SimError};

/// The host baseline: SLS lookups served as ordinary cacheline reads over
/// one memory channel, pooled on the CPU.
///
/// # Examples
///
/// ```
/// use recnmp_baselines::HostBaseline;
/// use recnmp_types::PhysAddr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut host = HostBaseline::new(1, 2)?;
/// let addrs: Vec<PhysAddr> = (0..64u64).map(|i| PhysAddr::new(i * 4096)).collect();
/// let report = host.serve(&addrs, 1)?;
/// assert_eq!(report.insts, 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HostBaseline {
    mem: MemorySystem,
}

impl HostBaseline {
    /// Builds the baseline channel (`dimms x ranks_per_dimm`, Table I
    /// policies).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid configurations.
    pub fn new(dimms: u8, ranks_per_dimm: u8) -> Result<Self, ConfigError> {
        Self::with_config(DramConfig::with_ranks(dimms, ranks_per_dimm))
    }

    /// Builds the baseline from an explicit DRAM configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid configurations.
    pub fn with_config(config: DramConfig) -> Result<Self, ConfigError> {
        Ok(Self {
            mem: MemorySystem::new(config)?,
        })
    }

    /// Access to the underlying memory system (e.g. for monitors).
    pub fn memory(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Serves one lookup trace: each vector of `bursts_per_vector`
    /// 64-byte bursts is read in full over the channel. The report covers
    /// this call only (row-buffer state persists across calls).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] if the channel livelocks.
    pub fn serve(
        &mut self,
        vectors: &[PhysAddr],
        bursts_per_vector: u8,
    ) -> Result<RunReport, SimError> {
        let start = self.mem.cycle();
        let before = self.mem.stats().clone();
        for addr in vectors {
            for b in 0..bursts_per_vector as u64 {
                self.mem.enqueue_read(addr.offset(b * 64), start);
            }
        }
        self.mem.run_to_idle()?;
        // Completions arrive in data-transfer order; the last one is the
        // end of the run. Clearing (not draining) keeps the buffer's
        // capacity for the next serve call.
        let end = self
            .mem
            .completions()
            .last()
            .map_or(start, |c| c.finish_cycle);
        self.mem.clear_completions();
        let bursts = vectors.len() as u64 * bursts_per_vector as u64;
        Ok(RunReport {
            system: "host".into(),
            total_cycles: end - start,
            insts: vectors.len() as u64,
            dram: dram_delta(self.mem.stats(), &before),
            dram_bursts: bursts,
            // The CPU reads every embedding burst over the channel.
            gathered_bytes: bursts * 64,
            io_bytes: bursts * 64,
            ..RunReport::default()
        })
    }
}

impl SlsBackend for HostBaseline {
    fn name(&self) -> &str {
        "host"
    }

    fn try_run(&mut self, trace: &SlsTrace) -> Result<RunReport, SimError> {
        self.serve(&trace.flat(), trace.bursts_per_vector())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_types::rng::DetRng;

    fn random_addrs(n: usize, seed: u64) -> Vec<PhysAddr> {
        let mut rng = DetRng::seed(seed);
        (0..n)
            .map(|_| PhysAddr::new(rng.below(8 << 30) & !63))
            .collect()
    }

    #[test]
    fn serves_every_vector() {
        let mut host = HostBaseline::new(1, 2).unwrap();
        let report = host.serve(&random_addrs(100, 1), 1).unwrap();
        assert_eq!(report.insts, 100);
        assert_eq!(report.dram.reads, 100);
        assert!(report.total_cycles > 0);
    }

    #[test]
    fn multi_burst_vectors_read_all_bursts() {
        let mut host = HostBaseline::new(1, 2).unwrap();
        let report = host.serve(&random_addrs(50, 2), 4).unwrap();
        assert_eq!(report.dram_bursts, 200);
        assert_eq!(report.dram.reads, 200);
    }

    #[test]
    fn data_bus_bounds_throughput() {
        // Random 64-byte reads cannot beat the 16 B/cycle channel data
        // bus: at least 4 cycles per vector.
        let mut host = HostBaseline::new(1, 2).unwrap();
        let report = host.serve(&random_addrs(500, 3), 1).unwrap();
        assert!(
            report.cycles_per_lookup() >= 4.0,
            "{}",
            report.cycles_per_lookup()
        );
        // And random traffic on 2 ranks should stay within ~3x of the
        // streaming bound.
        assert!(
            report.cycles_per_lookup() < 12.0,
            "{}",
            report.cycles_per_lookup()
        );
    }

    #[test]
    fn sequential_runs_report_deltas() {
        // Delta semantics: each report covers its own run even though the
        // controller's internal counters keep accumulating.
        let mut host = HostBaseline::new(1, 2).unwrap();
        let r1 = host.serve(&random_addrs(10, 4), 1).unwrap();
        let r2 = host.serve(&random_addrs(10, 5), 1).unwrap();
        assert_eq!(r1.dram.reads, 10);
        assert_eq!(r2.dram.reads, 10);
        assert_eq!(r2.insts, 10);
        // The lifetime view stays available on the memory system itself.
        assert_eq!(host.memory().stats().reads, 20);
    }
}
