//! DIMM-level NMP comparators: TensorDIMM and Chameleon.
//!
//! Both systems reduce embedding vectors inside the DIMM, so pooled
//! results (not raw vectors) cross the channel — but both are driven by
//! the *host* memory controller over the shared, conventional C/A bus:
//!
//! * **TensorDIMM** spends the standard ~3 command slots (PRE/ACT/RD) per
//!   low-locality vector. Its 64-byte-across-DIMMs interleave only helps
//!   vectors larger than 64 B; the paper's worst-case 64-byte vectors land
//!   entirely in one DIMM.
//! * **Chameleon** adds one more slot per vector for its time-multiplexed
//!   NDA command protocol (the paper simulates its temporal/spatial
//!   multiplexed C/A and DQ timing; we model the same delivery cost).
//!
//! Neither has a memory-side cache, so (per the paper) their latency is
//! insensitive to trace locality.

use recnmp_backend::report::{add_dram, dram_delta};
use recnmp_backend::{RunReport, SlsBackend, SlsTrace};
use recnmp_dram::{DramConfig, DramStats, MemorySystem, SimEngine};
use recnmp_types::{ConfigError, PhysAddr, SimError};

/// Shared engine for DIMM-level NMP systems: per-DIMM memory controllers
/// fed by a rate-limited shared command stream.
#[derive(Debug)]
pub struct DimmLevelNmp {
    name: &'static str,
    dimms: Vec<MemorySystem>,
    /// Shared-bus command slots per vector *beyond* the per-burst RDs
    /// (PRE + ACT for TensorDIMM, plus the NDA control word for
    /// Chameleon). Total stagger per vector = this + bursts.
    cmd_overhead_per_vector: u64,
}

impl DimmLevelNmp {
    /// Builds a system of `dimms` DIMMs with `ranks_per_dimm` ranks each;
    /// each vector costs `cmd_overhead_per_vector + bursts` slots on the
    /// shared C/A bus.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid DRAM configurations.
    pub fn new(
        name: &'static str,
        dimms: u8,
        ranks_per_dimm: u8,
        cmd_overhead_per_vector: u64,
    ) -> Result<Self, ConfigError> {
        Self::with_refresh(name, dimms, ranks_per_dimm, cmd_overhead_per_vector, true)
    }

    /// Like [`new`](Self::new) with explicit refresh simulation — matched
    /// comparisons must run every system under the same refresh setting.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid DRAM configurations.
    pub fn with_refresh(
        name: &'static str,
        dimms: u8,
        ranks_per_dimm: u8,
        cmd_overhead_per_vector: u64,
        refresh: bool,
    ) -> Result<Self, ConfigError> {
        assert!(dimms > 0, "need at least one DIMM");
        let dimm_systems = (0..dimms)
            .map(|_| {
                let mut cfg = DramConfig::with_ranks(1, ranks_per_dimm);
                cfg.refresh = refresh;
                MemorySystem::new(cfg)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            name,
            dimms: dimm_systems,
            cmd_overhead_per_vector,
        })
    }

    /// Number of DIMMs.
    pub fn num_dimms(&self) -> usize {
        self.dimms.len()
    }

    /// Switches the main-loop strategy of every per-DIMM memory controller
    /// (used by the engine-equivalence suite).
    pub fn set_engine(&mut self, engine: SimEngine) {
        for dimm in &mut self.dimms {
            dimm.set_engine(engine);
        }
    }

    /// Serves a lookup trace. Vectors are assigned to DIMMs by address
    /// interleave: a 64-byte vector lands in one DIMM; larger vectors
    /// spread consecutive bursts across DIMMs (the TensorDIMM layout).
    /// The report covers this call only.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] if any per-DIMM channel livelocks.
    pub fn serve(
        &mut self,
        vectors: &[PhysAddr],
        bursts_per_vector: u8,
    ) -> Result<RunReport, SimError> {
        let n = self.dimms.len() as u64;
        let start = self.dimms.iter().map(|d| d.cycle()).max().unwrap_or(0);
        let before: Vec<DramStats> = self.dimms.iter().map(|d| d.stats().clone()).collect();
        let stagger = self.cmd_overhead_per_vector + bursts_per_vector as u64;
        for (i, addr) in vectors.iter().enumerate() {
            // Shared C/A bus: one vector's command bundle per `stagger`
            // slots (PRE/ACT overhead + one RD per burst).
            let arrival = start + i as u64 * stagger;
            let burst0 = addr.get() >> 6;
            for b in 0..bursts_per_vector as u64 {
                let dimm = ((burst0 + b) % n) as usize;
                // The DIMM-local address drops the interleave bits.
                let local = PhysAddr::new(((burst0 + b) / n) << 6);
                self.dimms[dimm].enqueue_read(local, arrival);
            }
        }
        let mut end = start;
        let mut bursts = 0;
        let mut dram = DramStats::new();
        // Run every DIMM even after one stalls: a mid-loop early return
        // would leave this call's requests queued in the sibling DIMMs,
        // silently corrupting the next serve's delta report.
        let mut first_err = None;
        for (d, then) in self.dimms.iter_mut().zip(&before) {
            match d.run_to_idle() {
                Ok(()) => {
                    // Completions arrive in data-transfer order, so the
                    // last one carries the latest finish cycle.
                    let done = d.completions();
                    end = end.max(done.last().map_or(start, |c| c.finish_cycle));
                    bursts += done.len() as u64;
                    d.clear_completions();
                    add_dram(&mut dram, &dram_delta(d.stats(), then));
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(RunReport {
            system: self.name.into(),
            total_cycles: end - start,
            insts: vectors.len() as u64,
            dram,
            dram_bursts: bursts,
            gathered_bytes: bursts * 64,
            // Reduction happens in the DIMM; pooled sums cross the
            // channel, but command traffic dominates the interface cost
            // modeled here, so byte accounting keeps the gathered view.
            io_bytes: bursts * 64,
            ..RunReport::default()
        })
    }
}

impl SlsBackend for DimmLevelNmp {
    fn name(&self) -> &str {
        self.name
    }

    fn try_run(&mut self, trace: &SlsTrace) -> Result<RunReport, SimError> {
        self.serve(&trace.flat(), trace.bursts_per_vector())
    }
}

/// TensorDIMM (MICRO 2019): DIMM-level NMP with standard command cost.
#[derive(Debug)]
pub struct TensorDimm(DimmLevelNmp);

impl TensorDimm {
    /// Builds a TensorDIMM system.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid DRAM configurations.
    pub fn new(dimms: u8, ranks_per_dimm: u8) -> Result<Self, ConfigError> {
        Self::with_refresh(dimms, ranks_per_dimm, true)
    }

    /// Builds a TensorDIMM system with explicit refresh simulation.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid DRAM configurations.
    pub fn with_refresh(dimms: u8, ranks_per_dimm: u8, refresh: bool) -> Result<Self, ConfigError> {
        // PRE + ACT overhead plus one RD per burst on the shared C/A bus.
        Ok(Self(DimmLevelNmp::with_refresh(
            "tensordimm",
            dimms,
            ranks_per_dimm,
            2,
            refresh,
        )?))
    }

    /// Switches the main-loop strategy of every per-DIMM controller.
    pub fn set_engine(&mut self, engine: SimEngine) {
        self.0.set_engine(engine);
    }

    /// Serves a lookup trace.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] if any per-DIMM channel livelocks.
    pub fn serve(
        &mut self,
        vectors: &[PhysAddr],
        bursts_per_vector: u8,
    ) -> Result<RunReport, SimError> {
        self.0.serve(vectors, bursts_per_vector)
    }
}

impl SlsBackend for TensorDimm {
    fn name(&self) -> &str {
        "tensordimm"
    }

    fn try_run(&mut self, trace: &SlsTrace) -> Result<RunReport, SimError> {
        self.0.try_run(trace)
    }
}

/// Chameleon (MICRO 2016): NDA accelerators with multiplexed C/A.
#[derive(Debug)]
pub struct Chameleon(DimmLevelNmp);

impl Chameleon {
    /// Builds a Chameleon system.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid DRAM configurations.
    pub fn new(dimms: u8, ranks_per_dimm: u8) -> Result<Self, ConfigError> {
        Self::with_refresh(dimms, ranks_per_dimm, true)
    }

    /// Builds a Chameleon system with explicit refresh simulation.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid DRAM configurations.
    pub fn with_refresh(dimms: u8, ranks_per_dimm: u8, refresh: bool) -> Result<Self, ConfigError> {
        // PRE + ACT plus one time-multiplexed NDA control word per vector.
        Ok(Self(DimmLevelNmp::with_refresh(
            "chameleon",
            dimms,
            ranks_per_dimm,
            3,
            refresh,
        )?))
    }

    /// Switches the main-loop strategy of every per-DIMM controller.
    pub fn set_engine(&mut self, engine: SimEngine) {
        self.0.set_engine(engine);
    }

    /// Serves a lookup trace.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] if any per-DIMM channel livelocks.
    pub fn serve(
        &mut self,
        vectors: &[PhysAddr],
        bursts_per_vector: u8,
    ) -> Result<RunReport, SimError> {
        self.0.serve(vectors, bursts_per_vector)
    }
}

impl SlsBackend for Chameleon {
    fn name(&self) -> &str {
        "chameleon"
    }

    fn try_run(&mut self, trace: &SlsTrace) -> Result<RunReport, SimError> {
        self.0.try_run(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_types::rng::DetRng;

    fn random_addrs(n: usize, seed: u64) -> Vec<PhysAddr> {
        let mut rng = DetRng::seed(seed);
        (0..n)
            .map(|_| PhysAddr::new(rng.below(4 << 30) & !63))
            .collect()
    }

    #[test]
    fn all_vectors_complete() {
        let mut td = TensorDimm::new(4, 1).unwrap();
        let report = td.serve(&random_addrs(200, 1), 1).unwrap();
        assert_eq!(report.insts, 200);
        assert_eq!(report.dram_bursts, 200);
    }

    #[test]
    fn delivery_rate_caps_tensordimm() {
        // 64-byte vectors: TensorDIMM is C/A-delivery-bound at ~3
        // cycles/vector no matter how many DIMMs.
        let mut td = TensorDimm::new(4, 2).unwrap();
        let report = td.serve(&random_addrs(400, 2), 1).unwrap();
        assert!(
            report.cycles_per_lookup() >= 3.0,
            "{}",
            report.cycles_per_lookup()
        );
        assert!(
            report.cycles_per_lookup() < 6.0,
            "{}",
            report.cycles_per_lookup()
        );
    }

    #[test]
    fn chameleon_is_slower_than_tensordimm() {
        let addrs = random_addrs(400, 3);
        let mut td = TensorDimm::new(4, 2).unwrap();
        let mut ch = Chameleon::new(4, 2).unwrap();
        let t = td.serve(&addrs, 1).unwrap().total_cycles;
        let c = ch.serve(&addrs, 1).unwrap().total_cycles;
        assert!(c > t, "chameleon {c} vs tensordimm {t}");
    }

    #[test]
    fn large_vectors_interleave_across_dimms() {
        // A 256-byte vector spreads over 4 DIMMs: TensorDIMM's design
        // point. Throughput per vector should beat 4 sequential bursts on
        // one DIMM.
        let mut td = TensorDimm::new(4, 1).unwrap();
        let report = td.serve(&random_addrs(100, 4), 4).unwrap();
        assert_eq!(report.dram_bursts, 400);
        // Delivery is 3 cycles/vector; data 4x4=16 cycles/vector spread
        // over 4 DIMMs = 4 cycles/vector effective.
        assert!(
            report.cycles_per_lookup() < 12.0,
            "{}",
            report.cycles_per_lookup()
        );
    }

    #[test]
    fn locality_insensitive_without_cache() {
        // The same addresses repeated give roughly the same cycles per
        // lookup (row-buffer effects aside) — no memory-side cache.
        let addrs = random_addrs(100, 5);
        let repeated: Vec<PhysAddr> = addrs.iter().chain(addrs.iter()).copied().collect();
        let mut td1 = TensorDimm::new(2, 2).unwrap();
        let mut td2 = TensorDimm::new(2, 2).unwrap();
        let once = td1.serve(&addrs, 1).unwrap().cycles_per_lookup();
        let twice = td2.serve(&repeated, 1).unwrap().cycles_per_lookup();
        assert!((twice - once).abs() < 0.5 * once, "{once} vs {twice}");
    }

    #[test]
    fn back_to_back_runs_report_deltas() {
        let mut td = TensorDimm::new(2, 2).unwrap();
        let r1 = td.serve(&random_addrs(50, 6), 1).unwrap();
        let r2 = td.serve(&random_addrs(50, 7), 1).unwrap();
        assert_eq!(r1.dram.reads, 50);
        assert_eq!(r2.dram.reads, 50);
        assert_eq!(r2.dram_bursts, 50);
    }
}
