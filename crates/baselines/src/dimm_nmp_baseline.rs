//! DIMM-level NMP comparators: TensorDIMM and Chameleon.
//!
//! Both systems reduce embedding vectors inside the DIMM, so pooled
//! results (not raw vectors) cross the channel — but both are driven by
//! the *host* memory controller over the shared, conventional C/A bus:
//!
//! * **TensorDIMM** spends the standard ~3 command slots (PRE/ACT/RD) per
//!   low-locality vector. Its 64-byte-across-DIMMs interleave only helps
//!   vectors larger than 64 B; the paper's worst-case 64-byte vectors land
//!   entirely in one DIMM.
//! * **Chameleon** adds one more slot per vector for its time-multiplexed
//!   NDA command protocol (the paper simulates its temporal/spatial
//!   multiplexed C/A and DQ timing; we model the same delivery cost).
//!
//! Neither has a memory-side cache, so (per the paper) their latency is
//! insensitive to trace locality.

use recnmp_dram::{DramConfig, MemorySystem};
use recnmp_types::{ConfigError, PhysAddr};

use crate::report::BaselineReport;

/// Shared engine for DIMM-level NMP systems: per-DIMM memory controllers
/// fed by a rate-limited shared command stream.
#[derive(Debug)]
pub struct DimmLevelNmp {
    name: &'static str,
    dimms: Vec<MemorySystem>,
    /// Shared-bus command slots per vector *beyond* the per-burst RDs
    /// (PRE + ACT for TensorDIMM, plus the NDA control word for
    /// Chameleon). Total stagger per vector = this + bursts.
    cmd_overhead_per_vector: u64,
}

impl DimmLevelNmp {
    /// Builds a system of `dimms` DIMMs with `ranks_per_dimm` ranks each;
    /// each vector costs `cmd_overhead_per_vector + bursts` slots on the
    /// shared C/A bus.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid DRAM configurations.
    pub fn new(
        name: &'static str,
        dimms: u8,
        ranks_per_dimm: u8,
        cmd_overhead_per_vector: u64,
    ) -> Result<Self, ConfigError> {
        assert!(dimms > 0, "need at least one DIMM");
        let dimm_systems = (0..dimms)
            .map(|_| MemorySystem::new(DramConfig::with_ranks(1, ranks_per_dimm)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            name,
            dimms: dimm_systems,
            cmd_overhead_per_vector,
        })
    }

    /// Number of DIMMs.
    pub fn num_dimms(&self) -> usize {
        self.dimms.len()
    }

    /// Serves a lookup trace. Vectors are assigned to DIMMs by address
    /// interleave: a 64-byte vector lands in one DIMM; larger vectors
    /// spread consecutive bursts across DIMMs (the TensorDIMM layout).
    pub fn run(&mut self, vectors: &[PhysAddr], bursts_per_vector: u8) -> BaselineReport {
        let n = self.dimms.len() as u64;
        let start = self.dimms.iter().map(|d| d.cycle()).max().unwrap_or(0);
        let stagger = self.cmd_overhead_per_vector + bursts_per_vector as u64;
        for (i, addr) in vectors.iter().enumerate() {
            // Shared C/A bus: one vector's command bundle per `stagger`
            // slots (PRE/ACT overhead + one RD per burst).
            let arrival = start + i as u64 * stagger;
            let burst0 = addr.get() >> 6;
            for b in 0..bursts_per_vector as u64 {
                let dimm = ((burst0 + b) % n) as usize;
                // The DIMM-local address drops the interleave bits.
                let local = PhysAddr::new(((burst0 + b) / n) << 6);
                self.dimms[dimm].enqueue_read(local, arrival);
            }
        }
        let mut end = start;
        let mut bursts = 0;
        let mut dram = recnmp_dram::DramStats::new();
        for d in &mut self.dimms {
            let done = d.run_until_idle();
            end = end.max(done.iter().map(|c| c.finish_cycle).max().unwrap_or(start));
            bursts += done.len() as u64;
            let s = d.stats();
            dram.reads += s.reads;
            dram.acts += s.acts;
            dram.pres += s.pres;
            dram.row_hits += s.row_hits;
            dram.row_misses += s.row_misses;
            dram.row_conflicts += s.row_conflicts;
            dram.data_bus_busy += s.data_bus_busy;
        }
        BaselineReport {
            system: self.name.into(),
            total_cycles: end - start,
            vectors: vectors.len() as u64,
            bursts,
            dram,
        }
    }
}

/// TensorDIMM (MICRO 2019): DIMM-level NMP with standard command cost.
#[derive(Debug)]
pub struct TensorDimm(DimmLevelNmp);

impl TensorDimm {
    /// Builds a TensorDIMM system.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid DRAM configurations.
    pub fn new(dimms: u8, ranks_per_dimm: u8) -> Result<Self, ConfigError> {
        // PRE + ACT overhead plus one RD per burst on the shared C/A bus.
        Ok(Self(DimmLevelNmp::new("tensordimm", dimms, ranks_per_dimm, 2)?))
    }

    /// Serves a lookup trace.
    pub fn run(&mut self, vectors: &[PhysAddr], bursts_per_vector: u8) -> BaselineReport {
        self.0.run(vectors, bursts_per_vector)
    }
}

/// Chameleon (MICRO 2016): NDA accelerators with multiplexed C/A.
#[derive(Debug)]
pub struct Chameleon(DimmLevelNmp);

impl Chameleon {
    /// Builds a Chameleon system.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid DRAM configurations.
    pub fn new(dimms: u8, ranks_per_dimm: u8) -> Result<Self, ConfigError> {
        // PRE + ACT plus one time-multiplexed NDA control word per vector.
        Ok(Self(DimmLevelNmp::new("chameleon", dimms, ranks_per_dimm, 3)?))
    }

    /// Serves a lookup trace.
    pub fn run(&mut self, vectors: &[PhysAddr], bursts_per_vector: u8) -> BaselineReport {
        self.0.run(vectors, bursts_per_vector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_types::rng::DetRng;

    fn random_addrs(n: usize, seed: u64) -> Vec<PhysAddr> {
        let mut rng = DetRng::seed(seed);
        (0..n)
            .map(|_| PhysAddr::new(rng.below(4 << 30) & !63))
            .collect()
    }

    #[test]
    fn all_vectors_complete() {
        let mut td = TensorDimm::new(4, 1).unwrap();
        let report = td.run(&random_addrs(200, 1), 1);
        assert_eq!(report.vectors, 200);
        assert_eq!(report.bursts, 200);
    }

    #[test]
    fn delivery_rate_caps_tensordimm() {
        // 64-byte vectors: TensorDIMM is C/A-delivery-bound at ~3
        // cycles/vector no matter how many DIMMs.
        let mut td = TensorDimm::new(4, 2).unwrap();
        let report = td.run(&random_addrs(400, 2), 1);
        assert!(report.cycles_per_lookup() >= 3.0, "{}", report.cycles_per_lookup());
        assert!(report.cycles_per_lookup() < 6.0, "{}", report.cycles_per_lookup());
    }

    #[test]
    fn chameleon_is_slower_than_tensordimm() {
        let addrs = random_addrs(400, 3);
        let mut td = TensorDimm::new(4, 2).unwrap();
        let mut ch = Chameleon::new(4, 2).unwrap();
        let t = td.run(&addrs, 1).total_cycles;
        let c = ch.run(&addrs, 1).total_cycles;
        assert!(c > t, "chameleon {c} vs tensordimm {t}");
    }

    #[test]
    fn large_vectors_interleave_across_dimms() {
        // A 256-byte vector spreads over 4 DIMMs: TensorDIMM's design
        // point. Throughput per vector should beat 4 sequential bursts on
        // one DIMM.
        let mut td = TensorDimm::new(4, 1).unwrap();
        let report = td.run(&random_addrs(100, 4), 4);
        assert_eq!(report.bursts, 400);
        // Delivery is 3 cycles/vector; data 4x4=16 cycles/vector spread
        // over 4 DIMMs = 4 cycles/vector effective.
        assert!(report.cycles_per_lookup() < 12.0, "{}", report.cycles_per_lookup());
    }

    #[test]
    fn locality_insensitive_without_cache() {
        // The same addresses repeated give roughly the same cycles per
        // lookup (row-buffer effects aside) — no memory-side cache.
        let addrs = random_addrs(100, 5);
        let repeated: Vec<PhysAddr> = addrs.iter().chain(addrs.iter()).copied().collect();
        let mut td1 = TensorDimm::new(2, 2).unwrap();
        let mut td2 = TensorDimm::new(2, 2).unwrap();
        let once = td1.run(&addrs, 1).cycles_per_lookup();
        let twice = td2.run(&repeated, 1).cycles_per_lookup();
        assert!((twice - once).abs() < 0.5 * once, "{once} vs {twice}");
    }
}
