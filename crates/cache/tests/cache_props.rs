//! Property-based tests for the cache simulator.
//!
//! The key oracles: a naive reference LRU model must agree with the
//! set-associative implementation configured fully-associatively, and the
//! LRU *stack property* (inclusion: a bigger fully-associative LRU cache
//! hits on a superset of accesses) must hold.

use proptest::prelude::*;
use recnmp_cache::{CacheConfig, SetAssocCache};

/// Naive LRU over a Vec: move-to-front on hit, pop-back on overflow.
struct RefLru {
    lines: Vec<u64>,
    capacity: usize,
    line_bytes: u64,
    hits: u64,
    misses: u64,
}

impl RefLru {
    fn new(capacity: usize, line_bytes: u64) -> Self {
        Self {
            lines: Vec::new(),
            capacity,
            line_bytes,
            hits: 0,
            misses: 0,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let id = addr / self.line_bytes;
        if let Some(pos) = self.lines.iter().position(|&l| l == id) {
            self.lines.remove(pos);
            self.lines.insert(0, id);
            self.hits += 1;
            true
        } else {
            self.lines.insert(0, id);
            if self.lines.len() > self.capacity {
                self.lines.pop();
            }
            self.misses += 1;
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fully_associative_matches_reference_lru(
        addrs in prop::collection::vec(0u64..4096, 1..400),
        lines in prop_oneof![Just(4usize), Just(8), Just(16)],
    ) {
        let mut sut =
            SetAssocCache::new(CacheConfig::fully_associative(lines as u64 * 64, 64)).unwrap();
        let mut oracle = RefLru::new(lines, 64);
        for &a in &addrs {
            let hit = sut.access(a).is_hit();
            let expect = oracle.access(a);
            prop_assert_eq!(hit, expect, "divergence at addr {}", a);
        }
        prop_assert_eq!(sut.stats().hits, oracle.hits);
        prop_assert_eq!(sut.stats().misses, oracle.misses);
    }

    #[test]
    fn lru_stack_property_bigger_cache_never_worse(
        addrs in prop::collection::vec(0u64..8192, 1..400),
    ) {
        let mut small =
            SetAssocCache::new(CacheConfig::fully_associative(8 * 64, 64)).unwrap();
        let mut large =
            SetAssocCache::new(CacheConfig::fully_associative(32 * 64, 64)).unwrap();
        for &a in &addrs {
            let s = small.access(a).is_hit();
            let l = large.access(a).is_hit();
            // Inclusion: anything the small LRU hits, the large LRU hits.
            prop_assert!(!s || l, "small hit but large missed at {}", a);
        }
        prop_assert!(large.stats().hits >= small.stats().hits);
    }

    #[test]
    fn compulsory_misses_equal_distinct_lines(
        addrs in prop::collection::vec(0u64..100_000, 1..300),
    ) {
        let mut c = SetAssocCache::new(CacheConfig::new(16 * 64, 64, 4)).unwrap();
        for &a in &addrs {
            c.access(a);
        }
        let distinct: std::collections::HashSet<u64> =
            addrs.iter().map(|a| a / 64).collect();
        prop_assert_eq!(c.stats().compulsory_misses, distinct.len() as u64);
    }

    #[test]
    fn hits_plus_misses_equals_accesses(
        addrs in prop::collection::vec(0u64..100_000, 0..300),
    ) {
        let mut c = SetAssocCache::new(CacheConfig::new(8 * 64, 64, 2)).unwrap();
        for &a in &addrs {
            c.access(a);
        }
        prop_assert_eq!(c.stats().lookups(), addrs.len() as u64);
    }
}
