//! Set-associative cache model.

use std::collections::HashSet;

use recnmp_types::ConfigError;

use crate::config::{CacheConfig, ReplacementPolicy};
use crate::stats::CacheStats;

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Line was resident.
    Hit,
    /// Line was absent; `evicted` names the displaced line's base address,
    /// `compulsory` is true when the line was never referenced before.
    Miss {
        /// Base address of the evicted line, if a valid line was displaced.
        evicted: Option<u64>,
        /// Whether this was a cold (first-reference) miss.
        compulsory: bool,
    },
}

impl AccessOutcome {
    /// True for [`AccessOutcome::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, Self::Hit)
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    /// LRU timestamp or FIFO insertion order, depending on policy.
    stamp: u64,
    valid: bool,
}

/// A set-associative cache with LRU or FIFO replacement.
///
/// Addresses are plain `u64` byte addresses; the cache works on aligned
/// lines of `line_bytes`. The model is *trace driven*: it tracks only
/// presence, not contents.
///
/// # Examples
///
/// ```
/// use recnmp_cache::{CacheConfig, SetAssocCache};
///
/// # fn main() -> Result<(), recnmp_types::ConfigError> {
/// let mut c = SetAssocCache::new(CacheConfig::new(4096, 64, 4))?;
/// c.access(0);
/// assert!(c.contains(32)); // same 64-byte line
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// All lines in one flat allocation, indexed `set * ways + way` — one
    /// contiguous block instead of a `Vec<Vec<Line>>` of per-set heap
    /// islands, so the rank-cache hot path walks a set without chasing an
    /// outer pointer.
    lines: Vec<Line>,
    num_sets: usize,
    clock: u64,
    seen: HashSet<u64>,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Builds an empty cache.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration is inconsistent
    /// (see [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let num_sets = config.num_sets();
        let lines = vec![
            Line {
                tag: 0,
                stamp: 0,
                valid: false
            };
            num_sets * config.ways
        ];
        Ok(Self {
            config,
            lines,
            num_sets,
            clock: 0,
            seen: HashSet::new(),
            stats: CacheStats::new(),
        })
    }

    /// Returns the configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets contents and statistics, keeping the configuration.
    pub fn reset(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
        }
        self.clock = 0;
        self.seen.clear();
        self.stats = CacheStats::new();
    }

    fn line_id(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes
    }

    fn set_index(&self, line_id: u64) -> usize {
        (line_id % self.num_sets as u64) as usize
    }

    /// The ways of one set: `ways` consecutive lines starting at
    /// `set * ways`.
    fn set_lines(&self, idx: usize) -> &[Line] {
        &self.lines[idx * self.config.ways..][..self.config.ways]
    }

    /// Checks residency without updating replacement state or statistics.
    pub fn contains(&self, addr: u64) -> bool {
        let id = self.line_id(addr);
        let set = self.set_lines(self.set_index(id));
        set.iter().any(|l| l.valid && l.tag == id)
    }

    /// Performs one access, updating replacement state and statistics.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        self.clock += 1;
        let id = self.line_id(addr);
        let idx = self.set_index(id);
        let policy = self.config.policy;
        let ways = self.config.ways;
        let set = &mut self.lines[idx * ways..][..ways];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == id) {
            if policy == ReplacementPolicy::Lru {
                line.stamp = self.clock;
            }
            self.stats.hits += 1;
            return AccessOutcome::Hit;
        }

        // Miss: choose a victim — an invalid way if any, else the smallest
        // stamp (LRU time or FIFO insertion order).
        let victim = match set.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => {
                let (i, _) = set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.stamp)
                    .expect("sets are never empty");
                i
            }
        };
        let evicted = if set[victim].valid {
            self.stats.evictions += 1;
            Some(set[victim].tag * self.config.line_bytes)
        } else {
            None
        };
        set[victim] = Line {
            tag: id,
            stamp: self.clock,
            valid: true,
        };
        let compulsory = self.seen.insert(id);
        self.stats.misses += 1;
        if compulsory {
            self.stats.compulsory_misses += 1;
        }
        AccessOutcome::Miss {
            evicted,
            compulsory,
        }
    }

    /// Installs the line of `addr` without recording a hit or miss — the
    /// prefetch path: a staged line must help a later demand access's hit
    /// rate, not inflate the lookup counters that rate is computed over.
    ///
    /// The filled line gets current recency (it competes in LRU like a
    /// fresh demand fill) and may evict a victim, which *is* counted —
    /// displacement is real regardless of who caused it. Returns `true`
    /// when the line was newly installed, `false` when already resident
    /// (residency is refreshed either way under LRU).
    pub fn fill(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let id = self.line_id(addr);
        let idx = self.set_index(id);
        let policy = self.config.policy;
        let ways = self.config.ways;
        let set = &mut self.lines[idx * ways..][..ways];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == id) {
            if policy == ReplacementPolicy::Lru {
                line.stamp = self.clock;
            }
            return false;
        }
        let victim = match set.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => {
                let (i, _) = set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.stamp)
                    .expect("sets are never empty");
                i
            }
        };
        if set[victim].valid {
            self.stats.evictions += 1;
        }
        set[victim] = Line {
            tag: id,
            stamp: self.clock,
            valid: true,
        };
        true
    }

    /// Runs a whole trace of addresses and returns the hit rate.
    pub fn run_trace<I: IntoIterator<Item = u64>>(&mut self, addrs: I) -> f64 {
        for a in addrs {
            self.access(a);
        }
        self.stats.hit_rate()
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 lines of 64 B in a single set.
        SetAssocCache::new(CacheConfig::fully_associative(256, 64)).unwrap()
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        let m = c.access(0);
        assert!(matches!(
            m,
            AccessOutcome::Miss {
                evicted: None,
                compulsory: true
            }
        ));
        assert!(c.access(63).is_hit());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().compulsory_misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        for i in 0..4u64 {
            c.access(i * 64);
        }
        // Touch line 0 so line 1 becomes LRU.
        c.access(0);
        let out = c.access(4 * 64);
        assert_eq!(
            out,
            AccessOutcome::Miss {
                evicted: Some(64),
                compulsory: true
            }
        );
        assert!(c.contains(0));
        assert!(!c.contains(64));
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut cfg = CacheConfig::fully_associative(256, 64);
        cfg.policy = ReplacementPolicy::Fifo;
        let mut c = SetAssocCache::new(cfg).unwrap();
        for i in 0..4u64 {
            c.access(i * 64);
        }
        // Re-touching line 0 must NOT save it under FIFO.
        c.access(0);
        let out = c.access(4 * 64);
        assert_eq!(
            out,
            AccessOutcome::Miss {
                evicted: Some(0),
                compulsory: true
            }
        );
    }

    #[test]
    fn set_conflicts_evict_within_set() {
        // 2 sets x 1 way: lines with even ids map to set 0.
        let mut c = SetAssocCache::new(CacheConfig::new(128, 64, 1)).unwrap();
        c.access(0); // set 0
        c.access(64); // set 1
        c.access(128); // set 0 again: evicts line 0
        assert!(!c.contains(0));
        assert!(c.contains(64));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn recurrent_miss_is_not_compulsory() {
        let mut c = SetAssocCache::new(CacheConfig::new(128, 64, 1)).unwrap();
        c.access(0);
        c.access(128); // evicts 0
        let out = c.access(0); // capacity/conflict miss, seen before
        assert!(matches!(
            out,
            AccessOutcome::Miss {
                compulsory: false,
                ..
            }
        ));
        assert_eq!(c.stats().compulsory_misses, 2);
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.stats().lookups(), 0);
        assert!(!c.contains(0));
    }

    #[test]
    fn fill_installs_without_lookup_stats() {
        let mut c = tiny();
        assert!(c.fill(0));
        assert!(!c.fill(32)); // same line: already resident
        assert_eq!(c.stats().lookups(), 0);
        assert_eq!(c.stats().misses, 0);
        // The staged line serves the later demand access as a hit.
        assert!(c.access(0).is_hit());
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn fill_evictions_are_counted_and_recency_applies() {
        let mut c = tiny();
        for i in 0..4u64 {
            c.access(i * 64);
        }
        // Refreshing line 0 via fill makes line 1 the LRU victim.
        assert!(!c.fill(0));
        assert!(c.fill(4 * 64));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.contains(0));
        assert!(!c.contains(64));
        // Fills never mark lines as seen: a filled-then-evicted line
        // that was never demand-accessed still misses as compulsory.
        for i in 5..9u64 {
            c.access(i * 64); // flush the filled 4*64 line out
        }
        assert!(!c.contains(4 * 64));
        let out = c.access(4 * 64);
        assert!(matches!(
            out,
            AccessOutcome::Miss {
                compulsory: true,
                ..
            }
        ));
    }

    #[test]
    fn run_trace_returns_hit_rate() {
        let mut c = tiny();
        let rate = c.run_trace([0u64, 0, 0, 0]);
        assert!((rate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn occupancy_saturates_at_capacity() {
        let mut c = tiny();
        for i in 0..100u64 {
            c.access(i * 64);
        }
        assert_eq!(c.occupancy(), 4);
    }
}
