//! Cache configuration.

use recnmp_types::ConfigError;
use serde::{Deserialize, Serialize};

/// Replacement policy for a cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used line (the paper's policy).
    #[default]
    Lru,
    /// Evict the line resident longest (insertion order).
    Fifo,
}

/// Geometry and policy of a simulated cache.
///
/// # Examples
///
/// ```
/// use recnmp_cache::CacheConfig;
/// use recnmp_types::units::MIB;
///
/// // The paper's Section II-F sweep point: 16 MiB, 64 B lines, 4-way LRU.
/// let cfg = CacheConfig::new(16 * MIB, 64, 4);
/// assert_eq!(cfg.num_sets(), 16 * MIB as usize / 64 / 4);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total data capacity in bytes.
    pub capacity_bytes: u64,
    /// Line (block) size in bytes.
    pub line_bytes: u64,
    /// Ways per set; use [`CacheConfig::fully_associative`] for one set
    /// spanning the whole cache.
    pub ways: usize,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// Creates an LRU cache configuration.
    pub const fn new(capacity_bytes: u64, line_bytes: u64, ways: usize) -> Self {
        Self {
            capacity_bytes,
            line_bytes,
            ways,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// Creates a fully-associative LRU configuration (used to isolate
    /// conflict misses in the Figure 7(b) spatial-locality study).
    pub fn fully_associative(capacity_bytes: u64, line_bytes: u64) -> Self {
        let lines = (capacity_bytes / line_bytes).max(1) as usize;
        Self::new(capacity_bytes, line_bytes, lines)
    }

    /// The RankCache default from the paper: 128 KiB, 64 B lines, 4-way
    /// LRU (Figure 15(b) finds 128 KiB optimal).
    pub const fn rank_cache_default() -> Self {
        Self::new(128 * 1024, 64, 4)
    }

    /// Number of lines the cache holds.
    pub const fn num_lines(&self) -> usize {
        (self.capacity_bytes / self.line_bytes) as usize
    }

    /// Number of sets.
    pub const fn num_sets(&self) -> usize {
        self.num_lines() / self.ways
    }

    /// Validates geometry consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the line size is not a power of two,
    /// the capacity is not divisible into `ways`-sized sets, or the set
    /// count is not a power of two (required for index hashing).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::new("line_bytes", "must be a power of two"));
        }
        if self.capacity_bytes == 0 || !self.capacity_bytes.is_multiple_of(self.line_bytes) {
            return Err(ConfigError::new(
                "capacity_bytes",
                "must be a positive multiple of line_bytes",
            ));
        }
        if self.ways == 0 || !self.num_lines().is_multiple_of(self.ways) {
            return Err(ConfigError::new(
                "ways",
                "must divide the line count evenly",
            ));
        }
        if !self.num_sets().is_power_of_two() {
            return Err(ConfigError::new("ways", "set count must be a power of two"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_derivation() {
        let cfg = CacheConfig::new(8192, 64, 4);
        assert_eq!(cfg.num_lines(), 128);
        assert_eq!(cfg.num_sets(), 32);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn fully_associative_is_one_set() {
        let cfg = CacheConfig::fully_associative(4096, 64);
        assert_eq!(cfg.num_sets(), 1);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn rank_cache_default_matches_paper() {
        let cfg = CacheConfig::rank_cache_default();
        assert_eq!(cfg.capacity_bytes, 128 * 1024);
        assert_eq!(cfg.line_bytes, 64);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_line() {
        let cfg = CacheConfig::new(8192, 48, 4);
        assert_eq!(cfg.validate().unwrap_err().field(), "line_bytes");
    }

    #[test]
    fn validate_rejects_non_pow2_sets() {
        let cfg = CacheConfig::new(192, 64, 1);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_indivisible_ways() {
        let cfg = CacheConfig::new(8192, 64, 3);
        assert_eq!(cfg.validate().unwrap_err().field(), "ways");
    }
}
