//! Fully-associative LRU cache with O(log n) operations.
//!
//! The Figure 7(b) study isolates conflict misses by re-running the
//! line-size sweep on a fully-associative cache. At 16 MiB that is
//! hundreds of thousands of ways, far beyond what the linear-scan
//! [`SetAssocCache`](crate::SetAssocCache) handles; this implementation
//! uses a hash map plus an ordered recency index instead.

use std::collections::{BTreeMap, HashMap, HashSet};

use recnmp_types::ConfigError;

use crate::stats::CacheStats;

/// A fully-associative LRU cache sized in lines.
///
/// # Examples
///
/// ```
/// use recnmp_cache::fa::FullyAssocLru;
///
/// # fn main() -> Result<(), recnmp_types::ConfigError> {
/// let mut c = FullyAssocLru::new(2 * 64, 64)?; // two 64-byte lines
/// c.access(0);
/// c.access(64);
/// c.access(0); // renew line 0
/// c.access(128); // evicts line 64
/// assert!(c.contains(0));
/// assert!(!c.contains(64));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FullyAssocLru {
    line_bytes: u64,
    capacity_lines: usize,
    /// tag -> recency stamp
    lines: HashMap<u64, u64>,
    /// recency stamp -> tag (oldest first)
    recency: BTreeMap<u64, u64>,
    clock: u64,
    seen: HashSet<u64>,
    stats: CacheStats,
}

impl FullyAssocLru {
    /// Builds an empty cache.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `line_bytes` is not a power of two
    /// or the capacity holds no full line.
    pub fn new(capacity_bytes: u64, line_bytes: u64) -> Result<Self, ConfigError> {
        if line_bytes == 0 || !line_bytes.is_power_of_two() {
            return Err(ConfigError::new("line_bytes", "must be a power of two"));
        }
        let capacity_lines = (capacity_bytes / line_bytes) as usize;
        if capacity_lines == 0 {
            return Err(ConfigError::new(
                "capacity_bytes",
                "must hold at least one line",
            ));
        }
        Ok(Self {
            line_bytes,
            capacity_lines,
            lines: HashMap::new(),
            recency: BTreeMap::new(),
            clock: 0,
            seen: HashSet::new(),
            stats: CacheStats::new(),
        })
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Checks residency without touching replacement state.
    pub fn contains(&self, addr: u64) -> bool {
        self.lines.contains_key(&(addr / self.line_bytes))
    }

    /// Performs one access; returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let tag = addr / self.line_bytes;
        if let Some(stamp) = self.lines.get_mut(&tag) {
            self.recency.remove(stamp);
            *stamp = self.clock;
            self.recency.insert(self.clock, tag);
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.seen.insert(tag) {
            self.stats.compulsory_misses += 1;
        }
        if self.lines.len() == self.capacity_lines {
            let (&oldest, &victim) = self.recency.iter().next().expect("cache is full");
            self.recency.remove(&oldest);
            self.lines.remove(&victim);
            self.stats.evictions += 1;
        }
        self.lines.insert(tag, self.clock);
        self.recency.insert(self.clock, tag);
        false
    }

    /// Runs a whole trace and returns the hit rate.
    pub fn run_trace<I: IntoIterator<Item = u64>>(&mut self, addrs: I) -> f64 {
        for a in addrs {
            self.access(a);
        }
        self.stats.hit_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::set_assoc::SetAssocCache;

    #[test]
    fn agrees_with_linear_scan_implementation() {
        let mut fast = FullyAssocLru::new(8 * 64, 64).unwrap();
        let mut slow = SetAssocCache::new(CacheConfig::fully_associative(8 * 64, 64)).unwrap();
        let mut x = 123456789u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = (x >> 16) % 4096;
            assert_eq!(fast.access(addr), slow.access(addr).is_hit());
        }
        assert_eq!(fast.stats().hits, slow.stats().hits);
        assert_eq!(fast.stats().evictions, slow.stats().evictions);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut c = FullyAssocLru::new(4 * 64, 64).unwrap();
        for i in 0..100u64 {
            c.access(i * 64);
        }
        assert_eq!(c.stats().evictions, 96);
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(FullyAssocLru::new(32, 64).is_err());
    }
}
