//! Cache access statistics.

use serde::{Deserialize, Serialize};

/// Counters kept by every simulated cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that found their line resident.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Misses to lines never seen before (compulsory/cold misses).
    pub compulsory_misses: u64,
    /// Valid lines evicted to make room.
    pub evictions: u64,
    /// Accesses that bypassed the cache (RankCache hint said
    /// "low locality").
    pub bypasses: u64,
}

impl CacheStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total accesses that went through the lookup path (hits + misses;
    /// bypasses excluded).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate over lookups; zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Hit rate counting bypasses as misses — the fraction of *all* traffic
    /// served from the cache.
    pub fn effective_hit_rate(&self) -> f64 {
        let total = self.lookups() + self.bypasses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The best hit rate any cache of this line size could achieve on the
    /// observed trace: one miss per distinct line (compulsory limit).
    pub fn compulsory_limit(&self) -> f64 {
        let total = self.lookups() + self.bypasses;
        if total == 0 {
            0.0
        } else {
            1.0 - self.compulsory_misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_math() {
        let s = CacheStats {
            hits: 30,
            misses: 70,
            compulsory_misses: 50,
            evictions: 10,
            bypasses: 0,
        };
        assert!((s.hit_rate() - 0.3).abs() < 1e-12);
        assert!((s.compulsory_limit() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn effective_rate_counts_bypasses() {
        let s = CacheStats {
            hits: 50,
            misses: 25,
            compulsory_misses: 25,
            evictions: 0,
            bypasses: 25,
        };
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.effective_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_is_zero() {
        let s = CacheStats::new();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.effective_hit_rate(), 0.0);
        assert_eq!(s.compulsory_limit(), 0.0);
    }
}
