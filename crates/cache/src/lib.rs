//! Cache simulators for the RecNMP reproduction.
//!
//! Three consumers drive this crate:
//!
//! * the **locality characterization** of Section II-F (Figure 7), which
//!   sweeps capacity (8–64 MiB) and line size (64–512 B) of a 4-way (and
//!   fully-associative) LRU cache over production-like embedding traces,
//! * the **RankCache** of Section III (Figures 12 and 15), the small
//!   memory-side cache inside each rank-NMP module, which adds a software
//!   *cacheability hint* (the `LocalityBit` of the NMP instruction): hinted
//!   requests allocate on miss, unhinted requests bypass the cache
//!   entirely, and
//! * the **cache-aware serving path** (`recnmp_sim::serving`), which puts
//!   a [`SetAssocCache`] in front of dispatch as a host-side
//!   hot-embedding cache (one line per embedding vector, hits absorbed
//!   before any channel sees them) and stages predicted-hot vectors into
//!   per-channel RankCaches between queries via the stats-clean prefetch
//!   path ([`SetAssocCache::fill`] / [`RankCache::prefetch_fill`]).
//!
//! # Examples
//!
//! ```
//! use recnmp_cache::{CacheConfig, SetAssocCache};
//!
//! # fn main() -> Result<(), recnmp_types::ConfigError> {
//! let mut c = SetAssocCache::new(CacheConfig::new(1024, 64, 4))?;
//! assert!(!c.access(0x40).is_hit()); // cold miss
//! assert!(c.access(0x40).is_hit()); // now cached
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod fa;
pub mod rank_cache;
pub mod set_assoc;
pub mod stats;

pub use config::{CacheConfig, ReplacementPolicy};
pub use rank_cache::{RankCache, RankCacheOutcome};
pub use set_assoc::{AccessOutcome, SetAssocCache};
pub use stats::CacheStats;
