//! The RankCache: RecNMP's memory-side cache with bypass hints.
//!
//! One RankCache sits in each rank-NMP module (Section III-A of the paper).
//! It differs from an ordinary cache in two ways:
//!
//! * embedding tables are **read-only during inference**, so there is no
//!   dirty state and bypassing never affects correctness; and
//! * each access carries a **cacheability hint** — the `LocalityBit` set by
//!   hot-entry profiling. Unhinted accesses bypass the cache, which avoids
//!   polluting the small structure with single-use vectors.
//!
//! Access latency and energy come from Table I: 1 cycle and 50 pJ per
//! access.

use recnmp_types::ConfigError;

use crate::config::CacheConfig;
use crate::set_assoc::SetAssocCache;
use crate::stats::CacheStats;

/// RankCache access latency in DRAM cycles (Table I).
pub const RANK_CACHE_LATENCY_CYCLES: u64 = 1;
/// RankCache access energy in picojoules (Table I).
pub const RANK_CACHE_ACCESS_PJ: f64 = 50.0;

/// What happened to a RankCache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankCacheOutcome {
    /// Served from the cache: no DRAM access needed.
    Hit,
    /// Missed; the line was fetched from DRAM and allocated.
    MissFill,
    /// The hint said "low locality": went straight to DRAM, no allocation.
    Bypass,
}

impl RankCacheOutcome {
    /// True when the access must read DRAM.
    pub fn needs_dram(self) -> bool {
        !matches!(self, Self::Hit)
    }
}

/// Memory-side cache of one rank-NMP module.
///
/// # Examples
///
/// ```
/// use recnmp_cache::{CacheConfig, RankCache, RankCacheOutcome};
///
/// # fn main() -> Result<(), recnmp_types::ConfigError> {
/// let mut rc = RankCache::new(CacheConfig::rank_cache_default())?;
/// assert_eq!(rc.access(0x80, true), RankCacheOutcome::MissFill);
/// assert_eq!(rc.access(0x80, true), RankCacheOutcome::Hit);
/// // A low-locality access bypasses even though the line is absent.
/// assert_eq!(rc.access(0x4000, false), RankCacheOutcome::Bypass);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RankCache {
    inner: SetAssocCache,
    bypasses: u64,
    prefetch_fills: u64,
}

impl RankCache {
    /// Builds an empty RankCache.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration is inconsistent.
    pub fn new(config: CacheConfig) -> Result<Self, ConfigError> {
        Ok(Self {
            inner: SetAssocCache::new(config)?,
            bypasses: 0,
            prefetch_fills: 0,
        })
    }

    /// Performs one access.
    ///
    /// `cacheable` carries the NMP instruction's `LocalityBit`: when false
    /// the lookup is skipped entirely and the access goes to DRAM. A
    /// *hit* is still possible for uncacheable lines that happen to be
    /// resident — the paper bypasses the lookup too, so we match that and
    /// do not probe.
    pub fn access(&mut self, addr: u64, cacheable: bool) -> RankCacheOutcome {
        if !cacheable {
            self.bypasses += 1;
            return RankCacheOutcome::Bypass;
        }
        if self.inner.access(addr).is_hit() {
            RankCacheOutcome::Hit
        } else {
            RankCacheOutcome::MissFill
        }
    }

    /// Stages a predicted-hot line without recording a lookup — the
    /// inter-query prefetch path (ProactivePIM-style): lines installed
    /// during an idle gap only pay off when a later *hinted* demand
    /// access finds them, so they must not perturb hit/miss accounting.
    /// Returns `true` when the line was newly installed.
    pub fn prefetch_fill(&mut self, addr: u64) -> bool {
        let fresh = self.inner.fill(addr);
        if fresh {
            self.prefetch_fills += 1;
        }
        fresh
    }

    /// Lines newly installed by [`prefetch_fill`](Self::prefetch_fill)
    /// since the last [`reset`](Self::reset).
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// Statistics, with bypasses folded in.
    pub fn stats(&self) -> CacheStats {
        let mut s = *self.inner.stats();
        s.bypasses = self.bypasses;
        s
    }

    /// Returns the configuration.
    pub fn config(&self) -> &CacheConfig {
        self.inner.config()
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        self.inner.reset();
        self.bypasses = 0;
        self.prefetch_fills = 0;
    }

    /// Energy consumed by cache lookups so far, in nanojoules.
    pub fn access_energy_nj(&self) -> f64 {
        (self.stats().lookups() as f64) * RANK_CACHE_ACCESS_PJ / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc() -> RankCache {
        RankCache::new(CacheConfig::new(512, 64, 4)).unwrap()
    }

    #[test]
    fn hit_after_fill() {
        let mut c = rc();
        assert_eq!(c.access(0, true), RankCacheOutcome::MissFill);
        assert_eq!(c.access(0, true), RankCacheOutcome::Hit);
        assert!(!RankCacheOutcome::Hit.needs_dram());
        assert!(RankCacheOutcome::MissFill.needs_dram());
    }

    #[test]
    fn bypass_does_not_allocate() {
        let mut c = rc();
        assert_eq!(c.access(0, false), RankCacheOutcome::Bypass);
        // Still a miss when later accessed cacheably.
        assert_eq!(c.access(0, true), RankCacheOutcome::MissFill);
        assert_eq!(c.stats().bypasses, 1);
    }

    #[test]
    fn bypass_skips_lookup_even_when_resident() {
        let mut c = rc();
        c.access(0, true);
        assert_eq!(c.access(0, false), RankCacheOutcome::Bypass);
    }

    #[test]
    fn effective_hit_rate_penalizes_bypasses() {
        let mut c = rc();
        c.access(0, true); // miss
        c.access(0, true); // hit
        c.access(64, false); // bypass
        c.access(128, false); // bypass
        let s = c.stats();
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert!((s.effective_hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn energy_counts_lookups_only() {
        let mut c = rc();
        c.access(0, true);
        c.access(0, true);
        c.access(64, false);
        assert!((c.access_energy_nj() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_bypasses() {
        let mut c = rc();
        c.access(0, false);
        c.reset();
        assert_eq!(c.stats().bypasses, 0);
    }

    #[test]
    fn prefetch_fill_turns_demand_miss_into_hit() {
        let mut c = rc();
        assert!(c.prefetch_fill(0x80));
        assert!(!c.prefetch_fill(0x80));
        assert_eq!(c.prefetch_fills(), 1);
        // The staged line costs no lookups, and the hinted demand access
        // now hits instead of filling.
        assert_eq!(c.stats().lookups(), 0);
        assert_eq!(c.access(0x80, true), RankCacheOutcome::Hit);
        // Unhinted accesses still bypass: prefetch only helps lines the
        // locality profiler marked cacheable.
        assert_eq!(c.access(0x80, false), RankCacheOutcome::Bypass);
    }

    #[test]
    fn reset_clears_prefetch_fills() {
        let mut c = rc();
        c.prefetch_fill(0);
        c.reset();
        assert_eq!(c.prefetch_fills(), 0);
        assert_eq!(c.access(0, true), RankCacheOutcome::MissFill);
    }
}
