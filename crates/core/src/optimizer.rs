//! The locality-aware optimizer: table-aware scheduling plus hot-entry
//! profiling (Section III-D), bundled behind one switchboard.

use recnmp_trace::profile::{HotEntryProfile, HotEntryProfiler};
use recnmp_trace::SlsBatch;

use crate::config::{RecNmpConfig, SchedulingPolicy};
use crate::packet::NmpPacket;
use crate::sched;

/// Applies the paper's two HW/SW co-optimizations to a packet stream.
#[derive(Debug, Clone, Copy)]
pub struct LocalityAwareOptimizer {
    /// Packet ordering policy.
    pub scheduling: SchedulingPolicy,
    /// Whether hot-entry profiling runs before kernel launch.
    pub profiling: bool,
    /// RankCache line count used to pick the profiling threshold.
    pub cache_lines: usize,
    /// Largest threshold evaluated in the sweep.
    pub max_threshold: u64,
}

impl LocalityAwareOptimizer {
    /// Derives the optimizer settings from a system configuration.
    pub fn from_config(config: &RecNmpConfig) -> Self {
        Self {
            scheduling: config.scheduling,
            profiling: config.hot_entry_profiling && config.rank_cache.is_some(),
            cache_lines: config.rank_cache.as_ref().map_or(0, |c| c.num_lines()),
            max_threshold: 4,
        }
    }

    /// Profiles one batch's indices into `LocalityBit` hints, when
    /// profiling is enabled. The threshold is swept 0..=max and the value
    /// with the best predicted hit rate wins, as in the paper.
    pub fn profile_batch(&self, batch: &SlsBatch) -> Option<HotEntryProfile> {
        if !self.profiling || self.cache_lines == 0 {
            return None;
        }
        let indices = batch.flat_indices();
        Some(HotEntryProfiler::new().sweep(&indices, self.cache_lines, self.max_threshold))
    }

    /// Orders the packet queue.
    pub fn schedule(&self, packets: Vec<NmpPacket>) -> Vec<NmpPacket> {
        sched::schedule(packets, self.scheduling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_trace::{EmbeddingTableSpec, Pooling};
    use recnmp_types::TableId;

    fn batch() -> SlsBatch {
        SlsBatch {
            table: TableId::new(0),
            spec: EmbeddingTableSpec::new(1000, 64),
            poolings: vec![Pooling::unweighted(vec![1, 1, 1, 2, 3, 4])],
        }
    }

    #[test]
    fn base_config_disables_everything() {
        let opt = LocalityAwareOptimizer::from_config(&RecNmpConfig::with_ranks(1, 2));
        assert!(!opt.profiling);
        assert!(opt.profile_batch(&batch()).is_none());
        assert_eq!(opt.scheduling, SchedulingPolicy::Fcfs);
    }

    #[test]
    fn optimized_config_profiles() {
        let opt = LocalityAwareOptimizer::from_config(&RecNmpConfig::optimized(1, 2));
        assert!(opt.profiling);
        assert_eq!(opt.cache_lines, 2048);
        let profile = opt.profile_batch(&batch()).expect("profiling enabled");
        // Row 1 repeats; with any positive threshold it is the hot one.
        assert!(profile.is_hot(1) || profile.threshold == 0);
    }

    #[test]
    fn profiling_requires_cache() {
        let mut cfg = RecNmpConfig::with_ranks(1, 2);
        cfg.hot_entry_profiling = true; // but no rank_cache
        let opt = LocalityAwareOptimizer::from_config(&cfg);
        assert!(!opt.profiling);
    }
}
