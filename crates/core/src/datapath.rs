//! Functional execution of NMP packets — the arithmetic the rank-NMP
//! pipeline and DIMM-NMP adder tree perform, used to verify the hardware
//! path against the reference SLS operators.
//!
//! The accumulation order matches the hardware: each rank accumulates its
//! own partial sums in delivery order, then the DIMM adder tree reduces
//! rank partial sums, then packets' `DIMM.Sum`s combine. FP32 addition is
//! not associative, so results can differ from the reference operator in
//! the last bits; equivalence tests use tolerances.

use recnmp_types::TableId;

use crate::inst::NmpOpcode;
use crate::packet::NmpPacket;

/// Executes a packet's arithmetic.
///
/// `fetch` returns the (dequantized, for 8-bit opcodes) FP32 embedding
/// vector for a (table, row) pair. Returns one output vector per pooling
/// (PsumTag order).
///
/// # Panics
///
/// Panics if the packet's origins are missing or vectors have
/// inconsistent dimensions.
pub fn execute_packet(
    packet: &NmpPacket,
    total_ranks: usize,
    fetch: &mut dyn FnMut(TableId, u64) -> Vec<f32>,
) -> Vec<Vec<f32>> {
    assert_eq!(
        packet.origins.len(),
        packet.insts.len(),
        "packet lacks provenance for functional execution"
    );
    let poolings = packet.poolings();
    if packet.is_empty() {
        return vec![Vec::new(); poolings];
    }
    let dims = packet.insts[0].vsize as usize * 16;

    // Per-rank, per-tag partial sums (the PSum register file).
    let mut psums: Vec<Vec<Vec<f32>>> = vec![vec![vec![0.0; dims]; poolings]; total_ranks];
    for (inst, origin) in packet.insts.iter().zip(&packet.origins) {
        let rank = inst.daddr.rank as usize % total_ranks;
        let vec = fetch(origin.table, origin.row);
        assert_eq!(vec.len(), dims, "fetched vector has wrong dimension");
        let acc = &mut psums[rank][inst.psum_tag as usize];
        for (a, v) in acc.iter_mut().zip(&vec) {
            *a += inst.weight * v;
        }
    }

    // DIMM/channel adder tree: reduce rank partial sums pairwise.
    let mut outputs = vec![vec![0.0f32; dims]; poolings];
    for tag in 0..poolings {
        let mut level: Vec<Vec<f32>> = psums.iter().map(|r| r[tag].clone()).collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(pair[0].iter().zip(&pair[1]).map(|(a, b)| a + b).collect());
                } else {
                    next.push(pair[0].clone());
                }
            }
            level = next;
        }
        outputs[tag] = level.pop().expect("at least one rank");
    }

    // Mean variants divide by the pooling size at the end.
    let averaged = matches!(
        packet.insts[0].opcode,
        NmpOpcode::Mean | NmpOpcode::WeightedMean | NmpOpcode::WeightedMean8
    );
    if averaged {
        for (out, &n) in outputs.iter_mut().zip(&packet.pooling_sizes) {
            if n > 0 {
                for v in out.iter_mut() {
                    *v /= n as f32;
                }
            }
        }
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::NmpInst;
    use crate::packet::InstOrigin;
    use recnmp_dram::DramAddr;
    use recnmp_types::ModelId;

    /// Each row r fetches the vector [r, r, ..., r].
    fn fetch(_t: TableId, row: u64) -> Vec<f32> {
        vec![row as f32; 16]
    }

    fn packet(op: NmpOpcode, entries: &[(u8 /*rank*/, u64 /*row*/, u8 /*tag*/, f32)]) -> NmpPacket {
        let max_tag = entries.iter().map(|e| e.2).max().unwrap_or(0) as usize;
        let mut pooling_sizes = vec![0usize; max_tag + 1];
        for e in entries {
            pooling_sizes[e.2 as usize] += 1;
        }
        NmpPacket {
            model: ModelId::new(0),
            table: TableId::new(0),
            insts: entries
                .iter()
                .map(|&(rank, row, tag, weight)| NmpInst {
                    opcode: op,
                    ddr_cmd: crate::inst::DdrCmdFlags::row_closed(),
                    daddr: DramAddr {
                        rank,
                        bank_group: 0,
                        bank: 0,
                        row: row as u32,
                        column: 0,
                    },
                    vsize: 1,
                    weight,
                    locality: false,
                    psum_tag: tag,
                })
                .collect(),
            origins: entries
                .iter()
                .map(|&(_, row, _, _)| InstOrigin {
                    table: TableId::new(0),
                    row,
                })
                .collect(),
            pooling_sizes,
        }
    }

    #[test]
    fn sum_across_ranks() {
        let p = packet(
            NmpOpcode::Sum,
            &[(0, 1, 0, 1.0), (1, 2, 0, 1.0), (0, 3, 0, 1.0)],
        );
        let out = execute_packet(&p, 2, &mut fetch);
        assert_eq!(out[0], vec![6.0; 16]);
    }

    #[test]
    fn tags_separate_poolings() {
        let p = packet(NmpOpcode::Sum, &[(0, 1, 0, 1.0), (0, 2, 1, 1.0)]);
        let out = execute_packet(&p, 2, &mut fetch);
        assert_eq!(out[0], vec![1.0; 16]);
        assert_eq!(out[1], vec![2.0; 16]);
    }

    #[test]
    fn weighted_sum_scales() {
        let p = packet(NmpOpcode::WeightedSum, &[(0, 2, 0, 0.5), (1, 4, 0, 2.0)]);
        let out = execute_packet(&p, 2, &mut fetch);
        assert_eq!(out[0], vec![9.0; 16]);
    }

    #[test]
    fn mean_divides_by_count() {
        let p = packet(NmpOpcode::Mean, &[(0, 3, 0, 1.0), (1, 5, 0, 1.0)]);
        let out = execute_packet(&p, 2, &mut fetch);
        assert_eq!(out[0], vec![4.0; 16]);
    }

    #[test]
    fn empty_packet_yields_empty_outputs() {
        let p = packet(NmpOpcode::Sum, &[]);
        let out = execute_packet(&p, 2, &mut fetch);
        assert!(out.iter().all(Vec::is_empty));
    }

    #[test]
    #[should_panic(expected = "provenance")]
    fn missing_origins_panic() {
        let mut p = packet(NmpOpcode::Sum, &[(0, 1, 0, 1.0)]);
        p.origins.clear();
        execute_packet(&p, 2, &mut fetch);
    }
}
