//! The full RecNMP-equipped memory channel.

use recnmp_cache::CacheStats;
use recnmp_dram::address::{AddressMapping, Geometry};
use recnmp_trace::{PageMapper, SlsBatch};
use recnmp_types::{ConfigError, Cycle, ModelId};
use serde::{Deserialize, Serialize};

use crate::config::RecNmpConfig;
use crate::dimm_nmp::DimmNmp;
use crate::inst::{NmpInst, NmpOpcode};
use crate::optimizer::LocalityAwareOptimizer;
use crate::packet::{NmpPacket, PacketBuilder};

/// Aggregate results of running a packet stream on a [`RecNmpSystem`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NmpRunReport {
    /// End-to-end cycles from first delivery to last sum.
    pub total_cycles: Cycle,
    /// Packets executed.
    pub packets: usize,
    /// Instructions executed.
    pub insts: u64,
    /// Per-packet latency (delivery start to DIMM.Sum).
    pub packet_latencies: Vec<Cycle>,
    /// Per-packet fraction of instructions handled by the busiest rank
    /// (the Figure 14(b) load-imbalance metric; 1/ranks is perfect).
    pub slowest_rank_fraction: Vec<f64>,
    /// Total instructions per rank.
    pub rank_insts: Vec<u64>,
    /// Aggregated RankCache statistics.
    pub cache: CacheStats,
    /// ACT commands issued across all ranks.
    pub dram_acts: u64,
    /// 64-byte bursts read from DRAM devices.
    pub dram_bursts: u64,
    /// Embedding bytes gathered (before cache filtering).
    pub gathered_bytes: u64,
    /// Bytes crossing the channel interface (instructions in, sums out).
    pub io_bytes: u64,
    /// FP32 additions performed by the datapath.
    pub alu_adds: u64,
    /// FP32 multiplications performed by the datapath.
    pub alu_mults: u64,
}

impl NmpRunReport {
    /// Mean packet latency in cycles.
    pub fn mean_packet_latency(&self) -> f64 {
        if self.packet_latencies.is_empty() {
            0.0
        } else {
            self.packet_latencies.iter().sum::<Cycle>() as f64 / self.packet_latencies.len() as f64
        }
    }

    /// Mean slowest-rank fraction (load imbalance).
    pub fn mean_imbalance(&self) -> f64 {
        if self.slowest_rank_fraction.is_empty() {
            0.0
        } else {
            self.slowest_rank_fraction.iter().sum::<f64>() / self.slowest_rank_fraction.len() as f64
        }
    }

    /// Cycles per gathered vector — the throughput figure experiments
    /// normalize against the host baseline.
    pub fn cycles_per_lookup(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.insts as f64
        }
    }
}

/// One RecNMP-equipped memory channel: the NMP-extended controller front
/// end plus one PU per DIMM.
///
/// Execution follows the paper's methodology: packets run serially (the
/// host configures the accumulation counter, streams instructions at two
/// per DRAM cycle, and waits for the sum), each packet's latency set by
/// its slowest rank; rank state (DRAM rows, RankCache contents) persists
/// across packets.
#[derive(Debug)]
pub struct RecNmpSystem {
    config: RecNmpConfig,
    dimms: Vec<DimmNmp>,
    now: Cycle,
    report: NmpRunReport,
}

impl RecNmpSystem {
    /// Builds the channel.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration is invalid.
    pub fn new(config: RecNmpConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let dimms = (0..config.dimms)
            .map(|d| DimmNmp::new(recnmp_types::DimmId::new(d as u32), &config))
            .collect::<Result<Vec<_>, _>>()?;
        let ranks = config.total_ranks() as usize;
        Ok(Self {
            config,
            dimms,
            now: 0,
            report: NmpRunReport {
                rank_insts: vec![0; ranks],
                ..NmpRunReport::default()
            },
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &RecNmpConfig {
        &self.config
    }

    /// Channel geometry (for packet building and page mapping).
    pub fn geometry(&self) -> Geometry {
        Geometry::ddr4_8gb_x8(self.config.total_ranks())
    }

    /// The physical-to-DRAM mapping the NMP-extended controller applies.
    pub fn mapping(&self) -> AddressMapping {
        AddressMapping::SkylakeXor
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.now
    }

    /// Runs a scheduled packet stream; returns the cumulative report.
    pub fn run_packets(&mut self, packets: &[NmpPacket]) -> NmpRunReport {
        let run_start = self.now;
        for packet in packets {
            self.run_one(packet);
        }
        self.report.total_cycles = self.now - run_start;
        self.aggregate();
        self.report.clone()
    }

    /// Refreshes the aggregated per-rank statistics in the report.
    fn aggregate(&mut self) {
        let mut cache = CacheStats::default();
        let mut acts = 0;
        let mut bursts = 0;
        let mut adds = 0;
        let mut mults = 0;
        for dimm in &self.dimms {
            for rank in dimm.ranks() {
                let cs = rank.cache_stats();
                cache.hits += cs.hits;
                cache.misses += cs.misses;
                cache.compulsory_misses += cs.compulsory_misses;
                cache.evictions += cs.evictions;
                cache.bypasses += cs.bypasses;
                acts += rank.dram_stats().acts;
                bursts += rank.stats().dram_bursts;
                adds += rank.stats().adds;
                mults += rank.stats().mults;
            }
        }
        self.report.cache = cache;
        self.report.dram_acts = acts;
        self.report.dram_bursts = bursts;
        self.report.alu_adds = adds;
        self.report.alu_mults = mults;
    }

    fn run_one(&mut self, packet: &NmpPacket) {
        if packet.is_empty() {
            return;
        }
        let start = self.now;
        let ranks_per_dimm = self.config.ranks_per_dimm as usize;
        let total_ranks = self.config.total_ranks() as usize;

        // Delivery schedule: insts_per_cycle instructions per DRAM cycle
        // over the shared channel interface (the compressed-format C/A
        // expansion of Figure 9(b)).
        let mut per_dimm: Vec<Vec<Vec<(Cycle, NmpInst)>>> =
            vec![vec![Vec::new(); ranks_per_dimm]; self.dimms.len()];
        let mut rank_counts = vec![0u64; total_ranks];
        for (i, inst) in packet.insts.iter().enumerate() {
            let arrival = start + (i as u64) / self.config.insts_per_cycle as u64;
            let rank = inst.daddr.rank as usize % total_ranks;
            let dimm = rank / ranks_per_dimm;
            per_dimm[dimm][rank % ranks_per_dimm].push((arrival, *inst));
            rank_counts[rank] += 1;
        }

        let mut done = start;
        for (dimm, slices) in self.dimms.iter_mut().zip(&per_dimm) {
            let res = dimm.process(start, slices);
            done = done.max(res.done_cycle);
        }
        // Return the pooled sums to the host: one burst (4 cycles) per
        // pooling per vsize unit over the channel DQ bus.
        let vsize = packet.insts.first().map_or(1, |i| i.vsize) as u64;
        let out_cycles = packet.poolings() as u64 * vsize * 4;
        let packet_done = done + 1 + out_cycles;

        let total = packet.len() as u64;
        let max_rank = rank_counts.iter().copied().max().unwrap_or(0);
        self.report
            .slowest_rank_fraction
            .push(max_rank as f64 / total as f64);
        self.report.packet_latencies.push(packet_done - start);
        for (acc, c) in self.report.rank_insts.iter_mut().zip(&rank_counts) {
            *acc += c;
        }
        self.report.packets += 1;
        self.report.insts += total;
        self.report.gathered_bytes += packet.gathered_bytes();
        self.report.io_bytes += packet.inst_bytes() + packet.output_bytes();
        self.now = packet_done;
    }

    /// Runs a packet stream with *overlapped* execution: instructions
    /// stream continuously at the channel delivery rate and every rank
    /// consumes its share as it arrives, with no per-packet barrier.
    ///
    /// This models the high task-level-parallelism regime the paper
    /// invokes for the page-coloring data layout (Figure 14(a)), where
    /// packets from different SLS operators are in flight on different
    /// ranks simultaneously. The run is reported as a single latency
    /// entry; per-packet latencies are not meaningful here.
    pub fn run_packets_overlapped(&mut self, packets: &[NmpPacket]) -> NmpRunReport {
        let start = self.now;
        let ranks_per_dimm = self.config.ranks_per_dimm as usize;
        let total_ranks = self.config.total_ranks() as usize;
        let mut per_dimm: Vec<Vec<Vec<(Cycle, NmpInst)>>> =
            vec![vec![Vec::new(); ranks_per_dimm]; self.dimms.len()];
        let mut rank_counts = vec![0u64; total_ranks];
        let mut delivered = 0u64;
        let mut gathered = 0u64;
        let mut io = 0u64;
        // Packets issue *simultaneously*: the controller round-robins one
        // instruction from each in-flight packet per delivery slot, so
        // every rank starts receiving work immediately (this is the
        // task-level parallelism the page-coloring layout requires).
        let mut cursors = vec![0usize; packets.len()];
        let mut remaining: usize = packets.iter().map(NmpPacket::len).sum();
        while remaining > 0 {
            for (packet, cursor) in packets.iter().zip(cursors.iter_mut()) {
                let Some(inst) = packet.insts.get(*cursor) else {
                    continue;
                };
                *cursor += 1;
                remaining -= 1;
                let arrival = start + delivered / self.config.insts_per_cycle as u64;
                delivered += 1;
                let rank = inst.daddr.rank as usize % total_ranks;
                per_dimm[rank / ranks_per_dimm][rank % ranks_per_dimm].push((arrival, *inst));
                rank_counts[rank] += 1;
            }
        }
        for packet in packets {
            gathered += packet.gathered_bytes();
            io += packet.inst_bytes() + packet.output_bytes();
        }
        let mut done = start;
        for (dimm, slices) in self.dimms.iter_mut().zip(&per_dimm) {
            let res = dimm.process(start, slices);
            done = done.max(res.done_cycle);
        }
        // Pooled outputs stream back overlapped with execution; only the
        // final buffer write adds a cycle.
        self.now = done + 1;
        let total = delivered.max(1);
        let max_rank = rank_counts.iter().copied().max().unwrap_or(0);
        self.report.packets += packets.len();
        self.report.insts += delivered;
        self.report
            .packet_latencies
            .push(self.now.saturating_sub(start));
        self.report
            .slowest_rank_fraction
            .push(max_rank as f64 / total as f64);
        for (acc, c) in self.report.rank_insts.iter_mut().zip(&rank_counts) {
            *acc += c;
        }
        self.report.gathered_bytes += gathered;
        self.report.io_bytes += io;
        self.report.total_cycles = self.now - start;
        self.aggregate();
        self.report.clone()
    }

    /// Convenience entry point: compiles, optimizes and runs a set of SLS
    /// batches using an internally managed page mapping (each table gets
    /// contiguous logical space mapped to random physical pages).
    ///
    /// Experiments that need a *shared* mapping with a host-baseline run
    /// should use [`PacketBuilder`] plus [`run_packets`] directly.
    ///
    /// [`run_packets`]: Self::run_packets
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if a batch's table spec is inconsistent.
    pub fn offload(&mut self, batches: &[SlsBatch]) -> Result<NmpRunReport, ConfigError> {
        let geo = self.geometry();
        let mapping = self.mapping();
        let builder = PacketBuilder::new(
            NmpOpcode::Sum,
            self.config.poolings_per_packet,
            mapping,
            geo,
        );
        let optimizer = LocalityAwareOptimizer::from_config(&self.config);
        let mut mapper = PageMapper::new(geo.capacity_bytes() / 4096, 0x5eed);
        let mut packets = Vec::new();
        let mut base = 0u64;
        for batch in batches {
            batch.spec.validate()?;
            let profile = optimizer.profile_batch(batch);
            let table_base = base;
            let vector_bytes = batch.spec.vector_bytes;
            let mut translate =
                |row: u64| mapper.translate(table_base + row * vector_bytes);
            packets.extend(builder.build(
                ModelId::new(0),
                batch,
                &mut translate,
                profile.as_ref(),
            ));
            base += batch.spec.bytes();
        }
        let scheduled = optimizer.schedule(packets);
        Ok(self.run_packets(&scheduled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, TraceGenerator};
    use recnmp_types::TableId;

    fn batches(n_tables: u32, batch: usize) -> Vec<SlsBatch> {
        (0..n_tables)
            .map(|t| {
                TraceGenerator::new(
                    TableId::new(t),
                    EmbeddingTableSpec::dlrm_default(),
                    IndexDistribution::Zipf { s: 0.9 },
                    42 + t as u64,
                )
                .batch(batch, 80)
            })
            .collect()
    }

    fn quiet(mut cfg: RecNmpConfig) -> RecNmpConfig {
        cfg.refresh = false;
        cfg
    }

    #[test]
    fn offload_runs_all_instructions() {
        let mut sys = RecNmpSystem::new(quiet(RecNmpConfig::with_ranks(1, 2))).unwrap();
        let report = sys.offload(&batches(1, 8)).unwrap();
        assert_eq!(report.insts, 8 * 80);
        assert_eq!(report.packets, 1);
        assert!(report.total_cycles > 0);
        assert_eq!(report.rank_insts.iter().sum::<u64>(), 640);
    }

    #[test]
    fn more_ranks_run_faster() {
        let run = |dimms, ranks| {
            let mut sys = RecNmpSystem::new(quiet(RecNmpConfig::with_ranks(dimms, ranks))).unwrap();
            sys.offload(&batches(2, 16)).unwrap().total_cycles
        };
        let two = run(1, 2);
        let eight = run(4, 2);
        assert!(
            (eight as f64) < 0.45 * two as f64,
            "2-rank {two} vs 8-rank {eight}"
        );
    }

    #[test]
    fn cache_reduces_dram_traffic() {
        let base_cfg = quiet(RecNmpConfig::with_ranks(1, 2));
        let mut cached_cfg = quiet(RecNmpConfig::optimized(1, 2));
        cached_cfg.scheduling = crate::config::SchedulingPolicy::Fcfs;
        let w = batches(1, 32);
        let mut base = RecNmpSystem::new(base_cfg).unwrap();
        let mut cached = RecNmpSystem::new(cached_cfg).unwrap();
        let rb = base.offload(&w).unwrap();
        let rc = cached.offload(&w).unwrap();
        assert_eq!(rb.insts, rc.insts);
        assert!(rc.dram_bursts < rb.dram_bursts, "{} vs {}", rc.dram_bursts, rb.dram_bursts);
        assert!(rc.cache.hits > 0);
        assert!(rc.total_cycles <= rb.total_cycles);
    }

    #[test]
    fn fewer_poolings_per_packet_cost_more() {
        let run = |ppp| {
            let mut cfg = quiet(RecNmpConfig::with_ranks(4, 2));
            cfg.poolings_per_packet = ppp;
            let mut sys = RecNmpSystem::new(cfg).unwrap();
            sys.offload(&batches(1, 16)).unwrap().total_cycles
        };
        let one = run(1);
        let eight = run(8);
        assert!(eight < one, "ppp=1 {one} vs ppp=8 {eight}");
    }

    #[test]
    fn imbalance_shrinks_with_packet_size() {
        let imb = |ppp| {
            let mut cfg = quiet(RecNmpConfig::with_ranks(4, 2));
            cfg.poolings_per_packet = ppp;
            let mut sys = RecNmpSystem::new(cfg).unwrap();
            sys.offload(&batches(1, 16)).unwrap().mean_imbalance()
        };
        let small = imb(1);
        let large = imb(8);
        // Perfect balance on 8 ranks is 0.125.
        assert!(large < small, "ppp=1 {small} vs ppp=8 {large}");
        assert!(large >= 0.125);
    }

    #[test]
    fn report_accounting_consistent() {
        let mut sys = RecNmpSystem::new(quiet(RecNmpConfig::with_ranks(2, 2))).unwrap();
        let report = sys.offload(&batches(2, 8)).unwrap();
        assert_eq!(report.packet_latencies.len(), report.packets);
        assert_eq!(report.slowest_rank_fraction.len(), report.packets);
        assert_eq!(report.gathered_bytes, report.insts * 128);
        assert!(report.io_bytes < report.gathered_bytes);
        assert_eq!(report.alu_adds, report.insts * 32);
    }

    #[test]
    fn empty_offload_is_zero() {
        let mut sys = RecNmpSystem::new(quiet(RecNmpConfig::with_ranks(1, 2))).unwrap();
        let report = sys.offload(&[]).unwrap();
        assert_eq!(report.total_cycles, 0);
        assert_eq!(report.packets, 0);
    }
}
