//! The full RecNMP-equipped memory channel.

use recnmp_backend::report::{add_cache, add_dram, cache_delta, dram_delta};
use recnmp_backend::{RunReport, SlsBackend, SlsTrace, TraceBatch};
use recnmp_cache::CacheStats;
use recnmp_dram::address::{AddressMapping, Geometry};
use recnmp_dram::DramStats;
use recnmp_trace::{PageMapper, SlsBatch};
use recnmp_types::{ConfigError, Cycle, ModelId, PhysAddr, SimError};
use serde::{Deserialize, Serialize};

use crate::config::{ExecutionMode, RecNmpConfig};
use crate::dimm_nmp::DimmNmp;
use crate::inst::{NmpInst, NmpOpcode};
use crate::optimizer::LocalityAwareOptimizer;
use crate::packet::{NmpPacket, PacketBuilder};

/// A bounded running summary of one per-packet metric: count, sum and
/// max, from which the mean follows. O(1) space regardless of how many
/// packets a session serves.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Observations folded in.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Largest observation (0 before the first).
    pub max: f64,
}

impl MetricSummary {
    /// Folds one observation in.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The optional full per-packet history a session retains when
/// [`RecNmpConfig::retain_packet_history`] is set.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PacketHistory {
    /// Per-packet latency, one entry per packet ever run.
    pub latencies: Vec<Cycle>,
    /// Per-packet busiest-rank fraction, aligned with `latencies`.
    pub slowest_rank_fraction: Vec<f64>,
}

/// Lifetime statistics of one [`RecNmpSystem`] — **cumulative** across
/// every run the channel has served.
///
/// Per-run results come from the [`RunReport`] snapshots that
/// [`RecNmpSystem::run_packets`] (and the [`SlsBackend`] impl) return;
/// this struct is the session-scope complement for long-running serving
/// scenarios (utilization over a whole trace replay, total bytes moved).
///
/// Retention is bounded by default: per-packet latency and imbalance are
/// kept as [`MetricSummary`] running summaries, so a serving run that
/// executes millions of packets holds O(1) session state. Opting in to
/// [`RecNmpConfig::retain_packet_history`] additionally keeps the full
/// per-packet vectors in [`history`](Self::history).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SessionStats {
    /// Packets executed since construction.
    pub packets: usize,
    /// Instructions executed since construction.
    pub insts: u64,
    /// Running summary of per-packet latency (cycles).
    pub latency: MetricSummary,
    /// Running summary of the per-packet busiest-rank fraction.
    pub rank_fraction: MetricSummary,
    /// Full per-packet history; `None` unless retention is enabled.
    pub history: Option<PacketHistory>,
    /// Total instructions per rank since construction.
    pub rank_insts: Vec<u64>,
    /// Embedding bytes gathered since construction.
    pub gathered_bytes: u64,
    /// Channel-interface bytes since construction.
    pub io_bytes: u64,
}

impl SessionStats {
    /// Folds one packet's latency and busiest-rank fraction into the
    /// summaries (and the full history when retained).
    fn observe_packet(&mut self, latency: Cycle, fraction: f64) {
        self.latency.observe(latency as f64);
        self.rank_fraction.observe(fraction);
        if let Some(h) = &mut self.history {
            h.latencies.push(latency);
            h.slowest_rank_fraction.push(fraction);
        }
    }
}

/// Per-packet instruction delivery buffers: `[dimm][local rank]` slices
/// of `(arrival cycle, instruction)` pairs, reused across packets.
type DeliverySlices = Vec<Vec<Vec<(Cycle, NmpInst)>>>;

/// Snapshot of every cumulative counter at the start of one run, used to
/// report that run as a delta.
#[derive(Debug, Clone)]
struct RunMark {
    start_cycle: Cycle,
    packets: usize,
    insts: u64,
    rank_insts: Vec<u64>,
    gathered_bytes: u64,
    io_bytes: u64,
    cache: CacheStats,
    dram: DramStats,
    dram_bursts: u64,
    alu_adds: u64,
    alu_mults: u64,
}

/// One RecNMP-equipped memory channel: the NMP-extended controller front
/// end plus one PU per DIMM.
///
/// Execution follows the paper's methodology: packets run serially (the
/// host configures the accumulation counter, streams instructions at two
/// per DRAM cycle, and waits for the sum), each packet's latency set by
/// its slowest rank; rank state (DRAM rows, RankCache contents) persists
/// across packets — and across runs, while every returned [`RunReport`]
/// covers exactly one run.
#[derive(Debug)]
pub struct RecNmpSystem {
    config: RecNmpConfig,
    dimms: Vec<DimmNmp>,
    now: Cycle,
    session: SessionStats,
    /// Per-packet latencies of the run in progress — cleared at each
    /// run's [`mark`](Self::mark) so [`RunReport`]s carry full per-run
    /// vectors while session retention stays bounded.
    run_latencies: Vec<Cycle>,
    /// Busiest-rank fractions of the run in progress, aligned with
    /// `run_latencies`.
    run_fractions: Vec<f64>,
    /// Reusable per-packet delivery buffers (`[dimm][local rank]`
    /// instruction slices) so the scheduling loop does not allocate per
    /// packet; taken out and put back around each packet.
    slice_scratch: DeliverySlices,
    /// Reusable per-packet instruction counts, one per global rank.
    count_scratch: Vec<u64>,
}

impl RecNmpSystem {
    /// Builds the channel.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the configuration is invalid.
    pub fn new(config: RecNmpConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let dimms = (0..config.dimms)
            .map(|d| DimmNmp::new(recnmp_types::DimmId::new(d as u32), &config))
            .collect::<Result<Vec<_>, _>>()?;
        let ranks = config.total_ranks() as usize;
        let history = config.retain_packet_history.then(PacketHistory::default);
        Ok(Self {
            config,
            dimms,
            now: 0,
            session: SessionStats {
                rank_insts: vec![0; ranks],
                history,
                ..SessionStats::default()
            },
            run_latencies: Vec::new(),
            run_fractions: Vec::new(),
            slice_scratch: Vec::new(),
            count_scratch: Vec::new(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &RecNmpConfig {
        &self.config
    }

    /// Channel geometry (for packet building and page mapping).
    pub fn geometry(&self) -> Geometry {
        self.config.geometry()
    }

    /// The physical-to-DRAM mapping the NMP-extended controller applies.
    pub fn mapping(&self) -> AddressMapping {
        self.config.mapping()
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.now
    }

    /// Cumulative statistics across every run this channel has served.
    pub fn session(&self) -> &SessionStats {
        &self.session
    }

    /// Total DRAM-engine main-loop iterations across every rank — the
    /// wall-clock cost driver of this channel's simulation (each
    /// iteration is one scheduling decision).
    pub fn total_dram_loop_iterations(&self) -> u64 {
        self.dimms
            .iter()
            .flat_map(|d| d.ranks())
            .map(|r| r.dram_loop_iterations())
            .sum()
    }

    /// Snapshots every cumulative counter at the start of a run and
    /// resets the run-scoped per-packet buffers.
    fn mark(&mut self) -> RunMark {
        self.run_latencies.clear();
        self.run_fractions.clear();
        let agg = self.aggregate();
        RunMark {
            start_cycle: self.now,
            packets: self.session.packets,
            insts: self.session.insts,
            rank_insts: self.session.rank_insts.clone(),
            gathered_bytes: self.session.gathered_bytes,
            io_bytes: self.session.io_bytes,
            cache: agg.cache,
            dram: agg.dram,
            dram_bursts: agg.dram_bursts,
            alu_adds: agg.alu_adds,
            alu_mults: agg.alu_mults,
        }
    }

    /// The per-run snapshot: everything that changed since `mark`. The
    /// run-scoped per-packet buffers are *moved* into the report (the
    /// next run's [`mark`](Self::mark) starts them fresh), not cloned.
    fn report_since(&mut self, mark: &RunMark) -> RunReport {
        let agg = self.aggregate();
        RunReport {
            system: "recnmp".into(),
            total_cycles: self.now - mark.start_cycle,
            packets: self.session.packets - mark.packets,
            insts: self.session.insts - mark.insts,
            packet_latencies: std::mem::take(&mut self.run_latencies),
            slowest_rank_fraction: std::mem::take(&mut self.run_fractions),
            rank_insts: self
                .session
                .rank_insts
                .iter()
                .zip(&mark.rank_insts)
                .map(|(now, then)| now - then)
                .collect(),
            cache: cache_delta(&agg.cache, &mark.cache),
            dram: dram_delta(&agg.dram, &mark.dram),
            dram_bursts: agg.dram_bursts - mark.dram_bursts,
            gathered_bytes: self.session.gathered_bytes - mark.gathered_bytes,
            io_bytes: self.session.io_bytes - mark.io_bytes,
            alu_adds: agg.alu_adds - mark.alu_adds,
            alu_mults: agg.alu_mults - mark.alu_mults,
            query_completions: Vec::new(),
            // Host-cache and prefetch accounting live in the serving
            // scheduler, which owns the host cache and the prefetch
            // budget; a bare trace run has neither.
            host_hits: 0,
            host_misses: 0,
            host_absorbed_bytes: 0,
            prefetch_fills: 0,
            // Resilience counters (retries/hedges/failovers and query
            // outcomes) are fleet-scheduler bookkeeping; a bare trace
            // run never retries or sheds.
            retries: 0,
            hedges: 0,
            failovers: 0,
            queries_rejected: 0,
            queries_shed: 0,
            queries_failed: 0,
        }
    }

    /// Runs a scheduled packet stream; returns the report for **this run
    /// only** (rank state persists, counters do not leak across runs).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] if a rank's DRAM devices livelock.
    pub fn run_packets(&mut self, packets: &[NmpPacket]) -> Result<RunReport, SimError> {
        let mark = self.mark();
        for packet in packets {
            self.run_one(packet)?;
        }
        Ok(self.report_since(&mark))
    }

    /// Sums the cumulative per-rank hardware counters.
    fn aggregate(&self) -> RankAggregates {
        let mut agg = RankAggregates::default();
        for dimm in &self.dimms {
            for rank in dimm.ranks() {
                add_cache(&mut agg.cache, &rank.cache_stats());
                add_dram(&mut agg.dram, rank.dram_stats());
                agg.dram_bursts += rank.stats().dram_bursts;
                agg.alu_adds += rank.stats().adds;
                agg.alu_mults += rank.stats().mults;
            }
        }
        agg
    }

    /// Takes the per-packet scratch buffers out of `self`, shaped and
    /// cleared for this channel's geometry.
    fn take_scratch(&mut self) -> (DeliverySlices, Vec<u64>) {
        let ranks_per_dimm = self.config.ranks_per_dimm as usize;
        let total_ranks = self.config.total_ranks() as usize;
        let mut slices = std::mem::take(&mut self.slice_scratch);
        if slices.len() != self.dimms.len()
            || slices.first().is_some_and(|d| d.len() != ranks_per_dimm)
        {
            slices = vec![vec![Vec::new(); ranks_per_dimm]; self.dimms.len()];
        } else {
            for dimm in &mut slices {
                for rank in dimm.iter_mut() {
                    rank.clear();
                }
            }
        }
        let mut counts = std::mem::take(&mut self.count_scratch);
        counts.clear();
        counts.resize(total_ranks, 0);
        (slices, counts)
    }

    fn run_one(&mut self, packet: &NmpPacket) -> Result<(), SimError> {
        if packet.is_empty() {
            return Ok(());
        }
        let start = self.now;
        let ranks_per_dimm = self.config.ranks_per_dimm as usize;
        let total_ranks = self.config.total_ranks() as usize;

        // Delivery schedule: insts_per_cycle instructions per DRAM cycle
        // over the shared channel interface (the compressed-format C/A
        // expansion of Figure 9(b)). The delivery buffers are run-scoped
        // scratch, reused across packets.
        let (mut per_dimm, mut rank_counts) = self.take_scratch();
        for (i, inst) in packet.insts.iter().enumerate() {
            let arrival = start + (i as u64) / self.config.insts_per_cycle as u64;
            let rank = inst.daddr.rank as usize % total_ranks;
            let dimm = rank / ranks_per_dimm;
            per_dimm[dimm][rank % ranks_per_dimm].push((arrival, *inst));
            rank_counts[rank] += 1;
        }

        let mut done = start;
        for (dimm, slices) in self.dimms.iter_mut().zip(&per_dimm) {
            let res = dimm.process(start, slices)?;
            done = done.max(res.done_cycle);
        }
        // Return the pooled sums to the host: one burst (4 cycles) per
        // pooling per vsize unit over the channel DQ bus.
        let vsize = packet.insts.first().map_or(1, |i| i.vsize) as u64;
        let out_cycles = packet.poolings() as u64 * vsize * 4;
        let packet_done = done + 1 + out_cycles;

        let total = packet.len() as u64;
        let max_rank = rank_counts.iter().copied().max().unwrap_or(0);
        let fraction = max_rank as f64 / total as f64;
        self.run_latencies.push(packet_done - start);
        self.run_fractions.push(fraction);
        self.session.observe_packet(packet_done - start, fraction);
        for (acc, c) in self.session.rank_insts.iter_mut().zip(&rank_counts) {
            *acc += c;
        }
        self.session.packets += 1;
        self.session.insts += total;
        self.session.gathered_bytes += packet.gathered_bytes();
        self.session.io_bytes += packet.inst_bytes() + packet.output_bytes();
        self.now = packet_done;
        self.slice_scratch = per_dimm;
        self.count_scratch = rank_counts;
        Ok(())
    }

    /// Runs a packet stream with *overlapped* execution: instructions
    /// stream continuously at the channel delivery rate and every rank
    /// consumes its share as it arrives, with no per-packet barrier.
    ///
    /// This models the high task-level-parallelism regime the paper
    /// invokes for the page-coloring data layout (Figure 14(a)), where
    /// packets from different SLS operators are in flight on different
    /// ranks simultaneously. The run is reported as a single latency
    /// entry; per-packet latencies are not meaningful here.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] if a rank's DRAM devices livelock.
    pub fn run_packets_overlapped(&mut self, packets: &[NmpPacket]) -> Result<RunReport, SimError> {
        let mark = self.mark();
        let start = self.now;
        let ranks_per_dimm = self.config.ranks_per_dimm as usize;
        let total_ranks = self.config.total_ranks() as usize;
        let (mut per_dimm, mut rank_counts) = self.take_scratch();
        let mut delivered = 0u64;
        let mut gathered = 0u64;
        let mut io = 0u64;
        // Packets issue *simultaneously*: the controller round-robins one
        // instruction from each in-flight packet per delivery slot, so
        // every rank starts receiving work immediately (this is the
        // task-level parallelism the page-coloring layout requires).
        let mut cursors = vec![0usize; packets.len()];
        let mut remaining: usize = packets.iter().map(NmpPacket::len).sum();
        while remaining > 0 {
            for (packet, cursor) in packets.iter().zip(cursors.iter_mut()) {
                let Some(inst) = packet.insts.get(*cursor) else {
                    continue;
                };
                *cursor += 1;
                remaining -= 1;
                let arrival = start + delivered / self.config.insts_per_cycle as u64;
                delivered += 1;
                let rank = inst.daddr.rank as usize % total_ranks;
                per_dimm[rank / ranks_per_dimm][rank % ranks_per_dimm].push((arrival, *inst));
                rank_counts[rank] += 1;
            }
        }
        for packet in packets {
            gathered += packet.gathered_bytes();
            io += packet.inst_bytes() + packet.output_bytes();
        }
        let mut done = start;
        for (dimm, slices) in self.dimms.iter_mut().zip(&per_dimm) {
            let res = dimm.process(start, slices)?;
            done = done.max(res.done_cycle);
        }
        // Pooled outputs stream back overlapped with execution; only the
        // final buffer write adds a cycle.
        self.now = done + 1;
        let total = delivered.max(1);
        let max_rank = rank_counts.iter().copied().max().unwrap_or(0);
        self.session.packets += packets.len();
        self.session.insts += delivered;
        let latency = self.now.saturating_sub(start);
        let fraction = max_rank as f64 / total as f64;
        self.run_latencies.push(latency);
        self.run_fractions.push(fraction);
        self.session.observe_packet(latency, fraction);
        for (acc, c) in self.session.rank_insts.iter_mut().zip(&rank_counts) {
            *acc += c;
        }
        self.session.gathered_bytes += gathered;
        self.session.io_bytes += io;
        self.slice_scratch = per_dimm;
        self.count_scratch = rank_counts;
        Ok(self.report_since(&mark))
    }

    /// Convenience entry point: compiles, optimizes and runs a set of SLS
    /// batches using an internally managed page mapping (each table gets
    /// contiguous logical space mapped to random physical pages).
    ///
    /// Experiments that need a *shared* mapping with other backends should
    /// build an [`SlsTrace`] and use the [`SlsBackend`] entry point.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if a batch's table spec is
    /// inconsistent, or [`SimError::Stalled`] if the channel livelocks.
    pub fn offload(&mut self, batches: &[SlsBatch]) -> Result<RunReport, SimError> {
        let geo = self.geometry();
        let mut mapper = PageMapper::new(geo.capacity_bytes() / 4096, 0x5eed);
        let mut trace = SlsTrace::default();
        let mut base = 0u64;
        for batch in batches {
            batch.spec.validate()?;
            let table_base = base;
            let vector_bytes = batch.spec.vector_bytes;
            trace
                .batches
                .push(TraceBatch::new(batch.clone(), &mut |row| {
                    mapper.translate(table_base + row * vector_bytes)
                }));
            base += batch.spec.bytes();
        }
        SlsBackend::try_run(self, &trace)
    }
}

/// Aggregated cumulative hardware counters across all ranks.
#[derive(Debug, Clone, Default)]
struct RankAggregates {
    cache: CacheStats,
    dram: DramStats,
    dram_bursts: u64,
    alu_adds: u64,
    alu_mults: u64,
}

/// Compiles a shared [`SlsTrace`] into this channel's scheduled packet
/// stream: one packet-group per batch, interleaved round-robin across
/// batches (the parallel-SLS-thread arrival order), then ordered by the
/// configured scheduling policy.
pub fn compile_trace(
    config: &RecNmpConfig,
    geo: Geometry,
    mapping: AddressMapping,
    trace: &SlsTrace,
) -> Vec<NmpPacket> {
    let builder = PacketBuilder::new(NmpOpcode::Sum, config.poolings_per_packet, mapping, geo);
    let optimizer = LocalityAwareOptimizer::from_config(config);
    let mut per_batch: Vec<Vec<NmpPacket>> = Vec::with_capacity(trace.batches.len());
    for tb in &trace.batches {
        let profile = optimizer.profile_batch(&tb.batch);
        // PacketBuilder walks poolings in order, so the trace's flat
        // address stream lines up one-to-one with its translate calls.
        let mut addrs = tb.flat_addrs();
        let mut tr = |_row: u64| addrs.next().expect("one address per lookup");
        per_batch.push(builder.build(ModelId::new(0), &tb.batch, &mut tr, profile.as_ref()));
    }
    // Round-robin interleave by *moving* packets out of the per-batch
    // streams — packets carry their full instruction vectors, so cloning
    // each one here would copy the entire compiled trace.
    let max_len = per_batch.iter().map(Vec::len).max().unwrap_or(0);
    let total: usize = per_batch.iter().map(Vec::len).sum();
    let mut interleaved = Vec::with_capacity(total);
    let mut streams: Vec<std::vec::IntoIter<NmpPacket>> =
        per_batch.into_iter().map(Vec::into_iter).collect();
    for _ in 0..max_len {
        for stream in &mut streams {
            if let Some(p) = stream.next() {
                interleaved.push(p);
            }
        }
    }
    optimizer.schedule(interleaved)
}

/// Modeled cost of staging one 64-byte line into a RankCache during an
/// idle gap: the prefetcher issues low-priority reads that stream at
/// roughly the column-to-column rate, so an idle budget of N cycles
/// stages about N/4 lines. This is what converts a scheduler-observed
/// gap into a bounded number of prefetched vectors.
pub const PREFETCH_CYCLES_PER_BURST: Cycle = 4;

impl SlsBackend for RecNmpSystem {
    fn name(&self) -> &str {
        "recnmp"
    }

    fn try_run(&mut self, trace: &SlsTrace) -> Result<RunReport, SimError> {
        let packets = compile_trace(&self.config, self.geometry(), self.mapping(), trace);
        match self.config.execution {
            ExecutionMode::Serial => self.run_packets(&packets),
            ExecutionMode::Overlapped => self.run_packets_overlapped(&packets),
        }
    }

    fn prefetch_on(
        &mut self,
        server: usize,
        addrs: &[PhysAddr],
        vector_bytes: u32,
        budget_cycles: Cycle,
    ) -> u64 {
        assert!(
            server < self.server_count(),
            "server {server} out of range for a single-channel system"
        );
        if !self
            .dimms
            .iter()
            .flat_map(DimmNmp::ranks)
            .any(crate::rank_nmp::RankNmp::has_cache)
        {
            return 0;
        }
        let geo = self.geometry();
        let mapping = self.mapping();
        let bursts = vector_bytes.div_ceil(64).clamp(1, u8::MAX as u32) as u8;
        let cost = bursts as Cycle * PREFETCH_CYCLES_PER_BURST;
        let budget_vectors = (budget_cycles / cost) as usize;
        let ranks_per_dimm = self.config.ranks_per_dimm as usize;
        let total_ranks = self.config.total_ranks() as usize;
        let mut staged = 0u64;
        // Hottest-first through the candidate list until the idle budget
        // runs out; routing mirrors the demand path exactly (decode, then
        // DIMM-major rank pick) so staged lines land in the cache the
        // demand lookups will probe.
        for addr in addrs.iter().take(budget_vectors) {
            let daddr = mapping.decode(*addr, &geo);
            let rank = daddr.rank as usize % total_ranks;
            let dimm = rank / ranks_per_dimm;
            if self.dimms[dimm].ranks_mut()[rank % ranks_per_dimm].prefetch_vector(&daddr, bursts) {
                staged += 1;
            }
        }
        staged
    }

    fn reset_caches(&mut self) {
        for dimm in &mut self.dimms {
            for rank in dimm.ranks_mut() {
                rank.reset_cache();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, TraceGenerator};
    use recnmp_types::TableId;

    fn batches(n_tables: u32, batch: usize) -> Vec<SlsBatch> {
        (0..n_tables)
            .map(|t| {
                TraceGenerator::new(
                    TableId::new(t),
                    EmbeddingTableSpec::dlrm_default(),
                    IndexDistribution::Zipf { s: 0.9 },
                    42 + t as u64,
                )
                .batch(batch, 80)
            })
            .collect()
    }

    fn quiet(mut cfg: RecNmpConfig) -> RecNmpConfig {
        cfg.refresh = false;
        cfg
    }

    #[test]
    fn offload_runs_all_instructions() {
        let mut sys = RecNmpSystem::new(quiet(RecNmpConfig::with_ranks(1, 2))).unwrap();
        let report = sys.offload(&batches(1, 8)).unwrap();
        assert_eq!(report.insts, 8 * 80);
        assert_eq!(report.packets, 1);
        assert!(report.total_cycles > 0);
        assert_eq!(report.rank_insts.iter().sum::<u64>(), 640);
    }

    #[test]
    fn more_ranks_run_faster() {
        let run = |dimms, ranks| {
            let mut sys = RecNmpSystem::new(quiet(RecNmpConfig::with_ranks(dimms, ranks))).unwrap();
            sys.offload(&batches(2, 16)).unwrap().total_cycles
        };
        let two = run(1, 2);
        let eight = run(4, 2);
        assert!(
            (eight as f64) < 0.45 * two as f64,
            "2-rank {two} vs 8-rank {eight}"
        );
    }

    #[test]
    fn cache_reduces_dram_traffic() {
        let base_cfg = quiet(RecNmpConfig::with_ranks(1, 2));
        let mut cached_cfg = quiet(RecNmpConfig::optimized(1, 2));
        cached_cfg.scheduling = crate::config::SchedulingPolicy::Fcfs;
        let w = batches(1, 32);
        let mut base = RecNmpSystem::new(base_cfg).unwrap();
        let mut cached = RecNmpSystem::new(cached_cfg).unwrap();
        let rb = base.offload(&w).unwrap();
        let rc = cached.offload(&w).unwrap();
        assert_eq!(rb.insts, rc.insts);
        assert!(
            rc.dram_bursts < rb.dram_bursts,
            "{} vs {}",
            rc.dram_bursts,
            rb.dram_bursts
        );
        assert!(rc.cache.hits > 0);
        assert!(rc.total_cycles <= rb.total_cycles);
    }

    #[test]
    fn fewer_poolings_per_packet_cost_more() {
        let run = |ppp| {
            let mut cfg = quiet(RecNmpConfig::with_ranks(4, 2));
            cfg.poolings_per_packet = ppp;
            let mut sys = RecNmpSystem::new(cfg).unwrap();
            sys.offload(&batches(1, 16)).unwrap().total_cycles
        };
        let one = run(1);
        let eight = run(8);
        assert!(eight < one, "ppp=1 {one} vs ppp=8 {eight}");
    }

    #[test]
    fn imbalance_shrinks_with_packet_size() {
        let imb = |ppp| {
            let mut cfg = quiet(RecNmpConfig::with_ranks(4, 2));
            cfg.poolings_per_packet = ppp;
            let mut sys = RecNmpSystem::new(cfg).unwrap();
            sys.offload(&batches(1, 16)).unwrap().mean_imbalance()
        };
        let small = imb(1);
        let large = imb(8);
        // Perfect balance on 8 ranks is 0.125.
        assert!(large < small, "ppp=1 {small} vs ppp=8 {large}");
        assert!(large >= 0.125);
    }

    #[test]
    fn prefetch_stages_hot_vectors_and_reset_restores_cold() {
        let mk = || {
            let mut cfg = quiet(RecNmpConfig::optimized(1, 2));
            cfg.scheduling = crate::config::SchedulingPolicy::Fcfs;
            RecNmpSystem::new(cfg).unwrap()
        };
        let w = batches(1, 32);
        let trace = SlsTrace::from_batches(&w, &mut |t, row| {
            recnmp_types::PhysAddr::new(((t as u64) << 28) ^ (row * 128))
        });
        // Candidate list: unique vector addresses, hottest-first.
        let mut counts = std::collections::BTreeMap::new();
        for b in &trace.batches {
            for pooling in &b.addrs {
                for a in pooling {
                    *counts.entry(a.get()).or_insert(0u64) += 1;
                }
            }
        }
        let mut hot: Vec<(u64, u64)> = counts.into_iter().collect();
        hot.sort_by_key(|&(addr, n)| (std::cmp::Reverse(n), addr));
        // Keep only the hot head so the staged set fits the RankCaches —
        // a real prefetcher is capacity-aware, and a list that thrashes
        // the cache would evict its own earlier fills.
        let addrs: Vec<recnmp_types::PhysAddr> = hot
            .iter()
            .take(64)
            .map(|&(addr, _)| recnmp_types::PhysAddr::new(addr))
            .collect();

        let mut cold = mk();
        let cold_report = cold.try_run(&trace).unwrap();

        let mut warm = mk();
        let staged = warm.prefetch_on(0, &addrs, 128, Cycle::MAX);
        assert!(staged > 0, "budget covers the list; something must stage");
        // Re-prefetching the same list stages nothing new.
        assert_eq!(warm.prefetch_on(0, &addrs, 128, Cycle::MAX), 0);
        let warm_report = warm.try_run(&trace).unwrap();
        assert_eq!(warm_report.insts, cold_report.insts);
        assert!(
            warm_report.cache.hits > cold_report.cache.hits,
            "warm {} vs cold {}",
            warm_report.cache.hits,
            cold_report.cache.hits
        );
        assert!(warm_report.dram_bursts < cold_report.dram_bursts);

        // Budget of zero (or below one vector's fill cost) stages nothing.
        let mut broke = mk();
        assert_eq!(broke.prefetch_on(0, &addrs, 128, 7), 0);

        // reset_caches returns the warm system to cold behaviour.
        warm.reset_caches();
        let re = warm.try_run(&trace).unwrap();
        assert_eq!(re.cache.hits, cold_report.cache.hits);
        assert_eq!(re.dram_bursts, cold_report.dram_bursts);
    }

    #[test]
    fn prefetch_on_uncached_system_is_inert() {
        let mut sys = RecNmpSystem::new(quiet(RecNmpConfig::with_ranks(1, 2))).unwrap();
        let addrs = [recnmp_types::PhysAddr::new(0)];
        assert_eq!(sys.prefetch_on(0, &addrs, 128, Cycle::MAX), 0);
        sys.reset_caches(); // no-op, must not panic
    }

    #[test]
    fn report_accounting_consistent() {
        let mut sys = RecNmpSystem::new(quiet(RecNmpConfig::with_ranks(2, 2))).unwrap();
        let report = sys.offload(&batches(2, 8)).unwrap();
        assert_eq!(report.packet_latencies.len(), report.packets);
        assert_eq!(report.slowest_rank_fraction.len(), report.packets);
        assert_eq!(report.gathered_bytes, report.insts * 128);
        assert!(report.io_bytes < report.gathered_bytes);
        assert_eq!(report.alu_adds, report.insts * 32);
    }

    #[test]
    fn empty_offload_is_zero() {
        let mut sys = RecNmpSystem::new(quiet(RecNmpConfig::with_ranks(1, 2))).unwrap();
        let report = sys.offload(&[]).unwrap();
        assert_eq!(report.total_cycles, 0);
        assert_eq!(report.packets, 0);
    }

    #[test]
    fn reports_are_per_run_snapshots() {
        // Regression for the seed's mixed semantics: `total_cycles` was
        // per-run while `packets`/`insts`/`packet_latencies` accumulated
        // forever. Every field must now cover one run only.
        let mut sys = RecNmpSystem::new(quiet(RecNmpConfig::with_ranks(1, 2))).unwrap();
        let w = batches(2, 8);
        let first = sys.offload(&w).unwrap();
        let second = sys.offload(&w).unwrap();
        assert_eq!(first.packets, second.packets);
        assert_eq!(first.insts, second.insts);
        assert_eq!(first.packet_latencies.len(), second.packet_latencies.len());
        assert_eq!(
            first.rank_insts.iter().sum::<u64>(),
            second.rank_insts.iter().sum::<u64>()
        );
        assert_eq!(first.gathered_bytes, second.gathered_bytes);
        // DRAM/cache counters are deltas too: the second run cannot carry
        // the first run's traffic.
        assert!(second.dram_bursts <= first.dram_bursts);
        // The session view is the cumulative complement.
        let s = sys.session();
        assert_eq!(s.packets, first.packets + second.packets);
        assert_eq!(s.insts, first.insts + second.insts);
        assert_eq!(
            s.latency.count as usize,
            first.packet_latencies.len() + second.packet_latencies.len()
        );
    }

    #[test]
    fn session_retention_is_bounded_by_default() {
        // Default: per-run reports carry full vectors but the session
        // keeps only running summaries — no unbounded history.
        let mut sys = RecNmpSystem::new(quiet(RecNmpConfig::with_ranks(1, 2))).unwrap();
        let w = batches(2, 8);
        let first = sys.offload(&w).unwrap();
        let second = sys.offload(&w).unwrap();
        assert!(!first.packet_latencies.is_empty());
        let s = sys.session();
        assert!(s.history.is_none());
        assert_eq!(
            s.latency.count as usize,
            first.packet_latencies.len() + second.packet_latencies.len()
        );
        let all: Vec<Cycle> = first
            .packet_latencies
            .iter()
            .chain(&second.packet_latencies)
            .copied()
            .collect();
        assert_eq!(s.latency.max, *all.iter().max().unwrap() as f64);
        assert!((s.latency.sum - all.iter().sum::<Cycle>() as f64).abs() < 1e-9);
        assert!(s.rank_fraction.mean() > 0.0);

        // Opt-in: the full per-packet history is retained and matches
        // the concatenated per-run reports.
        let mut cfg = quiet(RecNmpConfig::with_ranks(1, 2));
        cfg.retain_packet_history = true;
        let mut retained = RecNmpSystem::new(cfg).unwrap();
        let r1 = retained.offload(&w).unwrap();
        let r2 = retained.offload(&w).unwrap();
        let history = retained.session().history.as_ref().unwrap();
        let expect: Vec<Cycle> = r1
            .packet_latencies
            .iter()
            .chain(&r2.packet_latencies)
            .copied()
            .collect();
        assert_eq!(history.latencies, expect);
        assert_eq!(history.slowest_rank_fraction.len(), expect.len());
    }

    #[test]
    fn overlapped_report_is_delta_too() {
        let mut sys = RecNmpSystem::new(quiet(RecNmpConfig::with_ranks(2, 2))).unwrap();
        let geo = sys.geometry();
        let mapping = sys.mapping();
        let cfg = sys.config().clone();
        let w = batches(4, 8);
        let trace = SlsTrace::from_batches(&w, &mut |t, row| {
            recnmp_types::PhysAddr::new(((t as u64) << 28) ^ (row * 128))
        });
        let packets = compile_trace(&cfg, geo, mapping, &trace);
        let first = sys.run_packets_overlapped(&packets).unwrap();
        let second = sys.run_packets_overlapped(&packets).unwrap();
        assert_eq!(first.insts, second.insts);
        assert_eq!(second.packet_latencies.len(), 1);
        assert_eq!(first.packets, second.packets);
    }
}
