//! Multi-channel RecNMP: N independent channels behind one dispatch API.
//!
//! The paper models a single RecNMP-equipped memory channel; production
//! recommendation servers have many. [`RecNmpCluster`] is the first
//! scaling axis beyond that single-channel model: it fans a multi-table
//! SLS workload out across `channels` independent [`RecNmpSystem`]s under
//! a [`ShardingPolicy`] and merges the per-channel [`RunReport`]s into
//! one (counters add, wall-clock is the slowest channel).
//!
//! Because the channels share no state, the cluster simulates them as
//! independent tasks on the deterministic worker pool (`recnmp-exec`):
//! simulator wall-clock scales with the pool's worker count while thread
//! usage stays fixed — a 256-channel cluster never spawns 256 threads —
//! and reports stay deterministic, because shards are merged in channel
//! order, never completion order.
//!
//! The cluster is itself an [`SlsBackend`], so the experiment harness
//! compares it against the single-channel systems without special cases.
//!
//! # Examples
//!
//! ```
//! use recnmp::cluster::{RecNmpCluster, RecNmpClusterConfig};
//! use recnmp_backend::{ShardingPolicy, SlsBackend, SlsTrace};
//! use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, TraceGenerator};
//! use recnmp_types::{PhysAddr, TableId};
//!
//! # fn main() -> Result<(), recnmp_types::ConfigError> {
//! // 4 channels of 4 DIMMs x 2 ranks, tables pinned to channels.
//! let config = RecNmpClusterConfig::builder()
//!     .channels(4)
//!     .dimms(4)
//!     .ranks_per_dimm(2)
//!     .sharding(ShardingPolicy::HashByTable)
//!     .build()?;
//! let mut cluster = RecNmpCluster::new(config)?;
//!
//! let spec = EmbeddingTableSpec::dlrm_default();
//! let batches: Vec<_> = (0..8u32)
//!     .map(|t| {
//!         TraceGenerator::new(TableId::new(t), spec, IndexDistribution::Uniform, 3)
//!             .batch(4, 20)
//!     })
//!     .collect();
//! let trace = SlsTrace::from_batches(&batches, &mut |t, row| {
//!     PhysAddr::new(((t as u64) << 30) ^ (row * 128))
//! });
//! let report = cluster.run(&trace);
//! assert_eq!(report.insts, trace.total_lookups());
//! # Ok(())
//! # }
//! ```

use recnmp_backend::{
    PlacementPlan, PlacementPolicy, RunReport, ShardingPolicy, SlsBackend, SlsTrace, TableUsage,
};
use recnmp_types::{ConfigError, SimError};
use serde::{Deserialize, Serialize};

use crate::config::RecNmpConfig;
use crate::system::RecNmpSystem;

/// Geometry and dispatch policy of a [`RecNmpCluster`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecNmpClusterConfig {
    /// Independent RecNMP channels.
    pub channels: usize,
    /// Configuration every channel shares.
    pub channel: RecNmpConfig,
    /// How batches are dispatched to channels.
    pub sharding: ShardingPolicy,
}

impl RecNmpClusterConfig {
    /// A cluster of `channels` copies of `channel`, hash-by-table sharded.
    pub fn new(channels: usize, channel: RecNmpConfig) -> Self {
        Self {
            channels,
            channel,
            sharding: ShardingPolicy::HashByTable,
        }
    }

    /// Starts a geometry builder with the paper's single-channel defaults
    /// (1 channel of 4 DIMMs x 2 ranks, RecNMP-base, hash-by-table).
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::default()
    }

    /// Total ranks across the cluster.
    pub fn total_ranks(&self) -> usize {
        self.channels * self.channel.total_ranks() as usize
    }

    /// Validates the cluster geometry and the shared channel config.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for a zero channel count or an invalid
    /// per-channel configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.channels == 0 {
            return Err(ConfigError::new("channels", "must be positive"));
        }
        self.channel.validate()
    }
}

/// Fluent builder for [`RecNmpClusterConfig`] geometry.
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    channels: usize,
    dimms: u8,
    ranks_per_dimm: u8,
    optimized: bool,
    refresh: bool,
    poolings_per_packet: Option<usize>,
    sharding: ShardingPolicy,
}

impl Default for ClusterConfigBuilder {
    fn default() -> Self {
        Self {
            channels: 1,
            dimms: 4,
            ranks_per_dimm: 2,
            optimized: false,
            refresh: true,
            poolings_per_packet: None,
            sharding: ShardingPolicy::HashByTable,
        }
    }
}

impl ClusterConfigBuilder {
    /// Number of independent channels.
    pub fn channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// DIMMs per channel.
    pub fn dimms(mut self, dimms: u8) -> Self {
        self.dimms = dimms;
        self
    }

    /// Ranks per DIMM.
    pub fn ranks_per_dimm(mut self, ranks: u8) -> Self {
        self.ranks_per_dimm = ranks;
        self
    }

    /// Use the RecNMP-opt channel configuration (RankCache, table-aware
    /// scheduling, hot-entry profiling) instead of RecNMP-base.
    pub fn optimized(mut self, optimized: bool) -> Self {
        self.optimized = optimized;
        self
    }

    /// Whether the per-rank DRAM devices simulate refresh.
    pub fn refresh(mut self, refresh: bool) -> Self {
        self.refresh = refresh;
        self
    }

    /// Poolings packed per NMP packet (1–16).
    pub fn poolings_per_packet(mut self, ppp: usize) -> Self {
        self.poolings_per_packet = Some(ppp);
        self
    }

    /// Batch dispatch policy.
    pub fn sharding(mut self, sharding: ShardingPolicy) -> Self {
        self.sharding = sharding;
        self
    }

    /// Finalizes and validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid geometry.
    pub fn build(self) -> Result<RecNmpClusterConfig, ConfigError> {
        let mut channel = if self.optimized {
            RecNmpConfig::optimized(self.dimms, self.ranks_per_dimm)
        } else {
            RecNmpConfig::with_ranks(self.dimms, self.ranks_per_dimm)
        };
        channel.refresh = self.refresh;
        if let Some(ppp) = self.poolings_per_packet {
            channel.poolings_per_packet = ppp;
        }
        let config = RecNmpClusterConfig {
            channels: self.channels,
            channel,
            sharding: self.sharding,
        };
        config.validate()?;
        Ok(config)
    }
}

/// N independent RecNMP channels behind one [`SlsBackend`] dispatch API.
#[derive(Debug)]
pub struct RecNmpCluster {
    name: String,
    sharding: ShardingPolicy,
    placement: Option<PlacementPlan>,
    channels: Vec<RecNmpSystem>,
}

impl RecNmpCluster {
    /// Builds the cluster.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid configurations.
    pub fn new(config: RecNmpClusterConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let channels = (0..config.channels)
            .map(|_| RecNmpSystem::new(config.channel.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            name: format!("recnmp-cluster[{}]", config.channels),
            sharding: config.sharding,
            placement: None,
            channels,
        })
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// The dispatch policy.
    pub fn sharding(&self) -> ShardingPolicy {
        self.sharding
    }

    /// The active placement plan, when one has been installed.
    pub fn placement(&self) -> Option<&PlacementPlan> {
        self.placement.as_ref()
    }

    /// Per-channel DRAM capacity in bytes — the capacity model table
    /// placement packs against.
    pub fn channel_capacity_bytes(&self) -> u64 {
        self.channels[0].geometry().capacity_bytes()
    }

    /// Installs a placement plan; subsequent [`try_run`](SlsBackend::try_run)
    /// calls shard through it instead of the stateless
    /// [`ShardingPolicy`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the plan was built for a different
    /// channel count.
    pub fn set_placement(&mut self, plan: PlacementPlan) -> Result<(), ConfigError> {
        if plan.channels() != self.channels.len() {
            return Err(ConfigError::new(
                "placement",
                format!(
                    "plan places onto {} channel(s) but the cluster has {}",
                    plan.channels(),
                    self.channels.len()
                ),
            ));
        }
        self.placement = Some(plan);
        Ok(())
    }

    /// Removes the placement plan, restoring stateless sharding.
    pub fn clear_placement(&mut self) {
        self.placement = None;
    }

    /// Builds and installs a plan for `usage` under `policy`, bounded by
    /// each channel's DRAM capacity
    /// ([`channel_capacity_bytes`](Self::channel_capacity_bytes)).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when a table does not fit under the
    /// capacity bound.
    pub fn place_tables(
        &mut self,
        usage: &[TableUsage],
        policy: PlacementPolicy,
    ) -> Result<&PlacementPlan, ConfigError> {
        let plan = PlacementPlan::build(
            self.channels.len(),
            Some(self.channel_capacity_bytes()),
            usage,
            policy,
        )?;
        self.placement = Some(plan);
        Ok(self.placement.as_ref().expect("just installed"))
    }

    /// Access to one channel (for per-channel inspection in experiments).
    pub fn channel(&self, i: usize) -> &RecNmpSystem {
        &self.channels[i]
    }

    /// Mutable access to all channels at once, so a composing system
    /// (the tiered cluster) can fan independent per-channel work out as
    /// parallel pool tasks instead of serializing behind one `&mut
    /// RecNmpCluster` borrow.
    pub fn channels_mut(&mut self) -> &mut [RecNmpSystem] {
        &mut self.channels
    }
}

impl SlsBackend for RecNmpCluster {
    /// `"recnmp-cluster[N]"` — always equal to the `system` label of the
    /// reports this backend returns.
    fn name(&self) -> &str {
        &self.name
    }

    /// Shards `trace` across the channels — through the installed
    /// [`PlacementPlan`] when one is set, else under the stateless
    /// [`ShardingPolicy`] — runs every shard as **one task on the
    /// deterministic worker pool** (the channels are independent
    /// hardware running in parallel, but thread usage is bounded by the
    /// pool's worker count, not the channel count) and merges the
    /// per-channel reports: counters add, per-unit instruction counts
    /// concatenate (channel-major), and `total_cycles` is the slowest
    /// channel.
    ///
    /// The merge order is the fixed channel order regardless of task
    /// completion order, so reports are deterministic and identical to a
    /// serial channel-by-channel run at any worker count.
    fn try_run(&mut self, trace: &SlsTrace) -> Result<RunReport, SimError> {
        let shards = match &self.placement {
            Some(plan) => trace.shard_with_plan(plan),
            None => trace.shard(self.channels.len(), self.sharding),
        };
        let tasks: Vec<_> = self
            .channels
            .iter_mut()
            .zip(shards)
            .map(|(channel, shard)| move || channel.try_run(&shard))
            .collect();
        let reports = recnmp_exec::current().run_vec(tasks)?;
        let mut merged = RunReport::for_system(self.name.clone());
        for report in reports {
            merged.absorb_parallel(report);
        }
        Ok(merged)
    }

    /// One dispatchable server per channel.
    fn server_count(&self) -> usize {
        self.channels.len()
    }

    /// Serves `trace` entirely on channel `server` — the query-scheduler
    /// dispatch hook. Unlike [`try_run`](SlsBackend::try_run), the trace
    /// is **not** sharded: the whole query lands on one channel, so a
    /// serving layer controls placement (and therefore queueing) itself.
    ///
    /// # Panics
    ///
    /// Panics when `server >= self.channels()`.
    fn try_run_on(&mut self, server: usize, trace: &SlsTrace) -> Result<RunReport, SimError> {
        assert!(
            server < self.channels.len(),
            "server {server} out of range for {} channel(s)",
            self.channels.len()
        );
        self.channels[server].try_run(trace)
    }

    /// Runs each shard on its channel as one task on the deterministic
    /// worker pool — the channels are independent hardware — and returns
    /// the reports in shard order, byte-identical to the serial default
    /// at any worker count. A fleet serving layer calls this once per
    /// node per job, nesting node-level fan-out over channel-level
    /// fan-out (waiting submitters help run their own batch, so nesting
    /// never deadlocks the pool).
    fn try_run_shards(&mut self, shards: &[(usize, SlsTrace)]) -> Result<Vec<RunReport>, SimError> {
        assert!(
            shards.windows(2).all(|w| w[0].0 < w[1].0),
            "shards must target strictly increasing channels"
        );
        let mut slots: Vec<Option<&SlsTrace>> = vec![None; self.channels.len()];
        for (c, shard) in shards {
            assert!(
                *c < self.channels.len(),
                "server {c} out of range for {} channel(s)",
                self.channels.len()
            );
            slots[*c] = Some(shard);
        }
        let tasks: Vec<_> = self
            .channels
            .iter_mut()
            .zip(&slots)
            .filter_map(|(channel, slot)| slot.map(|shard| move || channel.try_run(shard)))
            .collect();
        recnmp_exec::current().run_vec(tasks)
    }

    /// Forwards the prefetch to channel `server`'s RankCaches (the
    /// channel is a single-server system, so its server index is 0).
    ///
    /// # Panics
    ///
    /// Panics when `server >= self.channels()`.
    fn prefetch_on(
        &mut self,
        server: usize,
        addrs: &[recnmp_types::PhysAddr],
        vector_bytes: u32,
        budget_cycles: recnmp_types::Cycle,
    ) -> u64 {
        assert!(
            server < self.channels.len(),
            "server {server} out of range for {} channel(s)",
            self.channels.len()
        );
        self.channels[server].prefetch_on(0, addrs, vector_bytes, budget_cycles)
    }

    /// Returns every channel's RankCaches to cold.
    fn reset_caches(&mut self) {
        for channel in &mut self.channels {
            channel.reset_caches();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, SlsBatch, TraceGenerator};
    use recnmp_types::{PhysAddr, TableId};

    fn workload(tables: u32, batch: usize) -> SlsTrace {
        let batches: Vec<SlsBatch> = (0..tables)
            .map(|t| {
                TraceGenerator::new(
                    TableId::new(t),
                    EmbeddingTableSpec::dlrm_default(),
                    IndexDistribution::Zipf { s: 0.9 },
                    91 + t as u64,
                )
                .batch(batch, 80)
            })
            .collect();
        SlsTrace::from_batches(&batches, &mut |t, row| {
            PhysAddr::new(((t as u64) << 31) ^ (row * 131 * 128))
        })
    }

    fn cluster(channels: usize) -> RecNmpCluster {
        let config = RecNmpClusterConfig::builder()
            .channels(channels)
            .dimms(1)
            .ranks_per_dimm(2)
            .refresh(false)
            .build()
            .unwrap();
        RecNmpCluster::new(config).unwrap()
    }

    #[test]
    fn builder_validates_geometry() {
        assert!(RecNmpClusterConfig::builder().channels(0).build().is_err());
        assert!(RecNmpClusterConfig::builder()
            .ranks_per_dimm(0)
            .build()
            .is_err());
        let cfg = RecNmpClusterConfig::builder()
            .channels(4)
            .optimized(true)
            .build()
            .unwrap();
        assert_eq!(cfg.total_ranks(), 4 * 8);
        assert!(cfg.channel.rank_cache.is_some());
    }

    #[test]
    fn cluster_conserves_lookups() {
        let trace = workload(8, 4);
        let mut c = cluster(4);
        let report = c.run(&trace);
        assert_eq!(report.insts, trace.total_lookups());
        assert_eq!(report.rank_insts.iter().sum::<u64>(), trace.total_lookups());
        assert_eq!(report.gathered_bytes, trace.total_lookups() * 128);
        assert_eq!(report.system, "recnmp-cluster[4]");
    }

    #[test]
    fn more_channels_cut_wall_clock() {
        let trace = workload(8, 8);
        let one = cluster(1).run(&trace).total_cycles;
        let four = cluster(4).run(&trace).total_cycles;
        assert!(
            (four as f64) < (one as f64) / 3.0,
            "1-channel {one} vs 4-channel {four}"
        );
    }

    #[test]
    fn round_robin_handles_single_table() {
        // All batches hit one table: hash-by-table would serialize on one
        // channel; round-robin still spreads the load.
        let batches: Vec<SlsBatch> = (0..8)
            .map(|i| {
                TraceGenerator::new(
                    TableId::new(0),
                    EmbeddingTableSpec::dlrm_default(),
                    IndexDistribution::Uniform,
                    17 + i,
                )
                .batch(4, 40)
            })
            .collect();
        let trace = SlsTrace::from_batches(&batches, &mut |_, row| PhysAddr::new(row * 131 * 128));
        let config = RecNmpClusterConfig::builder()
            .channels(4)
            .dimms(1)
            .ranks_per_dimm(2)
            .refresh(false)
            .sharding(ShardingPolicy::RoundRobin)
            .build()
            .unwrap();
        let mut rr = RecNmpCluster::new(config).unwrap();
        let report = rr.run(&trace);
        assert_eq!(report.insts, trace.total_lookups());
        // Every channel saw work: 8 ranks' worth of per-unit counts.
        assert_eq!(report.rank_insts.len(), 8);
        assert!(report.rank_insts.iter().all(|&n| n > 0));
    }

    #[test]
    fn placement_plan_drives_sharding() {
        let trace = workload(8, 4);
        let usage = TableUsage::from_trace(&trace);
        let mut c = cluster(4);
        // A capacity-bounded frequency plan built from the trace profile.
        let plan = c
            .place_tables(&usage, PlacementPolicy::FrequencyBalanced { replicate: 1 })
            .unwrap()
            .clone();
        assert_eq!(plan.channels(), 4);
        assert!(usage.iter().all(|u| !plan.replicas(u.table).is_empty()));
        assert!(plan.bytes_on(0) <= c.channel_capacity_bytes());
        let report = c.run(&trace);
        // Placement-driven sharding conserves every lookup.
        assert_eq!(report.insts, trace.total_lookups());
        assert_eq!(report.gathered_bytes, trace.total_lookups() * 128);
        // A plan for the wrong geometry is rejected.
        let mut two = cluster(2);
        assert!(two.set_placement(plan).is_err());
        // Clearing restores stateless sharding.
        c.clear_placement();
        assert!(c.placement().is_none());
        assert_eq!(c.run(&trace).insts, trace.total_lookups());
    }

    #[test]
    fn empty_trace_is_zero() {
        let mut c = cluster(2);
        let report = c.run(&SlsTrace::default());
        assert_eq!(report.total_cycles, 0);
        assert_eq!(report.insts, 0);
    }

    #[test]
    fn try_run_on_targets_a_single_channel() {
        let trace = workload(4, 2);
        let mut c = cluster(4);
        assert_eq!(c.server_count(), 4);
        let report = c.try_run_on(2, &trace).unwrap();
        // The whole query is served, unsharded, by one 2-rank channel.
        assert_eq!(report.insts, trace.total_lookups());
        assert_eq!(report.rank_insts.len(), 2);
        // Only channel 2 advanced; the others are untouched and a later
        // dispatch to them starts from a cold channel clock.
        let other = c.try_run_on(0, &trace).unwrap();
        assert_eq!(other.insts, trace.total_lookups());
    }

    #[test]
    fn prefetch_and_reset_forward_per_channel() {
        let config = RecNmpClusterConfig::builder()
            .channels(2)
            .dimms(1)
            .ranks_per_dimm(2)
            .refresh(false)
            .optimized(true)
            .build()
            .unwrap();
        let mut c = RecNmpCluster::new(config).unwrap();
        let trace = workload(1, 8);
        let addrs: Vec<PhysAddr> = trace.batches[0]
            .addrs
            .iter()
            .flatten()
            .copied()
            .take(16)
            .collect();
        let staged = c.prefetch_on(1, &addrs, 128, recnmp_types::Cycle::MAX);
        assert!(staged > 0, "optimized channels have RankCaches to fill");
        // Channel 0's caches were untouched by the channel-1 prefetch.
        assert!(c.prefetch_on(0, &addrs, 128, recnmp_types::Cycle::MAX) > 0);
        // Re-staging on a warm channel finds everything resident...
        assert_eq!(c.prefetch_on(1, &addrs, 128, recnmp_types::Cycle::MAX), 0);
        // ...until reset returns every channel to cold.
        c.reset_caches();
        assert!(c.prefetch_on(1, &addrs, 128, recnmp_types::Cycle::MAX) > 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn try_run_on_rejects_bad_server() {
        let trace = workload(2, 1);
        let _ = cluster(2).try_run_on(5, &trace);
    }
}
