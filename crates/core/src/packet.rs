//! NMP packets and the packet builder.
//!
//! An NMP kernel (one SLS batch) is compiled into packets of NMP
//! instructions (Figure 10(b)). Each packet carries up to 16 poolings
//! (bounded by the 4-bit PsumTag); the host memory controller configures
//! the PU's accumulation counters from the packet header, streams the
//! instructions, and receives one summed vector per pooling back.

use recnmp_dram::address::{AddressMapping, Geometry};
use recnmp_trace::profile::HotEntryProfile;
use recnmp_trace::SlsBatch;
use recnmp_types::{ModelId, PhysAddr, TableId};
use serde::{Deserialize, Serialize};

use crate::inst::{DdrCmdFlags, NmpInst, NmpOpcode, MAX_POOLINGS_PER_PACKET};

/// Provenance of one instruction: which logical row it fetches.
///
/// Not part of the wire format; kept alongside packets so the functional
/// datapath can verify arithmetic and experiments can attribute traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstOrigin {
    /// Source embedding table.
    pub table: TableId,
    /// Row index within the table.
    pub row: u64,
}

/// One NMP packet: a counter-controlled group of instructions whose
/// partial sums the PU accumulates and returns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NmpPacket {
    /// Model instance that issued the kernel (for co-location accounting).
    pub model: ModelId,
    /// Embedding table the packet targets.
    pub table: TableId,
    /// The instructions, in issue order.
    pub insts: Vec<NmpInst>,
    /// Per-instruction provenance, aligned with `insts`.
    pub origins: Vec<InstOrigin>,
    /// Pooling sizes, indexed by PsumTag (the header's counter values).
    pub pooling_sizes: Vec<usize>,
}

impl NmpPacket {
    /// Number of poolings in this packet.
    pub fn poolings(&self) -> usize {
        self.pooling_sizes.len()
    }

    /// Total instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the packet carries no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Bytes of embedding data the packet gathers from DRAM.
    pub fn gathered_bytes(&self) -> u64 {
        self.insts.iter().map(NmpInst::vector_bytes).sum()
    }

    /// Bytes returned to the host (one 64-byte-per-burst vector per
    /// pooling; vectors keep the instruction vsize).
    pub fn output_bytes(&self) -> u64 {
        let vsize = self.insts.first().map_or(1, |i| i.vsize) as u64;
        self.poolings() as u64 * vsize * 64
    }

    /// Bytes of instruction traffic on the channel (79 bits rounded to 10
    /// bytes each, plus a 16-byte header/tail).
    pub fn inst_bytes(&self) -> u64 {
        self.len() as u64 * 10 + 16
    }
}

/// Compiles SLS batches into NMP packets.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    /// Operation all instructions perform.
    pub opcode: NmpOpcode,
    /// Poolings per packet (1–16; the Figure 14(a) sweep parameter).
    pub poolings_per_packet: usize,
    /// Channel address mapping used to derive DRAM coordinates.
    pub mapping: AddressMapping,
    /// Channel geometry.
    pub geo: Geometry,
}

impl PacketBuilder {
    /// Creates a builder for a channel with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `poolings_per_packet` is 0 or exceeds 16.
    pub fn new(
        opcode: NmpOpcode,
        poolings_per_packet: usize,
        mapping: AddressMapping,
        geo: Geometry,
    ) -> Self {
        assert!(
            (1..=MAX_POOLINGS_PER_PACKET).contains(&poolings_per_packet),
            "poolings_per_packet must be 1..=16"
        );
        Self {
            opcode,
            poolings_per_packet,
            mapping,
            geo,
        }
    }

    /// Compiles one SLS batch into packets.
    ///
    /// `translate` maps a row index of this batch's table to its physical
    /// address (the OS page-mapping step). `profile`, when present,
    /// supplies the hot-entry `LocalityBit` hints; without it every
    /// instruction is marked cacheable (the unprofiled RecNMP-cache
    /// configuration).
    pub fn build(
        &self,
        model: ModelId,
        batch: &SlsBatch,
        translate: &mut dyn FnMut(u64) -> PhysAddr,
        profile: Option<&HotEntryProfile>,
    ) -> Vec<NmpPacket> {
        let vsize = batch.spec.bursts_per_vector() as u8;
        let weighted = matches!(
            self.opcode,
            NmpOpcode::WeightedSum
                | NmpOpcode::WeightedMean
                | NmpOpcode::WeightedSum8
                | NmpOpcode::WeightedMean8
        );
        let mut packets = Vec::new();
        // Track last row per bank to set the embedded DDR command flags
        // the way the host MC would (consecutive-access heuristic; the
        // rank-NMP re-derives actual commands locally). Flat bank-indexed
        // array (`u32::MAX` = untouched), reset per packet — hashing a
        // key per instruction would dominate compile time.
        let banks_per_rank = self.geo.banks_per_rank();
        let mut last_row = vec![u32::MAX; self.geo.ranks as usize * banks_per_rank];
        for chunk in batch.poolings.chunks(self.poolings_per_packet) {
            let lookups: usize = chunk.iter().map(|p| p.len()).sum();
            let mut insts = Vec::with_capacity(lookups);
            let mut origins = Vec::with_capacity(lookups);
            let mut pooling_sizes = Vec::with_capacity(chunk.len());
            last_row.fill(u32::MAX);
            for (tag, pooling) in chunk.iter().enumerate() {
                pooling_sizes.push(pooling.len());
                for (i, &row) in pooling.indices.iter().enumerate() {
                    let phys = translate(row);
                    let daddr = self.mapping.decode(phys, &self.geo);
                    let bank_key = daddr.rank as usize * banks_per_rank
                        + daddr.flat_bank(self.geo.banks_per_group);
                    let prev = last_row[bank_key];
                    last_row[bank_key] = daddr.row;
                    let ddr_cmd = if prev == u32::MAX {
                        DdrCmdFlags::row_closed()
                    } else if prev == daddr.row {
                        DdrCmdFlags::row_hit()
                    } else {
                        DdrCmdFlags::row_conflict()
                    };
                    let locality = match profile {
                        Some(p) => p.is_hot(row),
                        None => true,
                    };
                    insts.push(NmpInst {
                        opcode: self.opcode,
                        ddr_cmd,
                        daddr,
                        vsize,
                        weight: if weighted { pooling.weight(i) } else { 1.0 },
                        locality,
                        psum_tag: tag as u8,
                    });
                    origins.push(InstOrigin {
                        table: batch.table,
                        row,
                    });
                }
            }
            packets.push(NmpPacket {
                model,
                table: batch.table,
                insts,
                origins,
                pooling_sizes,
            });
        }
        packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_trace::{EmbeddingTableSpec, Pooling};

    fn batch(poolings: usize, pooling_len: usize) -> SlsBatch {
        SlsBatch {
            table: TableId::new(3),
            spec: EmbeddingTableSpec::new(1000, 64),
            poolings: (0..poolings)
                .map(|p| {
                    Pooling::unweighted(
                        (0..pooling_len)
                            .map(|i| ((p * pooling_len + i) % 1000) as u64)
                            .collect(),
                    )
                })
                .collect(),
        }
    }

    fn builder(ppp: usize) -> PacketBuilder {
        PacketBuilder::new(
            NmpOpcode::Sum,
            ppp,
            AddressMapping::RowRankBankColumn,
            Geometry::ddr4_8gb_x8(2),
        )
    }

    fn identity_translate(row: u64) -> PhysAddr {
        PhysAddr::new(row * 64)
    }

    #[test]
    fn packets_chunk_poolings() {
        let b = batch(10, 4);
        let packets = builder(4).build(ModelId::new(0), &b, &mut identity_translate, None);
        assert_eq!(packets.len(), 3); // 4 + 4 + 2
        assert_eq!(packets[0].poolings(), 4);
        assert_eq!(packets[2].poolings(), 2);
        assert_eq!(packets[0].len(), 16);
    }

    #[test]
    fn psum_tags_identify_poolings() {
        let b = batch(3, 5);
        let packets = builder(16).build(ModelId::new(0), &b, &mut identity_translate, None);
        assert_eq!(packets.len(), 1);
        let tags: Vec<u8> = packets[0].insts.iter().map(|i| i.psum_tag).collect();
        assert_eq!(tags[0..5], [0; 5]);
        assert_eq!(tags[5..10], [1; 5]);
        assert_eq!(tags[10..15], [2; 5]);
    }

    #[test]
    fn origins_align_with_insts() {
        let b = batch(2, 3);
        let packets = builder(16).build(ModelId::new(7), &b, &mut identity_translate, None);
        let p = &packets[0];
        assert_eq!(p.origins.len(), p.insts.len());
        assert!(p.origins.iter().all(|o| o.table == TableId::new(3)));
        assert_eq!(p.origins[0].row, 0);
        assert_eq!(p.origins[4].row, 4);
    }

    #[test]
    fn locality_defaults_to_cacheable_without_profile() {
        let b = batch(1, 4);
        let packets = builder(8).build(ModelId::new(0), &b, &mut identity_translate, None);
        assert!(packets[0].insts.iter().all(|i| i.locality));
    }

    #[test]
    fn profile_sets_locality_bits() {
        use recnmp_trace::HotEntryProfiler;
        let b = batch(1, 4); // rows 0,1,2,3
        let profile = HotEntryProfiler::new().profile(&[0, 0, 2], 0); // hot: {0, 2}
        let packets =
            builder(8).build(ModelId::new(0), &b, &mut identity_translate, Some(&profile));
        let bits: Vec<bool> = packets[0].insts.iter().map(|i| i.locality).collect();
        assert_eq!(bits, [true, false, true, false]);
    }

    #[test]
    fn byte_accounting() {
        let b = batch(2, 4);
        let packets = builder(8).build(ModelId::new(0), &b, &mut identity_translate, None);
        let p = &packets[0];
        assert_eq!(p.gathered_bytes(), 8 * 64);
        assert_eq!(p.output_bytes(), 2 * 64);
        assert_eq!(p.inst_bytes(), 8 * 10 + 16);
    }

    #[test]
    fn weighted_opcode_carries_weights() {
        let b = SlsBatch {
            table: TableId::new(0),
            spec: EmbeddingTableSpec::new(10, 64),
            poolings: vec![Pooling::weighted(vec![1, 2], vec![0.5, 2.0])],
        };
        let mut builder = builder(8);
        builder.opcode = NmpOpcode::WeightedSum;
        let packets = builder.build(ModelId::new(0), &b, &mut identity_translate, None);
        let w: Vec<f32> = packets[0].insts.iter().map(|i| i.weight).collect();
        assert_eq!(w, [0.5, 2.0]);
    }

    #[test]
    fn repeated_row_in_same_bank_marks_row_hit() {
        let b = SlsBatch {
            table: TableId::new(0),
            spec: EmbeddingTableSpec::new(10, 64),
            poolings: vec![Pooling::unweighted(vec![5, 5])],
        };
        let packets = builder(8).build(ModelId::new(0), &b, &mut identity_translate, None);
        assert_eq!(packets[0].insts[0].ddr_cmd, DdrCmdFlags::row_closed());
        assert_eq!(packets[0].insts[1].ddr_cmd, DdrCmdFlags::row_hit());
    }
}
