//! RecNMP: a near-memory processing architecture for recommendation
//! embedding operators.
//!
//! This crate implements the paper's primary contribution — the RecNMP
//! processing unit that lives in a DIMM's buffer chip and executes the
//! SparseLengths (SLS) operator family against locally fetched DRAM data:
//!
//! * [`inst`] — the compressed 79-bit **NMP instruction** (Figure 8(d)):
//!   opcode, embedded DDR command flags, packed DRAM coordinates, vector
//!   size, FP32 weight, `LocalityBit` cacheability hint and `PsumTag`;
//! * [`packet`] — **NMP packets** grouping up to 16 poolings (4-bit
//!   PsumTag) for counter-controlled execution;
//! * [`rank_nmp`] — the per-rank module: local command decoding into a
//!   single-rank DDR4 simulator, the memory-side [`RankCache`], and the
//!   pipelined weighted-sum datapath with its PSum register file;
//! * [`dimm_nmp`] — rank dispatch and the PSum adder tree;
//! * [`system`] — the full channel ([`RecNmpSystem`]): the NMP-extended
//!   memory-controller front end that streams two NMP-Insts per DRAM cycle
//!   (the 8× C/A bandwidth expansion of Figure 9), serial per-packet
//!   execution where each packet's latency is set by its slowest rank, and
//!   the [`SlsBackend`] implementation every experiment runs through;
//! * [`cluster`] — [`RecNmpCluster`]: N independent channels behind one
//!   dispatch API, the first scaling axis beyond the paper's
//!   single-channel model. Sharding goes through an installed
//!   [`PlacementPlan`](recnmp_backend::PlacementPlan) (built via
//!   [`RecNmpCluster::place_tables`] against each channel's DRAM
//!   capacity) or, without one, the stateless hash-by-table/round-robin
//!   [`ShardingPolicy`];
//! * [`sched`] / [`optimizer`] — table-aware packet scheduling and
//!   hot-entry profiling (Section III-D);
//! * [`datapath`] — the functional datapath equivalence layer: executes a
//!   packet's arithmetic exactly as the rank-NMP pipeline would, for
//!   verification against the reference operators;
//! * [`energy`] / [`physical`] — memory energy accounting and the
//!   area/power roll-up behind Table II;
//! * [`ca`] — command/address bandwidth-expansion analysis (Figure 9).
//!
//! [`RankCache`]: recnmp_cache::RankCache
//!
//! # Examples
//!
//! Offload one SLS batch through the unified [`SlsBackend`] API (the
//! [`RecNmpSystem::offload`] convenience wires the page mapping
//! internally):
//!
//! ```
//! use recnmp::{RecNmpConfig, RecNmpSystem};
//! use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, TraceGenerator};
//! use recnmp_types::TableId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An SLS batch against one table, offloaded to a 2-rank RecNMP channel.
//! let spec = EmbeddingTableSpec::dlrm_default();
//! let mut gen = TraceGenerator::new(
//!     TableId::new(0), spec, IndexDistribution::Zipf { s: 0.9 }, 7,
//! );
//! let batch = gen.batch(8, 80);
//!
//! let mut sys = RecNmpSystem::new(RecNmpConfig::with_ranks(1, 2))?;
//! let report = sys.offload(&[batch])?;
//! assert!(report.total_cycles > 0);
//! assert_eq!(report.insts, 8 * 80);
//! # Ok(())
//! # }
//! ```
//!
//! Run an explicit shared trace — the form every cross-system comparison
//! uses — and scale it across a 4-channel cluster:
//!
//! ```
//! use recnmp::cluster::{RecNmpCluster, RecNmpClusterConfig};
//! use recnmp::{RecNmpConfig, RecNmpSystem};
//! use recnmp_backend::{SlsBackend, SlsTrace};
//! use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, TraceGenerator};
//! use recnmp_types::{PhysAddr, TableId};
//!
//! # fn main() -> Result<(), recnmp_types::ConfigError> {
//! let spec = EmbeddingTableSpec::dlrm_default();
//! let batches: Vec<_> = (0..4u32)
//!     .map(|t| {
//!         TraceGenerator::new(TableId::new(t), spec, IndexDistribution::Uniform, 5)
//!             .batch(4, 20)
//!     })
//!     .collect();
//! let trace = SlsTrace::from_batches(&batches, &mut |t, row| {
//!     PhysAddr::new(((t as u64) << 30) ^ (row * 128))
//! });
//!
//! let mut channel = RecNmpSystem::new(RecNmpConfig::with_ranks(1, 2))?;
//! let single = channel.run(&trace);
//!
//! let config = RecNmpClusterConfig::builder()
//!     .channels(4)
//!     .dimms(1)
//!     .ranks_per_dimm(2)
//!     .build()?;
//! let mut cluster = RecNmpCluster::new(config)?;
//! let fanned = cluster.run(&trace);
//!
//! assert_eq!(single.insts, fanned.insts);
//! assert!(fanned.total_cycles < single.total_cycles);
//! # Ok(())
//! # }
//! ```

pub mod ca;
pub mod cluster;
pub mod config;
pub mod datapath;
pub mod dimm_nmp;
pub mod energy;
pub mod inst;
pub mod optimizer;
pub mod packet;
pub mod physical;
pub mod rank_nmp;
pub mod sched;
pub mod system;

pub use cluster::{ClusterConfigBuilder, RecNmpCluster, RecNmpClusterConfig};
pub use config::{ExecutionMode, RecNmpConfig, SchedulingPolicy};
pub use inst::{NmpInst, NmpOpcode};
pub use optimizer::LocalityAwareOptimizer;
pub use packet::{NmpPacket, PacketBuilder};
// Re-exported so downstream crates name the unified API through `recnmp`.
pub use recnmp_backend::{
    PlacementPlan, PlacementPolicy, RunReport, ShardingPolicy, SlsBackend, SlsTrace, TableUsage,
    TraceBatch,
};
pub use system::{compile_trace, MetricSummary, PacketHistory, RecNmpSystem, SessionStats};
