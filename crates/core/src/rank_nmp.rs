//! The rank-NMP module (Figure 8(c)).
//!
//! One rank-NMP sits in front of each rank's DRAM devices. It performs the
//! three functions the paper describes: translating NMP instructions into
//! low-level DDR command sequences (here: driving a single-rank cycle-level
//! DRAM simulator through its local command decoder), managing the
//! memory-side RankCache, and executing the SLS datapath (weight multiply,
//! partial-sum accumulate) in a pipeline that hides behind the memory
//! reads.

use recnmp_cache::{CacheConfig, CacheStats, RankCache, RankCacheOutcome};
use recnmp_dram::request::RequestKind;
use recnmp_dram::{DramAddr, MemorySystem};
use recnmp_types::{ConfigError, Cycle, RankId, RequestId, SimError};
use serde::{Deserialize, Serialize};

use crate::config::RecNmpConfig;
use crate::inst::{NmpInst, NmpOpcode};

/// Counters kept by one rank-NMP module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RankNmpStats {
    /// Instructions executed.
    pub insts: u64,
    /// 64-byte bursts read from the DRAM devices.
    pub dram_bursts: u64,
    /// FP32 multiplies performed (weighted/quantized ops).
    pub mults: u64,
    /// FP32 adds performed.
    pub adds: u64,
    /// Cycles this rank spent busy across all packets.
    pub busy_cycles: Cycle,
}

/// Outcome of one packet's slice on this rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankPacketResult {
    /// Cycle at which this rank finished its last accumulate.
    pub done_cycle: Cycle,
    /// Instructions this rank executed for the packet.
    pub insts: u64,
}

/// One rank's NMP engine: local DRAM, optional RankCache, datapath stats.
#[derive(Debug)]
pub struct RankNmp {
    id: RankId,
    dram: MemorySystem,
    cache: Option<RankCache>,
    cache_latency: u64,
    pipeline_depth: u64,
    stats: RankNmpStats,
    next_req: RequestId,
}

/// SRAM access latency grows with capacity (Cacti-style): 1 cycle up to
/// 128 KiB, one more per quadrupling beyond that. This is what turns the
/// Figure 15(b) cache-size sweep over from "bigger is better".
pub fn cache_latency_cycles(capacity_bytes: u64) -> u64 {
    let reference = 128 * 1024;
    if capacity_bytes <= reference {
        1
    } else {
        1 + (capacity_bytes as f64 / reference as f64).log(4.0).ceil() as u64
    }
}

impl RankNmp {
    /// Builds the engine for rank `id` under the given system config.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the DRAM or cache configuration is
    /// invalid.
    pub fn new(id: RankId, config: &RecNmpConfig) -> Result<Self, ConfigError> {
        let dram = MemorySystem::new(config.rank_dram_config())?;
        let cache = match &config.rank_cache {
            Some(c) => Some(RankCache::new(*c)?),
            None => None,
        };
        let cache_latency = config
            .rank_cache
            .as_ref()
            .map_or(1, |c| cache_latency_cycles(c.capacity_bytes));
        Ok(Self {
            id,
            dram,
            cache,
            cache_latency,
            pipeline_depth: config.pipeline_depth,
            stats: RankNmpStats::default(),
            next_req: RequestId::new(0),
        })
    }

    /// This rank's identifier.
    pub fn id(&self) -> RankId {
        self.id
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &RankNmpStats {
        &self.stats
    }

    /// RankCache statistics (zeroed when no cache is configured).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map(RankCache::stats)
            .unwrap_or_default()
    }

    /// The cache configuration, if any.
    pub fn cache_config(&self) -> Option<&CacheConfig> {
        self.cache.as_ref().map(RankCache::config)
    }

    /// DRAM statistics of this rank's devices.
    pub fn dram_stats(&self) -> &recnmp_dram::DramStats {
        self.dram.stats()
    }

    /// Main-loop iterations this rank's DRAM engine has executed (see
    /// [`recnmp_dram::MemorySystem::loop_iterations`]) — the simulator-cost
    /// metric the throughput benchmarks track.
    pub fn dram_loop_iterations(&self) -> u64 {
        self.dram.loop_iterations()
    }

    /// Executes this rank's slice of a packet.
    ///
    /// `arrivals` pairs each instruction with the cycle the MC delivered
    /// it. Returns when the rank finished its last accumulate. A rank with
    /// no instructions finishes at `start`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] if this rank's DRAM devices livelock.
    pub fn process(
        &mut self,
        start: Cycle,
        arrivals: &[(Cycle, NmpInst)],
    ) -> Result<RankPacketResult, SimError> {
        if arrivals.is_empty() {
            return Ok(RankPacketResult {
                done_cycle: start,
                insts: 0,
            });
        }
        let mut last_hit_ready = start;
        let mut enqueued = 0u64;
        for (arrival, inst) in arrivals {
            debug_assert_eq!(
                inst.daddr.rank as usize,
                self.id.index() % 8,
                "instruction routed to wrong rank"
            );
            self.stats.insts += 1;
            self.count_datapath_ops(inst);
            let line_addr = rank_local_bytes(&inst.daddr);
            let outcome = match self.cache.as_mut() {
                Some(cache) => {
                    // Multi-burst vectors occupy consecutive cache lines;
                    // hit only if every line is resident.
                    let mut all_hit = true;
                    for b in 0..inst.vsize as u64 {
                        let o = cache.access(line_addr + b * 64, inst.locality);
                        if o != RankCacheOutcome::Hit {
                            all_hit = false;
                        }
                    }
                    if all_hit {
                        RankCacheOutcome::Hit
                    } else if inst.locality {
                        RankCacheOutcome::MissFill
                    } else {
                        RankCacheOutcome::Bypass
                    }
                }
                None => RankCacheOutcome::Bypass,
            };
            if outcome == RankCacheOutcome::Hit {
                // Served from the RankCache; access latency scales with
                // SRAM capacity.
                last_hit_ready = last_hit_ready.max(arrival + self.cache_latency);
            } else {
                for b in 0..inst.vsize {
                    let addr = burst_daddr(&inst.daddr, b);
                    self.dram
                        .enqueue_decoded(addr, RequestKind::Read, *arrival, self.next_req);
                    self.next_req = self.next_req.next();
                    self.stats.dram_bursts += 1;
                    enqueued += 1;
                }
            }
        }
        let dram_done = if enqueued > 0 {
            // Borrow-based completion hand-off: completions stay in the
            // engine's reusable buffer (they arrive in data-transfer
            // order, so the last one is the latest) — no per-packet
            // allocation.
            self.dram.run_to_idle()?;
            let done = self
                .dram
                .completions()
                .last()
                .map_or(start, |c| c.finish_cycle);
            self.dram.clear_completions();
            done
        } else {
            start
        };
        let done = dram_done.max(last_hit_ready) + self.pipeline_depth;
        self.stats.busy_cycles += done.saturating_sub(start);
        Ok(RankPacketResult {
            done_cycle: done,
            insts: arrivals.len() as u64,
        })
    }

    /// Whether this rank carries a RankCache at all.
    pub fn has_cache(&self) -> bool {
        self.cache.is_some()
    }

    /// Stages one `bursts`-burst vector at `daddr` into the RankCache via
    /// the stats-clean prefetch path — the inter-query prefetch target.
    /// Returns `true` when at least one line was newly installed; `false`
    /// when fully resident already or when the rank has no cache.
    pub fn prefetch_vector(&mut self, daddr: &DramAddr, bursts: u8) -> bool {
        let Some(cache) = self.cache.as_mut() else {
            return false;
        };
        let line_addr = rank_local_bytes(daddr);
        let mut fresh = false;
        for b in 0..bursts.max(1) as u64 {
            fresh |= cache.prefetch_fill(line_addr + b * 64);
        }
        fresh
    }

    /// Drops the RankCache's contents and counters (no-op without a
    /// cache) — how a sweep driver returns this rank to cold state.
    pub fn reset_cache(&mut self) {
        if let Some(cache) = self.cache.as_mut() {
            cache.reset();
        }
    }

    fn count_datapath_ops(&mut self, inst: &NmpInst) {
        // 16 FP32 elements per 64-byte burst.
        let elems = inst.vsize as u64 * 16;
        self.stats.adds += elems;
        match inst.opcode {
            NmpOpcode::Sum | NmpOpcode::Mean => {}
            NmpOpcode::WeightedSum | NmpOpcode::WeightedMean => {
                self.stats.mults += elems;
            }
            NmpOpcode::WeightedSum8 | NmpOpcode::WeightedMean8 => {
                // Dequantize (scale multiply) + weight multiply.
                self.stats.mults += 2 * elems;
            }
        }
    }
}

/// Rank-local byte address of a burst coordinate, used as the RankCache
/// tag (row-major within the rank).
pub fn rank_local_bytes(a: &DramAddr) -> u64 {
    let banks = 16u64;
    let flat_bank = a.flat_bank(4) as u64;
    ((a.row as u64 * banks + flat_bank) * 128 + a.column as u64) * 64
}

/// The coordinates of burst `b` of a multi-burst vector (consecutive
/// columns, wrapping within the row; embedding vectors never straddle
/// rows because tables are row-aligned).
fn burst_daddr(base: &DramAddr, b: u8) -> DramAddr {
    DramAddr {
        rank: 0, // single-rank device simulator
        column: (base.column + b as u32) % 128,
        ..*base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::NmpInst;

    fn config(cache: bool) -> RecNmpConfig {
        let mut cfg = RecNmpConfig::with_ranks(1, 1);
        if cache {
            cfg.rank_cache = Some(CacheConfig::new(4096, 64, 4));
        }
        cfg.refresh = false;
        cfg
    }

    fn inst(row: u32, col: u32, tag: u8) -> NmpInst {
        NmpInst::sum(
            DramAddr {
                rank: 0,
                bank_group: (row % 4) as u8,
                bank: (row % 16 / 4) as u8,
                row,
                column: col,
            },
            1,
            tag,
        )
    }

    #[test]
    fn empty_slice_finishes_immediately() {
        let mut r = RankNmp::new(RankId::new(0), &config(false)).unwrap();
        let res = r.process(100, &[]).unwrap();
        assert_eq!(res.done_cycle, 100);
        assert_eq!(res.insts, 0);
    }

    #[test]
    fn single_read_latency_includes_pipeline() {
        let mut r = RankNmp::new(RankId::new(0), &config(false)).unwrap();
        let res = r.process(0, &[(0, inst(1, 0, 0))]).unwrap();
        // ACT + RD + data + pipeline drain.
        assert!(res.done_cycle >= 16 + 16 + 4 + 4);
        assert_eq!(r.stats().dram_bursts, 1);
        assert_eq!(r.stats().adds, 16);
    }

    #[test]
    fn cache_hit_skips_dram() {
        let mut r = RankNmp::new(RankId::new(0), &config(true)).unwrap();
        let i = inst(1, 0, 0);
        r.process(0, &[(0, i)]).unwrap();
        let bursts_before = r.stats().dram_bursts;
        let res = r.process(1000, &[(1000, i)]).unwrap();
        assert_eq!(r.stats().dram_bursts, bursts_before, "hit went to DRAM");
        // Cache hit: 1 cycle + pipeline.
        assert_eq!(res.done_cycle, 1000 + 1 + 4);
        assert_eq!(r.cache_stats().hits, 1);
    }

    #[test]
    fn low_locality_bypasses_cache() {
        let mut r = RankNmp::new(RankId::new(0), &config(true)).unwrap();
        let mut i = inst(1, 0, 0);
        i.locality = false;
        r.process(0, &[(0, i)]).unwrap();
        r.process(1000, &[(1000, i)]).unwrap();
        assert_eq!(r.stats().dram_bursts, 2);
        assert_eq!(r.cache_stats().bypasses, 2);
    }

    #[test]
    fn multi_burst_vector_reads_all_bursts() {
        let mut r = RankNmp::new(RankId::new(0), &config(false)).unwrap();
        let mut i = inst(2, 4, 0);
        i.vsize = 4; // 256-byte vector
        let res = r.process(0, &[(0, i)]).unwrap();
        assert_eq!(r.stats().dram_bursts, 4);
        // Row hit streaming: 4 bursts at tCCD_L spacing after the ACT.
        assert!(res.done_cycle < 70, "{}", res.done_cycle);
    }

    #[test]
    fn weighted_ops_count_multiplies() {
        let mut r = RankNmp::new(RankId::new(0), &config(false)).unwrap();
        let mut i = inst(1, 0, 0);
        i.opcode = NmpOpcode::WeightedSum;
        r.process(0, &[(0, i)]).unwrap();
        assert_eq!(r.stats().mults, 16);
        let mut q = inst(1, 1, 0);
        q.opcode = NmpOpcode::WeightedSum8;
        r.process(500, &[(500, q)]).unwrap();
        assert_eq!(r.stats().mults, 16 + 32);
    }

    #[test]
    fn parallel_bank_reads_overlap() {
        let mut r = RankNmp::new(RankId::new(0), &config(false)).unwrap();
        // 16 instructions spread across all 16 banks.
        let insts: Vec<(Cycle, NmpInst)> = (0..16u32)
            .map(|b| {
                (
                    0,
                    NmpInst::sum(
                        DramAddr {
                            rank: 0,
                            bank_group: (b % 4) as u8,
                            bank: (b / 4) as u8,
                            row: 7,
                            column: 0,
                        },
                        1,
                        0,
                    ),
                )
            })
            .collect();
        let res = r.process(0, &insts).unwrap();
        // Serial row misses would cost 16 * ~36 cycles; bank-level
        // parallelism must land far below that.
        assert!(res.done_cycle < 16 * 36, "{}", res.done_cycle);
    }

    #[test]
    fn prefetched_vector_hits_on_demand() {
        let mut r = RankNmp::new(RankId::new(0), &config(true)).unwrap();
        let i = inst(1, 0, 0);
        assert!(r.has_cache());
        assert!(r.prefetch_vector(&i.daddr, i.vsize));
        assert!(!r.prefetch_vector(&i.daddr, i.vsize)); // already staged
        let res = r.process(1000, &[(1000, i)]).unwrap();
        // Served from the staged line: no DRAM bursts, cache-hit latency.
        assert_eq!(r.stats().dram_bursts, 0);
        assert_eq!(res.done_cycle, 1000 + 1 + 4);
        assert_eq!(r.cache_stats().hits, 1);
        assert_eq!(r.cache_stats().misses, 0);
        r.reset_cache();
        assert_eq!(r.cache_stats().hits, 0);
        // Cold again: the same instruction now reads DRAM.
        r.process(2000, &[(2000, i)]).unwrap();
        assert_eq!(r.stats().dram_bursts, 1);
    }

    #[test]
    fn prefetch_without_cache_is_inert() {
        let mut r = RankNmp::new(RankId::new(0), &config(false)).unwrap();
        let i = inst(1, 0, 0);
        assert!(!r.has_cache());
        assert!(!r.prefetch_vector(&i.daddr, i.vsize));
        r.reset_cache(); // no-op, must not panic
    }

    #[test]
    fn cache_latency_grows_with_capacity() {
        assert_eq!(cache_latency_cycles(8 * 1024), 1);
        assert_eq!(cache_latency_cycles(128 * 1024), 1);
        assert_eq!(cache_latency_cycles(256 * 1024), 2);
        assert_eq!(cache_latency_cycles(512 * 1024), 2);
        assert_eq!(cache_latency_cycles(1024 * 1024), 3);
    }

    #[test]
    fn rank_local_bytes_is_injective_across_columns_and_rows() {
        let mut seen = std::collections::HashSet::new();
        for row in 0..4u32 {
            for col in 0..128u32 {
                for bank in 0..4u8 {
                    let a = DramAddr {
                        rank: 0,
                        bank_group: bank,
                        bank: 0,
                        row,
                        column: col,
                    };
                    assert!(seen.insert(rank_local_bytes(&a)));
                }
            }
        }
    }
}
