//! Area and power roll-up (Table II).
//!
//! The paper synthesizes the RecNMP PU at 250 MHz in 40 nm (Synopsys DC
//! for logic, Cacti for the RankCache SRAM) and reports per-PU totals.
//! This module reproduces Table II from a per-component breakdown that
//! sums to the published numbers for the paper's 2-rank DIMM and scales
//! with the rank count.

use serde::{Deserialize, Serialize};

use crate::config::RecNmpConfig;

/// Area (mm²) and power (mW) of one component in 40 nm at 250 MHz.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentCost {
    /// Component label.
    pub name: &'static str,
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// DIMM-NMP shared logic: DDR PHY add-ons, instruction queue/mux, PSum
/// buffers and the adder tree.
pub const DIMM_NMP_LOGIC: ComponentCost = ComponentCost {
    name: "DIMM-NMP logic",
    area_mm2: 0.06,
    power_mw: 27.3,
};

/// One rank-NMP datapath: instruction decoder, command generator,
/// multiply/accumulate lanes and register files.
pub const RANK_NMP_DATAPATH: ComponentCost = ComponentCost {
    name: "rank-NMP datapath",
    area_mm2: 0.14,
    power_mw: 62.0,
};

/// One 128 KiB RankCache (SRAM + tags).
pub const RANK_CACHE_128K: ComponentCost = ComponentCost {
    name: "RankCache (128 KiB)",
    area_mm2: 0.10,
    power_mw: 16.45,
};

/// Chameleon's per-DIMM cost (8 CGRA accelerators), from Table II.
pub const CHAMELEON_PU: ComponentCost = ComponentCost {
    name: "Chameleon (8 CGRA)",
    area_mm2: 8.34,
    power_mw: 3195.2, // midpoint of the 3138.6-3251.8 mW range
};

/// Area/power estimate of one RecNMP PU.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PuPhysical {
    /// Total area in mm².
    pub area_mm2: f64,
    /// Total power in mW.
    pub power_mw: f64,
}

impl PuPhysical {
    /// Estimates the PU for a configuration: shared DIMM logic plus one
    /// datapath (and one RankCache, if configured) per rank.
    pub fn estimate(config: &RecNmpConfig) -> Self {
        let ranks = config.ranks_per_dimm as f64;
        let mut area = DIMM_NMP_LOGIC.area_mm2 + ranks * RANK_NMP_DATAPATH.area_mm2;
        let mut power = DIMM_NMP_LOGIC.power_mw + ranks * RANK_NMP_DATAPATH.power_mw;
        if let Some(cache) = &config.rank_cache {
            // Scale the 128 KiB reference roughly linearly in capacity
            // (SRAM-dominated).
            let scale = cache.capacity_bytes as f64 / (128.0 * 1024.0);
            area += ranks * RANK_CACHE_128K.area_mm2 * scale;
            power += ranks * RANK_CACHE_128K.power_mw * scale;
        }
        Self {
            area_mm2: area,
            power_mw: power,
        }
    }

    /// Fraction of a typical 100 mm² DIMM buffer chip this PU occupies.
    pub fn buffer_chip_fraction(&self) -> f64 {
        self.area_mm2 / 100.0
    }

    /// Fraction of a typical 13 W DIMM power budget this PU draws.
    pub fn dimm_power_fraction(&self) -> f64 {
        self.power_mw / 13_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_pu_matches_table2() {
        // RecNMP-base (2 ranks, no cache): 0.34 mm^2, 151.3 mW.
        let p = PuPhysical::estimate(&RecNmpConfig::with_ranks(1, 2));
        assert!((p.area_mm2 - 0.34).abs() < 1e-9, "{}", p.area_mm2);
        assert!((p.power_mw - 151.3).abs() < 1e-9, "{}", p.power_mw);
    }

    #[test]
    fn opt_pu_matches_table2() {
        // RecNMP-opt (adds two 128 KiB RankCaches): 0.54 mm^2, 184.2 mW.
        let p = PuPhysical::estimate(&RecNmpConfig::optimized(1, 2));
        assert!((p.area_mm2 - 0.54).abs() < 1e-9, "{}", p.area_mm2);
        assert!((p.power_mw - 184.2).abs() < 1e-9, "{}", p.power_mw);
    }

    #[test]
    fn far_cheaper_than_chameleon() {
        let p = PuPhysical::estimate(&RecNmpConfig::optimized(1, 2));
        // Paper: 6.5% of Chameleon's area, ~5.9% of its power.
        let area_frac = p.area_mm2 / CHAMELEON_PU.area_mm2;
        let power_frac = p.power_mw / CHAMELEON_PU.power_mw;
        assert!((0.04..0.08).contains(&area_frac), "{area_frac}");
        assert!((0.04..0.08).contains(&power_frac), "{power_frac}");
    }

    #[test]
    fn overhead_fits_buffer_chip_budget() {
        let p = PuPhysical::estimate(&RecNmpConfig::optimized(1, 2));
        assert!(p.buffer_chip_fraction() < 0.01);
        assert!(p.dimm_power_fraction() < 0.02);
    }

    #[test]
    fn area_scales_with_ranks() {
        let two = PuPhysical::estimate(&RecNmpConfig::optimized(1, 2));
        let four = PuPhysical::estimate(&RecNmpConfig::optimized(1, 4));
        assert!(four.area_mm2 > two.area_mm2);
    }

    #[test]
    fn cache_size_scales_cost() {
        let mut big = RecNmpConfig::optimized(1, 2);
        big.rank_cache = Some(recnmp_cache::CacheConfig::new(1024 * 1024, 64, 4));
        let p_big = PuPhysical::estimate(&big);
        let p_std = PuPhysical::estimate(&RecNmpConfig::optimized(1, 2));
        assert!(p_big.area_mm2 > 2.0 * p_std.area_mm2);
    }
}
