//! Memory-path energy accounting for RecNMP vs the host baseline.
//!
//! Table I energy constants: DDR activate 2.1 nJ, DDR RD/WR 14 pJ/b,
//! off-chip I/O 22 pJ/b, RankCache access 50 pJ, FP32 add 7.89 pJ/op,
//! FP32 multiply 25.2 pJ/op.
//!
//! The host baseline pays array + I/O energy for every gathered vector.
//! RecNMP reads the array only on RankCache misses and sends just the
//! compressed instructions in and pooled sums out across the DIMM
//! interface — the source of the paper's 45.8% memory energy saving.

use recnmp_backend::RunReport;
use recnmp_cache::rank_cache::RANK_CACHE_ACCESS_PJ;
use recnmp_dram::{DramEnergy, DramStats, EnergyParams};
use serde::{Deserialize, Serialize};

/// Datapath energy constants (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NmpEnergyParams {
    /// FP32 adder energy, picojoules per operation.
    pub fp32_add_pj: f64,
    /// FP32 multiplier energy, picojoules per operation.
    pub fp32_mult_pj: f64,
    /// RankCache access energy, picojoules per lookup.
    pub cache_access_pj: f64,
}

impl NmpEnergyParams {
    /// The Table I constants.
    pub const fn table1() -> Self {
        Self {
            fp32_add_pj: 7.89,
            fp32_mult_pj: 25.2,
            cache_access_pj: RANK_CACHE_ACCESS_PJ,
        }
    }
}

impl Default for NmpEnergyParams {
    fn default() -> Self {
        Self::table1()
    }
}

/// Energy breakdown of one SLS execution.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// DRAM array + I/O energy.
    pub dram: DramEnergy,
    /// RankCache lookup energy (nJ).
    pub cache_nj: f64,
    /// Datapath arithmetic energy (nJ).
    pub alu_nj: f64,
}

impl EnergyBreakdown {
    /// Total nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.dram.total_nj() + self.cache_nj + self.alu_nj
    }
}

/// Energy of a RecNMP run.
pub fn nmp_energy(
    report: &RunReport,
    dram: &EnergyParams,
    nmp: &NmpEnergyParams,
) -> EnergyBreakdown {
    let array_bytes = report.dram_bursts * 64;
    EnergyBreakdown {
        dram: DramEnergy::from_counts(report.dram.acts, array_bytes, report.io_bytes, dram),
        cache_nj: (report.cache.lookups() as f64) * nmp.cache_access_pj / 1000.0,
        alu_nj: (report.alu_adds as f64 * nmp.fp32_add_pj
            + report.alu_mults as f64 * nmp.fp32_mult_pj)
            / 1000.0,
    }
}

/// Energy of the host baseline serving the same SLS workload: every
/// gathered burst is read from the array *and* crosses the DIMM interface
/// (pooling happens in the CPU, whose core energy is out of scope for the
/// memory-energy comparison, as in the paper).
pub fn host_energy(stats: &DramStats, dram: &EnergyParams) -> EnergyBreakdown {
    EnergyBreakdown {
        dram: DramEnergy::from_stats(stats, dram),
        cache_nj: 0.0,
        alu_nj: 0.0,
    }
}

/// Fractional memory-energy saving of `nmp` relative to `host`.
pub fn energy_saving(host: &EnergyBreakdown, nmp: &EnergyBreakdown) -> f64 {
    if host.total_nj() == 0.0 {
        0.0
    } else {
        1.0 - nmp.total_nj() / host.total_nj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_cache::CacheStats;

    fn report(bursts: u64, acts: u64, hits: u64, io: u64) -> RunReport {
        RunReport {
            dram_bursts: bursts,
            dram: recnmp_dram::DramStats {
                acts,
                ..recnmp_dram::DramStats::new()
            },
            io_bytes: io,
            insts: bursts + hits,
            gathered_bytes: (bursts + hits) * 64,
            alu_adds: (bursts + hits) * 16,
            cache: CacheStats {
                hits,
                misses: bursts,
                ..CacheStats::default()
            },
            ..RunReport::default()
        }
    }

    #[test]
    fn nmp_beats_host_on_same_workload() {
        // 1000 lookups, NMP hits 40% in cache and returns only sums.
        let nmp_report = report(600, 540, 400, 1000 * 10 + 64 * 13);
        let mut host_stats = DramStats::new();
        host_stats.reads = 1000;
        host_stats.acts = 900;
        let host = host_energy(&host_stats, &EnergyParams::table1());
        let nmp = nmp_energy(
            &nmp_report,
            &EnergyParams::table1(),
            &NmpEnergyParams::table1(),
        );
        let saving = energy_saving(&host, &nmp);
        assert!(saving > 0.3, "saving {saving}");
        assert!(saving < 0.9, "saving {saving}");
    }

    #[test]
    fn alu_energy_counts_ops() {
        let r = report(10, 10, 0, 100);
        let e = nmp_energy(&r, &EnergyParams::table1(), &NmpEnergyParams::table1());
        // 10 lookups * 16 adds * 7.89 pJ = 1.2624 nJ.
        assert!((e.alu_nj - 1.2624).abs() < 1e-9, "{}", e.alu_nj);
    }

    #[test]
    fn cache_energy_counts_lookups() {
        let r = report(5, 5, 5, 50);
        let e = nmp_energy(&r, &EnergyParams::table1(), &NmpEnergyParams::table1());
        // 10 lookups * 50 pJ = 0.5 nJ.
        assert!((e.cache_nj - 0.5).abs() < 1e-9);
    }

    #[test]
    fn saving_is_zero_for_empty_host() {
        let host = EnergyBreakdown::default();
        let nmp = EnergyBreakdown::default();
        assert_eq!(energy_saving(&host, &nmp), 0.0);
    }
}
