//! Command/address bandwidth-expansion analysis (Section III-B, Figure 9).
//!
//! A conventional controller spends up to three C/A-bus command slots
//! (PRE, ACT, RD) per 64-byte burst of a low-locality embedding read, so
//! the single command bus cannot keep more than one or two ranks busy.
//! RecNMP ships one compressed NMP instruction per embedding vector at
//! double data rate — eight instructions per four-cycle burst window —
//! enabling up to eight concurrently activated ranks for 64-byte vectors.

/// DRAM cycles per data-burst window (burst length 8 at DDR).
pub const BURST_WINDOW_CYCLES: u64 = 4;

/// Commands a conventional controller issues per vector with no spatial
/// locality: PRE + ACT + one RD per 64-byte burst.
pub fn baseline_commands_per_vector(vsize: u8) -> u64 {
    2 + vsize as u64
}

/// Ranks a conventional C/A bus (one command per cycle) can keep streaming
/// concurrently for vectors of `vsize` bursts: each vector occupies
/// `vsize * 4` data cycles but costs `2 + vsize` command slots.
pub fn baseline_concurrent_ranks(vsize: u8) -> f64 {
    (vsize as f64 * BURST_WINDOW_CYCLES as f64) / baseline_commands_per_vector(vsize) as f64
}

/// Ranks RecNMP can keep streaming: `insts_per_cycle` instructions arrive
/// per cycle, one instruction covers a whole vector of `vsize * 4` data
/// cycles on its rank.
pub fn nmp_concurrent_ranks(vsize: u8, insts_per_cycle: u32) -> f64 {
    insts_per_cycle as f64 * vsize as f64 * BURST_WINDOW_CYCLES as f64
}

/// The C/A bandwidth-expansion factor of the compressed instruction
/// format: how many more ranks RecNMP can activate concurrently.
///
/// # Examples
///
/// ```
/// // The paper's headline: 8x for 64-byte vectors.
/// let e = recnmp::ca::expansion_factor(1, 2);
/// assert!((e - 6.0).abs() < 1e-9);
/// // Capped by the 8 ranks a channel can hold:
/// assert_eq!(recnmp::ca::effective_ranks(1, 2, 8), 8.0);
/// ```
pub fn expansion_factor(vsize: u8, insts_per_cycle: u32) -> f64 {
    nmp_concurrent_ranks(vsize, insts_per_cycle) / baseline_concurrent_ranks(vsize)
}

/// Concurrently active ranks RecNMP sustains on a channel with
/// `total_ranks`, for vectors of `vsize` bursts: the instruction-delivery
/// limit capped by the physical rank count.
pub fn effective_ranks(vsize: u8, insts_per_cycle: u32, total_ranks: u8) -> f64 {
    nmp_concurrent_ranks(vsize, insts_per_cycle).min(total_ranks as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_wastes_ca_on_small_vectors() {
        // 64 B vector: 3 commands per 4-cycle window -> 75% C/A utilization
        // for 1.33 concurrent ranks.
        let r = baseline_concurrent_ranks(1);
        assert!((r - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn nmp_delivers_eight_lookups_per_window() {
        // Figure 9(b): 8 NMP-Insts per 4-cycle window at DDR.
        assert_eq!(nmp_concurrent_ranks(1, 2), 8.0);
    }

    #[test]
    fn expansion_grows_with_vector_size() {
        // "Higher expansion ratio can be achieved with larger vector size."
        let small = expansion_factor(1, 2);
        let large = expansion_factor(4, 2);
        assert!(large > small);
    }

    #[test]
    fn effective_ranks_capped_by_hardware() {
        assert_eq!(effective_ranks(1, 2, 2), 2.0);
        assert_eq!(effective_ranks(1, 2, 8), 8.0);
        assert_eq!(effective_ranks(8, 2, 8), 8.0);
    }

    #[test]
    fn single_rate_delivery_halves_concurrency() {
        assert_eq!(nmp_concurrent_ranks(1, 1), 4.0);
    }
}
