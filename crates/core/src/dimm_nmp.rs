//! The DIMM-NMP module (Figure 8(b)).
//!
//! Receives NMP instructions over the DIMM interface, multiplexes them to
//! rank-NMP modules by Rank-ID, buffers per-rank partial sums, and reduces
//! them through an element-wise adder tree before returning the final
//! `DIMM.Sum` to the host.

use recnmp_types::{ConfigError, Cycle, DimmId, RankId, SimError};

use crate::config::RecNmpConfig;
use crate::inst::NmpInst;
use crate::rank_nmp::RankNmp;

/// Outcome of one packet's slice on a DIMM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimmPacketResult {
    /// Cycle the DIMM finished reducing its ranks' partial sums.
    pub done_cycle: Cycle,
    /// Instructions executed per rank of this DIMM.
    pub rank_insts: Vec<u64>,
}

/// One DIMM's processing unit: its rank-NMP modules plus the adder tree.
#[derive(Debug)]
pub struct DimmNmp {
    id: DimmId,
    ranks: Vec<RankNmp>,
}

impl DimmNmp {
    /// Builds the PU for DIMM `id`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the per-rank configuration is invalid.
    pub fn new(id: DimmId, config: &RecNmpConfig) -> Result<Self, ConfigError> {
        let base = id.index() as u32 * config.ranks_per_dimm as u32;
        let ranks = (0..config.ranks_per_dimm as u32)
            .map(|r| RankNmp::new(RankId::new(base + r), config))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { id, ranks })
    }

    /// This DIMM's identifier.
    pub fn id(&self) -> DimmId {
        self.id
    }

    /// The rank engines (read access for stats aggregation).
    pub fn ranks(&self) -> &[RankNmp] {
        &self.ranks
    }

    /// Mutable access to the rank engines — the prefetch/reset path into
    /// each rank's RankCache.
    pub fn ranks_mut(&mut self) -> &mut [RankNmp] {
        &mut self.ranks
    }

    /// Adder-tree depth: one pipelined element-wise adder stage per level.
    pub fn adder_tree_latency(&self) -> Cycle {
        (self.ranks.len().max(1) as f64).log2().ceil() as Cycle
    }

    /// Executes this DIMM's slice of a packet.
    ///
    /// `per_rank[r]` holds the delivery-stamped instructions for local
    /// rank `r`. The DIMM finishes when its slowest rank finishes plus the
    /// adder-tree and sum-buffer latency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] if any rank's DRAM devices livelock.
    pub fn process(
        &mut self,
        start: Cycle,
        per_rank: &[Vec<(Cycle, NmpInst)>],
    ) -> Result<DimmPacketResult, SimError> {
        assert_eq!(
            per_rank.len(),
            self.ranks.len(),
            "one instruction slice per rank"
        );
        let mut done = start;
        let mut rank_insts = Vec::with_capacity(self.ranks.len());
        for (rank, slice) in self.ranks.iter_mut().zip(per_rank) {
            let res = rank.process(start, slice)?;
            done = done.max(res.done_cycle);
            rank_insts.push(res.insts);
        }
        let total: u64 = rank_insts.iter().sum();
        let done_cycle = if total == 0 {
            start
        } else {
            // Adder tree + one cycle into the DIMM.Sum buffer.
            done + self.adder_tree_latency() + 1
        };
        Ok(DimmPacketResult {
            done_cycle,
            rank_insts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_dram::DramAddr;

    fn config() -> RecNmpConfig {
        let mut cfg = RecNmpConfig::with_ranks(1, 2);
        cfg.refresh = false;
        cfg
    }

    fn inst(rank: u8, row: u32) -> NmpInst {
        NmpInst::sum(
            DramAddr {
                rank,
                bank_group: 0,
                bank: 0,
                row,
                column: 0,
            },
            1,
            0,
        )
    }

    #[test]
    fn adder_tree_depth_scales() {
        let d = DimmNmp::new(DimmId::new(0), &config()).unwrap();
        assert_eq!(d.adder_tree_latency(), 1); // 2 ranks -> 1 level
        let mut cfg4 = RecNmpConfig::with_ranks(1, 4);
        cfg4.refresh = false;
        let d4 = DimmNmp::new(DimmId::new(0), &cfg4).unwrap();
        assert_eq!(d4.adder_tree_latency(), 2);
    }

    #[test]
    fn ranks_process_in_parallel() {
        let mut d = DimmNmp::new(DimmId::new(0), &config()).unwrap();
        // Two instructions, one per rank, both arriving at cycle 0.
        let res = d
            .process(0, &[vec![(0, inst(0, 1))], vec![(0, inst(1, 2))]])
            .unwrap();
        // Parallel ranks: latency close to a single read, not double.
        assert!(res.done_cycle < 2 * 40, "{}", res.done_cycle);
        assert_eq!(res.rank_insts, vec![1, 1]);
    }

    #[test]
    fn slowest_rank_determines_latency() {
        let mut d = DimmNmp::new(DimmId::new(0), &config()).unwrap();
        // Rank 0 gets 8 conflicting reads, rank 1 gets one.
        let heavy: Vec<(Cycle, NmpInst)> = (0..8).map(|i| (0, inst(0, i * 7 + 1))).collect();
        let res = d.process(0, &[heavy, vec![(0, inst(1, 2))]]).unwrap();
        let single = {
            let mut d2 = DimmNmp::new(DimmId::new(0), &config()).unwrap();
            d2.process(0, &[vec![(0, inst(0, 1))], Vec::new()])
                .unwrap()
                .done_cycle
        };
        assert!(res.done_cycle > single, "{} vs {single}", res.done_cycle);
    }

    #[test]
    fn empty_packet_is_free() {
        let mut d = DimmNmp::new(DimmId::new(0), &config()).unwrap();
        let res = d.process(55, &[Vec::new(), Vec::new()]).unwrap();
        assert_eq!(res.done_cycle, 55);
    }

    #[test]
    fn rank_ids_are_global() {
        let mut cfg = config();
        cfg.dimms = 2;
        let d1 = DimmNmp::new(DimmId::new(1), &cfg).unwrap();
        assert_eq!(d1.ranks()[0].id(), RankId::new(2));
        assert_eq!(d1.ranks()[1].id(), RankId::new(3));
    }
}
