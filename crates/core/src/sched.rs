//! Table-aware packet scheduling (Section III-D, Figure 11).
//!
//! Production servers run many SLS threads whose packets interleave at the
//! memory controller, destroying intra-table temporal locality before it
//! reaches the RankCache. The table-aware scheduler reorders the packet
//! queue so packets from the same (model, table) batch issue
//! consecutively, the same idea as thread-level memory schedulers.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use recnmp_types::{ModelId, TableId};

use crate::config::SchedulingPolicy;
use crate::packet::NmpPacket;

/// Orders a packet queue according to `policy`.
///
/// * [`SchedulingPolicy::Fcfs`] returns the queue unchanged.
/// * [`SchedulingPolicy::TableAware`] groups packets by (model, table),
///   groups ordered by first appearance, preserving order within groups
///   (a stable grouping, so no packet starves).
///
/// The grouping is a single O(n) pass: packets move by value into
/// per-key buckets indexed by a `HashMap`, then concatenate in
/// first-appearance order — no per-packet clones or rescans, so a
/// long-queue serving run schedules in linear time.
pub fn schedule(packets: Vec<NmpPacket>, policy: SchedulingPolicy) -> Vec<NmpPacket> {
    match policy {
        SchedulingPolicy::Fcfs => packets,
        SchedulingPolicy::TableAware => {
            let total = packets.len();
            let mut order: Vec<(ModelId, TableId)> = Vec::new();
            let mut groups: HashMap<(ModelId, TableId), Vec<NmpPacket>> = HashMap::new();
            for p in packets {
                let key = (p.model, p.table);
                match groups.entry(key) {
                    Entry::Vacant(slot) => {
                        order.push(key);
                        slot.insert(vec![p]);
                    }
                    Entry::Occupied(mut slot) => slot.get_mut().push(p),
                }
            }
            let mut out = Vec::with_capacity(total);
            for key in order {
                out.append(&mut groups.remove(&key).expect("every key has a bucket"));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(model: u32, table: u32, marker: usize) -> NmpPacket {
        NmpPacket {
            model: ModelId::new(model),
            table: TableId::new(table),
            insts: Vec::new(),
            origins: Vec::new(),
            pooling_sizes: vec![marker],
        }
    }

    #[test]
    fn fcfs_is_identity() {
        let q = vec![packet(0, 1, 0), packet(0, 2, 1), packet(0, 1, 2)];
        let out = schedule(q.clone(), SchedulingPolicy::Fcfs);
        assert_eq!(out, q);
    }

    #[test]
    fn table_aware_groups_by_table() {
        // Interleaved arrival: T1, T2, T1, T2.
        let q = vec![
            packet(0, 1, 0),
            packet(0, 2, 1),
            packet(0, 1, 2),
            packet(0, 2, 3),
        ];
        let out = schedule(q, SchedulingPolicy::TableAware);
        let keys: Vec<(u32, usize)> = out
            .iter()
            .map(|p| (u32::from(p.table), p.pooling_sizes[0]))
            .collect();
        assert_eq!(keys, vec![(1, 0), (1, 2), (2, 1), (2, 3)]);
    }

    #[test]
    fn table_aware_distinguishes_models() {
        // Same table id in two co-located models must not merge.
        let q = vec![
            packet(0, 1, 0),
            packet(1, 1, 1),
            packet(0, 1, 2),
            packet(1, 1, 3),
        ];
        let out = schedule(q, SchedulingPolicy::TableAware);
        let keys: Vec<(u32, usize)> = out
            .iter()
            .map(|p| (u32::from(p.model), p.pooling_sizes[0]))
            .collect();
        assert_eq!(keys, vec![(0, 0), (0, 2), (1, 1), (1, 3)]);
    }

    #[test]
    fn grouping_preserves_within_group_order() {
        let q = vec![packet(0, 5, 10), packet(0, 5, 11), packet(0, 5, 12)];
        let out = schedule(q.clone(), SchedulingPolicy::TableAware);
        assert_eq!(out, q);
    }

    #[test]
    fn empty_queue_is_fine() {
        assert!(schedule(Vec::new(), SchedulingPolicy::TableAware).is_empty());
    }
}
