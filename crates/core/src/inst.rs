//! The compressed 79-bit NMP instruction (Figure 8(d)).
//!
//! Field layout, least-significant first when packed into a `u128`:
//!
//! | field       | bits | contents                                        |
//! |-------------|------|-------------------------------------------------|
//! | opcode      | 4    | which SLS-family operation the PU performs      |
//! | ddr_cmd     | 3    | presence of {ACT, RD, PRE} for this vector      |
//! | daddr       | 32   | packed rank/BG/BA/row/column coordinates        |
//! | vsize       | 3    | vector size in 64-byte bursts, minus one        |
//! | weight      | 32   | FP32 weight (1.0 for unweighted ops)            |
//! | locality    | 1    | `LocalityBit` RankCache hint                    |
//! | psum_tag    | 4    | which pooling this vector accumulates into      |
//!
//! Total: 79 bits, fitting the standard 84-pin C/A+DQ interface as the
//! paper requires.

use recnmp_dram::DramAddr;
use serde::{Deserialize, Serialize};

use std::error::Error;
use std::fmt;

/// Total bits of a packed NMP instruction.
pub const NMP_INST_BITS: u32 = 79;
/// Bits of the PsumTag field; bounds poolings per packet to 16.
pub const PSUM_TAG_BITS: u32 = 4;
/// Maximum poolings distinguishable within one packet.
pub const MAX_POOLINGS_PER_PACKET: usize = 1 << PSUM_TAG_BITS;

/// The SLS-family operation an NMP kernel performs (Figure 8(d) opcodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NmpOpcode {
    /// `nmp_sum`
    Sum = 0,
    /// `nmp_mean`
    Mean = 1,
    /// `nmp_weightedsum`
    WeightedSum = 2,
    /// `nmp_weightedmean`
    WeightedMean = 3,
    /// `nmp_weightedsum_8bits` (row-wise quantized)
    WeightedSum8 = 4,
    /// `nmp_weightedmean_8bits`
    WeightedMean8 = 5,
}

impl NmpOpcode {
    /// All opcodes.
    pub const ALL: [NmpOpcode; 6] = [
        NmpOpcode::Sum,
        NmpOpcode::Mean,
        NmpOpcode::WeightedSum,
        NmpOpcode::WeightedMean,
        NmpOpcode::WeightedSum8,
        NmpOpcode::WeightedMean8,
    ];

    fn from_bits(v: u8) -> Result<Self, DecodeInstError> {
        Self::ALL
            .into_iter()
            .find(|o| *o as u8 == v)
            .ok_or(DecodeInstError::BadOpcode(v))
    }
}

/// Embedded DDR command presence flags (the 3-bit `DDR cmd` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DdrCmdFlags {
    /// An ACT is needed (row currently closed).
    pub act: bool,
    /// A RD is needed (always true for lookups).
    pub rd: bool,
    /// A PRE is needed first (row conflict).
    pub pre: bool,
}

impl DdrCmdFlags {
    /// Read from an already-open row.
    pub const fn row_hit() -> Self {
        Self {
            act: false,
            rd: true,
            pre: false,
        }
    }

    /// Read requiring ACT (bank closed).
    pub const fn row_closed() -> Self {
        Self {
            act: true,
            rd: true,
            pre: false,
        }
    }

    /// Read requiring PRE then ACT (row conflict).
    pub const fn row_conflict() -> Self {
        Self {
            act: true,
            rd: true,
            pre: true,
        }
    }

    fn to_bits(self) -> u128 {
        (self.act as u128) | (self.rd as u128) << 1 | (self.pre as u128) << 2
    }

    fn from_bits(v: u8) -> Self {
        Self {
            act: v & 1 != 0,
            rd: v & 2 != 0,
            pre: v & 4 != 0,
        }
    }

    /// Number of DDR commands this instruction expands to (per burst
    /// sequence: PRE? + ACT? + one RD per burst is counted elsewhere).
    pub fn command_count(self) -> u32 {
        self.act as u32 + self.rd as u32 + self.pre as u32
    }
}

/// Error decoding a packed NMP instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeInstError {
    /// Unknown opcode bits.
    BadOpcode(u8),
    /// Bits above bit 78 were set.
    ExcessBits,
}

impl fmt::Display for DecodeInstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadOpcode(v) => write!(f, "unknown NMP opcode bits {v:#x}"),
            Self::ExcessBits => write!(f, "bits beyond the 79-bit instruction are set"),
        }
    }
}

impl Error for DecodeInstError {}

/// One decoded NMP instruction: the work of fetching and accumulating a
/// single embedding vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NmpInst {
    /// Operation selector.
    pub opcode: NmpOpcode,
    /// Embedded DDR command flags (set by the MC at packet build time).
    pub ddr_cmd: DdrCmdFlags,
    /// Target DRAM coordinates.
    pub daddr: DramAddr,
    /// Vector size in 64-byte bursts (1–8).
    pub vsize: u8,
    /// FP32 weight (1.0 for unweighted operations).
    pub weight: f32,
    /// `LocalityBit`: whether the RankCache should allocate this vector.
    pub locality: bool,
    /// Pooling tag within the packet (0–15).
    pub psum_tag: u8,
}

impl NmpInst {
    /// Creates an unweighted sum instruction with default flags. The
    /// `LocalityBit` defaults to set (cacheable) — the unprofiled policy.
    ///
    /// # Panics
    ///
    /// Panics if `vsize` is not in `1..=8` or `psum_tag` exceeds 15.
    pub fn sum(daddr: DramAddr, vsize: u8, psum_tag: u8) -> Self {
        let inst = Self {
            opcode: NmpOpcode::Sum,
            ddr_cmd: DdrCmdFlags::row_closed(),
            daddr,
            vsize,
            weight: 1.0,
            locality: true,
            psum_tag,
        };
        inst.assert_valid();
        inst
    }

    fn assert_valid(&self) {
        assert!((1..=8).contains(&self.vsize), "vsize must be 1..=8 bursts");
        assert!(
            (self.psum_tag as usize) < MAX_POOLINGS_PER_PACKET,
            "psum_tag must fit in 4 bits"
        );
    }

    /// Bytes this instruction fetches from DRAM.
    pub fn vector_bytes(&self) -> u64 {
        self.vsize as u64 * 64
    }

    /// Packs into the 79-bit wire format.
    pub fn pack(&self) -> u128 {
        self.assert_valid();
        let daddr_bits = pack_daddr(&self.daddr);
        let mut v: u128 = self.opcode as u128;
        let mut shift = 4;
        v |= self.ddr_cmd.to_bits() << shift;
        shift += 3;
        v |= (daddr_bits as u128) << shift;
        shift += 32;
        v |= ((self.vsize - 1) as u128) << shift;
        shift += 3;
        v |= (self.weight.to_bits() as u128) << shift;
        shift += 32;
        v |= (self.locality as u128) << shift;
        shift += 1;
        v |= (self.psum_tag as u128) << shift;
        v
    }

    /// Decodes the 79-bit wire format.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeInstError`] on unknown opcode bits or if bits above
    /// bit 78 are set.
    pub fn unpack(v: u128) -> Result<Self, DecodeInstError> {
        if v >> NMP_INST_BITS != 0 {
            return Err(DecodeInstError::ExcessBits);
        }
        let opcode = NmpOpcode::from_bits((v & 0xf) as u8)?;
        let ddr_cmd = DdrCmdFlags::from_bits(((v >> 4) & 0x7) as u8);
        let daddr = unpack_daddr(((v >> 7) & 0xffff_ffff) as u32);
        let vsize = (((v >> 39) & 0x7) as u8) + 1;
        let weight = f32::from_bits(((v >> 42) & 0xffff_ffff) as u32);
        let locality = (v >> 74) & 1 != 0;
        let psum_tag = ((v >> 75) & 0xf) as u8;
        Ok(Self {
            opcode,
            ddr_cmd,
            daddr,
            vsize,
            weight,
            locality,
            psum_tag,
        })
    }
}

/// Packs DRAM coordinates into the 32-bit `Daddr` field:
/// `rank(3) | bank_group(2) | bank(2) | row(17) | column(8)`.
fn pack_daddr(a: &DramAddr) -> u32 {
    debug_assert!(a.rank < 8 && a.bank_group < 4 && a.bank < 4);
    debug_assert!(a.row < (1 << 17) && a.column < (1 << 8));
    (a.rank as u32)
        | (a.bank_group as u32) << 3
        | (a.bank as u32) << 5
        | a.row << 7
        | a.column << 24
}

fn unpack_daddr(v: u32) -> DramAddr {
    DramAddr {
        rank: (v & 0x7) as u8,
        bank_group: ((v >> 3) & 0x3) as u8,
        bank: ((v >> 5) & 0x3) as u8,
        row: (v >> 7) & 0x1_ffff,
        column: (v >> 24) & 0xff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> DramAddr {
        DramAddr {
            rank: 5,
            bank_group: 2,
            bank: 3,
            row: 54_321,
            column: 101,
        }
    }

    #[test]
    fn pack_fits_79_bits() {
        let mut inst = NmpInst::sum(addr(), 8, 15);
        inst.weight = -123.456;
        inst.locality = true;
        inst.opcode = NmpOpcode::WeightedMean8;
        let packed = inst.pack();
        assert_eq!(packed >> NMP_INST_BITS, 0, "exceeds 79 bits");
    }

    #[test]
    fn roundtrip_preserves_all_fields() {
        let mut inst = NmpInst::sum(addr(), 2, 9);
        inst.opcode = NmpOpcode::WeightedSum;
        inst.ddr_cmd = DdrCmdFlags::row_conflict();
        inst.weight = 0.125;
        inst.locality = true;
        let out = NmpInst::unpack(inst.pack()).expect("valid encoding");
        assert_eq!(out, inst);
    }

    #[test]
    fn unpack_rejects_excess_bits() {
        assert_eq!(
            NmpInst::unpack(1u128 << 100),
            Err(DecodeInstError::ExcessBits)
        );
    }

    #[test]
    fn unpack_rejects_bad_opcode() {
        // Opcode 0xF is undefined.
        assert_eq!(NmpInst::unpack(0xf), Err(DecodeInstError::BadOpcode(0xf)));
    }

    #[test]
    fn ddr_cmd_flag_presets() {
        assert_eq!(DdrCmdFlags::row_hit().command_count(), 1);
        assert_eq!(DdrCmdFlags::row_closed().command_count(), 2);
        assert_eq!(DdrCmdFlags::row_conflict().command_count(), 3);
    }

    #[test]
    #[should_panic(expected = "vsize")]
    fn vsize_zero_rejected() {
        NmpInst::sum(addr(), 0, 0);
    }

    #[test]
    #[should_panic(expected = "psum_tag")]
    fn psum_tag_overflow_rejected() {
        NmpInst::sum(addr(), 1, 16);
    }

    #[test]
    fn vector_bytes_scale_with_vsize() {
        assert_eq!(NmpInst::sum(addr(), 1, 0).vector_bytes(), 64);
        assert_eq!(NmpInst::sum(addr(), 4, 0).vector_bytes(), 256);
    }

    #[test]
    fn daddr_pack_is_lossless_for_geometry_range() {
        for rank in 0..8u8 {
            for row in [0u32, 1, 65535, 99_999] {
                let a = DramAddr {
                    rank,
                    bank_group: rank % 4,
                    bank: (rank + 1) % 4,
                    row,
                    column: (row % 128),
                };
                assert_eq!(unpack_daddr(pack_daddr(&a)), a);
            }
        }
    }
}
