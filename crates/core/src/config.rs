//! RecNMP system configuration.

use recnmp_cache::CacheConfig;
use recnmp_dram::{DramConfig, SimEngine};
use recnmp_types::ConfigError;
use serde::{Deserialize, Serialize};

/// How the NMP-extended memory controller orders packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Issue packets in arrival order (parallel SLS threads interleave).
    #[default]
    Fcfs,
    /// Table-aware: group packets of the same (model, table) batch
    /// together to retain intra-table temporal locality (Section III-D).
    TableAware,
}

/// How the channel front end issues packets to the ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Serial per-packet execution: the host waits for each packet's sum
    /// before streaming the next (the paper's base methodology; each
    /// packet's latency is set by its slowest rank).
    #[default]
    Serial,
    /// Overlapped execution: instructions stream continuously and every
    /// rank consumes its share as it arrives — the high
    /// task-level-parallelism regime the page-colored data layout of
    /// Figure 14(a) requires.
    Overlapped,
}

/// Configuration of one RecNMP-equipped memory channel.
///
/// # Examples
///
/// ```
/// use recnmp::RecNmpConfig;
///
/// // The paper's largest configuration: 4 DIMMs x 2 ranks.
/// let cfg = RecNmpConfig::with_ranks(4, 2);
/// assert_eq!(cfg.total_ranks(), 8);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecNmpConfig {
    /// DIMMs on the channel.
    pub dimms: u8,
    /// Ranks per DIMM.
    pub ranks_per_dimm: u8,
    /// RankCache configuration; `None` = RecNMP-base (no cache).
    pub rank_cache: Option<CacheConfig>,
    /// Packet scheduling policy.
    pub scheduling: SchedulingPolicy,
    /// Whether hot-entry profiling annotates `LocalityBit` hints. Without
    /// profiling every instruction is treated as cacheable.
    pub hot_entry_profiling: bool,
    /// Poolings packed per NMP packet (1–16; Figure 14 sweeps this).
    pub poolings_per_packet: usize,
    /// NMP instructions delivered per DRAM cycle over the channel
    /// interface (2 = the paper's double-data-rate compressed format).
    pub insts_per_cycle: u32,
    /// Datapath pipeline depth in DRAM cycles (4-stage in the paper).
    pub pipeline_depth: u64,
    /// Whether the per-rank DRAM devices simulate refresh.
    pub refresh: bool,
    /// How packets are issued to the ranks.
    pub execution: ExecutionMode,
    /// Main-loop strategy of the per-rank DRAM engines (event-driven
    /// skip-ahead by default; per-cycle is the validation reference).
    pub engine: SimEngine,
    /// Whether the channel's cumulative `SessionStats` retain the full
    /// per-packet latency/imbalance history. Off by default: long serving
    /// runs execute millions of packets, and unbounded history is a leak.
    /// The session always keeps running summaries (count/sum/max); each
    /// per-run `RunReport` always carries that run's full vectors.
    pub retain_packet_history: bool,
}

impl RecNmpConfig {
    /// RecNMP-base for a `dimms x ranks_per_dimm` channel: no RankCache,
    /// FCFS scheduling, 8 poolings per packet.
    pub fn with_ranks(dimms: u8, ranks_per_dimm: u8) -> Self {
        Self {
            dimms,
            ranks_per_dimm,
            rank_cache: None,
            scheduling: SchedulingPolicy::Fcfs,
            hot_entry_profiling: false,
            poolings_per_packet: 8,
            insts_per_cycle: 2,
            pipeline_depth: 4,
            refresh: true,
            execution: ExecutionMode::Serial,
            engine: SimEngine::EventDriven,
            retain_packet_history: false,
        }
    }

    /// RecNMP-opt: 128 KiB RankCache, table-aware scheduling and
    /// hot-entry profiling (the paper's best configuration).
    pub fn optimized(dimms: u8, ranks_per_dimm: u8) -> Self {
        let mut cfg = Self::with_ranks(dimms, ranks_per_dimm);
        cfg.rank_cache = Some(CacheConfig::rank_cache_default());
        cfg.scheduling = SchedulingPolicy::TableAware;
        cfg.hot_entry_profiling = true;
        cfg
    }

    /// Total ranks on the channel.
    pub fn total_ranks(&self) -> u8 {
        self.dimms * self.ranks_per_dimm
    }

    /// Channel geometry (the authoritative source for packet building and
    /// page mapping; `RecNmpSystem::geometry` delegates here).
    pub fn geometry(&self) -> recnmp_dram::address::Geometry {
        recnmp_dram::address::Geometry::ddr4_8gb_x8(self.total_ranks())
    }

    /// The physical-to-DRAM mapping the NMP-extended controller applies.
    pub fn mapping(&self) -> recnmp_dram::AddressMapping {
        recnmp_dram::AddressMapping::SkylakeXor
    }

    /// The DRAM configuration of one rank's devices.
    pub fn rank_dram_config(&self) -> DramConfig {
        let mut cfg = DramConfig::single_rank();
        cfg.refresh = self.refresh;
        cfg.engine = self.engine;
        cfg
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for zero rank counts, a pooling count that
    /// exceeds the 4-bit PsumTag space, an invalid cache geometry, or an
    /// instruction delivery rate that is not 1 or 2.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.dimms == 0 {
            return Err(ConfigError::new("dimms", "must be positive"));
        }
        if self.ranks_per_dimm == 0 {
            return Err(ConfigError::new("ranks_per_dimm", "must be positive"));
        }
        if self.total_ranks() > 8 {
            return Err(ConfigError::new(
                "ranks_per_dimm",
                "NMP-Inst Daddr field addresses at most 8 ranks per channel",
            ));
        }
        if self.poolings_per_packet == 0
            || self.poolings_per_packet > crate::inst::MAX_POOLINGS_PER_PACKET
        {
            return Err(ConfigError::new(
                "poolings_per_packet",
                "must be 1..=16 (4-bit PsumTag)",
            ));
        }
        if !(1..=2).contains(&self.insts_per_cycle) {
            return Err(ConfigError::new(
                "insts_per_cycle",
                "channel interface delivers 1 or 2 instructions per cycle",
            ));
        }
        if self.pipeline_depth == 0 {
            return Err(ConfigError::new("pipeline_depth", "must be positive"));
        }
        if let Some(cache) = &self.rank_cache {
            cache.validate()?;
        }
        self.rank_dram_config().validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_config_has_no_cache() {
        let cfg = RecNmpConfig::with_ranks(4, 2);
        assert!(cfg.rank_cache.is_none());
        assert!(!cfg.hot_entry_profiling);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn optimized_enables_everything() {
        let cfg = RecNmpConfig::optimized(4, 2);
        assert!(cfg.rank_cache.is_some());
        assert_eq!(cfg.scheduling, SchedulingPolicy::TableAware);
        assert!(cfg.hot_entry_profiling);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_too_many_ranks() {
        let cfg = RecNmpConfig::with_ranks(4, 4);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_pooling_overflow() {
        let mut cfg = RecNmpConfig::with_ranks(1, 2);
        cfg.poolings_per_packet = 17;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_inst_rate() {
        let mut cfg = RecNmpConfig::with_ranks(1, 2);
        cfg.insts_per_cycle = 3;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rank_dram_is_single_rank() {
        let cfg = RecNmpConfig::with_ranks(2, 2);
        assert_eq!(cfg.rank_dram_config().geometry().ranks, 1);
    }
}
