//! Benchmark and reproduction harness for the RecNMP workspace.
//!
//! * `cargo run -p recnmp-bench --release --bin repro -- all` regenerates
//!   every table and figure of the paper (see `EXPERIMENTS.md`).
//! * `cargo bench -p recnmp-bench` runs the Criterion benchmarks — one
//!   target per paper artifact, each timing the simulation kernel that
//!   regenerates it.
//! * `cargo run -p recnmp-bench --release --bin sim_throughput` measures
//!   simulator throughput (simulated lookups per wall-clock second) for
//!   every backend plus the threaded 4-channel cluster, and emits
//!   `BENCH_throughput.json` — the perf trajectory successive PRs defend
//!   (`--smoke` for the CI-sized workload).

pub use recnmp_sim::experiments::{run, run_all, ExperimentResult, Scale, IDS};
