//! Query-serving benchmark: throughput–latency curves for every backend
//! and dispatch policy under open-loop Poisson load. Emits
//! `BENCH_serving.json` so tail-latency behaviour has a trajectory across
//! PRs, next to `BENCH_throughput.json`'s simulator-speed trajectory.
//!
//! ```text
//! cargo run -p recnmp-bench --release --bin serve_sweep -- \
//!     [--smoke] [--placement] [--tiering] [--fleet] [--resilience] \
//!     [--workers N] [--out PATH] [--baseline PATH | --baseline-from-git]
//! ```
//!
//! * `--smoke` shrinks queries/points for CI (seconds instead of minutes).
//! * `--workers N` pins the execution-engine pool size (default: the
//!   `RECNMP_WORKERS` environment variable, else `available_parallelism`);
//!   sweep load points parallelize across the pool with byte-identical
//!   curves at any count.
//! * `--placement` run the placement comparison instead: sharded
//!   scatter/gather serving on the 4-channel cluster under hash /
//!   capacity-greedy / frequency-balanced placement with skewed
//!   per-table traffic, all at the same absolute offered loads (default
//!   out `BENCH_placement.json`).
//! * `--tiering` run the capacity-tiered comparison instead: tiered
//!   scatter/gather serving over 4 DRAM channels + 2 SSD-class units
//!   under hash vs frequency-tiered placement, with the footprint/DRAM
//!   ratio swept 0.5x–8x (default out `BENCH_tiering.json`).
//! * `--fleet` run the fleet-scaling sweep instead: 1→N reference
//!   4-channel nodes behind the front-end router, pure sharding vs
//!   hot-table replication at each node count (default out
//!   `BENCH_fleet.json`). The run always re-derives the 1-node fleet and
//!   the equivalent bare-cluster sharded curve and diffs them for exact
//!   equality (`"node1_equals_cluster"`), failing the run on any
//!   divergence — the router layer must cost nothing at one node.
//! * `--caching` run the cache-aware serving comparison instead: sharded
//!   scatter/gather on the RecNMP-opt 4-channel cluster with a host-side
//!   hot-embedding cache swept over capacity × placement policy, plus
//!   inter-query RankCache prefetch on the cache-less baseline (default
//!   out `BENCH_caching.json`). The run always re-derives the co-design
//!   verdict — the 1 MiB cache over residual-load frequency placement
//!   must knee later or tail lower than the cache-less frequency
//!   baseline at the same offered loads — and fails on a loss.
//! * `--resilience` run the fault-injection sweep instead: the 4-node
//!   reference fleet through {none, node-crash, crash+stuck-at-slow
//!   channel} fault levels crossed with replicated vs sharded placement
//!   and p95 hedging on/off, every arm under the derived SLO with
//!   bounded retries, admission control and shedding (default out
//!   `BENCH_resilience.json`). The run always re-derives the resilience
//!   verdict — replicated+hedged must keep >= 90% of its pre-crash
//!   goodput through the crash while unreplicated placement collapses —
//!   and fails when either half breaks.
//! * `--out` output path.
//! * `--baseline PATH` (fleet, caching and resilience) compares each
//!   fresh curve's knee QPS (resilience: each arm's post-fault goodput)
//!   against the committed report at PATH and exits non-zero on a >30%
//!   regression.
//! * `--baseline-from-git` (fleet, caching and resilience) like
//!   `--baseline`, but reads the committed file from `git show
//!   HEAD:<out>` — local runs and CI share one code path, no
//!   stash-a-copy step.
//!
//! All paths drive the shared sweep library
//! (`recnmp_sim::serving::{sweep_matrix, placement_sweep, tiered_sweep,
//! fleet_sweep}`), the same entry points the experiment harness uses —
//! the binary only renders JSON.

use recnmp_backend::PlacementPolicy;
use recnmp_baselines::{HostBaseline, TensorDimm};
use recnmp_model::RecModelKind;
use recnmp_sim::serving::fleet::{
    fleet_sweep, resilience_sweep, Fleet, FleetCurve, FleetDispatch, ResilienceSpec,
    ResilienceSweep,
};
use recnmp_sim::serving::{
    caching_sweep, placement_sweep, qps_sweep_at, reference_caching_arms,
    reference_channel_capacity, reference_cluster4, reference_cluster4_optimized, reference_tiered,
    sweep_matrix, tiered_sweep, ArrivalProcess, DispatchPolicy, GatherCost, NamedFactories,
    QueryShape, ServingMode, ShardedDispatch, SweepCurve, SweepPoint, SweepSpec, TierSpec,
    TieredPolicy,
};
use recnmp_types::{ByteSize, Cycle};

const SEED: u64 = 0x5e12_2026;

fn points_json(points: &[SweepPoint]) -> String {
    let rendered: Vec<String> = points
        .iter()
        .map(|p| {
            let (p50, p95, p99) = p.summary.percentiles_us();
            format!(
                "{{\"offered_qps\": {:.1}, \"utilization\": {:.2}, \"achieved_qps\": {:.1}, \
                 \"p50_us\": {:.3}, \"p95_us\": {:.3}, \"p99_us\": {:.3}, \
                 \"mean_us\": {:.3}, \"max_us\": {:.3}, \"sustained\": {}}}",
                p.offered_qps,
                p.utilization,
                p.achieved_qps,
                p50,
                p95,
                p99,
                p.summary.mean * recnmp_types::units::DDR4_2400_CYCLE_SECS * 1e6,
                recnmp_types::units::cycles_to_us(p.summary.max),
                p.sustained()
            )
        })
        .collect();
    rendered.join(",\n        ")
}

fn knee_json(knee: Option<&SweepPoint>) -> String {
    match knee {
        Some(p) => format!("{:.1}", p.offered_qps),
        None => "null".to_string(),
    }
}

fn curve_json(system: &str, curve: &SweepCurve) -> String {
    format!(
        "{{\"system\": \"{}\", \"policy\": \"{}\", \"saturation_qps\": {:.1}, \
         \"knee_qps\": {},\n      \"points\": [\n        {}\n      ]}}",
        system,
        curve.mode.name(),
        curve.saturation_qps,
        knee_json(curve.knee()),
        points_json(&curve.points)
    )
}

fn fleet_curve_json(curve: &FleetCurve) -> String {
    format!(
        "{{\"system\": \"{}\", \"nodes\": {}, \"placement\": \"{}\", \"router\": \"{}\", \
         \"saturation_qps\": {:.1}, \"knee_qps\": {},\n      \
         \"points\": [\n        {}\n      ]}}",
        curve.system,
        curve.nodes,
        curve.placement,
        curve.router,
        curve.saturation_qps,
        knee_json(curve.knee()),
        points_json(&curve.points)
    )
}

fn print_curve(label: &str, curve: &SweepCurve) {
    let knee = curve
        .knee()
        .map_or("none".to_string(), |p| format!("{:.0} qps", p.offered_qps));
    println!(
        "  {:<18} {:<18} saturation {:>12.0} qps  knee {}",
        label,
        curve.mode.name(),
        curve.saturation_qps,
        knee
    );
}

fn report_json(
    schema: &str,
    smoke: bool,
    spec: &SweepSpec,
    curves: &[(String, SweepCurve)],
) -> String {
    let shape = spec.shape;
    let rendered: Vec<String> = curves
        .iter()
        .map(|(system, c)| curve_json(system, c))
        .collect();
    format!(
        "{{\n  \"schema\": \"{schema}\",\n  \"mode\": \"{}\",\n  \
         \"arrival_process\": \"{}\",\n  \"seed\": {},\n  \
         \"shape\": {{\"tables\": {}, \"batch\": {}, \"pooling\": {}, \
         \"table_skew\": {:.2}, \"lookups_per_query\": {}}},\n  \
         \"queries_per_point\": {},\n  \"curves\": [\n    {}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        spec.process.name(),
        spec.seed,
        shape.tables,
        shape.batch,
        shape.pooling,
        shape.table_skew,
        shape.lookups_per_query(),
        spec.queries,
        rendered.join(",\n    ")
    )
}

/// Geometry of the tiering sweep: 16 tables of one million 128-byte rows
/// (2.048 GB total) over 4 DRAM channels + 2 SSD-class units, mirroring
/// the `fig_capacity` experiment.
const TIER_TABLES: usize = 16;
const TIER_TABLE_BYTES: u64 = 128_000_000;
const TIER_RATIOS: [(u64, u64, &str); 5] = [
    (1, 2, "0.5x"),
    (1, 1, "1x"),
    (2, 1, "2x"),
    (4, 1, "4x"),
    (8, 1, "8x"),
];

fn tiers_at(num: u64, den: u64) -> TierSpec {
    let footprint = TIER_TABLES as u64 * TIER_TABLE_BYTES;
    TierSpec {
        dram_channels: 4,
        dram_channel_capacity: ByteSize::bytes(footprint * den / (num * 4)),
        ssd_units: 2,
        ssd_unit_capacity: ByteSize::gib(4),
    }
}

/// The tiering report: like [`report_json`] but the shape object also
/// records the sampling/rotation parameters that define the capacity
/// workload, and each curve is labeled with its footprint ratio.
fn tiering_report_json(smoke: bool, spec: &SweepSpec, curves: &[(String, SweepCurve)]) -> String {
    let shape = spec.shape;
    let rendered: Vec<String> = curves
        .iter()
        .map(|(system, c)| curve_json(system, c))
        .collect();
    format!(
        "{{\n  \"schema\": \"recnmp-tiering/1\",\n  \"mode\": \"{}\",\n  \
         \"arrival_process\": \"{}\",\n  \"seed\": {},\n  \
         \"shape\": {{\"tables\": {}, \"batch\": {}, \"pooling\": {}, \
         \"table_skew\": {:.2}, \"skew_rotate\": {}, \"sample_tables\": {}, \
         \"lookups_per_query\": {}}},\n  \
         \"footprint_bytes\": {},\n  \"queries_per_point\": {},\n  \"curves\": [\n    {}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        spec.process.name(),
        spec.seed,
        shape.tables,
        shape.batch,
        shape.pooling,
        shape.table_skew,
        shape.skew_rotate,
        shape.sample_tables,
        shape.lookups_per_query(),
        TIER_TABLES as u64 * TIER_TABLE_BYTES,
        spec.queries,
        rendered.join(",\n    ")
    )
}

/// The fleet report: curves labeled by (nodes, placement, router), plus
/// the always-run node-1-vs-bare-cluster equality verdict.
fn fleet_report_json(
    smoke: bool,
    shape: QueryShape,
    queries_per_node: usize,
    node1_equals_cluster: bool,
    curves: &[FleetCurve],
) -> String {
    let rendered: Vec<String> = curves.iter().map(fleet_curve_json).collect();
    format!(
        "{{\n  \"schema\": \"recnmp-fleet/1\",\n  \"mode\": \"{}\",\n  \
         \"arrival_process\": \"poisson\",\n  \"seed\": {SEED},\n  \
         \"shape\": {{\"tables\": {}, \"batch\": {}, \"pooling\": {}, \
         \"table_skew\": {:.2}, \"sample_tables\": {}, \"lookups_per_query\": {}}},\n  \
         \"queries_per_node\": {queries_per_node},\n  \
         \"node1_equals_cluster\": {node1_equals_cluster},\n  \"curves\": [\n    {}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        shape.tables,
        shape.batch,
        shape.pooling,
        shape.table_skew,
        shape.sample_tables,
        shape.lookups_per_query(),
        rendered.join(",\n    ")
    )
}

/// One (nodes, placement) knee of a committed `BENCH_fleet.json`.
struct FleetBaselineEntry {
    nodes: usize,
    placement: String,
    knee_qps: f64,
}

/// Scans one string field inside the current JSON object (bounded at the
/// first `}`, which in a fleet curve closes the first *point*, well past
/// the scalar header fields).
fn scan_string(object: &str, field: &str) -> Option<String> {
    let key = format!("\"{field}\": \"");
    let at = object.find(&key)?;
    let tail = &object[at + key.len()..];
    tail.find('"').map(|end| tail[..end].to_string())
}

/// Scans one numeric field inside the current JSON object.
fn scan_number(object: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\": ");
    let at = object.find(&key)?;
    let tail = &object[at + key.len()..];
    let num: String = tail
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Extracts the mode and per-curve knees from a committed
/// `BENCH_fleet.json` without a JSON dependency: scans for the fields
/// [`fleet_report_json`] emits. Curves whose committed knee is `null`
/// (nothing sustained) are skipped — there is no rate to regress from.
fn parse_fleet_baseline(json: &str) -> (String, Vec<FleetBaselineEntry>) {
    let mode = scan_string(json, "mode").unwrap_or_default();
    let mut entries = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"nodes\": ") {
        rest = &rest[at..];
        let object = &rest[..rest.find('}').unwrap_or(rest.len())];
        if let (Some(nodes), Some(placement), Some(knee)) = (
            scan_number(object, "nodes"),
            scan_string(object, "placement"),
            scan_number(object, "knee_qps"),
        ) {
            entries.push(FleetBaselineEntry {
                nodes: nodes as usize,
                placement,
                knee_qps: knee,
            });
        }
        rest = &rest[9..];
    }
    (mode, entries)
}

/// Compares fresh fleet knees against the committed baseline; returns
/// failure messages. Every committed (nodes, placement) knee must still
/// be measured, and none may regress more than 30%.
fn check_fleet_baseline(baseline: &[FleetBaselineEntry], fresh: &[FleetCurve]) -> Vec<String> {
    const MAX_REGRESSION: f64 = 0.30;
    let mut failures = Vec::new();
    for b in baseline {
        let Some(curve) = fresh
            .iter()
            .find(|c| c.nodes == b.nodes && c.placement == b.placement)
        else {
            failures.push(format!(
                "{} @ {} node(s): in the committed baseline but no longer swept \
                 (regenerate the baseline deliberately)",
                b.placement, b.nodes
            ));
            continue;
        };
        let now = curve.knee().map_or(0.0, |p| p.offered_qps);
        if now < b.knee_qps * (1.0 - MAX_REGRESSION) {
            failures.push(format!(
                "{} @ {} node(s): knee {:.0} qps vs committed {:.0} ({:+.1}%)",
                b.placement,
                b.nodes,
                now,
                b.knee_qps,
                (now / b.knee_qps - 1.0) * 100.0
            ));
        }
    }
    failures
}

/// One cache-aware serving curve in JSON: like [`curve_json`] but keyed
/// by the arm label as well — two `cached-frequency` capacities share a
/// mode name, so the label is the stable identity baselines check
/// against.
fn caching_curve_json(arm: &str, curve: &SweepCurve) -> String {
    format!(
        "{{\"system\": \"recnmp-opt-cluster[4]\", \"arm\": \"{}\", \"policy\": \"{}\", \
         \"saturation_qps\": {:.1}, \"knee_qps\": {},\n      \"points\": [\n        {}\n      ]}}",
        arm,
        curve.mode.name(),
        curve.saturation_qps,
        knee_json(curve.knee()),
        points_json(&curve.points)
    )
}

/// The co-design verdict of a caching run: the largest co-designed arm
/// against the cache-less frequency baseline at the shared loads.
struct CachingVerdict {
    arm_knee: f64,
    baseline_knee: f64,
    arm_top_p99: Cycle,
    baseline_top_p99: Cycle,
}

impl CachingVerdict {
    const ARM: &'static str = "cached-frequency@1MiB";
    const BASELINE: &'static str = "sharded-frequency";

    fn from_curves(curves: &[(String, SweepCurve)]) -> Self {
        let find = |label: &str| {
            &curves
                .iter()
                .find(|(l, _)| l == label)
                .unwrap_or_else(|| panic!("caching arms missing {label}"))
                .1
        };
        let knee = |c: &SweepCurve| c.knee().map_or(0.0, |p| p.offered_qps);
        let top_p99 = |c: &SweepCurve| c.points.last().expect("swept points").summary.p99;
        let (arm, baseline) = (find(Self::ARM), find(Self::BASELINE));
        Self {
            arm_knee: knee(arm),
            baseline_knee: knee(baseline),
            arm_top_p99: top_p99(arm),
            baseline_top_p99: top_p99(baseline),
        }
    }

    /// The cache earns its capacity by moving the knee or the tail.
    fn wins(&self) -> bool {
        self.arm_knee > self.baseline_knee || self.arm_top_p99 < self.baseline_top_p99
    }

    fn json(&self) -> String {
        format!(
            "{{\"arm\": \"{}\", \"baseline\": \"{}\", \"arm_knee_qps\": {:.1}, \
             \"baseline_knee_qps\": {:.1}, \"arm_top_p99_cycles\": {}, \
             \"baseline_top_p99_cycles\": {}, \"wins\": {}}}",
            Self::ARM,
            Self::BASELINE,
            self.arm_knee,
            self.baseline_knee,
            self.arm_top_p99,
            self.baseline_top_p99,
            self.wins()
        )
    }
}

/// The caching report: curves keyed by arm label plus the always-run
/// co-design verdict.
fn caching_report_json(
    smoke: bool,
    spec: &SweepSpec,
    verdict: &CachingVerdict,
    curves: &[(String, SweepCurve)],
) -> String {
    let shape = spec.shape;
    let rendered: Vec<String> = curves
        .iter()
        .map(|(arm, c)| caching_curve_json(arm, c))
        .collect();
    format!(
        "{{\n  \"schema\": \"recnmp-caching/1\",\n  \"mode\": \"{}\",\n  \
         \"arrival_process\": \"{}\",\n  \"seed\": {},\n  \
         \"shape\": {{\"tables\": {}, \"batch\": {}, \"pooling\": {}, \
         \"table_skew\": {:.2}, \"row_skew\": {:.2}, \"lookups_per_query\": {}}},\n  \
         \"queries_per_point\": {},\n  \"co_design\": {},\n  \"curves\": [\n    {}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        spec.process.name(),
        spec.seed,
        shape.tables,
        shape.batch,
        shape.pooling,
        shape.table_skew,
        shape.row_skew,
        shape.lookups_per_query(),
        spec.queries,
        verdict.json(),
        rendered.join(",\n    ")
    )
}

/// One arm's knee of a committed `BENCH_caching.json`.
struct CachingBaselineEntry {
    arm: String,
    knee_qps: f64,
}

/// Extracts the mode and per-arm knees from a committed
/// `BENCH_caching.json`, scanning the fields [`caching_report_json`]
/// emits (same no-dependency scheme as [`parse_fleet_baseline`]; the
/// `co_design` object carries no `"arm": ` key-with-following-object, so
/// only curve objects match). Arms whose committed knee is `null` are
/// skipped.
fn parse_caching_baseline(json: &str) -> (String, Vec<CachingBaselineEntry>) {
    let mode = scan_string(json, "mode").unwrap_or_default();
    let mut entries = Vec::new();
    // Skip past the verdict object: curves follow the `"curves"` key.
    let mut rest = json.split("\"curves\"").nth(1).unwrap_or("");
    while let Some(at) = rest.find("\"arm\": ") {
        rest = &rest[at..];
        let object = &rest[..rest.find('}').unwrap_or(rest.len())];
        if let (Some(arm), Some(knee)) =
            (scan_string(object, "arm"), scan_number(object, "knee_qps"))
        {
            entries.push(CachingBaselineEntry {
                arm,
                knee_qps: knee,
            });
        }
        rest = &rest[7..];
    }
    (mode, entries)
}

/// Compares fresh caching knees against the committed baseline; returns
/// failure messages. Every committed arm must still be measured, and
/// none may regress more than 30%.
fn check_caching_baseline(
    baseline: &[CachingBaselineEntry],
    fresh: &[(String, SweepCurve)],
) -> Vec<String> {
    const MAX_REGRESSION: f64 = 0.30;
    let mut failures = Vec::new();
    for b in baseline {
        let Some((_, curve)) = fresh.iter().find(|(arm, _)| *arm == b.arm) else {
            failures.push(format!(
                "{}: in the committed baseline but no longer swept \
                 (regenerate the baseline deliberately)",
                b.arm
            ));
            continue;
        };
        let now = curve.knee().map_or(0.0, |p| p.offered_qps);
        if now < b.knee_qps * (1.0 - MAX_REGRESSION) {
            failures.push(format!(
                "{}: knee {:.0} qps vs committed {:.0} ({:+.1}%)",
                b.arm,
                now,
                b.knee_qps,
                (now / b.knee_qps - 1.0) * 100.0
            ));
        }
    }
    failures
}

/// The resilience sweep's seed — the same anchor as the
/// `fig_resilience` experiment, so the bench artifact and the committed
/// golden tell one story.
const RESILIENCE_SEED: u64 = 0x5e51_11e0;

/// Hedge column label of one resilience arm.
fn hedge_label(hedged: bool) -> &'static str {
    if hedged {
        "p95"
    } else {
        "off"
    }
}

/// The resilience report: the derived SLO anchors, the crash verdict,
/// and one entry per (fault level x placement x hedging) arm.
fn resilience_report_json(smoke: bool, spec: &ResilienceSpec, sweep: &ResilienceSweep) -> String {
    let shape = spec.shape;
    let arms: Vec<String> = sweep
        .arms
        .iter()
        .map(|a| {
            format!(
                "{{\"faults\": \"{}\", \"placement\": \"{}\", \"hedge\": \"{}\", \
                 \"availability\": {:.3}, \"pre_goodput\": {:.3}, \"post_goodput\": {:.3}, \
                 \"sustained\": {}, \"failovers\": {}, \"retries\": {}, \"hedges\": {}, \
                 \"rejected\": {}, \"shed\": {}, \"failed\": {}}}",
                a.faults,
                a.placement,
                hedge_label(a.hedged),
                a.availability,
                a.pre_goodput,
                a.post_goodput,
                a.sustained,
                a.report.report.failovers,
                a.report.report.retries,
                a.report.report.hedges,
                a.report.report.queries_rejected,
                a.report.report.queries_shed,
                a.report.report.queries_failed
            )
        })
        .collect();
    let verdict = format!(
        "{{\"arm\": \"fleet-replicated+p95\", \"baseline\": \"fleet-sharded+off\", \
         \"arm_goodput_ratio\": {:.3}, \"baseline_goodput_ratio\": {:.3}, \
         \"sustain_fraction\": {:.2}, \"sustained_through_crash\": {}, \
         \"baseline_collapsed\": {}}}",
        sweep.verdict_arm().goodput_ratio(),
        sweep.verdict_baseline().goodput_ratio(),
        sweep.sustain_fraction,
        sweep.verdict_arm().sustained,
        !sweep.verdict_baseline().sustained
    );
    format!(
        "{{\n  \"schema\": \"recnmp-resilience/1\",\n  \"mode\": \"{}\",\n  \
         \"arrival_process\": \"{}\",\n  \"seed\": {},\n  \
         \"shape\": {{\"tables\": {}, \"batch\": {}, \"pooling\": {}, \
         \"table_skew\": {:.2}, \"sample_tables\": {}, \"lookups_per_query\": {}}},\n  \
         \"queries\": {},\n  \"qps\": {:.1},\n  \"crashed_node\": {},\n  \
         \"crash_at_cycle\": {},\n  \"deadline_cycles\": {},\n  \
         \"verdict\": {},\n  \"arms\": [\n    {}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        spec.process.name(),
        spec.seed,
        shape.tables,
        shape.batch,
        shape.pooling,
        shape.table_skew,
        shape.sample_tables,
        shape.lookups_per_query(),
        spec.queries,
        spec.qps,
        sweep.crashed_node,
        sweep.crash_at,
        sweep.deadline,
        verdict,
        arms.join(",\n    ")
    )
}

/// One arm's post-fault goodput of a committed `BENCH_resilience.json`.
struct ResilienceBaselineEntry {
    faults: String,
    placement: String,
    hedge: String,
    post_goodput: f64,
}

/// Extracts the mode and per-arm post-fault goodputs from a committed
/// `BENCH_resilience.json`, scanning the fields
/// [`resilience_report_json`] emits (same no-dependency scheme as
/// [`parse_fleet_baseline`]; the verdict object carries no `"faults"`
/// key, so only arm objects match).
fn parse_resilience_baseline(json: &str) -> (String, Vec<ResilienceBaselineEntry>) {
    let mode = scan_string(json, "mode").unwrap_or_default();
    let mut entries = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"faults\": ") {
        rest = &rest[at..];
        let object = &rest[..rest.find('}').unwrap_or(rest.len())];
        if let (Some(faults), Some(placement), Some(hedge), Some(post)) = (
            scan_string(object, "faults"),
            scan_string(object, "placement"),
            scan_string(object, "hedge"),
            scan_number(object, "post_goodput"),
        ) {
            entries.push(ResilienceBaselineEntry {
                faults,
                placement,
                hedge,
                post_goodput: post,
            });
        }
        rest = &rest[10..];
    }
    (mode, entries)
}

/// Compares fresh post-fault goodputs against the committed baseline;
/// returns failure messages. Every committed arm must still be measured,
/// and none may lose more than 30% of its goodput.
fn check_resilience_baseline(
    baseline: &[ResilienceBaselineEntry],
    fresh: &ResilienceSweep,
) -> Vec<String> {
    const MAX_REGRESSION: f64 = 0.30;
    let mut failures = Vec::new();
    for b in baseline {
        let Some(arm) = fresh.arms.iter().find(|a| {
            a.faults == b.faults && a.placement == b.placement && hedge_label(a.hedged) == b.hedge
        }) else {
            failures.push(format!(
                "{}/{}/{}: in the committed baseline but no longer swept \
                 (regenerate the baseline deliberately)",
                b.faults, b.placement, b.hedge
            ));
            continue;
        };
        if arm.post_goodput < b.post_goodput * (1.0 - MAX_REGRESSION) {
            failures.push(format!(
                "{}/{}/{}: post-fault goodput {:.1}% vs committed {:.1}% ({:+.1}%)",
                b.faults,
                b.placement,
                b.hedge,
                100.0 * arm.post_goodput,
                100.0 * b.post_goodput,
                (arm.post_goodput / b.post_goodput - 1.0) * 100.0
            ));
        }
    }
    failures
}

/// Reads the committed copy of `path` from `git show HEAD:./path` — the
/// shared baseline source for local runs and CI.
fn git_show_head(path: &str) -> String {
    let output = std::process::Command::new("git")
        .args(["show", &format!("HEAD:./{path}")])
        .output()
        .unwrap_or_else(|e| panic!("running git show for {path}: {e}"));
    assert!(
        output.status.success(),
        "git show HEAD:./{path} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).unwrap_or_else(|e| panic!("HEAD:./{path} is not UTF-8: {e}"))
}

fn main() {
    let mut smoke = false;
    let mut placement = false;
    let mut tiering = false;
    let mut fleet = false;
    let mut caching = false;
    let mut resilience = false;
    let mut out: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut baseline_from_git = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--placement" => placement = true,
            "--tiering" => tiering = true,
            "--fleet" => fleet = true,
            "--caching" => caching = true,
            "--resilience" => resilience = true,
            "--workers" => {
                let n = args
                    .next()
                    .expect("--workers requires a count")
                    .parse()
                    .expect("--workers requires a positive integer");
                recnmp_exec::set_global_workers(n)
                    .unwrap_or_else(|e| panic!("pinning pool size: {e}"));
            }
            "--out" => out = Some(args.next().expect("--out requires a path")),
            "--baseline" => {
                baseline_path = Some(args.next().expect("--baseline requires a path"));
            }
            "--baseline-from-git" => baseline_from_git = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: serve_sweep [--smoke] [--placement] [--tiering] [--fleet] \
                     [--caching] [--resilience] [--workers N] [--out PATH] \
                     [--baseline PATH | --baseline-from-git]"
                );
                std::process::exit(2);
            }
        }
    }
    if (baseline_path.is_some() || baseline_from_git) && !(fleet || caching || resilience) {
        eprintln!(
            "--baseline/--baseline-from-git gate the fleet, caching and resilience \
             sweeps: add --fleet, --caching or --resilience"
        );
        std::process::exit(2);
    }
    println!(
        "execution engine: {} pool worker(s)",
        recnmp_exec::current().workers()
    );
    let base_shape = if smoke {
        QueryShape::new(2, 2, 8)
    } else {
        QueryShape::for_model(RecModelKind::Rm1Small, 4)
    };
    let (queries, probe) = if smoke { (24, 8) } else { (48, 12) };
    let utilizations: Vec<f64> = if smoke {
        vec![0.3, 0.6, 0.9, 1.2]
    } else {
        vec![0.2, 0.4, 0.6, 0.8, 1.0, 1.2]
    };

    // The fleet and caching paths keep their curves for the post-write
    // verdict and baseline gates.
    let mut fleet_outcome: Option<(Vec<FleetCurve>, bool)> = None;
    let mut caching_outcome: Option<(Vec<(String, SweepCurve)>, bool)> = None;
    let mut resilience_outcome: Option<ResilienceSweep> = None;
    let (json, out_path) = if resilience {
        // The fault-injection sweep on the 4-node reference fleet: the
        // same shapes, load and anchors as the `fig_resilience`
        // experiment at the matching scale, so the bench artifact and
        // the committed golden agree.
        let nodes = 4;
        let (shape, queries) = if smoke {
            (
                QueryShape::new(12, 2, 6)
                    .with_table_skew(1.2)
                    .with_table_sampling(3),
                64,
            )
        } else {
            (
                QueryShape::new(24, 4, 8)
                    .with_table_skew(1.2)
                    .with_table_sampling(4),
                256,
            )
        };
        let spec = ResilienceSpec {
            process: ArrivalProcess::Poisson,
            qps: 40_000.0 * nodes as f64,
            queries,
            shape,
            seed: RESILIENCE_SEED,
            deadline_p99_multiple: 3,
            sustain_fraction: 0.90,
            degrade_multiplier: 16,
        };
        println!(
            "serve_sweep resilience ({}): {nodes} reference nodes, {} tables \
             (skew {:.1}, sample {}) x batch {} = {} lookups/query, \
             {} queries at {:.0} qps",
            if smoke { "smoke" } else { "full" },
            shape.tables,
            shape.table_skew,
            shape.sample_tables,
            shape.batch,
            shape.lookups_per_query(),
            spec.queries,
            spec.qps
        );
        let mut make = move || Fleet::reference(nodes);
        let sweep = resilience_sweep(&mut make, &spec)
            .unwrap_or_else(|e| panic!("resilience sweep failed: {e}"));
        println!(
            "  SLO deadline {} cycles (3x fault-free p99 {}), node {} crashes at cycle {}",
            sweep.deadline, sweep.baseline_p99, sweep.crashed_node, sweep.crash_at
        );
        for a in &sweep.arms {
            println!(
                "  {:<10} {:<18} hedge {}  avail {:.2}  goodput {:>5.1}% -> {:>5.1}%  {}",
                a.faults,
                a.placement,
                hedge_label(a.hedged),
                a.availability,
                100.0 * a.pre_goodput,
                100.0 * a.post_goodput,
                if a.sustained {
                    "sustained"
                } else {
                    "collapsed"
                }
            );
        }
        println!(
            "  verdict: through the crash, replicated+p95 keeps {:.1}% of pre-fault \
             goodput, sharded keeps {:.1}% — {}",
            100.0 * sweep.verdict_arm().goodput_ratio(),
            100.0 * sweep.verdict_baseline().goodput_ratio(),
            if sweep.verdict_holds() {
                "holds"
            } else {
                "BROKEN"
            }
        );
        let json = resilience_report_json(smoke, &spec, &sweep);
        resilience_outcome = Some(sweep);
        (
            json,
            out.unwrap_or_else(|| "BENCH_resilience.json".to_string()),
        )
    } else if caching {
        // The cache-aware arms on the RecNMP-opt cluster: the row streams
        // are hotter than the reference workload (Zipf 1.2) so a bounded
        // host cache sees real repeat traffic — the same shapes as the
        // `fig_cache_serving` experiment at the matching scale.
        let shape = if smoke {
            QueryShape::reference_skewed().with_row_skew(1.2)
        } else {
            QueryShape::for_model(RecModelKind::Rm1Small, 4)
                .with_table_skew(1.5)
                .with_row_skew(1.2)
        };
        let spec = SweepSpec {
            process: ArrivalProcess::Poisson,
            shape,
            utilizations,
            queries,
            probe_queries: probe,
            seed: SEED,
        };
        let arms = reference_caching_arms();
        println!(
            "serve_sweep caching ({}): {} tables (skew {:.1}, row skew {:.1}) x batch {} = \
             {} lookups/query, {} queries/point, {} arms x {} load points",
            if smoke { "smoke" } else { "full" },
            shape.tables,
            shape.table_skew,
            shape.row_skew,
            shape.batch,
            shape.lookups_per_query(),
            spec.queries,
            arms.len(),
            spec.utilizations.len()
        );
        let modes: Vec<ServingMode> = arms.iter().map(|(_, m)| *m).collect();
        let curves = caching_sweep(&mut reference_cluster4_optimized, modes[0], &modes, &spec)
            .unwrap_or_else(|e| panic!("caching sweep failed: {e}"));
        let labeled: Vec<(String, SweepCurve)> = arms
            .into_iter()
            .map(|(label, _)| label)
            .zip(curves)
            .collect();
        for (label, c) in &labeled {
            print_curve(label, c);
        }
        let verdict = CachingVerdict::from_curves(&labeled);
        println!(
            "  co-design: {} knee {:.0} vs {} knee {:.0} qps, top p99 {} vs {} cycles — {}",
            CachingVerdict::ARM,
            verdict.arm_knee,
            CachingVerdict::BASELINE,
            verdict.baseline_knee,
            verdict.arm_top_p99,
            verdict.baseline_top_p99,
            if verdict.wins() { "wins" } else { "LOSES" }
        );
        let json = caching_report_json(smoke, &spec, &verdict, &labeled);
        let wins = verdict.wins();
        caching_outcome = Some((labeled, wins));
        (
            json,
            out.unwrap_or_else(|| "BENCH_caching.json".to_string()),
        )
    } else if fleet {
        // The full-scale shape must carry enough distinct tables to keep
        // all 64 channels of the 16-node fleet busy (128 single-copy
        // tables over 64 channels), and must replicate enough of the
        // Zipf head that no single-copy table's channel caps the fleet.
        let (shape, hot_tables) = if smoke {
            (
                QueryShape::new(12, 2, 6)
                    .with_table_skew(1.2)
                    .with_table_sampling(3),
                2,
            )
        } else {
            (
                QueryShape::new(128, 4, 8)
                    .with_table_skew(1.2)
                    .with_table_sampling(4),
                8,
            )
        };
        let node_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8, 16] };
        let (queries_per_node, probe_per_node) = if smoke { (24, 10) } else { (48, 16) };
        let fleet_utilizations: Vec<f64> = if smoke {
            vec![0.4, 0.8, 1.2]
        } else {
            vec![0.3, 0.5, 0.7, 0.9, 1.1, 1.3]
        };
        let dispatches = [
            FleetDispatch::replicated(hot_tables),
            FleetDispatch::sharded(),
        ];
        println!(
            "serve_sweep fleet ({}): {} tables (skew {:.1}, sample {}) x batch {} = \
             {} lookups/query, {queries_per_node}x nodes queries/point, \
             {} node counts x {} load points",
            if smoke { "smoke" } else { "full" },
            shape.tables,
            shape.table_skew,
            shape.sample_tables,
            shape.batch,
            shape.lookups_per_query(),
            node_counts.len(),
            fleet_utilizations.len()
        );
        let mut curves: Vec<FleetCurve> = Vec::new();
        let mut node1_equal = false;
        for &nodes in node_counts {
            let spec = SweepSpec {
                process: ArrivalProcess::Poisson,
                shape,
                utilizations: fleet_utilizations.clone(),
                queries: queries_per_node * nodes,
                probe_queries: probe_per_node * nodes,
                seed: SEED,
            };
            let mut make = move || Fleet::reference(nodes);
            let swept = fleet_sweep(&mut make, &dispatches, &spec)
                .unwrap_or_else(|e| panic!("fleet sweep at {nodes} node(s) failed: {e}"));
            if nodes == 1 {
                // The router-costs-nothing invariant: the 1-node fleet's
                // sharded curve must exactly equal the bare cluster
                // under the same sharded dispatch, anchor and loads.
                let sharded = &swept[1];
                let offered: Vec<f64> = sharded.points.iter().map(|p| p.offered_qps).collect();
                let mode = ServingMode::Sharded(ShardedDispatch {
                    placement: dispatches[1].within_policy,
                    gather: dispatches[1].gather,
                    channel_capacity: dispatches[1].channel_capacity,
                    host_cache: None,
                    prefetch: None,
                });
                let cluster_curve = qps_sweep_at(
                    &mut reference_cluster4,
                    mode,
                    spec.process,
                    spec.shape,
                    sharded.saturation_qps,
                    &offered,
                    spec.queries,
                    spec.seed,
                )
                .unwrap_or_else(|e| panic!("bare-cluster equality sweep failed: {e}"));
                node1_equal = sharded.points == cluster_curve.points;
                println!(
                    "  node-1 fleet vs bare cluster: {}",
                    if node1_equal { "identical" } else { "DIVERGED" }
                );
            }
            for c in &swept {
                let knee = c
                    .knee()
                    .map_or("none".to_string(), |p| format!("{:.0} qps", p.offered_qps));
                println!(
                    "  {:<28} {:<22} saturation {:>12.0} qps  knee {}",
                    c.system, c.placement, c.saturation_qps, knee
                );
            }
            curves.extend(swept);
        }
        let json = fleet_report_json(smoke, shape, queries_per_node, node1_equal, &curves);
        fleet_outcome = Some((curves, node1_equal));
        (json, out.unwrap_or_else(|| "BENCH_fleet.json".to_string()))
    } else if tiering {
        // The capacity workload of `fig_capacity`: each query samples 4
        // of 16 tables under Zipf-1.5 weights with the hot ranks strided
        // across the id space (stride 5, coprime to 16).
        let shape = if smoke {
            QueryShape::new(TIER_TABLES, 2, 4)
        } else {
            QueryShape::new(TIER_TABLES, 4, 8)
        }
        .with_table_skew(1.5)
        .with_skew_rotation(5)
        .with_table_sampling(4);
        let spec = SweepSpec {
            process: ArrivalProcess::Poisson,
            shape,
            utilizations,
            queries: if smoke { 14 } else { queries },
            probe_queries: if smoke { 6 } else { probe },
            seed: SEED,
        };
        println!(
            "serve_sweep tiering ({}): {} tables (skew {:.1}, sample {}) x batch {} = \
             {} lookups/query, {} queries/point, {} ratios x {} load points",
            if smoke { "smoke" } else { "full" },
            shape.tables,
            shape.table_skew,
            shape.sample_tables,
            shape.batch,
            shape.lookups_per_query(),
            spec.queries,
            TIER_RATIOS.len(),
            spec.utilizations.len()
        );
        let mut labeled: Vec<(String, SweepCurve)> = Vec::new();
        for (num, den, ratio) in TIER_RATIOS {
            let tiers = tiers_at(num, den);
            let mut factory = || reference_tiered(tiers);
            let curves = tiered_sweep(
                &mut factory,
                &TieredPolicy::COMPARED,
                GatherCost::host_default(),
                tiers,
                &spec,
            )
            .unwrap_or_else(|e| panic!("tiered sweep at {ratio} failed: {e}"));
            for c in curves {
                labeled.push((format!("tiered[4+2]@{ratio}"), c));
            }
        }
        for (label, c) in &labeled {
            print_curve(label, c);
        }
        (
            tiering_report_json(smoke, &spec, &labeled),
            out.unwrap_or_else(|| "BENCH_tiering.json".to_string()),
        )
    } else if placement {
        let shape = if smoke {
            QueryShape::reference_skewed()
        } else {
            base_shape.with_table_skew(1.5)
        };
        let spec = SweepSpec {
            process: ArrivalProcess::Poisson,
            shape,
            utilizations,
            queries,
            probe_queries: probe,
            seed: SEED,
        };
        println!(
            "serve_sweep placement ({}): {} tables (skew {:.1}) x batch {} = {} lookups/query, \
             {} queries/point, {} load points",
            if smoke { "smoke" } else { "full" },
            shape.tables,
            shape.table_skew,
            shape.batch,
            shape.lookups_per_query(),
            spec.queries,
            spec.utilizations.len()
        );
        let curves = placement_sweep(
            &mut reference_cluster4,
            &PlacementPolicy::COMPARED,
            GatherCost::host_default(),
            Some(reference_channel_capacity()),
            &spec,
        )
        .unwrap_or_else(|e| panic!("placement sweep failed: {e}"));
        let labeled: Vec<(String, SweepCurve)> = curves
            .into_iter()
            .map(|c| ("recnmp-cluster[4]".to_string(), c))
            .collect();
        for (label, c) in &labeled {
            print_curve(label, c);
        }
        (
            report_json("recnmp-placement/1", smoke, &spec, &labeled),
            out.unwrap_or_else(|| "BENCH_placement.json".to_string()),
        )
    } else {
        let spec = SweepSpec {
            process: ArrivalProcess::Poisson,
            shape: base_shape,
            utilizations,
            queries,
            probe_queries: probe,
            seed: SEED,
        };
        println!(
            "serve_sweep ({}): {} tables x batch {} x pooling {} = {} lookups/query, \
             {} queries/point, {} load points",
            if smoke { "smoke" } else { "full" },
            base_shape.tables,
            base_shape.batch,
            base_shape.pooling,
            base_shape.lookups_per_query(),
            spec.queries,
            spec.utilizations.len()
        );
        let mut backends: NamedFactories<'_> = vec![
            (
                "host",
                Box::new(|| Box::new(HostBaseline::new(4, 2).expect("host config"))),
            ),
            (
                "tensordimm",
                Box::new(|| Box::new(TensorDimm::new(4, 2).expect("tensordimm config"))),
            ),
            ("recnmp-cluster[4]", Box::new(reference_cluster4)),
        ];
        let modes: Vec<ServingMode> = DispatchPolicy::ALL
            .iter()
            .map(|&p| ServingMode::Queued(p))
            .collect();
        let curves = sweep_matrix(&mut backends, &modes, &spec)
            .unwrap_or_else(|e| panic!("serving sweep failed: {e}"));
        let labeled: Vec<(String, SweepCurve)> = curves
            .into_iter()
            .map(|lc| (lc.backend, lc.curve))
            .collect();
        for (label, c) in &labeled {
            print_curve(label, c);
        }
        (
            // Schema /2: the shape object gained `table_skew`.
            report_json("recnmp-serving/2", smoke, &spec, &labeled),
            out.unwrap_or_else(|| "BENCH_serving.json".to_string()),
        )
    };

    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    if let Some(sweep) = resilience_outcome {
        if !sweep.verdict_holds() {
            eprintln!(
                "resilience verdict broken: replicated+p95 must keep >= {:.0}% of its \
                 pre-crash goodput through the node crash while sharded placement \
                 collapses (see {out_path} for every arm's outcome)",
                100.0 * sweep.sustain_fraction
            );
            std::process::exit(1);
        }
        let committed = match (baseline_path, baseline_from_git) {
            (Some(path), _) => Some((
                std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}")),
                path,
            )),
            (None, true) => Some((git_show_head(&out_path), format!("HEAD:./{out_path}"))),
            (None, false) => None,
        };
        if let Some((json, source)) = committed {
            let (mode, entries) = parse_resilience_baseline(&json);
            assert!(!entries.is_empty(), "no resilience arms found in {source}");
            let fresh_mode = if smoke { "smoke" } else { "full" };
            if mode != fresh_mode {
                eprintln!(
                    "baseline {source} was measured in {mode:?} mode but this run is \
                     {fresh_mode:?}; goodputs differ across workload sizes, so the \
                     comparison would be meaningless"
                );
                std::process::exit(1);
            }
            let failures = check_resilience_baseline(&entries, &sweep);
            if failures.is_empty() {
                println!("baseline check vs {source}: ok (>30% goodput regression gate)");
            } else {
                eprintln!("post-fault goodput regressed >30% vs {source}:");
                for f in &failures {
                    eprintln!("  {f}");
                }
                std::process::exit(1);
            }
        }
        return;
    }

    if let Some((caching_curves, wins)) = caching_outcome {
        if !wins {
            eprintln!(
                "cache/placement co-design lost to the bare frequency baseline: \
                 {} must lift the knee or cut the top-load p99 vs {} (see {out_path})",
                CachingVerdict::ARM,
                CachingVerdict::BASELINE
            );
            std::process::exit(1);
        }
        let committed = match (baseline_path, baseline_from_git) {
            (Some(path), _) => Some((
                std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}")),
                path,
            )),
            (None, true) => Some((git_show_head(&out_path), format!("HEAD:./{out_path}"))),
            (None, false) => None,
        };
        if let Some((json, source)) = committed {
            let (mode, entries) = parse_caching_baseline(&json);
            assert!(!entries.is_empty(), "no caching knees found in {source}");
            let fresh_mode = if smoke { "smoke" } else { "full" };
            if mode != fresh_mode {
                eprintln!(
                    "baseline {source} was measured in {mode:?} mode but this run is \
                     {fresh_mode:?}; knees differ across workload sizes, so the \
                     comparison would be meaningless"
                );
                std::process::exit(1);
            }
            let failures = check_caching_baseline(&entries, &caching_curves);
            if failures.is_empty() {
                println!("baseline check vs {source}: ok (>30% knee regression gate)");
            } else {
                eprintln!("caching knee QPS regressed >30% vs {source}:");
                for f in &failures {
                    eprintln!("  {f}");
                }
                std::process::exit(1);
            }
        }
        return;
    }

    let Some((fleet_curves, node1_equal)) = fleet_outcome else {
        return;
    };
    if !node1_equal {
        eprintln!(
            "node-1 fleet diverged from the bare cluster: the router layer must be \
             free at one node (see {out_path} for both curves' operating points)"
        );
        std::process::exit(1);
    }
    let committed = match (baseline_path, baseline_from_git) {
        (Some(path), _) => Some((
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}")),
            path,
        )),
        (None, true) => Some((git_show_head(&out_path), format!("HEAD:./{out_path}"))),
        (None, false) => None,
    };
    if let Some((json, source)) = committed {
        let (mode, entries) = parse_fleet_baseline(&json);
        assert!(!entries.is_empty(), "no fleet knees found in {source}");
        let fresh_mode = if smoke { "smoke" } else { "full" };
        if mode != fresh_mode {
            eprintln!(
                "baseline {source} was measured in {mode:?} mode but this run is \
                 {fresh_mode:?}; knees differ across workload sizes, so the \
                 comparison would be meaningless"
            );
            std::process::exit(1);
        }
        let failures = check_fleet_baseline(&entries, &fleet_curves);
        if failures.is_empty() {
            println!("baseline check vs {source}: ok (>30% knee regression gate)");
        } else {
            eprintln!("fleet knee QPS regressed >30% vs {source}:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}
