//! Query-serving benchmark: throughput–latency curves for every backend
//! and dispatch policy under open-loop Poisson load. Emits
//! `BENCH_serving.json` so tail-latency behaviour has a trajectory across
//! PRs, next to `BENCH_throughput.json`'s simulator-speed trajectory.
//!
//! ```text
//! cargo run -p recnmp-bench --release --bin serve_sweep -- [--smoke] [--out PATH]
//! ```
//!
//! * `--smoke` shrinks queries/points for CI (seconds instead of minutes).
//! * `--out`   output path (default `BENCH_serving.json`).
//!
//! Measured systems: the host DRAM baseline, TensorDIMM, and a 4-channel
//! `RecNmpCluster`, each under FIFO single-queue, round-robin, and
//! least-outstanding dispatch. Offered loads are fractions of each
//! system's probed saturation rate, so every curve samples its own knee.

use recnmp::{RecNmpCluster, RecNmpClusterConfig};
use recnmp_baselines::{HostBaseline, TensorDimm};
use recnmp_model::RecModelKind;
use recnmp_sim::serving::{qps_sweep, ArrivalProcess, DispatchPolicy, QueryShape, SweepCurve};

const SEED: u64 = 0x5e12_2026;

/// Labeled backend factories the sweep iterates over.
type NamedFactories<'a> = Vec<(&'a str, Box<recnmp_sim::serving::BackendFactory<'a>>)>;

fn curve_json(curve: &SweepCurve) -> String {
    let points: Vec<String> = curve
        .points
        .iter()
        .map(|p| {
            let (p50, p95, p99) = p.summary.percentiles_us();
            format!(
                "{{\"offered_qps\": {:.1}, \"utilization\": {:.2}, \"achieved_qps\": {:.1}, \
                 \"p50_us\": {:.3}, \"p95_us\": {:.3}, \"p99_us\": {:.3}, \
                 \"mean_us\": {:.3}, \"max_us\": {:.3}, \"sustained\": {}}}",
                p.offered_qps,
                p.utilization,
                p.achieved_qps,
                p50,
                p95,
                p99,
                p.summary.mean * recnmp_types::units::DDR4_2400_CYCLE_SECS * 1e6,
                recnmp_types::units::cycles_to_us(p.summary.max),
                p.sustained()
            )
        })
        .collect();
    let knee = match curve.knee() {
        Some(p) => format!("{:.1}", p.offered_qps),
        None => "null".to_string(),
    };
    format!(
        "{{\"system\": \"{}\", \"policy\": \"{}\", \"saturation_qps\": {:.1}, \
         \"knee_qps\": {},\n      \"points\": [\n        {}\n      ]}}",
        curve.system,
        curve.policy.name(),
        curve.saturation_qps,
        knee,
        points.join(",\n        ")
    )
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_serving.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: serve_sweep [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let shape = if smoke {
        QueryShape::new(2, 2, 8)
    } else {
        QueryShape::for_model(RecModelKind::Rm1Small, 4)
    };
    let (queries, probe) = if smoke { (24, 8) } else { (48, 12) };
    let utilizations: &[f64] = if smoke {
        &[0.3, 0.6, 0.9, 1.2]
    } else {
        &[0.2, 0.4, 0.6, 0.8, 1.0, 1.2]
    };

    println!(
        "serve_sweep ({}): {} tables x batch {} x pooling {} = {} lookups/query, \
         {} queries/point, {} load points",
        if smoke { "smoke" } else { "full" },
        shape.tables,
        shape.batch,
        shape.pooling,
        shape.lookups_per_query(),
        queries,
        utilizations.len()
    );

    let mut backends: NamedFactories<'_> = vec![
        (
            "host",
            Box::new(|| Box::new(HostBaseline::new(4, 2).expect("host config"))),
        ),
        (
            "tensordimm",
            Box::new(|| Box::new(TensorDimm::new(4, 2).expect("tensordimm config"))),
        ),
        (
            "recnmp-cluster[4]",
            Box::new(|| {
                let config = RecNmpClusterConfig::builder()
                    .channels(4)
                    .dimms(1)
                    .ranks_per_dimm(2)
                    .build()
                    .expect("cluster config");
                Box::new(RecNmpCluster::new(config).expect("valid cluster"))
            }),
        ),
    ];

    let mut curves = Vec::new();
    for (label, factory) in backends.iter_mut() {
        for policy in DispatchPolicy::ALL {
            let curve = qps_sweep(
                factory.as_mut(),
                policy,
                ArrivalProcess::Poisson,
                shape,
                utilizations,
                queries,
                probe,
                SEED,
            )
            .unwrap_or_else(|e| panic!("{label}/{} sweep stalled: {e}", policy.name()));
            let knee = curve
                .knee()
                .map_or("none".to_string(), |p| format!("{:.0} qps", p.offered_qps));
            println!(
                "  {:<18} {:<18} saturation {:>12.0} qps  knee {}",
                label,
                policy.name(),
                curve.saturation_qps,
                knee
            );
            curves.push(curve);
        }
    }

    let curve_json: Vec<String> = curves.iter().map(curve_json).collect();
    let json = format!(
        "{{\n  \"schema\": \"recnmp-serving/1\",\n  \"mode\": \"{}\",\n  \
         \"arrival_process\": \"{}\",\n  \"seed\": {},\n  \
         \"shape\": {{\"tables\": {}, \"batch\": {}, \"pooling\": {}, \"lookups_per_query\": {}}},\n  \
         \"queries_per_point\": {},\n  \"curves\": [\n    {}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        ArrivalProcess::Poisson.name(),
        SEED,
        shape.tables,
        shape.batch,
        shape.pooling,
        shape.lookups_per_query(),
        queries,
        curve_json.join(",\n    ")
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}
