//! Query-serving benchmark: throughput–latency curves for every backend
//! and dispatch policy under open-loop Poisson load. Emits
//! `BENCH_serving.json` so tail-latency behaviour has a trajectory across
//! PRs, next to `BENCH_throughput.json`'s simulator-speed trajectory.
//!
//! ```text
//! cargo run -p recnmp-bench --release --bin serve_sweep -- \
//!     [--smoke] [--placement] [--tiering] [--workers N] [--out PATH]
//! ```
//!
//! * `--smoke` shrinks queries/points for CI (seconds instead of minutes).
//! * `--workers N` pins the execution-engine pool size (default: the
//!   `RECNMP_WORKERS` environment variable, else `available_parallelism`);
//!   sweep load points parallelize across the pool with byte-identical
//!   curves at any count.
//! * `--placement` run the placement comparison instead: sharded
//!   scatter/gather serving on the 4-channel cluster under hash /
//!   capacity-greedy / frequency-balanced placement with skewed
//!   per-table traffic, all at the same absolute offered loads (default
//!   out `BENCH_placement.json`).
//! * `--tiering` run the capacity-tiered comparison instead: tiered
//!   scatter/gather serving over 4 DRAM channels + 2 SSD-class units
//!   under hash vs frequency-tiered placement, with the footprint/DRAM
//!   ratio swept 0.5x–8x (default out `BENCH_tiering.json`).
//! * `--out` output path.
//!
//! All paths drive the shared sweep library
//! (`recnmp_sim::serving::{sweep_matrix, placement_sweep, tiered_sweep}`),
//! the same entry points the experiment harness uses — the binary only
//! renders JSON.

use recnmp_backend::PlacementPolicy;
use recnmp_baselines::{HostBaseline, TensorDimm};
use recnmp_model::RecModelKind;
use recnmp_sim::serving::{
    placement_sweep, reference_channel_capacity, reference_cluster4, reference_tiered,
    sweep_matrix, tiered_sweep, ArrivalProcess, DispatchPolicy, GatherCost, NamedFactories,
    QueryShape, ServingMode, SweepCurve, SweepSpec, TierSpec, TieredPolicy,
};
use recnmp_types::ByteSize;

const SEED: u64 = 0x5e12_2026;

fn curve_json(system: &str, curve: &SweepCurve) -> String {
    let points: Vec<String> = curve
        .points
        .iter()
        .map(|p| {
            let (p50, p95, p99) = p.summary.percentiles_us();
            format!(
                "{{\"offered_qps\": {:.1}, \"utilization\": {:.2}, \"achieved_qps\": {:.1}, \
                 \"p50_us\": {:.3}, \"p95_us\": {:.3}, \"p99_us\": {:.3}, \
                 \"mean_us\": {:.3}, \"max_us\": {:.3}, \"sustained\": {}}}",
                p.offered_qps,
                p.utilization,
                p.achieved_qps,
                p50,
                p95,
                p99,
                p.summary.mean * recnmp_types::units::DDR4_2400_CYCLE_SECS * 1e6,
                recnmp_types::units::cycles_to_us(p.summary.max),
                p.sustained()
            )
        })
        .collect();
    let knee = match curve.knee() {
        Some(p) => format!("{:.1}", p.offered_qps),
        None => "null".to_string(),
    };
    format!(
        "{{\"system\": \"{}\", \"policy\": \"{}\", \"saturation_qps\": {:.1}, \
         \"knee_qps\": {},\n      \"points\": [\n        {}\n      ]}}",
        system,
        curve.mode.name(),
        curve.saturation_qps,
        knee,
        points.join(",\n        ")
    )
}

fn print_curve(label: &str, curve: &SweepCurve) {
    let knee = curve
        .knee()
        .map_or("none".to_string(), |p| format!("{:.0} qps", p.offered_qps));
    println!(
        "  {:<18} {:<18} saturation {:>12.0} qps  knee {}",
        label,
        curve.mode.name(),
        curve.saturation_qps,
        knee
    );
}

fn report_json(
    schema: &str,
    smoke: bool,
    spec: &SweepSpec,
    curves: &[(String, SweepCurve)],
) -> String {
    let shape = spec.shape;
    let rendered: Vec<String> = curves
        .iter()
        .map(|(system, c)| curve_json(system, c))
        .collect();
    format!(
        "{{\n  \"schema\": \"{schema}\",\n  \"mode\": \"{}\",\n  \
         \"arrival_process\": \"{}\",\n  \"seed\": {},\n  \
         \"shape\": {{\"tables\": {}, \"batch\": {}, \"pooling\": {}, \
         \"table_skew\": {:.2}, \"lookups_per_query\": {}}},\n  \
         \"queries_per_point\": {},\n  \"curves\": [\n    {}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        spec.process.name(),
        spec.seed,
        shape.tables,
        shape.batch,
        shape.pooling,
        shape.table_skew,
        shape.lookups_per_query(),
        spec.queries,
        rendered.join(",\n    ")
    )
}

/// Geometry of the tiering sweep: 16 tables of one million 128-byte rows
/// (2.048 GB total) over 4 DRAM channels + 2 SSD-class units, mirroring
/// the `fig_capacity` experiment.
const TIER_TABLES: usize = 16;
const TIER_TABLE_BYTES: u64 = 128_000_000;
const TIER_RATIOS: [(u64, u64, &str); 5] = [
    (1, 2, "0.5x"),
    (1, 1, "1x"),
    (2, 1, "2x"),
    (4, 1, "4x"),
    (8, 1, "8x"),
];

fn tiers_at(num: u64, den: u64) -> TierSpec {
    let footprint = TIER_TABLES as u64 * TIER_TABLE_BYTES;
    TierSpec {
        dram_channels: 4,
        dram_channel_capacity: ByteSize::bytes(footprint * den / (num * 4)),
        ssd_units: 2,
        ssd_unit_capacity: ByteSize::gib(4),
    }
}

/// The tiering report: like [`report_json`] but the shape object also
/// records the sampling/rotation parameters that define the capacity
/// workload, and each curve is labeled with its footprint ratio.
fn tiering_report_json(smoke: bool, spec: &SweepSpec, curves: &[(String, SweepCurve)]) -> String {
    let shape = spec.shape;
    let rendered: Vec<String> = curves
        .iter()
        .map(|(system, c)| curve_json(system, c))
        .collect();
    format!(
        "{{\n  \"schema\": \"recnmp-tiering/1\",\n  \"mode\": \"{}\",\n  \
         \"arrival_process\": \"{}\",\n  \"seed\": {},\n  \
         \"shape\": {{\"tables\": {}, \"batch\": {}, \"pooling\": {}, \
         \"table_skew\": {:.2}, \"skew_rotate\": {}, \"sample_tables\": {}, \
         \"lookups_per_query\": {}}},\n  \
         \"footprint_bytes\": {},\n  \"queries_per_point\": {},\n  \"curves\": [\n    {}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        spec.process.name(),
        spec.seed,
        shape.tables,
        shape.batch,
        shape.pooling,
        shape.table_skew,
        shape.skew_rotate,
        shape.sample_tables,
        shape.lookups_per_query(),
        TIER_TABLES as u64 * TIER_TABLE_BYTES,
        spec.queries,
        rendered.join(",\n    ")
    )
}

fn main() {
    let mut smoke = false;
    let mut placement = false;
    let mut tiering = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--placement" => placement = true,
            "--tiering" => tiering = true,
            "--workers" => {
                let n = args
                    .next()
                    .expect("--workers requires a count")
                    .parse()
                    .expect("--workers requires a positive integer");
                recnmp_exec::set_global_workers(n)
                    .unwrap_or_else(|e| panic!("pinning pool size: {e}"));
            }
            "--out" => out = Some(args.next().expect("--out requires a path")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: serve_sweep [--smoke] [--placement] [--tiering] \
                     [--workers N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    println!(
        "execution engine: {} pool worker(s)",
        recnmp_exec::current().workers()
    );
    let base_shape = if smoke {
        QueryShape::new(2, 2, 8)
    } else {
        QueryShape::for_model(RecModelKind::Rm1Small, 4)
    };
    let (queries, probe) = if smoke { (24, 8) } else { (48, 12) };
    let utilizations: Vec<f64> = if smoke {
        vec![0.3, 0.6, 0.9, 1.2]
    } else {
        vec![0.2, 0.4, 0.6, 0.8, 1.0, 1.2]
    };

    let (json, out_path) = if tiering {
        // The capacity workload of `fig_capacity`: each query samples 4
        // of 16 tables under Zipf-1.5 weights with the hot ranks strided
        // across the id space (stride 5, coprime to 16).
        let shape = if smoke {
            QueryShape::new(TIER_TABLES, 2, 4)
        } else {
            QueryShape::new(TIER_TABLES, 4, 8)
        }
        .with_table_skew(1.5)
        .with_skew_rotation(5)
        .with_table_sampling(4);
        let spec = SweepSpec {
            process: ArrivalProcess::Poisson,
            shape,
            utilizations,
            queries: if smoke { 14 } else { queries },
            probe_queries: if smoke { 6 } else { probe },
            seed: SEED,
        };
        println!(
            "serve_sweep tiering ({}): {} tables (skew {:.1}, sample {}) x batch {} = \
             {} lookups/query, {} queries/point, {} ratios x {} load points",
            if smoke { "smoke" } else { "full" },
            shape.tables,
            shape.table_skew,
            shape.sample_tables,
            shape.batch,
            shape.lookups_per_query(),
            spec.queries,
            TIER_RATIOS.len(),
            spec.utilizations.len()
        );
        let mut labeled: Vec<(String, SweepCurve)> = Vec::new();
        for (num, den, ratio) in TIER_RATIOS {
            let tiers = tiers_at(num, den);
            let mut factory = || reference_tiered(tiers);
            let curves = tiered_sweep(
                &mut factory,
                &TieredPolicy::COMPARED,
                GatherCost::host_default(),
                tiers,
                &spec,
            )
            .unwrap_or_else(|e| panic!("tiered sweep at {ratio} failed: {e}"));
            for c in curves {
                labeled.push((format!("tiered[4+2]@{ratio}"), c));
            }
        }
        for (label, c) in &labeled {
            print_curve(label, c);
        }
        (
            tiering_report_json(smoke, &spec, &labeled),
            out.unwrap_or_else(|| "BENCH_tiering.json".to_string()),
        )
    } else if placement {
        let shape = if smoke {
            QueryShape::reference_skewed()
        } else {
            base_shape.with_table_skew(1.5)
        };
        let spec = SweepSpec {
            process: ArrivalProcess::Poisson,
            shape,
            utilizations,
            queries,
            probe_queries: probe,
            seed: SEED,
        };
        println!(
            "serve_sweep placement ({}): {} tables (skew {:.1}) x batch {} = {} lookups/query, \
             {} queries/point, {} load points",
            if smoke { "smoke" } else { "full" },
            shape.tables,
            shape.table_skew,
            shape.batch,
            shape.lookups_per_query(),
            spec.queries,
            spec.utilizations.len()
        );
        let curves = placement_sweep(
            &mut reference_cluster4,
            &PlacementPolicy::COMPARED,
            GatherCost::host_default(),
            Some(reference_channel_capacity()),
            &spec,
        )
        .unwrap_or_else(|e| panic!("placement sweep failed: {e}"));
        let labeled: Vec<(String, SweepCurve)> = curves
            .into_iter()
            .map(|c| ("recnmp-cluster[4]".to_string(), c))
            .collect();
        for (label, c) in &labeled {
            print_curve(label, c);
        }
        (
            report_json("recnmp-placement/1", smoke, &spec, &labeled),
            out.unwrap_or_else(|| "BENCH_placement.json".to_string()),
        )
    } else {
        let spec = SweepSpec {
            process: ArrivalProcess::Poisson,
            shape: base_shape,
            utilizations,
            queries,
            probe_queries: probe,
            seed: SEED,
        };
        println!(
            "serve_sweep ({}): {} tables x batch {} x pooling {} = {} lookups/query, \
             {} queries/point, {} load points",
            if smoke { "smoke" } else { "full" },
            base_shape.tables,
            base_shape.batch,
            base_shape.pooling,
            base_shape.lookups_per_query(),
            spec.queries,
            spec.utilizations.len()
        );
        let mut backends: NamedFactories<'_> = vec![
            (
                "host",
                Box::new(|| Box::new(HostBaseline::new(4, 2).expect("host config"))),
            ),
            (
                "tensordimm",
                Box::new(|| Box::new(TensorDimm::new(4, 2).expect("tensordimm config"))),
            ),
            ("recnmp-cluster[4]", Box::new(reference_cluster4)),
        ];
        let modes: Vec<ServingMode> = DispatchPolicy::ALL
            .iter()
            .map(|&p| ServingMode::Queued(p))
            .collect();
        let curves = sweep_matrix(&mut backends, &modes, &spec)
            .unwrap_or_else(|e| panic!("serving sweep failed: {e}"));
        let labeled: Vec<(String, SweepCurve)> = curves
            .into_iter()
            .map(|lc| (lc.backend, lc.curve))
            .collect();
        for (label, c) in &labeled {
            print_curve(label, c);
        }
        (
            // Schema /2: the shape object gained `table_skew`.
            report_json("recnmp-serving/2", smoke, &spec, &labeled),
            out.unwrap_or_else(|| "BENCH_serving.json".to_string()),
        )
    };

    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
