//! Golden-output regression gate for the experiment harness.
//!
//! Runs every experiment in quick mode, serializes each
//! [`ExperimentResult`] to JSON, and diffs it against the committed
//! golden under `goldens/` — so a change that shifts an experiment's
//! numbers fails CI instead of silently drifting.
//!
//! ```text
//! cargo run -p recnmp-bench --release --bin golden_check               # check
//! cargo run -p recnmp-bench --release --bin golden_check -- --update  # rewrite goldens
//! cargo run -p recnmp-bench --release --bin golden_check -- fig15_opt # one id
//! ```
//!
//! * `--update`     rewrite the goldens from the current build.
//! * `--dir PATH`   golden directory (default `goldens`).
//! * `--tol X`      relative numeric tolerance (default 0.01).
//!
//! The diff is structural, not textual: both JSON documents are lexed
//! into token streams, and every number — a bare JSON number, a numeric
//! table cell like `"3.21x"`, or a figure embedded in a prose note like
//! `"knee at 3208829 qps"` — is compared with a relative tolerance while
//! the surrounding text must match exactly. The tolerance absorbs
//! cross-platform libm jitter in the last formatted digit; real
//! regressions move numbers far beyond it.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use recnmp_sim::experiments::{run, Scale, IDS};
use recnmp_sim::{ExperimentResult, TextTable};

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn string_array(items: &[String], indent: &str) -> String {
    let cells: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!("[{}{}]", indent, cells.join(", "))
}

fn table_json(t: &TextTable) -> String {
    let rows: Vec<String> = t.rows.iter().map(|r| string_array(r, "")).collect();
    format!(
        "{{\n      \"title\": \"{}\",\n      \"headers\": {},\n      \"rows\": [\n        {}\n      ]\n    }}",
        json_escape(&t.title),
        string_array(&t.headers, ""),
        rows.join(",\n        ")
    )
}

/// Serializes one experiment result as pretty-printed JSON.
fn result_json(r: &ExperimentResult) -> String {
    let tables: Vec<String> = r.tables.iter().map(table_json).collect();
    let notes: Vec<String> = r
        .notes
        .iter()
        .map(|n| format!("\"{}\"", json_escape(n)))
        .collect();
    format!
        (
        "{{\n  \"id\": \"{}\",\n  \"title\": \"{}\",\n  \"tables\": [\n    {}\n  ],\n  \"notes\": [\n    {}\n  ]\n}}\n",
        json_escape(&r.id),
        json_escape(&r.title),
        tables.join(",\n    "),
        notes.join(",\n    ")
    )
}

/// One lexed JSON token.
#[derive(Debug, Clone, PartialEq)]
enum Token {
    Punct(char),
    Str(String),
    Num(f64),
    Word(String),
}

/// Lexes a JSON document into tokens. Structure-preserving but
/// whitespace-insensitive, so the diff survives reformatting.
fn lex_json(src: &str) -> Result<Vec<Token>, String> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '{' | '}' | '[' | ']' | ':' | ',' => {
                tokens.push(Token::Punct(c));
                i += 1;
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    let Some(&c) = bytes.get(i) else {
                        return Err("unterminated string".into());
                    };
                    i += 1;
                    match c {
                        '"' => break,
                        '\\' => {
                            let Some(&esc) = bytes.get(i) else {
                                return Err("dangling escape".into());
                            };
                            i += 1;
                            match esc {
                                'n' => s.push('\n'),
                                't' => s.push('\t'),
                                'r' => s.push('\r'),
                                'u' => {
                                    let hex: String =
                                        bytes.get(i..i + 4).unwrap_or(&[]).iter().collect();
                                    i += 4;
                                    let code = u32::from_str_radix(&hex, 16)
                                        .map_err(|_| format!("bad \\u escape {hex}"))?;
                                    s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                }
                                other => s.push(other),
                            }
                        }
                        c => s.push(c),
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c == '-' || c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || matches!(bytes[i], '-' | '+' | '.' | 'e' | 'E'))
                {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let n: f64 = text.parse().map_err(|_| format!("bad number `{text}`"))?;
                tokens.push(Token::Num(n));
            }
            c if c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_alphabetic() {
                    i += 1;
                }
                tokens.push(Token::Word(bytes[start..i].iter().collect()));
            }
            other => return Err(format!("unexpected character `{other}`")),
        }
    }
    Ok(tokens)
}

/// One segment of a string: literal text or an embedded number.
#[derive(Debug, PartialEq)]
enum Seg {
    Text(String),
    Num(f64),
}

/// Splits a string into alternating text and number segments, so numbers
/// embedded anywhere — a bare cell like `"3.21"`, a suffixed one like
/// `"45.7%"`, or a prose note like `"knee at 3208829 qps (util 0.9)"` —
/// can be compared with tolerance while the surrounding text stays exact.
fn segments(s: &str) -> Vec<Seg> {
    let chars: Vec<char> = s.chars().collect();
    let mut out = Vec::new();
    let mut text = String::new();
    let mut i = 0;
    while i < chars.len() {
        let negative = chars[i] == '-' && chars.get(i + 1).is_some_and(char::is_ascii_digit);
        if chars[i].is_ascii_digit() || negative {
            let start = i;
            if negative {
                i += 1;
            }
            while i < chars.len()
                && (chars[i].is_ascii_digit()
                    || (chars[i] == '.' && chars.get(i + 1).is_some_and(char::is_ascii_digit)))
            {
                i += 1;
            }
            let num: String = chars[start..i].iter().collect();
            if !text.is_empty() {
                out.push(Seg::Text(std::mem::take(&mut text)));
            }
            out.push(Seg::Num(num.parse().expect("scanned a valid number")));
        } else {
            text.push(chars[i]);
            i += 1;
        }
    }
    if !text.is_empty() {
        out.push(Seg::Text(text));
    }
    out
}

/// Whether two strings are equivalent under the numeric tolerance:
/// identical text with every embedded number within `tol`.
fn strings_close(a: &str, b: &str, tol: f64) -> bool {
    if a == b {
        return true;
    }
    let (sa, sb) = (segments(a), segments(b));
    sa.len() == sb.len()
        && sa.iter().zip(&sb).all(|(x, y)| match (x, y) {
            (Seg::Num(m), Seg::Num(n)) => numbers_close(*m, *n, tol),
            (x, y) => x == y,
        })
}

/// Relative comparison with an absolute floor: values at or above 1.0
/// compare within `tol` relative; below 1.0 the allowance bottoms out at
/// an absolute `tol`, matching the two-decimal formatting granularity of
/// experiment cells (a cell printed "0.31" only carries ±0.005 of real
/// information, so a pure relative check would flag formatting jitter).
fn numbers_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// Compares two JSON documents token-by-token with numeric tolerance.
/// Returns the first few mismatches, empty when equivalent.
fn diff_json(golden: &str, current: &str, tol: f64) -> Result<Vec<String>, String> {
    let (g, c) = (lex_json(golden)?, lex_json(current)?);
    let mut mismatches = Vec::new();
    for (i, (gt, ct)) in g.iter().zip(&c).enumerate() {
        let ok = match (gt, ct) {
            (Token::Num(a), Token::Num(b)) => numbers_close(*a, *b, tol),
            (Token::Str(a), Token::Str(b)) => strings_close(a, b, tol),
            (a, b) => a == b,
        };
        if !ok {
            mismatches.push(format!("  token {i}: golden {gt:?} vs current {ct:?}"));
            if mismatches.len() >= 8 {
                mismatches.push("  ... further mismatches suppressed".into());
                return Ok(mismatches);
            }
        }
    }
    if g.len() != c.len() {
        mismatches.push(format!(
            "  token count changed: golden {} vs current {}",
            g.len(),
            c.len()
        ));
    }
    Ok(mismatches)
}

fn golden_path(dir: &Path, id: &str) -> PathBuf {
    dir.join(format!("{id}.json"))
}

fn main() -> ExitCode {
    let mut update = false;
    let mut dir = PathBuf::from("goldens");
    let mut tol = 0.01f64;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--update" => update = true,
            "--dir" => dir = PathBuf::from(args.next().expect("--dir requires a path")),
            "--tol" => {
                tol = args
                    .next()
                    .expect("--tol requires a value")
                    .parse()
                    .expect("--tol requires a number")
            }
            other if !other.starts_with("--") => ids.push(other.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: golden_check [--update] [--dir PATH] [--tol X] [ids...]");
                return ExitCode::from(2);
            }
        }
    }
    if ids.is_empty() {
        ids = IDS.iter().map(|s| s.to_string()).collect();
    }

    let mut failures = 0usize;
    for id in &ids {
        let Some(result) = run(id, Scale::Quick) else {
            eprintln!("unknown experiment `{id}`");
            failures += 1;
            continue;
        };
        let current = result_json(&result);
        let path = golden_path(&dir, id);
        if update {
            std::fs::create_dir_all(&dir).expect("creating golden dir");
            std::fs::write(&path, &current).unwrap_or_else(|e| panic!("writing {path:?}: {e}"));
            println!("updated {}", path.display());
            continue;
        }
        let golden = match std::fs::read_to_string(&path) {
            Ok(g) => g,
            Err(e) => {
                eprintln!(
                    "FAIL {id}: cannot read {} ({e}); run with --update",
                    path.display()
                );
                failures += 1;
                continue;
            }
        };
        match diff_json(&golden, &current, tol) {
            Ok(mismatches) if mismatches.is_empty() => println!("ok   {id}"),
            Ok(mismatches) => {
                eprintln!("FAIL {id}: output drifted from {}", path.display());
                for m in &mismatches {
                    eprintln!("{m}");
                }
                failures += 1;
            }
            Err(e) => {
                eprintln!("FAIL {id}: malformed JSON: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "{failures} experiment(s) drifted; inspect with `repro <id>` and, if the change \
             is intended, refresh with `golden_check --update`"
        );
        return ExitCode::FAILURE;
    }
    if update {
        println!("rewrote {} golden(s) under {}", ids.len(), dir.display());
    } else {
        println!("all {} golden(s) match (tol {tol})", ids.len());
    }
    ExitCode::SUCCESS
}
