//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro list               list experiment ids
//! repro all [--full]      run everything (quick scale by default)
//! repro <id> [--full]     run one experiment
//! ```

use std::process::ExitCode;

use recnmp_sim::experiments::{run, run_all, Scale, IDS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::Full } else { Scale::Quick };
    let command = args.iter().find(|a| !a.starts_with("--")).cloned();

    match command.as_deref() {
        None | Some("help") => {
            eprintln!("usage: repro [list | all | <experiment-id>] [--full]");
            eprintln!("experiments:");
            for id in IDS {
                eprintln!("  {id}");
            }
            ExitCode::SUCCESS
        }
        Some("list") => {
            for id in IDS {
                println!("{id}");
            }
            ExitCode::SUCCESS
        }
        Some("all") => {
            for result in run_all(scale) {
                println!("{result}");
            }
            ExitCode::SUCCESS
        }
        Some(id) => match run(id, scale) {
            Some(result) => {
                println!("{result}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment `{id}`; try `repro list`");
                ExitCode::FAILURE
            }
        },
    }
}
