//! Simulator-throughput benchmark: simulated lookups per wall-clock
//! second for every execution backend, the pooled-cluster scaling ratio,
//! and the channel-count sweep that proves the thread-per-channel
//! ceiling is gone. Emits `BENCH_throughput.json` so successive PRs have
//! a performance trajectory to defend.
//!
//! ```text
//! cargo run -p recnmp-bench --release --bin sim_throughput -- \
//!     [--smoke] [--workers N] [--out PATH] [--baseline PATH | --baseline-from-git]
//! ```
//!
//! * `--smoke`    shrinks the workload for CI (seconds instead of minutes).
//! * `--workers`  pins the execution-engine pool size (default: the
//!   `RECNMP_WORKERS` environment variable, else `available_parallelism`),
//!   so CI and local runs measure a known parallelism.
//! * `--out`      output path (default `BENCH_throughput.json`).
//! * `--baseline` compares the fresh `lookups_per_second` of every
//!   backend against the committed JSON at PATH and exits non-zero on a
//!   regression beyond 30% — the CI gate that keeps the
//!   simulator-performance trajectory from silently sliding back.
//! * `--baseline-from-git` like `--baseline`, but reads the committed
//!   file from `git show HEAD:<out>` before this run overwrites it —
//!   local runs and CI share one code path, no stash-a-copy step.
//!
//! Measured systems: the host DRAM baseline, TensorDIMM, single-channel
//! RecNMP, and a 4-channel `RecNmpCluster` (per-channel tasks on the
//! `recnmp-exec` worker pool). The cluster is compared against a
//! 1-channel cluster serving the same *per-channel* workload, so the
//! reported speedup isolates the pool-parallelism win; with a
//! single-worker pool the ratio would only measure scheduling overhead,
//! so it is recorded as unmeasured (`null`) instead.
//!
//! The schema /3 `channel_sweep` section runs 4-, 64-, and 256-channel
//! clusters with equal per-channel work on the same fixed-size pool:
//! simulated channels scale two orders of magnitude while OS threads
//! stay pinned at `workers`.

use std::time::Instant;

use recnmp::{RecNmpCluster, RecNmpClusterConfig, RecNmpConfig, RecNmpSystem};
use recnmp_backend::{ShardingPolicy, SlsBackend, SlsTrace};
use recnmp_baselines::{HostBaseline, TensorDimm};
use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, SlsBatch, TraceGenerator};
use recnmp_types::{PhysAddr, TableId};

struct Measurement {
    name: String,
    lookups: u64,
    sim_cycles: u64,
    wall_seconds: f64,
}

impl Measurement {
    fn lookups_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.lookups as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"lookups\": {}, \"sim_cycles\": {}, \
             \"wall_seconds\": {:.6}, \"lookups_per_second\": {:.1}}}",
            self.name,
            self.lookups,
            self.sim_cycles,
            self.wall_seconds,
            self.lookups_per_second()
        )
    }
}

/// A multi-table SLS workload with hashed physical placement (the shared
/// conformance-test address pattern).
fn workload(tables: u32, batch: usize, pooling: usize, seed: u64) -> SlsTrace {
    let batches: Vec<SlsBatch> = (0..tables)
        .map(|t| {
            TraceGenerator::new(
                TableId::new(t),
                EmbeddingTableSpec::dlrm_default(),
                IndexDistribution::Zipf { s: 0.9 },
                seed + t as u64,
            )
            .batch(batch, pooling)
        })
        .collect();
    SlsTrace::from_batches(&batches, &mut |t, row| {
        PhysAddr::new(((t as u64) << 31) ^ (row * 131 * 128))
    })
}

fn measure(name: &str, backend: &mut dyn SlsBackend, trace: &SlsTrace) -> Measurement {
    let start = Instant::now();
    let report = backend
        .try_run(trace)
        .unwrap_or_else(|e| panic!("{name} stalled: {e}"));
    let wall_seconds = start.elapsed().as_secs_f64();
    assert_eq!(report.insts, trace.total_lookups(), "{name} lost lookups");
    Measurement {
        name: name.to_string(),
        lookups: report.insts,
        sim_cycles: report.total_cycles,
        wall_seconds,
    }
}

/// One backend row of a committed `BENCH_throughput.json`.
struct BaselineEntry {
    name: String,
    sim_cycles: u64,
    lookups_per_second: f64,
}

/// Parsed committed baseline: the measurement mode plus per-backend rows.
struct Baseline {
    mode: String,
    backends: Vec<BaselineEntry>,
}

/// Scans one `"field": ` occurrence inside the current JSON object
/// (bounded at the closing `}`, so a missing field errors instead of
/// stealing the next object's value) and parses its numeric value.
fn scan_number(rest: &str, field: &str) -> Option<f64> {
    let object = &rest[..rest.find('}').unwrap_or(rest.len())];
    let key = format!("\"{field}\": ");
    let at = object.find(&key)?;
    let tail = &object[at + key.len()..];
    let num: String = tail
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Extracts the mode and per-backend measurements from a committed
/// `BENCH_throughput.json` without a JSON dependency: scans for the
/// fields the writer below emits.
fn parse_baseline(json: &str) -> Baseline {
    let mode = json
        .find("\"mode\": \"")
        .and_then(|at| {
            let rest = &json[at + 9..];
            rest.find('"').map(|end| rest[..end].to_string())
        })
        .unwrap_or_default();
    let mut backends = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"name\": \"") {
        rest = &rest[at + 9..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_string();
        let (Some(cycles), Some(lps)) = (
            scan_number(rest, "sim_cycles"),
            scan_number(rest, "lookups_per_second"),
        ) else {
            break;
        };
        backends.push(BaselineEntry {
            name,
            sim_cycles: cycles as u64,
            lookups_per_second: lps,
        });
    }
    Baseline { mode, backends }
}

/// Compares fresh measurements against the committed baseline; returns
/// failure messages. Three gates:
///
/// * every fresh backend must exist in the baseline (a rename or
///   addition without regenerating the committed file must not silently
///   fall out of the gate);
/// * `sim_cycles` must match **exactly** — the simulation is
///   deterministic, so any difference is a semantic change that needs a
///   deliberate baseline regeneration (this gate is hardware-independent);
/// * `lookups_per_second` must not regress more than 30% (the coarse
///   wall-clock gate; the slack absorbs runner-to-runner variance).
fn check_baseline(baseline: &[BaselineEntry], fresh: &[&Measurement]) -> Vec<String> {
    const MAX_REGRESSION: f64 = 0.30;
    let mut failures = Vec::new();
    // Coverage is bidirectional: a backend deleted or renamed in the
    // harness must not silently drop out of the gate either.
    for b in baseline {
        if !fresh.iter().any(|m| m.name == b.name) {
            failures.push(format!(
                "{}: in the committed baseline but no longer measured \
                 (regenerate the baseline deliberately)",
                b.name
            ));
        }
    }
    for m in fresh {
        let Some(committed) = baseline.iter().find(|b| b.name == m.name) else {
            failures.push(format!(
                "{}: not present in the committed baseline (regenerate it)",
                m.name
            ));
            continue;
        };
        if m.sim_cycles != committed.sim_cycles {
            failures.push(format!(
                "{}: simulated {} cycles vs committed {} — simulation \
                 semantics changed; regenerate the baseline deliberately",
                m.name, m.sim_cycles, committed.sim_cycles
            ));
        }
        let now = m.lookups_per_second();
        if now < committed.lookups_per_second * (1.0 - MAX_REGRESSION) {
            failures.push(format!(
                "{}: {:.0} lookups/s vs committed {:.0} ({:+.1}%)",
                m.name,
                now,
                committed.lookups_per_second,
                (now / committed.lookups_per_second - 1.0) * 100.0
            ));
        }
    }
    failures
}

fn cluster(channels: usize) -> RecNmpCluster {
    let config = RecNmpClusterConfig::builder()
        .channels(channels)
        .dimms(4)
        .ranks_per_dimm(2)
        .sharding(ShardingPolicy::RoundRobin)
        .build()
        .expect("valid cluster config");
    RecNmpCluster::new(config).expect("valid cluster")
}

/// Channel counts of the scaling sweep: the old thread-per-channel
/// design capped out near the low end; the pool runs the high end on
/// the same fixed thread budget.
const CHANNEL_SWEEP: [usize; 3] = [4, 64, 256];

/// Reads the committed copy of `path` from `git show HEAD:./path` — the
/// shared baseline source for local runs and CI, read *before* this run
/// overwrites the file.
fn git_show_head(path: &str) -> String {
    let output = std::process::Command::new("git")
        .args(["show", &format!("HEAD:./{path}")])
        .output()
        .unwrap_or_else(|e| panic!("running git show for {path}: {e}"));
    assert!(
        output.status.success(),
        "git show HEAD:./{path} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).unwrap_or_else(|e| panic!("HEAD:./{path} is not UTF-8: {e}"))
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_throughput.json");
    let mut baseline_path: Option<String> = None;
    let mut baseline_from_git = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--workers" => {
                let n = args
                    .next()
                    .expect("--workers requires a count")
                    .parse()
                    .expect("--workers requires a positive integer");
                recnmp_exec::set_global_workers(n)
                    .unwrap_or_else(|e| panic!("pinning pool size: {e}"));
            }
            "--out" => out = args.next().expect("--out requires a path"),
            "--baseline" => {
                baseline_path = Some(args.next().expect("--baseline requires a path"));
            }
            "--baseline-from-git" => baseline_from_git = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: sim_throughput [--smoke] [--workers N] [--out PATH] \
                     [--baseline PATH | --baseline-from-git]"
                );
                std::process::exit(2);
            }
        }
    }
    // The committed baseline must be captured before the fresh run
    // overwrites `out`.
    let committed_baseline: Option<(String, String)> = match (&baseline_path, baseline_from_git) {
        (Some(path), _) => Some((
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}")),
            path.clone(),
        )),
        (None, true) => Some((git_show_head(&out), format!("HEAD:./{out}"))),
        (None, false) => None,
    };
    let (tables, batch, pooling) = if smoke { (4, 4, 32) } else { (16, 16, 80) };
    let trace = workload(tables, batch, pooling, 7);
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = recnmp_exec::current().workers();

    println!(
        "sim_throughput ({}): {} tables x batch {} x pooling {} = {} lookups, \
         {} pool worker(s), {} hardware thread(s)",
        if smoke { "smoke" } else { "full" },
        tables,
        batch,
        pooling,
        trace.total_lookups(),
        workers,
        threads
    );

    let mut results = Vec::new();
    let mut host = HostBaseline::new(4, 2).expect("host config");
    results.push(measure("host", &mut host, &trace));
    let mut td = TensorDimm::new(4, 2).expect("tensordimm config");
    results.push(measure("tensordimm", &mut td, &trace));
    let mut nmp = RecNmpSystem::new(RecNmpConfig::with_ranks(4, 2)).expect("recnmp config");
    results.push(measure("recnmp", &mut nmp, &trace));

    // Cluster scaling: equal work *per channel*, so wall-clock ratio
    // isolates the pool-parallelism win (up to 4x with >=4 workers).
    // With a single-worker pool the ratio measures scheduler overhead,
    // not parallelism, so it is reported as unmeasured rather than
    // recorded as a bogus figure.
    let quad_trace = workload(4 * tables, batch, pooling, 7);
    let single = measure("recnmp-cluster[1]", &mut cluster(1), &trace);
    let quad = measure("recnmp-cluster[4]", &mut cluster(4), &quad_trace);
    let speedup = if workers > 1 && single.wall_seconds > 0.0 {
        Some(quad.lookups_per_second() / single.lookups_per_second())
    } else {
        None
    };

    for m in results.iter().chain([&single, &quad]) {
        println!(
            "  {:<20} {:>8} lookups  {:>12} sim cycles  {:>9.3} s  {:>12.0} lookups/s",
            m.name,
            m.lookups,
            m.sim_cycles,
            m.wall_seconds,
            m.lookups_per_second()
        );
    }
    match speedup {
        Some(s) => {
            println!("  cluster[4] vs cluster[1] sim-throughput: {s:.2}x (workers: {workers})");
            if workers >= 4 && threads >= 4 && !smoke && s < 2.0 {
                eprintln!(
                    "WARNING: expected >=2x cluster speedup with {workers} workers, got {s:.2}x"
                );
            }
        }
        None => println!(
            "  cluster[4] vs cluster[1] sim-throughput: not measured \
             (workers: {workers}; a single-worker pool cannot speed itself up)"
        ),
    }

    // Channel-count sweep: one table's worth of work per channel (round
    // robin places exactly one batch on each), so per-channel load is
    // constant while the simulated topology grows 4 -> 256. The pool
    // keeps OS threads pinned at `workers` throughout — the section
    // that used to be impossible under thread-per-channel spawning.
    let mut sweep = Vec::new();
    for &channels in &CHANNEL_SWEEP {
        let sweep_trace = workload(channels as u32, batch, pooling, 7);
        let m = measure(
            &format!("recnmp-cluster[{channels}]"),
            &mut cluster(channels),
            &sweep_trace,
        );
        println!(
            "  channel_sweep[{:>3}] {:>8} lookups  {:>9.3} s  {:>12.0} lookups/s  ({} worker(s))",
            channels,
            m.lookups,
            m.wall_seconds,
            m.lookups_per_second(),
            workers
        );
        sweep.push((channels, m));
    }

    let backend_json: Vec<String> = results
        .iter()
        .chain([&single, &quad])
        .map(Measurement::to_json)
        .collect();
    // `throughput_speedup_vs_single` is null only when the pool has a
    // single worker (the default on single-core machines): the ratio
    // would measure scheduler overhead, not the parallelism win, and a
    // ~1x reading would read as a regression.
    let speedup_json = speedup.map_or("null".to_string(), |s| format!("{s:.3}"));
    // The sweep entries deliberately use a `channels` key, not `name`,
    // so the baseline parser's backend scan never mistakes them for
    // backend rows.
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|(channels, m)| {
            format!(
                "{{\"channels\": {}, \"lookups\": {}, \"sim_cycles\": {}, \
                 \"wall_seconds\": {:.6}, \"lookups_per_second\": {:.1}}}",
                channels,
                m.lookups,
                m.sim_cycles,
                m.wall_seconds,
                m.lookups_per_second()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"recnmp-sim-throughput/3\",\n  \"mode\": \"{}\",\n  \
         \"engine\": \"event-driven\",\n  \"workers\": {},\n  \"threads_available\": {},\n  \
         \"workload\": {{\"tables\": {}, \"batch\": {}, \"pooling\": {}, \"lookups\": {}}},\n  \
         \"backends\": [\n    {}\n  ],\n  \
         \"cluster_scaling\": {{\"channels\": 4, \"per_channel_lookups\": {}, \
         \"measured\": {}, \"throughput_speedup_vs_single\": {}}},\n  \
         \"channel_sweep\": [\n    {}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        workers,
        threads,
        tables,
        batch,
        pooling,
        trace.total_lookups(),
        backend_json.join(",\n    "),
        trace.total_lookups(),
        speedup.is_some(),
        speedup_json,
        sweep_json.join(",\n    ")
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");

    if let Some((committed, source)) = committed_baseline {
        let baseline = parse_baseline(&committed);
        assert!(
            !baseline.backends.is_empty(),
            "no backend measurements found in {source}"
        );
        let mode = if smoke { "smoke" } else { "full" };
        if baseline.mode != mode {
            eprintln!(
                "baseline {source} was measured in {:?} mode but this run is {mode:?}; \
                 per-lookup costs differ across workload sizes, so the comparison \
                 would be meaningless",
                baseline.mode
            );
            std::process::exit(1);
        }
        let fresh: Vec<&Measurement> = results.iter().chain([&single, &quad]).collect();
        let failures = check_baseline(&baseline.backends, &fresh);
        if failures.is_empty() {
            println!("baseline check vs {source}: ok (>30% regression gate)");
        } else {
            eprintln!("simulator throughput regressed >30% vs {source}:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}
