//! Simulator-throughput benchmark: simulated lookups per wall-clock
//! second for every execution backend, plus the threaded-cluster scaling
//! ratio. Emits `BENCH_throughput.json` so successive PRs have a
//! performance trajectory to defend.
//!
//! ```text
//! cargo run -p recnmp-bench --release --bin sim_throughput -- [--smoke] [--out PATH]
//! ```
//!
//! * `--smoke` shrinks the workload for CI (seconds instead of minutes).
//! * `--out`   output path (default `BENCH_throughput.json`).
//!
//! Measured systems: the host DRAM baseline, TensorDIMM, single-channel
//! RecNMP, and a 4-channel `RecNmpCluster` (one simulation thread per
//! channel). The cluster is compared against a 1-channel cluster serving
//! the same *per-channel* workload, so the reported speedup isolates the
//! threading win; on a single-core machine it degrades to ~1x, which the
//! JSON records alongside `threads_available`.

use std::time::Instant;

use recnmp::{RecNmpCluster, RecNmpClusterConfig, RecNmpConfig, RecNmpSystem};
use recnmp_backend::{ShardingPolicy, SlsBackend, SlsTrace};
use recnmp_baselines::{HostBaseline, TensorDimm};
use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, SlsBatch, TraceGenerator};
use recnmp_types::{PhysAddr, TableId};

struct Measurement {
    name: String,
    lookups: u64,
    sim_cycles: u64,
    wall_seconds: f64,
}

impl Measurement {
    fn lookups_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.lookups as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"lookups\": {}, \"sim_cycles\": {}, \
             \"wall_seconds\": {:.6}, \"lookups_per_second\": {:.1}}}",
            self.name,
            self.lookups,
            self.sim_cycles,
            self.wall_seconds,
            self.lookups_per_second()
        )
    }
}

/// A multi-table SLS workload with hashed physical placement (the shared
/// conformance-test address pattern).
fn workload(tables: u32, batch: usize, pooling: usize, seed: u64) -> SlsTrace {
    let batches: Vec<SlsBatch> = (0..tables)
        .map(|t| {
            TraceGenerator::new(
                TableId::new(t),
                EmbeddingTableSpec::dlrm_default(),
                IndexDistribution::Zipf { s: 0.9 },
                seed + t as u64,
            )
            .batch(batch, pooling)
        })
        .collect();
    SlsTrace::from_batches(&batches, &mut |t, row| {
        PhysAddr::new(((t as u64) << 31) ^ (row * 131 * 128))
    })
}

fn measure(name: &str, backend: &mut dyn SlsBackend, trace: &SlsTrace) -> Measurement {
    let start = Instant::now();
    let report = backend
        .try_run(trace)
        .unwrap_or_else(|e| panic!("{name} stalled: {e}"));
    let wall_seconds = start.elapsed().as_secs_f64();
    assert_eq!(report.insts, trace.total_lookups(), "{name} lost lookups");
    Measurement {
        name: name.to_string(),
        lookups: report.insts,
        sim_cycles: report.total_cycles,
        wall_seconds,
    }
}

fn cluster(channels: usize) -> RecNmpCluster {
    let config = RecNmpClusterConfig::builder()
        .channels(channels)
        .dimms(4)
        .ranks_per_dimm(2)
        .sharding(ShardingPolicy::RoundRobin)
        .build()
        .expect("valid cluster config");
    RecNmpCluster::new(config).expect("valid cluster")
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_throughput.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: sim_throughput [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let (tables, batch, pooling) = if smoke { (4, 4, 32) } else { (16, 16, 80) };
    let trace = workload(tables, batch, pooling, 7);
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "sim_throughput ({}): {} tables x batch {} x pooling {} = {} lookups, {} thread(s)",
        if smoke { "smoke" } else { "full" },
        tables,
        batch,
        pooling,
        trace.total_lookups(),
        threads
    );

    let mut results = Vec::new();
    let mut host = HostBaseline::new(4, 2).expect("host config");
    results.push(measure("host", &mut host, &trace));
    let mut td = TensorDimm::new(4, 2).expect("tensordimm config");
    results.push(measure("tensordimm", &mut td, &trace));
    let mut nmp = RecNmpSystem::new(RecNmpConfig::with_ranks(4, 2)).expect("recnmp config");
    results.push(measure("recnmp", &mut nmp, &trace));

    // Cluster scaling: equal work *per channel*, so wall-clock ratio
    // isolates the threading win (up to 4x on >=4 cores). On a single
    // core the ratio measures scheduler overhead, not threading, so it
    // is reported as unmeasured rather than recorded as a bogus figure.
    let quad_trace = workload(4 * tables, batch, pooling, 7);
    let single = measure("recnmp-cluster[1]", &mut cluster(1), &trace);
    let quad = measure("recnmp-cluster[4]", &mut cluster(4), &quad_trace);
    let speedup = if threads > 1 && single.wall_seconds > 0.0 {
        Some(quad.lookups_per_second() / single.lookups_per_second())
    } else {
        None
    };

    for m in results.iter().chain([&single, &quad]) {
        println!(
            "  {:<20} {:>8} lookups  {:>12} sim cycles  {:>9.3} s  {:>12.0} lookups/s",
            m.name,
            m.lookups,
            m.sim_cycles,
            m.wall_seconds,
            m.lookups_per_second()
        );
    }
    match speedup {
        Some(s) => {
            println!("  cluster[4] vs cluster[1] sim-throughput: {s:.2}x (threads: {threads})");
            if threads >= 4 && !smoke && s < 2.0 {
                eprintln!(
                    "WARNING: expected >=2x cluster speedup with {threads} threads, got {s:.2}x"
                );
            }
        }
        None => println!(
            "  cluster[4] vs cluster[1] sim-throughput: not measured \
             (threads: {threads}; threading cannot speed up a 1-core run)"
        ),
    }

    let backend_json: Vec<String> = results
        .iter()
        .chain([&single, &quad])
        .map(Measurement::to_json)
        .collect();
    // `throughput_speedup_vs_single` is null when only one hardware
    // thread is available: the ratio would measure scheduler overhead,
    // not the threading win, and a ~1x reading would read as a
    // regression.
    let speedup_json = speedup.map_or("null".to_string(), |s| format!("{s:.3}"));
    let json = format!(
        "{{\n  \"schema\": \"recnmp-sim-throughput/2\",\n  \"mode\": \"{}\",\n  \
         \"engine\": \"event-driven\",\n  \"threads_available\": {},\n  \
         \"workload\": {{\"tables\": {}, \"batch\": {}, \"pooling\": {}, \"lookups\": {}}},\n  \
         \"backends\": [\n    {}\n  ],\n  \
         \"cluster_scaling\": {{\"channels\": 4, \"per_channel_lookups\": {}, \
         \"measured\": {}, \"throughput_speedup_vs_single\": {}}}\n}}\n",
        if smoke { "smoke" } else { "full" },
        threads,
        tables,
        batch,
        pooling,
        trace.total_lookups(),
        backend_json.join(",\n    "),
        trace.total_lookups(),
        speedup.is_some(),
        speedup_json
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}
