//! Criterion benchmark for the `fig16_comparison` experiment (comparator study).
//!
//! The full experiment sweeps many configurations; this benchmark times
//! one representative host-baseline channel run so `cargo bench` stays fast. Use
//! `repro fig16_comparison --full` to regenerate the complete figure.

use criterion::{criterion_group, criterion_main, Criterion};
use recnmp::RecNmpConfig;
use recnmp_sim::speedup::SpeedupEngine;
use recnmp_sim::workload::TraceKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_comparison");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let engine = SpeedupEngine::with_workload(TraceKind::Production, 8, 1, 8, 7);
    group.bench_function("kernel", |b| {
        let mut cfg = RecNmpConfig::optimized(4, 2);
        cfg.refresh = false;
        b.iter(|| {
            let report = engine.run_host(&cfg).expect("valid config");
            criterion::black_box(report)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
