//! Criterion benchmark for the `fig15_opt` experiment (optimization ladder).
//!
//! The full experiment sweeps many configurations; this benchmark times
//! one representative fully optimized 8-rank run so `cargo bench` stays fast. Use
//! `repro fig15_opt --full` to regenerate the complete figure.

use criterion::{criterion_group, criterion_main, Criterion};
use recnmp::RecNmpConfig;
use recnmp_sim::speedup::SpeedupEngine;
use recnmp_sim::workload::TraceKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_opt");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let engine = SpeedupEngine::with_workload(TraceKind::Production, 8, 1, 8, 7);
    group.bench_function("kernel", |b| {
        let mut cfg = RecNmpConfig::optimized(4, 2);
        cfg.refresh = false;
        b.iter(|| {
            let report = engine.run_nmp(&cfg).expect("valid config");
            criterion::black_box(report)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
