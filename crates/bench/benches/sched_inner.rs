//! Criterion micro-benchmark for the FR-FCFS scheduler inner loop.
//!
//! Times `MemorySystem::run_to_idle` — the `issue_request_command` /
//! event-skip loop — on the two traffic shapes that dominate simulator
//! wall-clock: the rank-NMP device pattern (single rank, staggered
//! 2-per-cycle arrivals, Zipf-ish bank spread) and a conflict-heavy
//! stream that maximizes PRE/ACT churn. This is the kernel the
//! `sim_throughput` trajectory rides on; regressions here show up
//! directly in `BENCH_throughput.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use recnmp_dram::{DramConfig, MemorySystem};
use recnmp_types::PhysAddr;

fn run_pattern(mem: &mut MemorySystem, salt: u64, reqs: u64, stride: u64) -> u64 {
    let base = mem.cycle();
    for i in 0..reqs {
        mem.enqueue_read(
            PhysAddr::new(((i * stride + salt * 7919) * 128) & ((1 << 30) - 1)),
            base + i / 2,
        );
    }
    mem.run_to_idle().expect("drain");
    let done = mem.completions().last().map_or(0, |c| c.finish_cycle);
    mem.clear_completions();
    done
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_inner");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("rank_device_mixed", |b| {
        let mut mem = MemorySystem::new(DramConfig::single_rank()).expect("config");
        let mut salt = 0u64;
        b.iter(|| {
            salt += 1;
            criterion::black_box(run_pattern(&mut mem, salt, 512, 131))
        })
    });

    group.bench_function("conflict_storm", |b| {
        let mut cfg = DramConfig::single_rank();
        cfg.refresh = false;
        let mut mem = MemorySystem::new(cfg).expect("config");
        let mut salt = 0u64;
        b.iter(|| {
            salt += 1;
            // Stride chosen to pound few banks with alternating rows:
            // every read needs PRE + ACT + RD.
            criterion::black_box(run_pattern(&mut mem, salt, 512, 2048 + 16))
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
