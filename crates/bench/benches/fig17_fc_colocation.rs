//! Criterion benchmark for the `fig17_fc_colocation` experiment: times the simulation
//! kernel that regenerates this paper artifact (quick scale).

use criterion::{criterion_group, criterion_main, Criterion};
use recnmp_bench::{run, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_fc_colocation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("regenerate", |b| {
        b.iter(|| {
            let result = run("fig17_fc_colocation", Scale::Quick).expect("known id");
            criterion::black_box(result.tables.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
