//! Criterion benchmark for the `fig_capacity` experiment (tiered
//! DRAM+SSD serving as the footprint outgrows DRAM).
//!
//! The full experiment sweeps five footprint ratios under two tiered
//! policies; this benchmark times one representative tiered serving run
//! at the 4x spill point so `cargo bench` stays fast. Use
//! `repro fig_capacity --full` to regenerate the complete figure.

use criterion::{criterion_group, criterion_main, Criterion};
use recnmp_backend::{TierSpec, TieredPolicy};
use recnmp_sim::serving::{reference_tiered, serve, QueryShape, ServingConfig, ServingMode};
use recnmp_types::ByteSize;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_capacity");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    // 16 x 128 MB tables at 4x the DRAM tier's capacity: the spill
    // regime where the frequency split earns its keep.
    let tiers = TierSpec {
        dram_channels: 4,
        dram_channel_capacity: ByteSize::bytes(16 * 128_000_000 / 16),
        ssd_units: 2,
        ssd_unit_capacity: ByteSize::gib(4),
    };
    let shape = QueryShape::new(16, 2, 4)
        .with_table_skew(1.5)
        .with_skew_rotation(5)
        .with_table_sampling(4);
    let mut cfg = ServingConfig::poisson(8_000.0, 16, shape, 7);
    cfg.mode = ServingMode::tiered(TieredPolicy::FrequencyTiered { replicate_hot: 0 }, tiers);
    group.bench_function("kernel", |b| {
        b.iter(|| {
            let mut backend = reference_tiered(tiers);
            let report = serve(backend.as_mut(), &cfg).expect("tiered serving run");
            criterion::black_box(report)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
