//! Criterion benchmark for the `fig07_locality` experiment (trace locality sweeps).
//!
//! The full experiment sweeps many configurations; this benchmark times
//! one representative 16 MiB cache sweep over a Comb-8 trace so `cargo bench` stays fast. Use
//! `repro fig07_locality --full` to regenerate the complete figure.

use criterion::{criterion_group, criterion_main, Criterion};
use recnmp_cache::{CacheConfig, SetAssocCache};
use recnmp_trace::{production_tables, CombTrace, PageMapper};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig07_locality");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let comb = CombTrace::interleave(&production_tables(7), 1, 4000, 3);
    let mut mapper = PageMapper::new(1 << 24, 11);
    let phys: Vec<u64> = comb
        .logical_addrs()
        .map(|l| mapper.translate(l).get())
        .collect();
    group.bench_function("kernel", |b| {
        b.iter(|| {
            let mut cache = SetAssocCache::new(CacheConfig::new(16 << 20, 64, 4)).expect("valid");
            criterion::black_box(cache.run_trace(phys.iter().copied()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
