//! Criterion benchmark for the `fig_resilience` experiment (goodput
//! under SLO through injected faults).
//!
//! The full experiment runs twelve arms across three fault levels; this
//! benchmark times one representative crash-level run — the 4-node
//! replicated fleet with p95 hedging, retries and the SLO guard all
//! engaged, failing over a mid-run node crash — so `cargo bench` stays
//! fast. Use `repro fig_resilience --full` to regenerate the figure.

use criterion::{criterion_group, criterion_main, Criterion};
use recnmp_sim::serving::faults::{
    FaultPlan, HedgePolicy, ResilienceConfig, RetryPolicy, SloPolicy,
};
use recnmp_sim::serving::fleet::{serve_fleet_resilient, Fleet, FleetConfig, FleetDispatch};
use recnmp_sim::serving::{ArrivalProcess, QueryShape};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_resilience");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    // The experiment's quick-scale shape with every table replicated
    // fleet-wide and the crash landing mid-horizon: the arm the
    // resilience verdict rests on.
    let shape = QueryShape::new(12, 2, 6)
        .with_table_skew(1.2)
        .with_table_sampling(3);
    let cfg = FleetConfig {
        process: ArrivalProcess::Poisson,
        qps: 160_000.0,
        queries: 64,
        shape,
        dispatch: FleetDispatch::replicated(12),
        seed: 7,
    };
    let res = ResilienceConfig::new(FaultPlan::none().with_crash(3, 240_000))
        .with_retry(RetryPolicy::serving_default(7_200))
        .with_hedge(HedgePolicy::p95())
        .with_slo(SloPolicy::new(7_200));
    group.bench_function("kernel", |b| {
        b.iter(|| {
            let mut fleet = Fleet::reference(4);
            let report =
                serve_fleet_resilient(&mut fleet, &cfg, &res).expect("resilient fleet run");
            criterion::black_box(report)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
