//! Criterion benchmark for the `fig_cache_serving` experiment (host
//! hot-embedding cache + cache-aware placement + inter-query prefetch
//! on the RecNMP-opt cluster).
//!
//! The full experiment sweeps five locality arms over a load axis; this
//! benchmark times one representative serving run of the co-design arm
//! (1 MiB host cache fronting a residual-load frequency placement) so
//! `cargo bench` stays fast. Use `repro fig_cache_serving --full` to
//! regenerate the complete figure.

use criterion::{criterion_group, criterion_main, Criterion};
use recnmp_sim::serving::{
    reference_caching_arms, reference_cluster4_optimized, serve, ArrivalProcess, QueryShape,
    ServingConfig,
};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_cache_serving");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    // The experiment's quick-scale shape with its hot row stream, served
    // under the arm the co-design verdict rests on (cached-frequency@1MiB).
    let shape = QueryShape::reference_skewed().with_row_skew(1.2);
    let (_, mode) = reference_caching_arms()
        .into_iter()
        .find(|(label, _)| label == "cached-frequency@1MiB")
        .expect("co-design arm is a reference arm");
    let cfg = ServingConfig {
        process: ArrivalProcess::Poisson,
        qps: 2_000_000.0,
        queries: 24,
        shape,
        mode,
        coalescing: None,
        max_queue_depth: None,
        seed: 7,
    };
    group.bench_function("kernel", |b| {
        b.iter(|| {
            let mut backend = reference_cluster4_optimized();
            let report = serve(backend.as_mut(), &cfg).expect("cached serving run");
            criterion::black_box(report)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
