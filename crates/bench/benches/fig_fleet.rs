//! Criterion benchmark for the `fig_fleet` experiment (knee-QPS scaling
//! of a multi-node fleet under sharded vs replicated placement).
//!
//! The full experiment sweeps five node counts under two placement
//! flavors; this benchmark times one representative 4-node replicated
//! serving run so `cargo bench` stays fast. Use `repro fig_fleet --full`
//! to regenerate the complete figure.

use criterion::{criterion_group, criterion_main, Criterion};
use recnmp_sim::serving::fleet::{serve_fleet, Fleet, FleetConfig, FleetDispatch};
use recnmp_sim::serving::{ArrivalProcess, QueryShape};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_fleet");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    // The experiment's quick-scale shape at 4 nodes with the two hottest
    // tables replicated fleet-wide: the configuration the scaling claim
    // rests on.
    let shape = QueryShape::new(12, 2, 6)
        .with_table_skew(1.2)
        .with_table_sampling(3);
    let cfg = FleetConfig {
        process: ArrivalProcess::Poisson,
        qps: 8_000.0,
        queries: 48,
        shape,
        dispatch: FleetDispatch::replicated(2),
        seed: 7,
    };
    group.bench_function("kernel", |b| {
        b.iter(|| {
            let mut fleet = Fleet::reference(4);
            let report = serve_fleet(&mut fleet, &cfg).expect("fleet serving run");
            criterion::black_box(report)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
