//! Criterion benchmark for the `fig19_placement` experiment (sharded
//! scatter/gather serving under table placement).
//!
//! The full experiment sweeps three placement policies over a 4-channel
//! cluster; this benchmark times one representative sharded serving run
//! so `cargo bench` stays fast. Use `repro fig19_placement --full` to
//! regenerate the complete figure.

use criterion::{criterion_group, criterion_main, Criterion};
use recnmp::{RecNmpCluster, RecNmpClusterConfig};
use recnmp_backend::PlacementPolicy;
use recnmp_sim::serving::{serve, QueryShape, ServingConfig, ServingMode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig19_placement");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let mut cfg = ServingConfig::poisson(500_000.0, 16, QueryShape::reference_skewed(), 7);
    cfg.mode = ServingMode::sharded(PlacementPolicy::FrequencyBalanced { replicate: 1 });
    group.bench_function("kernel", |b| {
        b.iter(|| {
            let config = RecNmpClusterConfig::builder()
                .channels(4)
                .dimms(1)
                .ranks_per_dimm(2)
                .refresh(false)
                .build()
                .expect("cluster config");
            let mut cluster = RecNmpCluster::new(config).expect("cluster");
            let report = serve(&mut cluster, &cfg).expect("sharded serving run");
            criterion::black_box(report)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
