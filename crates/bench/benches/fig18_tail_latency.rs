//! Criterion benchmark for the `fig18_tail_latency` experiment (serving
//! tail latency).
//!
//! The full experiment sweeps backends x policies x load points; this
//! benchmark times one representative open-loop serving run on the host
//! baseline so `cargo bench` stays fast. Use
//! `repro fig18_tail_latency --full` to regenerate the complete figure.

use criterion::{criterion_group, criterion_main, Criterion};
use recnmp_baselines::HostBaseline;
use recnmp_sim::serving::{serve, QueryShape, ServingConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_tail_latency");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let cfg = ServingConfig::poisson(1_000_000.0, 24, QueryShape::new(2, 2, 8), 7);
    group.bench_function("kernel", |b| {
        b.iter(|| {
            let mut host = HostBaseline::new(1, 2).expect("host config");
            let report = serve(&mut host, &cfg).expect("serving run");
            criterion::black_box(report)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
