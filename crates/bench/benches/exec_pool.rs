//! Criterion micro-benchmark for the deterministic execution engine.
//!
//! Two questions decide whether the worker pool is fit to carry every
//! parallel site in the simulator: what does a submit → execute →
//! collect round trip cost relative to just calling the closures
//! (dispatch overhead), and does routing a multi-channel cluster run
//! through the pool cost anything when the pool is inline
//! (`workers = 1`), the configuration every per-channel `sim_cycles`
//! golden is pinned at? Regressions here show up as wall-clock drift
//! in `BENCH_throughput.json` without moving any simulated cycle
//! count.

use criterion::{criterion_group, criterion_main, Criterion};
use recnmp::{RecNmpCluster, RecNmpClusterConfig};
use recnmp_backend::{SlsBackend, SlsTrace};
use recnmp_exec::{Batch, ExecPool};
use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, SlsBatch, TraceGenerator};
use recnmp_types::{PhysAddr, TableId};

/// ~1us of integer busywork, roughly one short channel task.
fn busywork(salt: u64) -> u64 {
    let mut acc = salt;
    for k in 0..600u64 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
    }
    acc
}

fn workload(tables: u32) -> SlsTrace {
    let batches: Vec<SlsBatch> = (0..tables)
        .map(|t| {
            TraceGenerator::new(
                TableId::new(t),
                EmbeddingTableSpec::dlrm_default(),
                IndexDistribution::Zipf { s: 0.9 },
                91 + t as u64,
            )
            .batch(2, 16)
        })
        .collect();
    SlsTrace::from_batches(&batches, &mut |t, row| {
        PhysAddr::new(((t as u64) << 31) ^ (row * 131 * 128))
    })
}

fn cluster(channels: usize) -> RecNmpCluster {
    let config = RecNmpClusterConfig::builder()
        .channels(channels)
        .dimms(1)
        .ranks_per_dimm(2)
        .refresh(false)
        .build()
        .expect("geometry");
    RecNmpCluster::new(config).expect("cluster")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_pool");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // Round-trip cost of a 64-task batch on the inline engine and on a
    // 2-worker pool, with reused Batch storage (the steady state the
    // allocation guard pins).
    for workers in [1usize, 2] {
        let pool = ExecPool::new(workers).expect("pool");
        let handle = pool.handle();
        let mut batch = Batch::new();
        let mut salt = 0u64;
        group.bench_function(&format!("dispatch_64/workers{workers}"), |b| {
            b.iter(|| {
                salt += 1;
                for i in 0..64u64 {
                    let s = salt.wrapping_mul(64).wrapping_add(i);
                    batch.push(move || Ok(busywork(s)));
                }
                handle.run_batch(&mut batch);
                let mut sum = 0u64;
                for r in batch.drain() {
                    sum = sum.wrapping_add(r.expect("task"));
                }
                criterion::black_box(sum)
            })
        });
    }

    // A 16-channel cluster run routed through the engine — the path
    // every golden and every BENCH_throughput row takes.
    for workers in [1usize, 2] {
        let pool = ExecPool::new(workers).expect("pool");
        let trace = workload(16);
        let mut sim = cluster(16);
        group.bench_function(&format!("cluster16/workers{workers}"), |b| {
            b.iter(|| {
                let report = recnmp_exec::with_pool(&pool, || sim.run(&trace));
                criterion::black_box(report.total_cycles)
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
