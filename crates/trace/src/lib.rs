//! Embedding-lookup trace generation and locality tooling.
//!
//! The paper characterizes and evaluates RecNMP with *production embedding
//! traces* (T1–T8, from Eisenman et al.) that are not publicly available.
//! Per the substitution policy in `DESIGN.md`, this crate synthesizes
//! traces that reproduce the two properties the paper's results depend on:
//!
//! * **modest temporal reuse** — hit rates between 20% and 60% on 8–64 MiB
//!   caches, increasing with capacity (Figure 7(a)), concentrated in a
//!   small set of hot entries (the basis of hot-entry profiling), and
//! * **negligible spatial locality** — hit rates *decrease* as the line
//!   size grows (Figure 7(b)), because neighboring rows of a hot row are
//!   cold.
//!
//! The generator model is a Zipf-distributed row popularity with a
//! per-table skew parameter, composed with a multiplicative permutation
//! that scatters hot rows across the table's address space (destroying
//! artificial spatial locality). Eight presets T1–T8 span the skew range so
//! that co-located combinations (Comb-8/16/32/64, Section II-F) land in
//! the paper's hit-rate band.
//!
//! The crate also provides:
//!
//! * [`SlsBatch`] / [`Pooling`] — the workload unit consumed by the SLS
//!   operators and the NMP packet builder,
//! * [`comb::CombTrace`] — co-located multi-table interleaving,
//! * [`paging::PageMapper`] — the simplified OS page mapping of the
//!   paper's methodology (random free physical page per logical page) plus
//!   the page-coloring variant used in Figure 14(a), and
//! * [`profile::HotEntryProfiler`] — the hot-entry profiling step that
//!   produces `LocalityBit` hints.

pub mod batch;
pub mod comb;
pub mod gen;
pub mod paging;
pub mod production;
pub mod profile;
pub mod spec;

pub use batch::{Pooling, SlsBatch};
pub use comb::{CombTrace, Lookup};
pub use gen::{IndexDistribution, TraceGenerator};
pub use paging::PageMapper;
pub use production::{production_table, production_tables, ProductionTable};
pub use profile::HotEntryProfiler;
pub use spec::EmbeddingTableSpec;
