//! Simplified OS page mapping.
//!
//! The paper's methodology (Section IV): "we apply a standard page mapping
//! method to generate the physical addresses from a trace of embedding
//! lookups by assuming the OS randomly selects free physical pages for
//! each logical page frame." Figure 14(a) additionally evaluates *page
//! coloring*, which constrains each table's pages to physical frames that
//! map to a single rank, eliminating rank load imbalance.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::collections::HashSet;

use recnmp_types::rng::DetRng;
use recnmp_types::PhysAddr;

/// Page size used by the mapper (4 KiB, as in the paper's methodology).
pub const PAGE_BYTES: u64 = 4096;

/// A page-coloring predicate: maps a physical frame number to its color.
pub type ColorFn = fn(u64) -> u32;

/// Lazily maps logical pages to randomly selected free physical pages.
///
/// # Examples
///
/// ```
/// use recnmp_trace::PageMapper;
///
/// let mut m = PageMapper::new(1 << 24, 7); // 64 GiB of physical pages
/// let a = m.translate(0x1234);
/// let b = m.translate(0x1234);
/// assert_eq!(a, b); // stable mapping
/// assert_eq!(a.page_offset(), 0x234); // offset preserved
/// ```
#[derive(Debug, Clone)]
pub struct PageMapper {
    total_pages: u64,
    map: HashMap<u64, u64>,
    used: HashSet<u64>,
    rng: DetRng,
    /// Optional page-coloring constraint: physical frames must satisfy
    /// `color_of(frame) == want_color`.
    color: Option<(ColorFn, u32)>,
}

impl PageMapper {
    /// Creates a mapper over `total_pages` physical page frames.
    ///
    /// # Panics
    ///
    /// Panics if `total_pages` is zero.
    pub fn new(total_pages: u64, seed: u64) -> Self {
        assert!(total_pages > 0, "need at least one physical page");
        Self {
            total_pages,
            map: HashMap::new(),
            used: HashSet::new(),
            rng: DetRng::seed(seed),
            color: None,
        }
    }

    /// Creates a page-colored mapper: only physical frames whose
    /// `color_of(frame)` equals `want` are allocated. Used to pin an
    /// embedding table's pages to one rank (Figure 14(a)).
    pub fn colored(total_pages: u64, seed: u64, color_of: fn(u64) -> u32, want: u32) -> Self {
        let mut m = Self::new(total_pages, seed);
        m.color = Some((color_of, want));
        m
    }

    /// Number of distinct logical pages mapped so far.
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }

    /// Translates a logical byte address to a physical byte address,
    /// allocating a random free frame on first touch of each page.
    ///
    /// # Panics
    ///
    /// Panics if physical memory (satisfying the color constraint) is
    /// exhausted.
    pub fn translate(&mut self, logical: u64) -> PhysAddr {
        let lpage = logical / PAGE_BYTES;
        let offset = logical % PAGE_BYTES;
        let frame = match self.map.entry(lpage) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                // Rejection-sample a free frame; occupancy in our
                // experiments is far below capacity so this terminates
                // quickly.
                let mut attempts = 0u32;
                let frame = loop {
                    let cand = self.rng.below(self.total_pages);
                    let color_ok = match self.color {
                        Some((f, want)) => f(cand) == want,
                        None => true,
                    };
                    if color_ok && !self.used.contains(&cand) {
                        break cand;
                    }
                    attempts += 1;
                    assert!(
                        attempts < 100_000,
                        "physical memory exhausted (or color class empty)"
                    );
                };
                self.used.insert(frame);
                *e.insert(frame)
            }
        };
        PhysAddr::from_page(frame, offset)
    }

    /// Translates a whole logical trace.
    pub fn translate_all<I: IntoIterator<Item = u64>>(&mut self, logicals: I) -> Vec<PhysAddr> {
        logicals.into_iter().map(|l| self.translate(l)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_stable_and_offset_preserving() {
        let mut m = PageMapper::new(1000, 1);
        let a = m.translate(5 * PAGE_BYTES + 100);
        let b = m.translate(5 * PAGE_BYTES + 200);
        assert_eq!(a.page_frame(), b.page_frame());
        assert_eq!(a.page_offset(), 100);
        assert_eq!(b.page_offset(), 200);
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut m = PageMapper::new(10_000, 2);
        let frames: HashSet<u64> = (0..1000u64)
            .map(|p| m.translate(p * PAGE_BYTES).page_frame())
            .collect();
        assert_eq!(frames.len(), 1000);
        assert_eq!(m.mapped_pages(), 1000);
    }

    #[test]
    fn frames_are_scattered_not_sequential() {
        let mut m = PageMapper::new(1 << 20, 3);
        let frames: Vec<u64> = (0..100u64)
            .map(|p| m.translate(p * PAGE_BYTES).page_frame())
            .collect();
        let sequential = frames.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(sequential < 5, "suspiciously sequential: {sequential}");
    }

    #[test]
    fn colored_mapper_respects_color() {
        fn color(frame: u64) -> u32 {
            (frame % 4) as u32
        }
        let mut m = PageMapper::colored(1 << 16, 4, color, 3);
        for p in 0..500u64 {
            let f = m.translate(p * PAGE_BYTES).page_frame();
            assert_eq!(color(f), 3);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = PageMapper::new(1 << 16, 9);
        let mut b = PageMapper::new(1 << 16, 9);
        for p in 0..200u64 {
            assert_eq!(a.translate(p * 4096), b.translate(p * 4096));
        }
    }

    #[test]
    #[should_panic(expected = "physical memory exhausted")]
    fn exhaustion_panics() {
        let mut m = PageMapper::new(4, 5);
        for p in 0..5u64 {
            m.translate(p * PAGE_BYTES);
        }
    }
}
