//! Index-stream generators.

use rand_distr::{Distribution, Zipf};
use recnmp_types::rng::DetRng;
use recnmp_types::TableId;
use serde::{Deserialize, Serialize};

use crate::batch::{Pooling, SlsBatch};
use crate::spec::EmbeddingTableSpec;

/// Popularity distribution of embedding rows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IndexDistribution {
    /// Every row equally likely — the paper's "random trace" worst case.
    Uniform,
    /// Zipf-distributed popularity with skew `s`; rank 1 is the most
    /// popular row. Models the temporal reuse of production traffic.
    Zipf {
        /// Skew exponent (larger = more concentrated).
        s: f64,
    },
}

/// Deterministic generator of embedding-lookup indices for one table.
///
/// Popularity ranks are scattered over the row space with a multiplicative
/// permutation, so hot rows are spread across pages, banks and cache sets
/// — matching the paper's observation that embedding lookups have
/// essentially no spatial locality.
///
/// # Examples
///
/// ```
/// use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, TraceGenerator};
/// use recnmp_types::TableId;
///
/// let spec = EmbeddingTableSpec::dlrm_default();
/// let mut g = TraceGenerator::new(TableId::new(0), spec, IndexDistribution::Zipf { s: 0.9 }, 42);
/// let batch = g.batch(4, 80); // 4 poolings of 80 lookups
/// assert_eq!(batch.poolings.len(), 4);
/// assert!(batch.poolings.iter().all(|p| p.indices.len() == 80));
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    table: TableId,
    spec: EmbeddingTableSpec,
    dist: IndexDistribution,
    rng: DetRng,
    /// Multiplier of the rank→row permutation (odd, coprime with `rows`).
    perm_mult: u64,
    /// Probability that a lookup re-references a recently drawn row — the
    /// *bursty temporal reuse* of production traffic that interleaved
    /// co-location destroys (and table-aware scheduling recovers).
    reuse_p: f64,
    /// Recent unique rows eligible for burst reuse.
    history: std::collections::VecDeque<u64>,
    history_cap: usize,
}

/// A large prime used to scatter popularity ranks over the row space.
const PERM_PRIME: u64 = 982_451_653;

impl TraceGenerator {
    /// Creates a generator with an explicit seed.
    pub fn new(
        table: TableId,
        spec: EmbeddingTableSpec,
        dist: IndexDistribution,
        seed: u64,
    ) -> Self {
        Self {
            table,
            spec,
            dist,
            rng: DetRng::seed(seed ^ (u32::from(table) as u64) << 32),
            perm_mult: PERM_PRIME,
            reuse_p: 0.0,
            history: std::collections::VecDeque::new(),
            history_cap: 0,
        }
    }

    /// Enables bursty temporal reuse: each lookup re-references one of the
    /// last `window` distinct rows with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn with_burst_reuse(mut self, p: f64, window: usize) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "reuse probability must be in [0,1)"
        );
        self.reuse_p = p;
        self.history_cap = window;
        self
    }

    /// The table this generator draws lookups for.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// The table spec.
    pub fn spec(&self) -> &EmbeddingTableSpec {
        &self.spec
    }

    /// The configured distribution.
    pub fn distribution(&self) -> IndexDistribution {
        self.dist
    }

    /// Maps a popularity rank (0 = hottest) to a scattered row index.
    pub fn rank_to_row(&self, rank: u64) -> u64 {
        debug_assert!(rank < self.spec.rows);
        (rank.wrapping_mul(self.perm_mult)) % self.spec.rows
    }

    /// Draws the next row index.
    pub fn next_index(&mut self) -> u64 {
        if self.reuse_p > 0.0 && !self.history.is_empty() && self.rng.chance(self.reuse_p) {
            let i = self.rng.below(self.history.len() as u64) as usize;
            return self.history[i];
        }
        let rank = match self.dist {
            IndexDistribution::Uniform => self.rng.below(self.spec.rows),
            IndexDistribution::Zipf { s } => {
                let z = Zipf::new(self.spec.rows, s).expect("valid Zipf parameters");
                let sample = z.sample(&mut self.rng) as u64;
                sample.clamp(1, self.spec.rows) - 1
            }
        };
        let row = self.rank_to_row(rank);
        if self.history_cap > 0 {
            if self.history.len() == self.history_cap {
                self.history.pop_front();
            }
            self.history.push_back(row);
        }
        row
    }

    /// Draws one pooling of `pooling_factor` indices.
    pub fn pooling(&mut self, pooling_factor: usize) -> Pooling {
        Pooling::unweighted((0..pooling_factor).map(|_| self.next_index()).collect())
    }

    /// Draws a full SLS batch: `batch_size` poolings of `pooling_factor`.
    pub fn batch(&mut self, batch_size: usize, pooling_factor: usize) -> SlsBatch {
        SlsBatch {
            table: self.table,
            spec: self.spec,
            poolings: (0..batch_size)
                .map(|_| self.pooling(pooling_factor))
                .collect(),
        }
    }

    /// Draws a flat sequence of `n` indices (used by locality studies).
    pub fn flat(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_index()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn spec() -> EmbeddingTableSpec {
        EmbeddingTableSpec::new(100_000, 64)
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = TraceGenerator::new(
            TableId::new(1),
            spec(),
            IndexDistribution::Zipf { s: 0.9 },
            7,
        );
        let mut b = TraceGenerator::new(
            TableId::new(1),
            spec(),
            IndexDistribution::Zipf { s: 0.9 },
            7,
        );
        assert_eq!(a.flat(100), b.flat(100));
    }

    #[test]
    fn different_tables_get_different_streams() {
        let mut a = TraceGenerator::new(TableId::new(0), spec(), IndexDistribution::Uniform, 7);
        let mut b = TraceGenerator::new(TableId::new(1), spec(), IndexDistribution::Uniform, 7);
        assert_ne!(a.flat(50), b.flat(50));
    }

    #[test]
    fn indices_stay_in_range() {
        let mut g = TraceGenerator::new(
            TableId::new(0),
            spec(),
            IndexDistribution::Zipf { s: 1.2 },
            3,
        );
        for i in g.flat(10_000) {
            assert!(i < spec().rows);
        }
    }

    #[test]
    fn zipf_is_skewed_uniform_is_not() {
        let count_top = |dist, seed| {
            let mut g = TraceGenerator::new(TableId::new(0), spec(), dist, seed);
            let mut counts: HashMap<u64, u64> = HashMap::new();
            for i in g.flat(20_000) {
                *counts.entry(i).or_default() += 1;
            }
            let mut v: Vec<u64> = counts.values().copied().collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v.iter().take(10).sum::<u64>()
        };
        let zipf_top = count_top(IndexDistribution::Zipf { s: 1.0 }, 5);
        let unif_top = count_top(IndexDistribution::Uniform, 5);
        assert!(
            zipf_top > 4 * unif_top,
            "zipf {zipf_top} vs uniform {unif_top}"
        );
    }

    #[test]
    fn permutation_scatters_hot_ranks() {
        let g = TraceGenerator::new(TableId::new(0), spec(), IndexDistribution::Uniform, 1);
        // Consecutive popularity ranks map to rows far apart.
        let r0 = g.rank_to_row(0);
        let r1 = g.rank_to_row(1);
        let r2 = g.rank_to_row(2);
        assert!(r0.abs_diff(r1) > 1000);
        assert!(r1.abs_diff(r2) > 1000);
    }

    #[test]
    fn permutation_is_injective_on_prefix() {
        let g = TraceGenerator::new(TableId::new(0), spec(), IndexDistribution::Uniform, 1);
        let rows: std::collections::HashSet<u64> = (0..10_000).map(|r| g.rank_to_row(r)).collect();
        assert_eq!(rows.len(), 10_000);
    }

    #[test]
    fn batch_shape() {
        let mut g = TraceGenerator::new(TableId::new(2), spec(), IndexDistribution::Uniform, 9);
        let b = g.batch(8, 80);
        assert_eq!(b.table, TableId::new(2));
        assert_eq!(b.poolings.len(), 8);
        assert_eq!(b.total_lookups(), 8 * 80);
    }
}
