//! Embedding table shape descriptions.

use recnmp_types::ConfigError;
use serde::{Deserialize, Serialize};

/// Shape of one embedding table.
///
/// # Examples
///
/// ```
/// use recnmp_trace::EmbeddingTableSpec;
///
/// // The DLRM configuration: one million rows of 128-byte vectors.
/// let spec = EmbeddingTableSpec::dlrm_default();
/// assert_eq!(spec.bytes(), 128 * 1_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmbeddingTableSpec {
    /// Number of rows (embedding vectors).
    pub rows: u64,
    /// Bytes per embedding vector. Production sizes are 64–256 B; the
    /// paper's C/A analysis uses 64 B as the worst case.
    pub vector_bytes: u64,
}

impl EmbeddingTableSpec {
    /// Creates a spec.
    pub const fn new(rows: u64, vector_bytes: u64) -> Self {
        Self { rows, vector_bytes }
    }

    /// The configuration used throughout the paper's DLRM evaluation:
    /// 1,000,000 rows (Figure 2(b)) of 128-byte vectors — the 32-dim FP32
    /// embeddings of the open-source DLRM RM1/RM2 configurations. (The
    /// 64-byte case is the paper's *worst-case* C/A analysis; production
    /// vectors are 64–256 B.)
    pub const fn dlrm_default() -> Self {
        Self::new(1_000_000, 128)
    }

    /// The paper's worst-case 64-byte vector (one DRAM burst per lookup),
    /// used by the C/A bandwidth-expansion analysis.
    pub const fn worst_case_64b() -> Self {
        Self::new(1_000_000, 64)
    }

    /// Total table footprint in bytes.
    pub const fn bytes(&self) -> u64 {
        self.rows * self.vector_bytes
    }

    /// Number of 64-byte DRAM bursts needed to read one vector.
    pub const fn bursts_per_vector(&self) -> u64 {
        self.vector_bytes.div_ceil(64)
    }

    /// Byte offset of `row` within the table.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_offset(&self, row: u64) -> u64 {
        assert!(row < self.rows, "row {row} out of range");
        row * self.vector_bytes
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if either dimension is zero or the vector
    /// size is not a multiple of 4 (FP32 elements).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.rows == 0 {
            return Err(ConfigError::new("rows", "must be positive"));
        }
        if self.vector_bytes == 0 || !self.vector_bytes.is_multiple_of(4) {
            return Err(ConfigError::new(
                "vector_bytes",
                "must be a positive multiple of 4",
            ));
        }
        Ok(())
    }

    /// Number of FP32 elements per vector.
    pub const fn dims(&self) -> usize {
        (self.vector_bytes / 4) as usize
    }
}

impl Default for EmbeddingTableSpec {
    fn default() -> Self {
        Self::dlrm_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_dlrm() {
        let s = EmbeddingTableSpec::default();
        assert_eq!(s.rows, 1_000_000);
        assert_eq!(s.vector_bytes, 128);
        assert_eq!(s.dims(), 32);
        assert_eq!(s.bursts_per_vector(), 2);
        assert!(s.validate().is_ok());
        assert_eq!(EmbeddingTableSpec::worst_case_64b().bursts_per_vector(), 1);
    }

    #[test]
    fn bursts_round_up() {
        assert_eq!(EmbeddingTableSpec::new(10, 64).bursts_per_vector(), 1);
        assert_eq!(EmbeddingTableSpec::new(10, 128).bursts_per_vector(), 2);
        assert_eq!(EmbeddingTableSpec::new(10, 100).bursts_per_vector(), 2);
    }

    #[test]
    fn row_offset_scales() {
        let s = EmbeddingTableSpec::new(10, 128);
        assert_eq!(s.row_offset(3), 384);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_offset_checks_bounds() {
        EmbeddingTableSpec::new(10, 64).row_offset(10);
    }

    #[test]
    fn validate_rejects_bad_vector() {
        assert!(EmbeddingTableSpec::new(10, 62).validate().is_err());
        assert!(EmbeddingTableSpec::new(0, 64).validate().is_err());
    }
}
