//! Co-located multi-table trace interleaving (the paper's Comb-N setups).
//!
//! Section II-F: "Comb-8 means that 8 embedding tables are running on the
//! machine and the T1–T8 traces are interleaved for the 8 embedding tables.
//! For Comb-16, Comb-32 and Comb-64 we multiply the 8 embedding tables 2,
//! 4 and 8 times." Each table occupies a contiguous logical address range.

use recnmp_types::rng::DetRng;
use recnmp_types::TableId;
use serde::{Deserialize, Serialize};

use crate::gen::TraceGenerator;

/// One lookup in a combined trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lookup {
    /// Which co-located table instance issued the lookup.
    pub table: TableId,
    /// Row index within that table.
    pub index: u64,
    /// Logical byte address of the row (tables laid out contiguously).
    pub logical_addr: u64,
}

/// A combined, interleaved trace over several co-located tables.
#[derive(Debug, Clone)]
pub struct CombTrace {
    lookups: Vec<Lookup>,
    table_bases: Vec<u64>,
    footprint: u64,
}

impl CombTrace {
    /// Interleaves `per_table` lookups from each generator.
    ///
    /// `multiplier` clones the generator set, modeling Comb-16/32/64 from
    /// the eight base tables (each clone is reseeded, so clones do not
    /// replay identical streams). Lookups are interleaved round-robin,
    /// matching the paper's interleaved-trace methodology.
    pub fn interleave(
        generators: &[TraceGenerator],
        multiplier: usize,
        per_table: usize,
        seed: u64,
    ) -> Self {
        assert!(!generators.is_empty(), "need at least one generator");
        assert!(multiplier >= 1, "multiplier must be at least 1");
        let mut rng = DetRng::seed(seed);

        // Build the co-located table instances with contiguous bases.
        let mut instances: Vec<TraceGenerator> = Vec::new();
        for m in 0..multiplier {
            for g in generators {
                let mut inst = g.clone();
                if m > 0 {
                    // Reseed clones so the repeated tables are independent.
                    inst = TraceGenerator::new(
                        TableId::new((instances.len()) as u32),
                        *g.spec(),
                        g.distribution(),
                        rng.next_stream(),
                    );
                }
                instances.push(inst);
            }
        }
        let mut table_bases = Vec::with_capacity(instances.len());
        let mut base = 0u64;
        for inst in &instances {
            table_bases.push(base);
            base += inst.spec().bytes();
        }
        let footprint = base;

        let mut lookups = Vec::with_capacity(per_table * instances.len());
        for _round in 0..per_table {
            for (t, inst) in instances.iter_mut().enumerate() {
                let index = inst.next_index();
                lookups.push(Lookup {
                    table: TableId::new(t as u32),
                    index,
                    logical_addr: table_bases[t] + index * inst.spec().vector_bytes,
                });
            }
        }
        Self {
            lookups,
            table_bases,
            footprint,
        }
    }

    /// The interleaved lookups.
    pub fn lookups(&self) -> &[Lookup] {
        &self.lookups
    }

    /// Number of co-located table instances.
    pub fn num_tables(&self) -> usize {
        self.table_bases.len()
    }

    /// Logical base address of table `t`.
    pub fn table_base(&self, t: usize) -> u64 {
        self.table_bases[t]
    }

    /// Total logical footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.footprint
    }

    /// Iterates over the logical addresses only.
    pub fn logical_addrs(&self) -> impl Iterator<Item = u64> + '_ {
        self.lookups.iter().map(|l| l.logical_addr)
    }
}

/// Extension: draw a fresh derived seed from a [`DetRng`].
trait NextStream {
    fn next_stream(&mut self) -> u64;
}

impl NextStream for DetRng {
    fn next_stream(&mut self) -> u64 {
        use rand::RngCore;
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::IndexDistribution;
    use crate::spec::EmbeddingTableSpec;

    fn gens(n: u32) -> Vec<TraceGenerator> {
        (0..n)
            .map(|t| {
                TraceGenerator::new(
                    TableId::new(t),
                    EmbeddingTableSpec::new(10_000, 64),
                    IndexDistribution::Zipf { s: 0.8 },
                    100 + t as u64,
                )
            })
            .collect()
    }

    #[test]
    fn interleave_round_robins_tables() {
        let c = CombTrace::interleave(&gens(4), 1, 10, 1);
        assert_eq!(c.num_tables(), 4);
        assert_eq!(c.lookups().len(), 40);
        for (i, l) in c.lookups().iter().enumerate() {
            assert_eq!(l.table.index(), i % 4);
        }
    }

    #[test]
    fn multiplier_clones_tables() {
        let c = CombTrace::interleave(&gens(8), 4, 5, 2);
        assert_eq!(c.num_tables(), 32);
        assert_eq!(c.footprint(), 32 * 10_000 * 64);
    }

    #[test]
    fn logical_addresses_fall_in_table_ranges() {
        let c = CombTrace::interleave(&gens(3), 1, 100, 3);
        for l in c.lookups() {
            let base = c.table_base(l.table.index());
            assert!(l.logical_addr >= base);
            assert!(l.logical_addr < base + 10_000 * 64);
            assert_eq!(l.logical_addr, base + l.index * 64);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = CombTrace::interleave(&gens(2), 2, 20, 9);
        let b = CombTrace::interleave(&gens(2), 2, 20, 9);
        assert_eq!(a.lookups(), b.lookups());
    }

    #[test]
    fn clones_are_not_identical_streams() {
        let c = CombTrace::interleave(&gens(1), 2, 50, 4);
        let t0: Vec<u64> = c
            .lookups()
            .iter()
            .filter(|l| l.table.index() == 0)
            .map(|l| l.index)
            .collect();
        let t1: Vec<u64> = c
            .lookups()
            .iter()
            .filter(|l| l.table.index() == 1)
            .map(|l| l.index)
            .collect();
        assert_ne!(t0, t1);
    }
}
