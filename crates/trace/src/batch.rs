//! SLS workload units: poolings and batches.

use recnmp_types::TableId;
use serde::{Deserialize, Serialize};

use crate::spec::EmbeddingTableSpec;

/// One pooling: the set of rows reduced into a single output vector.
///
/// Weighted SLS variants carry one weight per index; the unweighted
/// variants leave `weights` empty (implicitly all ones).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pooling {
    /// Row indices gathered by this pooling.
    pub indices: Vec<u64>,
    /// Optional per-index weights (same length as `indices` when present).
    pub weights: Vec<f32>,
}

impl Pooling {
    /// Creates an unweighted pooling.
    pub fn unweighted(indices: Vec<u64>) -> Self {
        Self {
            indices,
            weights: Vec::new(),
        }
    }

    /// Creates a weighted pooling.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn weighted(indices: Vec<u64>, weights: Vec<f32>) -> Self {
        assert_eq!(indices.len(), weights.len(), "one weight per index");
        Self { indices, weights }
    }

    /// Lookup count.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when the pooling gathers nothing.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Weight of lookup `i` (1.0 when unweighted).
    pub fn weight(&self, i: usize) -> f32 {
        self.weights.get(i).copied().unwrap_or(1.0)
    }
}

/// One SLS operator invocation: a batch of poolings against one table.
///
/// Matches the paper's operator signature (Figure 3):
/// `Output = SLS(Emb, Indices, Lengths)` where `Indices` is the
/// concatenation of all pooling index lists and `Lengths` gives each
/// pooling's size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlsBatch {
    /// Table the lookups target.
    pub table: TableId,
    /// Shape of that table.
    pub spec: EmbeddingTableSpec,
    /// The poolings (batch dimension).
    pub poolings: Vec<Pooling>,
}

impl SlsBatch {
    /// Batch size (number of poolings / output rows).
    pub fn batch_size(&self) -> usize {
        self.poolings.len()
    }

    /// Total lookups across all poolings.
    pub fn total_lookups(&self) -> usize {
        self.poolings.iter().map(Pooling::len).sum()
    }

    /// Flattened `Indices` vector (paper Figure 3).
    pub fn flat_indices(&self) -> Vec<u64> {
        self.poolings
            .iter()
            .flat_map(|p| p.indices.iter().copied())
            .collect()
    }

    /// The `Lengths` vector (paper Figure 3).
    pub fn lengths(&self) -> Vec<usize> {
        self.poolings.iter().map(Pooling::len).collect()
    }

    /// Bytes of embedding data gathered from memory (ignoring reuse).
    pub fn gathered_bytes(&self) -> u64 {
        self.total_lookups() as u64 * self.spec.vector_bytes
    }

    /// Bytes of output produced (one vector per pooling).
    pub fn output_bytes(&self) -> u64 {
        self.batch_size() as u64 * self.spec.vector_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> SlsBatch {
        SlsBatch {
            table: TableId::new(0),
            spec: EmbeddingTableSpec::new(100, 64),
            poolings: vec![
                Pooling::unweighted(vec![1, 2, 3]),
                Pooling::weighted(vec![4, 5], vec![0.5, 2.0]),
            ],
        }
    }

    #[test]
    fn shape_accessors() {
        let b = batch();
        assert_eq!(b.batch_size(), 2);
        assert_eq!(b.total_lookups(), 5);
        assert_eq!(b.flat_indices(), vec![1, 2, 3, 4, 5]);
        assert_eq!(b.lengths(), vec![3, 2]);
    }

    #[test]
    fn byte_accounting() {
        let b = batch();
        assert_eq!(b.gathered_bytes(), 5 * 64);
        assert_eq!(b.output_bytes(), 2 * 64);
    }

    #[test]
    fn weights_default_to_one() {
        let p = Pooling::unweighted(vec![7]);
        assert_eq!(p.weight(0), 1.0);
        let w = Pooling::weighted(vec![7], vec![0.25]);
        assert_eq!(w.weight(0), 0.25);
    }

    #[test]
    #[should_panic(expected = "one weight per index")]
    fn weighted_checks_lengths() {
        Pooling::weighted(vec![1, 2], vec![1.0]);
    }

    #[test]
    fn empty_pooling() {
        let p = Pooling::unweighted(vec![]);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }
}
