//! Hot-entry profiling (Section III-D).
//!
//! Before issuing a batch's SLS requests, the host profiles the index
//! vector and marks entries accessed more than `t` times with the
//! `LocalityBit`, letting cold vectors bypass the RankCache. The paper
//! sweeps `t` and keeps the value with the highest resulting hit rate; the
//! step costs under 2% of end-to-end time (modeled in the CPU perf layer).

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

/// Result of profiling one batch of indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotEntryProfile {
    /// Threshold used: entries with `count > threshold` are hot.
    pub threshold: u64,
    /// The hot row indices.
    pub hot: HashSet<u64>,
    /// Fraction of *accesses* (not rows) that target hot rows.
    pub hot_access_fraction: f64,
}

impl HotEntryProfile {
    /// Whether a row index should carry the `LocalityBit`.
    pub fn is_hot(&self, index: u64) -> bool {
        self.hot.contains(&index)
    }
}

/// Profiles index batches into `LocalityBit` hints.
#[derive(Debug, Clone, Copy, Default)]
pub struct HotEntryProfiler;

impl HotEntryProfiler {
    /// Creates a profiler.
    pub fn new() -> Self {
        Self
    }

    /// Marks rows referenced more than `threshold` times in `indices`.
    pub fn profile(&self, indices: &[u64], threshold: u64) -> HotEntryProfile {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for &i in indices {
            *counts.entry(i).or_default() += 1;
        }
        let hot: HashSet<u64> = counts
            .iter()
            .filter(|(_, &c)| c > threshold)
            .map(|(&i, _)| i)
            .collect();
        let hot_accesses: u64 = counts
            .iter()
            .filter(|(i, _)| hot.contains(i))
            .map(|(_, &c)| c)
            .sum();
        let hot_access_fraction = if indices.is_empty() {
            0.0
        } else {
            hot_accesses as f64 / indices.len() as f64
        };
        HotEntryProfile {
            threshold,
            hot,
            hot_access_fraction,
        }
    }

    /// Sweeps thresholds `0..=max_threshold` and returns the profile that
    /// maximizes the hit rate of an LRU cache with `cache_lines` lines when
    /// only hot entries are cached (the paper's selection procedure).
    pub fn sweep(
        &self,
        indices: &[u64],
        cache_lines: usize,
        max_threshold: u64,
    ) -> HotEntryProfile {
        let mut best: Option<(f64, HotEntryProfile)> = None;
        for t in 0..=max_threshold {
            let profile = self.profile(indices, t);
            let rate = simulate_hint_hit_rate(indices, &profile.hot, cache_lines);
            let better = match &best {
                None => true,
                Some((b, _)) => rate > *b,
            };
            if better {
                best = Some((rate, profile));
            }
        }
        best.expect("at least one threshold evaluated").1
    }
}

/// Simulates a small fully-associative LRU cache in which only hinted rows
/// allocate; returns the hit rate over all accesses.
fn simulate_hint_hit_rate(indices: &[u64], hot: &HashSet<u64>, cache_lines: usize) -> f64 {
    if indices.is_empty() || cache_lines == 0 {
        return 0.0;
    }
    let mut lru: Vec<u64> = Vec::with_capacity(cache_lines);
    let mut hits = 0u64;
    for &i in indices {
        if let Some(pos) = lru.iter().position(|&x| x == i) {
            lru.remove(pos);
            lru.insert(0, i);
            hits += 1;
        } else if hot.contains(&i) {
            lru.insert(0, i);
            if lru.len() > cache_lines {
                lru.pop();
            }
        }
    }
    hits as f64 / indices.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_filters_cold_rows() {
        let p = HotEntryProfiler::new();
        let indices = vec![1, 1, 1, 2, 2, 3];
        let prof = p.profile(&indices, 1);
        assert!(prof.is_hot(1));
        assert!(prof.is_hot(2));
        assert!(!prof.is_hot(3));
        assert!((prof.hot_access_fraction - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_zero_marks_everything() {
        let p = HotEntryProfiler::new();
        let prof = p.profile(&[5, 6, 7], 0);
        assert_eq!(prof.hot.len(), 3);
        assert_eq!(prof.hot_access_fraction, 1.0);
    }

    #[test]
    fn empty_batch_is_harmless() {
        let p = HotEntryProfiler::new();
        let prof = p.profile(&[], 1);
        assert!(prof.hot.is_empty());
        assert_eq!(prof.hot_access_fraction, 0.0);
    }

    #[test]
    fn sweep_prefers_filtering_under_contention() {
        // Two hot rows re-referenced heavily, interleaved with single-use
        // cold rows that would thrash a 2-line cache if allowed to
        // allocate. The best threshold must exclude the cold rows.
        let mut indices = Vec::new();
        for i in 0..50u64 {
            indices.push(1);
            indices.push(1000 + 2 * i);
            indices.push(2);
            indices.push(1001 + 2 * i);
        }
        let p = HotEntryProfiler::new();
        let prof = p.sweep(&indices, 2, 4);
        assert!(prof.threshold >= 1, "picked threshold {}", prof.threshold);
        assert!(prof.is_hot(1) && prof.is_hot(2));
        assert!(!prof.is_hot(1000));
    }

    #[test]
    fn hint_simulation_counts_resident_hits_only() {
        let hot: HashSet<u64> = [1].into_iter().collect();
        // 1 allocates, 2 never allocates.
        let rate = simulate_hint_hit_rate(&[1, 2, 1, 2, 1], &hot, 4);
        assert!((rate - 2.0 / 5.0).abs() < 1e-12);
    }
}
