//! Production-like table presets T1–T8.
//!
//! The paper evaluates locality on eight production embedding-table traces
//! (T1–T8) from Eisenman et al. Those traces are proprietary; these
//! presets are the calibrated synthetic substitutes described in
//! `DESIGN.md`. The skew parameters are chosen so that:
//!
//! * the Comb-8 interleave hits 20–60% on 8–64 MiB caches with hit rate
//!   increasing in capacity (Figure 7(a)),
//! * hit rate *decreases* with line size (Figure 7(b)),
//! * per-table hit rates on a 1 MiB cache span a wide range with T8
//!   distinctly the worst (Figure 12).

use recnmp_types::TableId;
use serde::{Deserialize, Serialize};

use crate::gen::{IndexDistribution, TraceGenerator};
use crate::spec::EmbeddingTableSpec;

/// Descriptor of one production-like table preset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProductionTable {
    /// Trace name (T1..T8).
    pub name: &'static str,
    /// Zipf skew calibrated against the paper's locality plots.
    pub zipf_s: f64,
    /// Bursty-reuse probability (recently used rows re-referenced).
    pub reuse_p: f64,
    /// Burst-reuse window (distinct recent rows).
    pub reuse_window: usize,
}

/// The eight presets, ordered T1 (most reuse) to T8 (least reuse).
pub const PRODUCTION_TABLES: [ProductionTable; 8] = [
    ProductionTable {
        name: "T1",
        zipf_s: 1.05,
        reuse_p: 0.35,
        reuse_window: 1024,
    },
    ProductionTable {
        name: "T2",
        zipf_s: 1.00,
        reuse_p: 0.32,
        reuse_window: 1024,
    },
    ProductionTable {
        name: "T3",
        zipf_s: 0.95,
        reuse_p: 0.30,
        reuse_window: 1024,
    },
    ProductionTable {
        name: "T4",
        zipf_s: 0.90,
        reuse_p: 0.28,
        reuse_window: 1024,
    },
    ProductionTable {
        name: "T5",
        zipf_s: 0.85,
        reuse_p: 0.25,
        reuse_window: 2048,
    },
    ProductionTable {
        name: "T6",
        zipf_s: 0.80,
        reuse_p: 0.22,
        reuse_window: 2048,
    },
    ProductionTable {
        name: "T7",
        zipf_s: 0.72,
        reuse_p: 0.18,
        reuse_window: 2048,
    },
    ProductionTable {
        name: "T8",
        zipf_s: 0.60,
        reuse_p: 0.10,
        reuse_window: 4096,
    },
];

/// Builds the generator for production-like trace `i` (0-based, T1..T8).
///
/// # Panics
///
/// Panics if `i >= 8`.
pub fn production_table(i: usize, spec: EmbeddingTableSpec, seed: u64) -> TraceGenerator {
    let preset = PRODUCTION_TABLES[i];
    TraceGenerator::new(
        TableId::new(i as u32),
        spec,
        IndexDistribution::Zipf { s: preset.zipf_s },
        seed.wrapping_add(0x9e37 * i as u64),
    )
    .with_burst_reuse(preset.reuse_p, preset.reuse_window)
}

/// Builds all eight production-like generators with the default DLRM spec.
pub fn production_tables(seed: u64) -> Vec<TraceGenerator> {
    (0..8)
        .map(|i| production_table(i, EmbeddingTableSpec::dlrm_default(), seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn eight_presets_in_decreasing_skew() {
        assert_eq!(PRODUCTION_TABLES.len(), 8);
        for w in PRODUCTION_TABLES.windows(2) {
            assert!(w[0].zipf_s > w[1].zipf_s);
        }
    }

    #[test]
    fn builders_produce_distinct_tables() {
        let gens = production_tables(11);
        assert_eq!(gens.len(), 8);
        for (i, g) in gens.iter().enumerate() {
            assert_eq!(g.table().index(), i);
        }
    }

    #[test]
    fn t1_has_more_reuse_than_t8() {
        let reuse = |i: usize| {
            let mut g = production_table(i, EmbeddingTableSpec::new(1_000_000, 64), 3);
            let mut counts: HashMap<u64, u64> = HashMap::new();
            for idx in g.flat(30_000) {
                *counts.entry(idx).or_default() += 1;
            }
            // Fraction of accesses that are re-references.
            1.0 - counts.len() as f64 / 30_000.0
        };
        let t1 = reuse(0);
        let t8 = reuse(7);
        assert!(t1 > t8 + 0.1, "T1 reuse {t1} vs T8 reuse {t8}");
    }
}
