//! Shared vocabulary types for the RecNMP simulator workspace.
//!
//! This crate holds the small, dependency-free building blocks used by every
//! other crate in the reproduction of *RecNMP: Accelerating Personalized
//! Recommendation with Near-Memory Processing* (ISCA 2020):
//!
//! * [`PhysAddr`] — a physical byte address in the simulated machine,
//! * identifier newtypes ([`TableId`], [`RankId`], ...),
//! * byte-size constants and helpers ([`units`]),
//! * a deterministic seeded RNG ([`rng::DetRng`]) used by all stochastic
//!   components so that every experiment is reproducible, and
//! * the common [`ConfigError`] type returned by constructors that validate
//!   their configuration.
//!
//! # Examples
//!
//! ```
//! use recnmp_types::{PhysAddr, units::MIB};
//!
//! let a = PhysAddr::new(3 * MIB);
//! assert_eq!(a.offset(64).get(), 3 * MIB + 64);
//! ```

pub mod addr;
pub mod error;
pub mod ids;
pub mod rng;
pub mod units;

pub use addr::PhysAddr;
pub use error::{ConfigError, SimError};
pub use ids::{DimmId, ModelId, NodeId, RankId, RequestId, TableId};
pub use units::ByteSize;

/// A simulator clock cycle count.
///
/// All cycle-level components in the workspace advance in units of the DRAM
/// clock (1200 MHz for DDR4-2400, i.e. 0.833 ns per cycle).
pub type Cycle = u64;
