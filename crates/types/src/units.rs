//! Byte-size and time constants used across the simulator.
//!
//! # Examples
//!
//! ```
//! use recnmp_types::units::{human_bytes, ByteSize, GIB, KIB};
//!
//! assert_eq!(human_bytes(64), "64 B");
//! assert_eq!(human_bytes(128 * KIB), "128.0 KiB");
//! assert_eq!(human_bytes(64 * GIB), "64.0 GiB");
//!
//! // Capacity configuration reads in the unit it is thought in.
//! assert_eq!(ByteSize::gib(16).get(), 16 * GIB);
//! assert_eq!(ByteSize::mib(64).to_string(), "64.0 MiB");
//! ```

use serde::{Deserialize, Serialize};

/// One kibibyte (1024 bytes).
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// Width of one DRAM data burst for a 64-bit channel with burst length 8.
pub const CACHELINE_BYTES: u64 = 64;

/// DDR4-2400 I/O clock frequency in Hz (commands and bursts are timed in
/// units of this clock; data moves on both edges).
pub const DDR4_2400_CLOCK_HZ: f64 = 1.2e9;

/// Seconds per DDR4-2400 clock cycle.
pub const DDR4_2400_CYCLE_SECS: f64 = 1.0 / DDR4_2400_CLOCK_HZ;

/// Converts a cycle count at the DDR4-2400 clock into nanoseconds.
pub fn cycles_to_ns(cycles: u64) -> f64 {
    cycles as f64 * DDR4_2400_CYCLE_SECS * 1e9
}

/// Converts a cycle count at the DDR4-2400 clock into microseconds — the
/// unit query-serving latency distributions are reported in.
pub fn cycles_to_us(cycles: u64) -> f64 {
    cycles as f64 * DDR4_2400_CYCLE_SECS * 1e6
}

/// Mean inter-arrival gap in simulator cycles for an offered query rate.
///
/// Open-loop load generators draw arrival gaps around this mean; at the
/// DDR4-2400 clock, 1 QPS is one query every 1.2e9 cycles.
///
/// # Panics
///
/// Panics when `qps` is not positive and finite.
pub fn qps_to_interarrival_cycles(qps: f64) -> f64 {
    assert!(
        qps.is_finite() && qps > 0.0,
        "offered QPS must be positive, got {qps}"
    );
    DDR4_2400_CLOCK_HZ / qps
}

/// Converts a span of simulator cycles and a completion count into a
/// throughput in queries per second. Returns zero when `cycles` is zero.
pub fn completions_to_qps(completions: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        0.0
    } else {
        completions as f64 * DDR4_2400_CLOCK_HZ / cycles as f64
    }
}

/// Converts bytes moved over a cycle span into GB/s at the DDR4-2400 clock.
///
/// Returns zero when `cycles` is zero.
pub fn bandwidth_gbs(bytes: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    bytes as f64 / (cycles as f64 * DDR4_2400_CYCLE_SECS) / 1e9
}

/// A byte capacity with unit-bearing constructors and human-readable
/// display — what capacity *configuration* (per-channel DRAM bounds,
/// storage-tier sizes, device buffers) is expressed in, instead of raw
/// `u64` byte counts whose unit lives in a comment.
///
/// In JSON reports a capacity is emitted as the plain byte count
/// ([`get`](Self::get)), so adopting it changes no report format.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(u64);

impl ByteSize {
    /// An exact byte count.
    pub const fn bytes(n: u64) -> Self {
        Self(n)
    }

    /// `n` kibibytes.
    pub const fn kib(n: u64) -> Self {
        Self(n * KIB)
    }

    /// `n` mebibytes.
    pub const fn mib(n: u64) -> Self {
        Self(n * MIB)
    }

    /// `n` gibibytes.
    pub const fn gib(n: u64) -> Self {
        Self(n * GIB)
    }

    /// The size in bytes.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl From<u64> for ByteSize {
    fn from(bytes: u64) -> Self {
        Self(bytes)
    }
}

impl From<ByteSize> for u64 {
    fn from(s: ByteSize) -> Self {
        s.0
    }
}

impl std::fmt::Display for ByteSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&human_bytes(self.0))
    }
}

/// Formats a byte count with a binary-unit suffix.
pub fn human_bytes(bytes: u64) -> String {
    if bytes >= GIB {
        format!("{:.1} GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.1} MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.1} KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(MIB, 1024 * 1024);
        assert_eq!(GIB, 1024 * 1024 * 1024);
    }

    #[test]
    fn cycles_to_ns_matches_clock() {
        // 1200 cycles at 1.2 GHz is exactly 1 microsecond.
        let ns = cycles_to_ns(1200);
        assert!((ns - 1000.0).abs() < 1e-9, "{ns}");
    }

    #[test]
    fn bandwidth_of_peak_channel() {
        // A DDR4-2400 64-bit channel moves 16 bytes per clock cycle
        // (8 bytes per edge), i.e. 19.2 GB/s peak.
        let bw = bandwidth_gbs(16 * 1_200_000_000, 1_200_000_000);
        assert!((bw - 19.2).abs() < 1e-6, "{bw}");
    }

    #[test]
    fn bandwidth_zero_cycles_is_zero() {
        assert_eq!(bandwidth_gbs(100, 0), 0.0);
    }

    #[test]
    fn serving_time_units_round_trip() {
        // 1200 cycles at 1.2 GHz is exactly 1 microsecond.
        assert!((cycles_to_us(1200) - 1.0).abs() < 1e-12);
        // 1 QPS means one arrival every 1.2e9 cycles.
        assert!((qps_to_interarrival_cycles(1.0) - 1.2e9).abs() < 1.0);
        // 1000 QPS: one arrival every 1.2e6 cycles.
        assert!((qps_to_interarrival_cycles(1000.0) - 1.2e6).abs() < 1e-3);
        // 10 completions over 1.2e9 cycles is 10 QPS.
        assert!((completions_to_qps(10, 1_200_000_000) - 10.0).abs() < 1e-9);
        assert_eq!(completions_to_qps(10, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "offered QPS must be positive")]
    fn qps_must_be_positive() {
        qps_to_interarrival_cycles(0.0);
    }

    #[test]
    fn byte_size_constructors_and_display() {
        assert_eq!(ByteSize::kib(8).get(), 8 * KIB);
        assert_eq!(ByteSize::mib(3).get(), 3 * MIB);
        assert_eq!(ByteSize::gib(2).get(), 2 * GIB);
        assert_eq!(ByteSize::bytes(777).get(), 777);
        assert_eq!(ByteSize::gib(2).to_string(), "2.0 GiB");
        assert_eq!(u64::from(ByteSize::from(4096u64)), 4096);
        assert!(ByteSize::mib(1) < ByteSize::gib(1));
    }

    #[test]
    fn human_bytes_selects_unit() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(8 * KIB), "8.0 KiB");
        assert_eq!(human_bytes(24 * MIB + MIB / 2), "24.5 MiB");
        assert_eq!(human_bytes(2 * GIB), "2.0 GiB");
    }
}
