//! Physical byte addresses in the simulated machine.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A physical byte address in the simulated memory system.
///
/// The newtype keeps physical addresses statically distinct from logical
/// embedding-table offsets and from decoded DRAM coordinates, which use
/// their own types in `recnmp-dram`.
///
/// # Examples
///
/// ```
/// use recnmp_types::PhysAddr;
///
/// let a = PhysAddr::new(0x1000);
/// assert_eq!(a.align_down(64), PhysAddr::new(0x1000));
/// assert_eq!(PhysAddr::new(0x1033).align_down(64), PhysAddr::new(0x1000));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte offset.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw byte offset.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    pub const fn offset(self, bytes: u64) -> Self {
        Self(self.0 + bytes)
    }

    /// Rounds the address down to a multiple of `align` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a power of two.
    pub fn align_down(self, align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        Self(self.0 & !(align - 1))
    }

    /// Returns the containing 4 KiB page frame number.
    pub const fn page_frame(self) -> u64 {
        self.0 >> 12
    }

    /// Returns the byte offset within the containing 4 KiB page.
    pub const fn page_offset(self) -> u64 {
        self.0 & 0xfff
    }

    /// Builds an address from a page frame number and an in-page offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is 4096 or larger.
    pub fn from_page(frame: u64, offset: u64) -> Self {
        assert!(offset < 4096, "page offset must be below 4096");
        Self((frame << 12) | offset)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

impl From<PhysAddr> for u64 {
    fn from(a: PhysAddr) -> Self {
        a.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_raw() {
        let a = PhysAddr::new(0xdead_beef);
        assert_eq!(u64::from(a), 0xdead_beef);
        assert_eq!(PhysAddr::from(0xdead_beefu64), a);
    }

    #[test]
    fn page_decomposition() {
        let a = PhysAddr::new(5 * 4096 + 123);
        assert_eq!(a.page_frame(), 5);
        assert_eq!(a.page_offset(), 123);
        assert_eq!(PhysAddr::from_page(5, 123), a);
    }

    #[test]
    fn align_down_masks_low_bits() {
        assert_eq!(PhysAddr::new(127).align_down(64).get(), 64);
        assert_eq!(PhysAddr::new(128).align_down(64).get(), 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn align_down_rejects_non_power_of_two() {
        let _ = PhysAddr::new(0).align_down(48);
    }

    #[test]
    #[should_panic(expected = "below 4096")]
    fn from_page_rejects_large_offset() {
        let _ = PhysAddr::from_page(0, 4096);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(PhysAddr::new(0x40).to_string(), "0x40");
    }
}
