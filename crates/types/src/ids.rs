//! Identifier newtypes shared across the workspace.
//!
//! Each identifier is a thin wrapper over an integer. The macro also derives
//! `Display`, ordering and hashing so the ids can be used directly as map
//! keys and in log output.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates the identifier from its integer index.
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the integer index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                Self(index)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> Self {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifies one embedding table within a workload.
    TableId,
    "T"
);
id_type!(
    /// Identifies one co-located model instance on a machine.
    ModelId,
    "M"
);
id_type!(
    /// Identifies a DRAM rank within a memory channel (DIMM-major order).
    RankId,
    "rank"
);
id_type!(
    /// Identifies a DIMM within a memory channel.
    DimmId,
    "dimm"
);
id_type!(
    /// Identifies one RecNMP node (a whole multi-channel cluster) within
    /// a serving fleet.
    NodeId,
    "node"
);

/// Identifies a memory request or NMP instruction in flight.
///
/// 64-bit because long simulations can issue billions of requests.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RequestId(u64);

impl RequestId {
    /// Creates the identifier from its integer index.
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the integer index.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the next sequential id.
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(TableId::new(3).to_string(), "T3");
        assert_eq!(RankId::new(0).to_string(), "rank0");
        assert_eq!(ModelId::new(7).to_string(), "M7");
        assert_eq!(DimmId::new(1).to_string(), "dimm1");
        assert_eq!(NodeId::new(2).to_string(), "node2");
        assert_eq!(RequestId::new(9).to_string(), "req9");
    }

    #[test]
    fn conversions_roundtrip() {
        let t = TableId::from(5u32);
        assert_eq!(u32::from(t), 5);
        assert_eq!(t.index(), 5);
    }

    #[test]
    fn request_id_next_increments() {
        assert_eq!(RequestId::new(1).next(), RequestId::new(2));
    }

    #[test]
    fn ids_order_by_index() {
        assert!(RankId::new(1) < RankId::new(2));
    }
}
