//! Deterministic random number generation.
//!
//! Every stochastic component in the workspace (trace generators, page
//! mappers, load generators) draws randomness through [`DetRng`], a small
//! deterministic generator seeded explicitly by the caller. This guarantees
//! that experiments are bit-reproducible across runs and platforms.
//!
//! The implementation wraps `rand`'s SplitMix64-style `SeedableRng` plumbing
//! around a hand-rolled xoshiro256** core so the stream is stable even if a
//! `rand` upgrade changes the default `StdRng` algorithm.

use rand::RngCore;

/// A deterministic xoshiro256** random number generator.
///
/// # Examples
///
/// ```
/// use rand::RngCore;
/// use recnmp_types::rng::DetRng;
///
/// let mut a = DetRng::seed(42);
/// let mut b = DetRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The full 256-bit state is expanded from the seed with SplitMix64 as
    /// recommended by the xoshiro authors, so nearby seeds produce
    /// uncorrelated streams.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent child generator, e.g. one per embedding table.
    pub fn fork(&mut self, stream: u64) -> Self {
        let base = self.next_u64();
        Self::seed(base ^ stream.wrapping_mul(0xa076_1d64_78bd_642f))
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method; unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::seed(1);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = DetRng::seed(2);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 800, "counts {counts:?}");
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = DetRng::seed(3);
        for _ in 0..10_000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = DetRng::seed(9);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seed(4);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = DetRng::seed(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
