//! Common error types.

use std::error::Error;
use std::fmt;

use crate::{Cycle, TableId};

/// Error returned by constructors that validate their configuration.
///
/// # Examples
///
/// ```
/// use recnmp_types::ConfigError;
///
/// let err = ConfigError::new("ranks_per_dimm", "must be a power of two");
/// assert_eq!(err.to_string(), "invalid `ranks_per_dimm`: must be a power of two");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    field: String,
    reason: String,
}

impl ConfigError {
    /// Creates an error naming the offending configuration field.
    pub fn new(field: impl Into<String>, reason: impl Into<String>) -> Self {
        Self {
            field: field.into(),
            reason: reason.into(),
        }
    }

    /// Returns the name of the offending field.
    pub fn field(&self) -> &str {
        &self.field
    }

    /// Returns the human-readable reason.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid `{}`: {}", self.field, self.reason)
    }
}

impl Error for ConfigError {}

/// Error returned when a simulation cannot make forward progress.
///
/// The cycle-level engines return this instead of aborting the process so
/// a scheduling livelock in one channel surfaces as a reportable result
/// (and, in a multi-channel run, does not take the whole fleet down).
///
/// # Examples
///
/// ```
/// use recnmp_types::SimError;
///
/// let err = SimError::Stalled { cycle: 120, pending: 3 };
/// assert!(err.to_string().contains("3 request(s) pending"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The memory engine stopped making forward progress: requests are
    /// pending but no future cycle exists at which any command could
    /// legally issue (or the configured no-progress bound was exceeded).
    Stalled {
        /// Cycle at which the stall was detected.
        cycle: u64,
        /// Requests still known to the controller.
        pending: usize,
    },
    /// An invalid configuration surfaced while preparing a run.
    Config(ConfigError),
    /// A simulation task panicked inside the execution engine.
    ///
    /// The deterministic worker pool (`recnmp-exec`) catches panics at
    /// the task boundary and surfaces them as an error instead of
    /// unwinding a worker thread — a poisoned channel or sweep point
    /// becomes a reportable failure, never a hang or a dead pool.
    TaskPanicked {
        /// Submission-order index of the task inside its batch.
        task: usize,
        /// The panic payload, when it was a string (the common
        /// `panic!`/`assert!` case); a placeholder otherwise.
        message: String,
    },
    /// One serving query could not be served: a table it touches had no
    /// surviving replica (every owning node was crashed) at dispatch
    /// time.
    ///
    /// Resilient serving aggregates these per query into the run report
    /// instead of aborting the run — one dead table fails one query, not
    /// the fleet.
    QueryFailed {
        /// Arrival-order index of the failed query.
        query: usize,
        /// The table whose replica set had no surviving node.
        table: TableId,
    },
    /// One serving query exhausted its retry budget: every attempt of
    /// some shard blew through the per-attempt deadline.
    DeadlineExceeded {
        /// Arrival-order index of the failed query.
        query: usize,
        /// Per-attempt deadline the shard could not meet, in cycles.
        deadline: Cycle,
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Stalled { cycle, pending } => write!(
                f,
                "simulation stalled at cycle {cycle} with {pending} request(s) pending"
            ),
            Self::Config(e) => write!(f, "{e}"),
            Self::TaskPanicked { task, message } => {
                write!(f, "simulation task {task} panicked: {message}")
            }
            Self::QueryFailed { query, table } => {
                write!(f, "query {query} failed: no surviving replica of {table}")
            }
            Self::DeadlineExceeded {
                query,
                deadline,
                attempts,
            } => write!(
                f,
                "query {query} exceeded its {deadline}-cycle deadline after {attempts} attempt(s)"
            ),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Stalled { .. }
            | Self::TaskPanicked { .. }
            | Self::QueryFailed { .. }
            | Self::DeadlineExceeded { .. } => None,
            Self::Config(e) => Some(e),
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_expose_parts() {
        let e = ConfigError::new("capacity", "must be nonzero");
        assert_eq!(e.field(), "capacity");
        assert_eq!(e.reason(), "must be nonzero");
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
        assert_err::<SimError>();
    }

    #[test]
    fn task_panicked_carries_index_and_payload() {
        let e = SimError::TaskPanicked {
            task: 3,
            message: "boom".to_string(),
        };
        assert_eq!(e.to_string(), "simulation task 3 panicked: boom");
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn query_failures_name_their_context() {
        let e = SimError::QueryFailed {
            query: 7,
            table: TableId::new(3),
        };
        assert_eq!(e.to_string(), "query 7 failed: no surviving replica of T3");
        assert!(Error::source(&e).is_none());
        let e = SimError::DeadlineExceeded {
            query: 9,
            deadline: 5_000,
            attempts: 3,
        };
        assert_eq!(
            e.to_string(),
            "query 9 exceeded its 5000-cycle deadline after 3 attempt(s)"
        );
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn sim_error_wraps_config_error() {
        let e: SimError = ConfigError::new("ranks", "must be positive").into();
        assert!(e.to_string().contains("ranks"));
        assert!(Error::source(&e).is_some());
    }
}
