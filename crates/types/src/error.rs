//! Common error types.

use std::error::Error;
use std::fmt;

/// Error returned by constructors that validate their configuration.
///
/// # Examples
///
/// ```
/// use recnmp_types::ConfigError;
///
/// let err = ConfigError::new("ranks_per_dimm", "must be a power of two");
/// assert_eq!(err.to_string(), "invalid `ranks_per_dimm`: must be a power of two");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    field: String,
    reason: String,
}

impl ConfigError {
    /// Creates an error naming the offending configuration field.
    pub fn new(field: impl Into<String>, reason: impl Into<String>) -> Self {
        Self {
            field: field.into(),
            reason: reason.into(),
        }
    }

    /// Returns the name of the offending field.
    pub fn field(&self) -> &str {
        &self.field
    }

    /// Returns the human-readable reason.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid `{}`: {}", self.field, self.reason)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_expose_parts() {
        let e = ConfigError::new("capacity", "must be nonzero");
        assert_eq!(e.field(), "capacity");
        assert_eq!(e.reason(), "must be nonzero");
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
    }
}
