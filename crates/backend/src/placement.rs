//! Embedding-table placement: which channel(s) each table lives on.
//!
//! The paper's premise is that embedding tables are capacity-bound (tens
//! of GBs, Figure 1) and access-skewed (Figure 7). A multi-channel system
//! therefore has a *placement* problem before it has a scheduling one:
//! tables must be assigned to channels under each channel's capacity, and
//! the assignment decides how evenly the hot traffic spreads. This module
//! makes that decision a first-class, inspectable artifact:
//!
//! * [`TableUsage`] — the per-table facts placement needs: footprint in
//!   bytes (from [`EmbeddingTableSpec`](recnmp_trace::EmbeddingTableSpec)
//!   sizes) and observed access counts (from a trace or a profile);
//! * [`PlacementPolicy`] — how tables map to channels: the legacy
//!   [`Hash`](PlacementPolicy::Hash) affinity, capacity-aware greedy
//!   bin-packing, or frequency-balanced placement that equalizes *hot*
//!   traffic and optionally replicates the hottest tables;
//! * [`PlacementPlan`] — the materialized assignment: each table's
//!   replica set, per-channel byte/access accounting, and deterministic
//!   replica picking for dispatch.
//!
//! A plan is built once per workload and consulted per batch — sharding
//! never recomputes a hash. [`SlsTrace::shard`](crate::SlsTrace::shard)
//! and the multi-channel cluster both dispatch through a plan.
//!
//! # Examples
//!
//! ```
//! use recnmp_backend::placement::{PlacementPlan, PlacementPolicy, TableUsage};
//! use recnmp_types::TableId;
//!
//! // One hot table and three cold ones on two channels.
//! let usage = vec![
//!     TableUsage::new(TableId::new(0), 1 << 20, 900),
//!     TableUsage::new(TableId::new(1), 1 << 20, 50),
//!     TableUsage::new(TableId::new(2), 1 << 20, 30),
//!     TableUsage::new(TableId::new(3), 1 << 20, 20),
//! ];
//! let plan = PlacementPlan::build(
//!     2,
//!     None,
//!     &usage,
//!     PlacementPolicy::FrequencyBalanced { replicate: 1 },
//! )
//! .unwrap();
//! // The hot table is replicated on both channels; every table is placed.
//! assert_eq!(plan.replicas(TableId::new(0)).len(), 2);
//! assert!(usage.iter().all(|u| !plan.replicas(u.table).is_empty()));
//! ```

use recnmp_types::{ConfigError, TableId};
use serde::{Deserialize, Serialize};

use crate::trace::SlsTrace;

pub mod fleet;
pub mod tiered;

/// The placement-relevant profile of one embedding table: how big it is
/// and how often a workload touches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableUsage {
    /// The table.
    pub table: TableId,
    /// Footprint in bytes (`rows * vector_bytes` of its spec).
    pub bytes: u64,
    /// Observed lookups targeting this table (trace/profile counts).
    pub accesses: u64,
}

impl TableUsage {
    /// Creates a usage record.
    pub const fn new(table: TableId, bytes: u64, accesses: u64) -> Self {
        Self {
            table,
            bytes,
            accesses,
        }
    }

    /// Aggregates per-table usage over one trace: footprints from the
    /// batch specs, access counts from the actual lookups.
    pub fn from_trace(trace: &SlsTrace) -> Vec<TableUsage> {
        Self::from_traces(std::slice::from_ref(trace))
    }

    /// Aggregates per-table usage over many traces (e.g. a query stream),
    /// sorted by table id.
    pub fn from_traces(traces: &[SlsTrace]) -> Vec<TableUsage> {
        let mut map: std::collections::BTreeMap<TableId, (u64, u64)> =
            std::collections::BTreeMap::new();
        for trace in traces {
            for tb in &trace.batches {
                let entry = map.entry(tb.table()).or_insert((0, 0));
                entry.0 = entry.0.max(tb.batch.spec.bytes());
                entry.1 += tb.lookups();
            }
        }
        map.into_iter()
            .map(|(table, (bytes, accesses))| TableUsage::new(table, bytes, accesses))
            .collect()
    }
}

/// Subtracts expected host-cache-absorbed traffic from a usage profile,
/// yielding the *residual* per-table accesses that will actually reach
/// the channels. `absorbed` pairs tables with the lookup counts a
/// host-side hot-embedding cache is expected to serve (typically from a
/// dry-run of the cache over the query stream); tables not listed absorb
/// nothing. This is what makes placement cache-aware: balancing residual
/// load keeps a table's *post-cache* traffic and its shard co-resident
/// instead of over-weighting hot tables whose heat the host cache
/// already soaks up (RecFlash-style frequency mapping, net of caching).
///
/// # Errors
///
/// Returns a [`ConfigError`] when an absorbed entry names a table absent
/// from `tables`, when a table appears twice in `absorbed`, or when an
/// absorbed count exceeds the table's observed accesses — absorption can
/// never exceed what was offered.
pub fn apply_absorption(
    tables: &[TableUsage],
    absorbed: &[(TableId, u64)],
) -> Result<Vec<TableUsage>, ConfigError> {
    let mut seen = std::collections::BTreeSet::new();
    let mut residual = tables.to_vec();
    for &(table, count) in absorbed {
        if !seen.insert(table) {
            return Err(ConfigError::new(
                "placement",
                format!("table {table} listed twice in absorbed traffic"),
            ));
        }
        let u = residual
            .iter_mut()
            .find(|u| u.table == table)
            .ok_or_else(|| {
                ConfigError::new(
                    "placement",
                    format!("absorbed traffic names unprofiled table {table}"),
                )
            })?;
        if count > u.accesses {
            return Err(ConfigError::new(
                "placement",
                format!(
                    "table {table} absorbs {count} lookups but only {} were observed",
                    u.accesses
                ),
            ));
        }
        u.accesses -= count;
    }
    Ok(residual)
}

/// How tables are assigned to channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PlacementPolicy {
    /// Deterministic table affinity: table `t` lives on channel
    /// `t mod channels` — the stateless hash the cluster used before
    /// placement existed, kept as the baseline.
    #[default]
    Hash,
    /// Capacity-aware greedy bin-packing: tables are placed largest-first
    /// onto the channel with the fewest placed bytes that still fits —
    /// balances *footprint*, blind to traffic.
    CapacityGreedy,
    /// Frequency-balanced: tables are placed hottest-first onto the
    /// channel with the least accumulated *access* load, so hot traffic
    /// spreads evenly. The `replicate` hottest tables are additionally
    /// replicated onto every channel they fit on; dispatch picks one
    /// replica per batch with a deterministic replica-picker.
    FrequencyBalanced {
        /// Number of hottest tables to replicate across channels.
        replicate: usize,
    },
}

impl PlacementPolicy {
    /// Short stable label for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::Hash => "hash",
            PlacementPolicy::CapacityGreedy => "capacity-greedy",
            PlacementPolicy::FrequencyBalanced { .. } => "frequency-balanced",
        }
    }

    /// The three canonical policies compared by the placement experiments
    /// (frequency-balanced with one replicated hot table).
    pub const COMPARED: [PlacementPolicy; 3] = [
        PlacementPolicy::Hash,
        PlacementPolicy::CapacityGreedy,
        PlacementPolicy::FrequencyBalanced { replicate: 1 },
    ];
}

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The materialized table→channel assignment of one workload.
///
/// Built once (from [`TableUsage`] under a [`PlacementPolicy`] and an
/// optional per-channel byte capacity) and consulted per batch; every
/// lookup is O(log tables). Replica sets are sorted channel lists, and
/// [`channel_for`](Self::channel_for) picks among replicas
/// deterministically, so a plan makes sharding reproducible by
/// construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementPlan {
    channels: usize,
    policy: PlacementPolicy,
    capacity: Option<u64>,
    /// `(table, replica channels)` sorted by table id for binary search.
    entries: Vec<(TableId, Vec<usize>)>,
    /// Placed bytes per channel (replicas count fully on each channel).
    bytes: Vec<u64>,
    /// Access load per channel (a replicated table's accesses split
    /// evenly across its replicas).
    load: Vec<f64>,
}

impl PlacementPlan {
    /// Builds a plan placing `tables` on `channels` channels under
    /// `policy`, with an optional per-channel byte `capacity`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `channels` is zero, when a table
    /// appears twice in `tables`, or when a table does not fit on any
    /// channel under the capacity bound. (Under
    /// [`PlacementPolicy::Hash`] the channel is fixed by the table id, so
    /// the capacity check applies to that one channel.)
    pub fn build(
        channels: usize,
        capacity: Option<u64>,
        tables: &[TableUsage],
        policy: PlacementPolicy,
    ) -> Result<Self, ConfigError> {
        if channels == 0 {
            return Err(ConfigError::new("placement", "need at least one channel"));
        }
        let mut plan = Self {
            channels,
            policy,
            capacity,
            entries: Vec::with_capacity(tables.len()),
            bytes: vec![0; channels],
            load: vec![0.0; channels],
        };
        let mut seen = std::collections::BTreeSet::new();
        for u in tables {
            if !seen.insert(u.table) {
                return Err(ConfigError::new(
                    "placement",
                    format!("table {} profiled twice", u.table),
                ));
            }
        }

        let mut order: Vec<&TableUsage> = tables.iter().collect();
        match policy {
            PlacementPolicy::Hash => {
                for u in &order {
                    let c = u.table.index() % channels;
                    if !plan.fits(c, u.bytes) {
                        return Err(plan.overflow(u));
                    }
                    plan.place(u, vec![c]);
                }
            }
            PlacementPolicy::CapacityGreedy => {
                // Largest-first onto the least-full channel that fits —
                // the classic greedy bin-balancing heuristic.
                order.sort_by_key(|u| (std::cmp::Reverse(u.bytes), u.table));
                for u in order {
                    let c = (0..channels)
                        .filter(|&c| plan.fits(c, u.bytes))
                        .min_by_key(|&c| (plan.bytes[c], c))
                        .ok_or_else(|| plan.overflow(u))?;
                    plan.place(u, vec![c]);
                }
            }
            PlacementPolicy::FrequencyBalanced { replicate } => {
                // Hottest-first. The `replicate` hottest tables go on
                // every channel with room (at least one); the rest join
                // the channel with the least accumulated access load.
                order.sort_by_key(|u| (std::cmp::Reverse(u.accesses), u.table));
                for (rank, u) in order.into_iter().enumerate() {
                    let replicas: Vec<usize> = if rank < replicate {
                        (0..channels).filter(|&c| plan.fits(c, u.bytes)).collect()
                    } else {
                        (0..channels)
                            .filter(|&c| plan.fits(c, u.bytes))
                            .min_by(|&a, &b| {
                                plan.load[a]
                                    .total_cmp(&plan.load[b])
                                    .then(plan.bytes[a].cmp(&plan.bytes[b]))
                                    .then(a.cmp(&b))
                            })
                            .map(|c| vec![c])
                            .unwrap_or_default()
                    };
                    if replicas.is_empty() {
                        return Err(plan.overflow(u));
                    }
                    plan.place(u, replicas);
                }
            }
        }
        plan.entries.sort_by_key(|(t, _)| *t);
        Ok(plan)
    }

    /// Builds a cache-aware plan: like [`build`](Self::build), but load
    /// balancing weighs each table by its *residual* accesses after the
    /// expected host-cache absorption (see [`apply_absorption`]).
    /// Footprints and capacity bounds are unchanged — the cache absorbs
    /// traffic, not bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] under the conditions of
    /// [`build`](Self::build) and [`apply_absorption`].
    pub fn build_with_absorption(
        channels: usize,
        capacity: Option<u64>,
        tables: &[TableUsage],
        absorbed: &[(TableId, u64)],
        policy: PlacementPolicy,
    ) -> Result<Self, ConfigError> {
        let residual = apply_absorption(tables, absorbed)?;
        Self::build(channels, capacity, &residual, policy)
    }

    /// Whether `bytes` more fit on channel `c` under the capacity bound.
    fn fits(&self, c: usize, bytes: u64) -> bool {
        self.capacity.is_none_or(|cap| self.bytes[c] + bytes <= cap)
    }

    fn overflow(&self, u: &TableUsage) -> ConfigError {
        ConfigError::new(
            "placement",
            format!(
                "no channel can hold table {} ({} bytes) under the per-channel capacity of \
                 {} bytes (placed bytes per channel: {:?})",
                u.table,
                u.bytes,
                self.capacity.unwrap_or(0),
                self.bytes,
            ),
        )
    }

    /// Records `u` on `replicas`, updating the capacity/load accounting.
    fn place(&mut self, u: &TableUsage, replicas: Vec<usize>) {
        debug_assert!(!replicas.is_empty());
        let share = u.accesses as f64 / replicas.len() as f64;
        for &c in &replicas {
            self.bytes[c] += u.bytes;
            self.load[c] += share;
        }
        self.entries.push((u.table, replicas));
    }

    /// Number of channels the plan places onto.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The policy the plan was built under.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// The per-channel byte capacity, if bounded.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }

    /// Number of placed tables.
    pub fn tables(&self) -> usize {
        self.entries.len()
    }

    /// The sorted replica channels of `table`; empty when the table is
    /// not in the plan.
    pub fn replicas(&self, table: TableId) -> &[usize] {
        match self.entries.binary_search_by_key(&table, |(t, _)| *t) {
            Ok(i) => &self.entries[i].1,
            Err(_) => &[],
        }
    }

    /// The deterministic replica-picker: the channel serving a batch for
    /// `table` given a dispatch `salt` (e.g. the batch's arrival index).
    /// Unreplicated tables always return their one channel; replicated
    /// tables rotate through their replica set. `None` for tables the
    /// plan does not place.
    pub fn channel_for(&self, table: TableId, salt: usize) -> Option<usize> {
        let reps = self.replicas(table);
        (!reps.is_empty()).then(|| reps[salt % reps.len()])
    }

    /// Bytes placed on channel `c` (replicas count fully).
    pub fn bytes_on(&self, c: usize) -> u64 {
        self.bytes[c]
    }

    /// Access load attributed to channel `c` (replicated tables split
    /// their accesses evenly across replicas).
    pub fn load_on(&self, c: usize) -> f64 {
        self.load[c]
    }

    /// Access-load imbalance: busiest channel's load over the mean
    /// (1.0 = perfectly even; `channels` = everything on one channel).
    ///
    /// Degenerate-plan convention: a plan with zero total accesses and a
    /// single-channel plan are both perfectly even *by construction* —
    /// there is nothing to spread, or nowhere else to spread it — so both
    /// report exactly 1.0 rather than 0 or NaN. Tiered plans rely on this
    /// when reporting the metric per tier: an idle or one-unit tier reads
    /// as "even", comparable against loaded tiers.
    pub fn load_imbalance(&self) -> f64 {
        imbalance(&self.load)
    }

    /// Iterates `(table, replica channels)` in table-id order.
    pub fn assignments(&self) -> impl Iterator<Item = (TableId, &[usize])> {
        self.entries.iter().map(|(t, r)| (*t, r.as_slice()))
    }
}

/// Max-over-mean imbalance of a load vector under the degenerate-plan
/// convention documented on [`PlacementPlan::load_imbalance`]. Shared with
/// the [`tiered`] layer so per-tier imbalance follows the same rules.
pub(crate) fn imbalance(loads: &[f64]) -> f64 {
    let total: f64 = loads.iter().sum();
    if total == 0.0 || loads.len() == 1 {
        return 1.0;
    }
    let max = loads.iter().copied().fold(0.0f64, f64::max);
    max * loads.len() as f64 / total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(specs: &[(u32, u64, u64)]) -> Vec<TableUsage> {
        specs
            .iter()
            .map(|&(t, bytes, acc)| TableUsage::new(TableId::new(t), bytes, acc))
            .collect()
    }

    #[test]
    fn hash_matches_legacy_affinity() {
        let u = usage(&[(0, 10, 1), (1, 10, 1), (2, 10, 1), (5, 10, 1)]);
        let plan = PlacementPlan::build(3, None, &u, PlacementPolicy::Hash).unwrap();
        for t in [0u32, 1, 2, 5] {
            assert_eq!(plan.replicas(TableId::new(t)), &[t as usize % 3]);
        }
        assert_eq!(plan.tables(), 4);
    }

    #[test]
    fn capacity_greedy_balances_bytes_and_respects_capacity() {
        let u = usage(&[(0, 80, 1), (1, 60, 1), (2, 50, 1), (3, 40, 1)]);
        let plan = PlacementPlan::build(2, Some(120), &u, PlacementPolicy::CapacityGreedy).unwrap();
        // Largest-first: 80→ch0, 60→ch1, 50 fits only ch1 (80+50 > 120),
        // 40→ch0.
        assert_eq!(plan.bytes_on(0), 120);
        assert_eq!(plan.bytes_on(1), 110);
        // A table that fits nowhere errors.
        let big = usage(&[(0, 200, 1)]);
        assert!(PlacementPlan::build(2, Some(120), &big, PlacementPolicy::CapacityGreedy).is_err());
    }

    #[test]
    fn frequency_balanced_equalizes_hot_traffic() {
        // Strong skew: hash would stack tables 0 and 2 (load 100+20) on
        // their hash channels; frequency-balanced pairs hot with cold.
        let u = usage(&[(0, 10, 100), (1, 10, 50), (2, 10, 20), (3, 10, 10)]);
        let plan = PlacementPlan::build(
            2,
            None,
            &u,
            PlacementPolicy::FrequencyBalanced { replicate: 0 },
        )
        .unwrap();
        // 100→ch0, 50→ch1, 20→ch1, 10→ch1: loads 100 vs 80.
        assert_eq!(plan.load_on(0), 100.0);
        assert_eq!(plan.load_on(1), 80.0);
        let hash = PlacementPlan::build(2, None, &u, PlacementPolicy::Hash).unwrap();
        assert!(plan.load_imbalance() < hash.load_imbalance());
    }

    #[test]
    fn replication_splits_hot_load() {
        let u = usage(&[(0, 10, 90), (1, 10, 30), (2, 10, 30)]);
        let plan = PlacementPlan::build(
            3,
            None,
            &u,
            PlacementPolicy::FrequencyBalanced { replicate: 1 },
        )
        .unwrap();
        let reps = plan.replicas(TableId::new(0));
        assert_eq!(reps, &[0, 1, 2]);
        // The hot table's 90 accesses split 30 per replica; tables 1 and
        // 2 then join the least-loaded channels. No channel carries the
        // whole hot table, and total load is conserved.
        let loads: Vec<f64> = (0..3).map(|c| plan.load_on(c)).collect();
        assert_eq!(loads.iter().sum::<f64>(), 150.0);
        assert!(loads.iter().all(|&l| l < 90.0));
        // Deterministic replica rotation.
        assert_eq!(plan.channel_for(TableId::new(0), 0), Some(0));
        assert_eq!(plan.channel_for(TableId::new(0), 4), Some(1));
        assert_eq!(
            plan.channel_for(TableId::new(1), 7),
            plan.replicas(TableId::new(1)).first().copied()
        );
    }

    #[test]
    fn build_rejects_degenerate_inputs() {
        let u = usage(&[(0, 10, 1)]);
        assert!(PlacementPlan::build(0, None, &u, PlacementPolicy::Hash).is_err());
        let dup = usage(&[(0, 10, 1), (0, 10, 1)]);
        assert!(PlacementPlan::build(2, None, &dup, PlacementPolicy::Hash).is_err());
        // Hash placement also enforces capacity on its fixed channel.
        let fat = usage(&[(0, 100, 1), (2, 100, 1)]);
        assert!(PlacementPlan::build(2, Some(150), &fat, PlacementPolicy::Hash).is_err());
    }

    #[test]
    fn load_imbalance_convention_on_degenerate_plans() {
        // Zero-access plan: nothing to imbalance, reads as perfectly even.
        let cold = usage(&[(0, 10, 0), (1, 10, 0)]);
        let plan = PlacementPlan::build(2, None, &cold, PlacementPolicy::Hash).unwrap();
        assert_eq!(plan.load_imbalance(), 1.0);
        // Single-channel plan: the one channel always holds the mean.
        let hot = usage(&[(0, 10, 100), (1, 10, 5)]);
        let single = PlacementPlan::build(1, None, &hot, PlacementPolicy::Hash).unwrap();
        assert_eq!(single.load_imbalance(), 1.0);
        // Empty single-channel plan hits both conventions at once.
        let empty = PlacementPlan::build(1, None, &[], PlacementPolicy::Hash).unwrap();
        assert_eq!(empty.load_imbalance(), 1.0);
        // Loaded multi-channel plans are unchanged: all-on-one-channel
        // still reads `channels`.
        let stacked = usage(&[(0, 10, 60), (2, 10, 40)]);
        let skew = PlacementPlan::build(2, None, &stacked, PlacementPolicy::Hash).unwrap();
        assert_eq!(skew.load_imbalance(), 2.0);
    }

    #[test]
    fn absorption_rebalances_residual_load() {
        // Table 0 looks hottest (100 accesses) but the host cache absorbs
        // 95 of them; residual-aware placement treats table 1 as the hot
        // one and pairs 0 with it instead of giving 0 its own channel.
        let u = usage(&[(0, 10, 100), (1, 10, 50), (2, 10, 20), (3, 10, 10)]);
        let absorbed = [(TableId::new(0), 95)];
        let plan = PlacementPlan::build_with_absorption(
            2,
            None,
            &u,
            &absorbed,
            PlacementPolicy::FrequencyBalanced { replicate: 0 },
        )
        .unwrap();
        // Residual: 5, 50, 20, 10 → 50 alone, then 20+10+5 on the other.
        assert_eq!(plan.load_on(0) + plan.load_on(1), 85.0);
        assert_eq!(plan.replicas(TableId::new(1)).len(), 1);
        let blind = PlacementPlan::build(
            2,
            None,
            &u,
            PlacementPolicy::FrequencyBalanced { replicate: 0 },
        )
        .unwrap();
        // The blind plan isolates table 0; the aware plan does not.
        assert_ne!(
            plan.replicas(TableId::new(0)),
            blind.replicas(TableId::new(0))
        );
    }

    #[test]
    fn absorption_validates_its_inputs() {
        let u = usage(&[(0, 10, 100)]);
        // More absorbed than observed.
        assert!(apply_absorption(&u, &[(TableId::new(0), 101)]).is_err());
        // Unknown table.
        assert!(apply_absorption(&u, &[(TableId::new(9), 1)]).is_err());
        // Duplicate absorbed entry.
        assert!(apply_absorption(&u, &[(TableId::new(0), 1), (TableId::new(0), 1)]).is_err());
        // Exact absorption of everything is legal: the table goes cold.
        let residual = apply_absorption(&u, &[(TableId::new(0), 100)]).unwrap();
        assert_eq!(residual[0].accesses, 0);
        // Empty absorption is the identity.
        assert_eq!(apply_absorption(&u, &[]).unwrap(), u);
    }

    #[test]
    fn unknown_table_is_unplaced() {
        let u = usage(&[(0, 10, 1)]);
        let plan = PlacementPlan::build(2, None, &u, PlacementPolicy::Hash).unwrap();
        assert!(plan.replicas(TableId::new(9)).is_empty());
        assert_eq!(plan.channel_for(TableId::new(9), 0), None);
    }

    #[test]
    fn usage_aggregates_traces() {
        use recnmp_trace::{EmbeddingTableSpec, Pooling, SlsBatch};
        use recnmp_types::PhysAddr;
        let batch = |t: u32, lookups: u64| SlsBatch {
            table: TableId::new(t),
            spec: EmbeddingTableSpec::new(1000, 128),
            poolings: vec![Pooling::unweighted((0..lookups).collect())],
        };
        let mk = |batches: &[SlsBatch]| {
            SlsTrace::from_batches(batches, &mut |_, row| PhysAddr::new(row * 128))
        };
        let a = mk(&[batch(0, 5), batch(1, 3)]);
        let b = mk(&[batch(0, 2)]);
        let usage = TableUsage::from_traces(&[a, b]);
        assert_eq!(usage.len(), 2);
        assert_eq!(usage[0], TableUsage::new(TableId::new(0), 128_000, 7));
        assert_eq!(usage[1].accesses, 3);
    }
}
