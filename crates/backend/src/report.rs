//! The unified run report shared by every execution backend.

use recnmp_cache::CacheStats;
use recnmp_dram::DramStats;
use recnmp_types::Cycle;
use serde::{Deserialize, Serialize};

/// Result of serving one [`SlsTrace`](crate::SlsTrace) on one backend.
///
/// One type for every system — the host baseline, the DIMM-level NMP
/// comparators, RecNMP and the multi-channel cluster — so the experiment
/// harness compares them without case analysis. Fields a system has no
/// concept of stay at their defaults (e.g. the host baseline has no
/// memory-side cache, so `cache` is zero; only packetized NMP systems
/// fill `packet_latencies`).
///
/// **Delta semantics:** a report covers exactly one
/// [`SlsBackend::run`](crate::SlsBackend::run) call. Lifetime aggregates
/// live in each backend's internal session state, never here.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// System label (`"host"`, `"tensordimm"`, `"chameleon"`, `"recnmp"`,
    /// `"recnmp-cluster"`).
    pub system: String,
    /// End-to-end cycles from first request/delivery to last data beat.
    pub total_cycles: Cycle,
    /// Embedding vectors served (instructions for NMP systems, vector
    /// reads for the baselines). Conservation: equals the trace's
    /// `total_lookups()`.
    pub insts: u64,
    /// NMP packets executed (zero for non-packetized systems).
    pub packets: usize,
    /// Per-packet latency, delivery start to DIMM.Sum (NMP systems only).
    pub packet_latencies: Vec<Cycle>,
    /// Per-packet fraction of instructions on the busiest execution unit
    /// (the Figure 14(b) load-imbalance metric; `1/units` is perfect).
    pub slowest_rank_fraction: Vec<f64>,
    /// Instructions per execution unit (per rank for RecNMP; concatenated
    /// across channels for a cluster; empty for the baselines, which have
    /// no per-unit instruction streams).
    pub rank_insts: Vec<u64>,
    /// Memory-side cache statistics (zero for cache-less systems).
    pub cache: CacheStats,
    /// Aggregated DRAM statistics, summed over all controllers.
    pub dram: DramStats,
    /// 64-byte bursts read from DRAM devices.
    pub dram_bursts: u64,
    /// Embedding bytes gathered (before any cache filtering).
    pub gathered_bytes: u64,
    /// Bytes crossing the channel interface (whole vectors for the host;
    /// instructions in and pooled sums out for NMP systems).
    pub io_bytes: u64,
    /// FP32 additions performed near memory (zero when pooling happens on
    /// the host CPU).
    pub alu_adds: u64,
    /// FP32 multiplications performed near memory.
    pub alu_mults: u64,
    /// Absolute simulated completion timestamp of each query, in arrival
    /// order, when this report aggregates a query-serving run. Empty for
    /// plain trace replays, which have no notion of per-query arrivals.
    pub query_completions: Vec<Cycle>,
    /// Lookups served by the host-side hot-embedding cache — absorbed
    /// before any channel saw them (zero outside cached serving runs).
    /// Same per-run delta semantics as every other counter here.
    pub host_hits: u64,
    /// Lookups that missed the host cache and were dispatched to the
    /// backend. Conservation under cached serving:
    /// `host_hits + host_misses` equals the offered lookups.
    pub host_misses: u64,
    /// Embedding bytes the host cache absorbed (`host_hits` × the
    /// workload's vector size) — traffic the channels never carried.
    pub host_absorbed_bytes: u64,
    /// Vectors newly staged into per-channel RankCaches by the
    /// inter-query prefetcher during idle gaps (zero when prefetch is
    /// off or the backend has no rank caches).
    pub prefetch_fills: u64,
    /// Shard attempts re-dispatched after a timeout under resilient
    /// serving (zero outside fault-injected runs).
    pub retries: u64,
    /// Straggler node jobs duplicated onto a replica by hedged dispatch.
    pub hedges: u64,
    /// Batches re-routed off a crashed or degraded node to a surviving
    /// replica.
    pub failovers: u64,
    /// Queries refused at admission: their estimated queue delay already
    /// exceeded the SLO deadline (or the bounded queue was full).
    pub queries_rejected: u64,
    /// Queries dropped at dispatch: actual channel backlog put their
    /// service start past the SLO deadline.
    pub queries_shed: u64,
    /// Queries that failed outright: a table with no surviving replica,
    /// or a shard that exhausted its retry budget.
    pub queries_failed: u64,
}

impl RunReport {
    /// A zeroed report labeled `system`.
    pub fn for_system(system: impl Into<String>) -> Self {
        Self {
            system: system.into(),
            ..Self::default()
        }
    }

    /// Cycles per served vector — the throughput figure every experiment
    /// normalizes against the host baseline.
    pub fn cycles_per_lookup(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.insts as f64
        }
    }

    /// Mean packet latency in cycles (zero for non-packetized systems).
    pub fn mean_packet_latency(&self) -> f64 {
        if self.packet_latencies.is_empty() {
            0.0
        } else {
            self.packet_latencies.iter().sum::<Cycle>() as f64 / self.packet_latencies.len() as f64
        }
    }

    /// Mean slowest-unit fraction (load imbalance).
    pub fn mean_imbalance(&self) -> f64 {
        if self.slowest_rank_fraction.is_empty() {
            0.0
        } else {
            self.slowest_rank_fraction.iter().sum::<f64>() / self.slowest_rank_fraction.len() as f64
        }
    }

    /// Achieved DRAM data bandwidth in GB/s.
    pub fn bandwidth_gbs(&self) -> f64 {
        recnmp_types::units::bandwidth_gbs(self.dram_bursts * 64, self.total_cycles)
    }

    /// Folds `other` into `self` as a **parallel** merge: counters add,
    /// per-packet vectors concatenate, per-unit counts append, and
    /// `total_cycles` takes the maximum — the wall-clock of independent
    /// channels running side by side. Used by multi-channel clusters.
    pub fn absorb_parallel(&mut self, other: RunReport) {
        self.total_cycles = self.total_cycles.max(other.total_cycles);
        self.insts += other.insts;
        self.packets += other.packets;
        self.packet_latencies.extend(other.packet_latencies);
        self.slowest_rank_fraction
            .extend(other.slowest_rank_fraction);
        self.rank_insts.extend(other.rank_insts);
        add_cache(&mut self.cache, &other.cache);
        add_dram(&mut self.dram, &other.dram);
        self.dram_bursts += other.dram_bursts;
        self.gathered_bytes += other.gathered_bytes;
        self.io_bytes += other.io_bytes;
        self.alu_adds += other.alu_adds;
        self.alu_mults += other.alu_mults;
        self.query_completions.extend(other.query_completions);
        self.host_hits += other.host_hits;
        self.host_misses += other.host_misses;
        self.host_absorbed_bytes += other.host_absorbed_bytes;
        self.prefetch_fills += other.prefetch_fills;
        self.retries += other.retries;
        self.hedges += other.hedges;
        self.failovers += other.failovers;
        self.queries_rejected += other.queries_rejected;
        self.queries_shed += other.queries_shed;
        self.queries_failed += other.queries_failed;
    }

    /// Host-cache hit rate over the offered lookups; zero when no lookups
    /// passed through a host cache.
    pub fn host_hit_rate(&self) -> f64 {
        let offered = self.host_hits + self.host_misses;
        if offered == 0 {
            0.0
        } else {
            self.host_hits as f64 / offered as f64
        }
    }
}

/// Adds `b`'s cache counters into `a`.
pub fn add_cache(a: &mut CacheStats, b: &CacheStats) {
    a.hits += b.hits;
    a.misses += b.misses;
    a.compulsory_misses += b.compulsory_misses;
    a.evictions += b.evictions;
    a.bypasses += b.bypasses;
}

/// Adds `b`'s DRAM counters into `a`.
pub fn add_dram(a: &mut DramStats, b: &DramStats) {
    a.reads += b.reads;
    a.writes += b.writes;
    a.acts += b.acts;
    a.pres += b.pres;
    a.refs += b.refs;
    a.row_hits += b.row_hits;
    a.row_misses += b.row_misses;
    a.row_conflicts += b.row_conflicts;
    a.data_bus_busy += b.data_bus_busy;
    a.cmd_bus_busy += b.cmd_bus_busy;
    a.latency_sum += b.latency_sum;
    a.latency_max = a.latency_max.max(b.latency_max);
    for (x, y) in a.latency_hist.iter_mut().zip(&b.latency_hist) {
        *x += y;
    }
}

/// The counter-wise difference `now - then` of two cumulative DRAM
/// snapshots — how a backend turns a forever-growing controller counter
/// set into a per-run report.
pub fn dram_delta(now: &DramStats, then: &DramStats) -> DramStats {
    let mut d = DramStats {
        reads: now.reads - then.reads,
        writes: now.writes - then.writes,
        acts: now.acts - then.acts,
        pres: now.pres - then.pres,
        refs: now.refs - then.refs,
        row_hits: now.row_hits - then.row_hits,
        row_misses: now.row_misses - then.row_misses,
        row_conflicts: now.row_conflicts - then.row_conflicts,
        data_bus_busy: now.data_bus_busy - then.data_bus_busy,
        cmd_bus_busy: now.cmd_bus_busy - then.cmd_bus_busy,
        latency_sum: now.latency_sum - then.latency_sum,
        // Max is not differentiable; report the lifetime max, which upper
        // bounds this run's.
        latency_max: now.latency_max,
        ..DramStats::new()
    };
    for (slot, (n, t)) in d
        .latency_hist
        .iter_mut()
        .zip(now.latency_hist.iter().zip(&then.latency_hist))
    {
        *slot = n - t;
    }
    d
}

/// The counter-wise difference `now - then` of two cumulative cache
/// snapshots.
pub fn cache_delta(now: &CacheStats, then: &CacheStats) -> CacheStats {
    CacheStats {
        hits: now.hits - then.hits,
        misses: now.misses - then.misses,
        compulsory_misses: now.compulsory_misses - then.compulsory_misses,
        evictions: now.evictions - then.evictions,
        bypasses: now.bypasses - then.bypasses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_per_lookup_math() {
        let r = RunReport {
            system: "host".into(),
            total_cycles: 1000,
            insts: 250,
            dram_bursts: 250,
            ..RunReport::default()
        };
        assert_eq!(r.cycles_per_lookup(), 4.0);
        assert!(r.bandwidth_gbs() > 0.0);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = RunReport::default();
        assert_eq!(r.cycles_per_lookup(), 0.0);
        assert_eq!(r.mean_packet_latency(), 0.0);
        assert_eq!(r.mean_imbalance(), 0.0);
    }

    #[test]
    fn parallel_merge_takes_max_cycles_and_sums_counters() {
        let mut a = RunReport {
            total_cycles: 100,
            insts: 10,
            packets: 1,
            dram_bursts: 20,
            rank_insts: vec![10],
            ..RunReport::default()
        };
        let b = RunReport {
            total_cycles: 250,
            insts: 30,
            packets: 2,
            dram_bursts: 60,
            rank_insts: vec![15, 15],
            query_completions: vec![90, 250],
            ..RunReport::default()
        };
        a.absorb_parallel(b);
        assert_eq!(a.total_cycles, 250);
        assert_eq!(a.insts, 40);
        assert_eq!(a.packets, 3);
        assert_eq!(a.dram_bursts, 80);
        assert_eq!(a.rank_insts, vec![10, 15, 15]);
        assert_eq!(a.query_completions, vec![90, 250]);
    }

    #[test]
    fn host_cache_counters_sum_and_rate() {
        let mut a = RunReport {
            host_hits: 3,
            host_misses: 5,
            host_absorbed_bytes: 384,
            prefetch_fills: 2,
            ..RunReport::default()
        };
        let b = RunReport {
            host_hits: 1,
            host_misses: 3,
            host_absorbed_bytes: 128,
            prefetch_fills: 4,
            ..RunReport::default()
        };
        a.absorb_parallel(b);
        assert_eq!(
            (a.host_hits, a.host_misses, a.host_absorbed_bytes),
            (4, 8, 512)
        );
        assert_eq!(a.prefetch_fills, 6);
        assert!((a.host_hit_rate() - 4.0 / 12.0).abs() < 1e-12);
        assert_eq!(RunReport::default().host_hit_rate(), 0.0);
    }

    #[test]
    fn resilience_counters_sum_under_parallel_merge() {
        let mut a = RunReport {
            retries: 2,
            hedges: 1,
            failovers: 3,
            queries_rejected: 4,
            queries_shed: 1,
            queries_failed: 2,
            ..RunReport::default()
        };
        let b = RunReport {
            retries: 1,
            hedges: 2,
            failovers: 1,
            queries_rejected: 0,
            queries_shed: 2,
            queries_failed: 1,
            ..RunReport::default()
        };
        a.absorb_parallel(b);
        assert_eq!((a.retries, a.hedges, a.failovers), (3, 3, 4));
        assert_eq!(
            (a.queries_rejected, a.queries_shed, a.queries_failed),
            (4, 3, 3)
        );
    }

    #[test]
    fn dram_delta_subtracts_every_counter() {
        let mut then = DramStats::new();
        then.reads = 5;
        then.acts = 2;
        then.record_latency(40);
        let mut now = then.clone();
        now.reads = 12;
        now.acts = 6;
        now.record_latency(80);
        let d = dram_delta(&now, &then);
        assert_eq!(d.reads, 7);
        assert_eq!(d.acts, 4);
        assert_eq!(d.latency_sum, 80);
        assert_eq!(d.latency_hist.iter().sum::<u64>(), 1);
    }
}
