//! The unified SLS execution API.
//!
//! RecNMP's evaluation methodology (Figure 16) runs *identical* SLS
//! traces through the host baseline, the DIMM-level NMP comparators and
//! RecNMP itself. This crate defines the three pieces every execution
//! system shares so new comparators drop in without touching the
//! experiment harness:
//!
//! * [`SlsTrace`] — one physical SLS workload: batches of poolings with
//!   their translated physical addresses, the single source of truth every
//!   backend serves ([`trace`]);
//! * [`RunReport`] — the unified result of one run: cycles, per-unit
//!   instruction counts, cache and DRAM statistics, byte accounting
//!   ([`report`]). Reports are **per-run snapshots** (delta semantics):
//!   calling [`SlsBackend::run`] twice yields two independent reports,
//!   never a cumulative blend;
//! * [`SlsBackend`] — the execution trait:
//!   `fn try_run(&mut self, trace: &SlsTrace) -> Result<RunReport, SimError>`,
//!   with an infallible `run` wrapper for harness code.
//!
//! Sharding ([`ShardingPolicy`], [`SlsTrace::shard`]) splits a multi-table
//! trace across independent channels — the building block of the
//! multi-channel `RecNmpCluster` in the `recnmp` crate. Where a batch
//! *lands* is decided by the [`placement`] subsystem: a
//! [`PlacementPlan`] assigns each table to one or more channels under a
//! per-channel capacity model and a [`PlacementPolicy`] (hash baseline,
//! capacity-aware bin-packing, or frequency-balanced with hot-table
//! replication), and sharding consults the plan instead of recomputing a
//! hash per batch.
//!
//! # Examples
//!
//! ```
//! use recnmp_backend::{ShardingPolicy, SlsTrace};
//! use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, TraceGenerator};
//! use recnmp_types::{PhysAddr, TableId};
//!
//! let spec = EmbeddingTableSpec::dlrm_default();
//! let batches: Vec<_> = (0..4u32)
//!     .map(|t| {
//!         TraceGenerator::new(TableId::new(t), spec, IndexDistribution::Uniform, 7)
//!             .batch(2, 10)
//!     })
//!     .collect();
//! let trace = SlsTrace::from_batches(&batches, &mut |t, row| {
//!     PhysAddr::new((t as u64) << 32 | row * 128)
//! });
//! assert_eq!(trace.total_lookups(), 4 * 2 * 10);
//!
//! // Hash-by-table sharding sends each table to one channel.
//! let shards = trace.shard(2, ShardingPolicy::HashByTable);
//! assert_eq!(shards.iter().map(SlsTrace::total_lookups).sum::<u64>(), 80);
//! ```

pub mod placement;
pub mod report;
pub mod trace;

pub use placement::fleet::FleetPlacementPlan;
pub use placement::tiered::{
    MigrationCost, MigrationReport, PromotionPolicy, StorageTier, TierSpec, TieredPlacementPlan,
    TieredPolicy,
};
pub use placement::{apply_absorption, PlacementPlan, PlacementPolicy, TableUsage};
pub use report::RunReport;
pub use trace::{ShardingPolicy, SlsTrace, TraceBatch};

use recnmp_types::{Cycle, PhysAddr, SimError};

/// An SLS execution system: anything that can serve a physical SLS trace
/// and report what that cost.
///
/// Implementations in this workspace: the host DRAM baseline, TensorDIMM
/// and Chameleon (in `recnmp-baselines`), and `RecNmpSystem` plus the
/// multi-channel `RecNmpCluster` (in `recnmp`). The experiment harness is
/// written against `&mut dyn SlsBackend`, so adding a comparator never
/// touches the sim crate.
///
/// # Contract
///
/// * The backend serves **every** lookup of `trace` (conservation:
///   `report.insts == trace.total_lookups()`).
/// * The returned [`RunReport`] covers **this call only** (delta
///   semantics). Hardware state — DRAM row buffers, cache contents, the
///   current cycle — persists across calls, as it would on real hardware,
///   but counters in the report never leak between runs.
///
/// The `Send` supertrait lets harness layers move backends onto worker
/// threads (the serving sweep simulates its load points in parallel);
/// every backend is plain owned simulation state, so this costs
/// implementors nothing.
pub trait SlsBackend: Send {
    /// A short stable label for the system (`"host"`, `"recnmp"`, ...).
    fn name(&self) -> &str;

    /// Serves `trace` and reports the cost of this run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] when the backend's memory engine
    /// stops making forward progress (a scheduling livelock), instead of
    /// aborting the process. After an error the backend's hardware state
    /// is unspecified — a stalled channel keeps its stuck requests — so
    /// discard the backend rather than running it again.
    fn try_run(&mut self, trace: &SlsTrace) -> Result<RunReport, SimError>;

    /// Infallible convenience wrapper around [`try_run`](Self::try_run)
    /// for harness code that treats a stalled simulation as a fatal bug.
    ///
    /// # Panics
    ///
    /// Panics if the run returns an error.
    fn run(&mut self, trace: &SlsTrace) -> RunReport {
        match self.try_run(trace) {
            Ok(report) => report,
            Err(e) => panic!("{} backend failed: {e}", self.name()),
        }
    }

    /// Independent servers a query scheduler can dispatch to.
    ///
    /// Single-channel systems are one server; a multi-channel cluster
    /// overrides this with its channel count so a serving layer can place
    /// individual queries on individual channels instead of sharding each
    /// query across all of them.
    fn server_count(&self) -> usize {
        1
    }

    /// Serves `trace` entirely on server `server` — the dispatch hook a
    /// query scheduler uses to target one channel of a multi-server
    /// system. The default forwards to [`try_run`](Self::try_run) for
    /// single-server backends.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] under the same conditions as
    /// [`try_run`](Self::try_run).
    ///
    /// # Panics
    ///
    /// Panics when `server >= self.server_count()`.
    fn try_run_on(&mut self, server: usize, trace: &SlsTrace) -> Result<RunReport, SimError> {
        assert!(
            server < self.server_count(),
            "server {server} out of range for {} server(s)",
            self.server_count()
        );
        self.try_run(trace)
    }

    /// Serves several shards, each entirely on its own server, and
    /// returns one report per shard in input order — the node handle a
    /// fleet router uses to hand a whole node its per-channel work in
    /// one call.
    ///
    /// Shards must target strictly increasing server indices (each
    /// server appears at most once). The default runs them serially via
    /// [`try_run_on`](Self::try_run_on); multi-channel backends override
    /// this to fan the shards out as parallel tasks on the deterministic
    /// worker pool, so a fleet can nest node-level and channel-level
    /// parallelism without oversubscribing threads. Overrides must
    /// return reports identical to the serial default (the servers are
    /// independent hardware, so this costs nothing).
    ///
    /// # Errors
    ///
    /// Returns the first failing shard's error (in shard order) under
    /// the same conditions as [`try_run`](Self::try_run).
    ///
    /// # Panics
    ///
    /// Panics when shard server indices are not strictly increasing or
    /// out of range.
    fn try_run_shards(&mut self, shards: &[(usize, SlsTrace)]) -> Result<Vec<RunReport>, SimError> {
        assert!(
            shards.windows(2).all(|w| w[0].0 < w[1].0),
            "shards must target strictly increasing servers"
        );
        shards
            .iter()
            .map(|(server, shard)| self.try_run_on(*server, shard))
            .collect()
    }

    /// Stages predicted-hot vectors into server `server`'s memory-side
    /// caches during an idle gap — the inter-query prefetch hook
    /// (ProactivePIM-style). `addrs` lists candidate vector base
    /// addresses hottest-first, each covering `vector_bytes` bytes;
    /// `budget_cycles` is the idle headroom the scheduler observed before
    /// the next arrival, which the backend converts into a vector count
    /// at its own fill cost so prefetch traffic always yields to demand
    /// work. Returns how many vectors were **newly** staged
    /// (already-resident candidates cost budget but don't count).
    ///
    /// The default does nothing and returns 0 — backends without
    /// memory-side caches are simply prefetch-blind. Staging must not
    /// perturb demand hit/miss statistics (use the stats-clean fill
    /// path), and must be deterministic in `(server, addrs, budget)`.
    fn prefetch_on(
        &mut self,
        server: usize,
        addrs: &[PhysAddr],
        vector_bytes: u32,
        budget_cycles: Cycle,
    ) -> u64 {
        let _ = (server, addrs, vector_bytes, budget_cycles);
        0
    }

    /// Drops all warm memory-side cache state (contents and counters),
    /// returning every server's caches to cold. Sweep drivers call this
    /// when a backend must start a load point cold so points stay
    /// independent and byte-identical at any worker count. The default is
    /// a no-op for cache-less backends.
    fn reset_caches(&mut self) {}
}
