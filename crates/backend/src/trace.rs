//! The shared physical SLS trace served by every backend.

use recnmp_trace::SlsBatch;
use recnmp_types::{PhysAddr, TableId};
use serde::{Deserialize, Serialize};

use crate::placement::{PlacementPlan, PlacementPolicy, TableUsage};

/// One SLS batch together with the physical address of every lookup.
///
/// `addrs[p][i]` is the translated address of
/// `batch.poolings[p].indices[i]` — the logical→physical page-mapping
/// step applied once, so all backends see the same addresses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceBatch {
    /// The logical batch (table, spec, poolings).
    pub batch: SlsBatch,
    /// Physical addresses, aligned with the batch's poolings/indices.
    pub addrs: Vec<Vec<PhysAddr>>,
}

impl TraceBatch {
    /// Translates `batch` with `translate` (row → physical address).
    pub fn new(batch: SlsBatch, translate: &mut dyn FnMut(u64) -> PhysAddr) -> Self {
        let addrs = batch
            .poolings
            .iter()
            .map(|p| p.indices.iter().map(|&row| translate(row)).collect())
            .collect();
        Self { batch, addrs }
    }

    /// The table this batch targets.
    pub fn table(&self) -> TableId {
        self.batch.table
    }

    /// Lookups in this batch.
    pub fn lookups(&self) -> u64 {
        self.addrs.iter().map(|p| p.len() as u64).sum()
    }

    /// The addresses in pooling order (the order instruction streams and
    /// flat traces are built in).
    pub fn flat_addrs(&self) -> impl Iterator<Item = PhysAddr> + '_ {
        self.addrs.iter().flatten().copied()
    }
}

/// How a multi-channel system splits a trace across channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ShardingPolicy {
    /// Deterministic table affinity: table `t` always lands on channel
    /// `t mod channels`, so a table's working set (and its RankCache
    /// locality) stays on one channel.
    #[default]
    HashByTable,
    /// Batches rotate across channels in arrival order regardless of
    /// table — best load balance, no table affinity.
    RoundRobin,
}

impl ShardingPolicy {
    /// The channel (of `channels`) that batch `arrival_index` targeting
    /// `table` is dispatched to.
    pub fn channel_for(self, table: TableId, arrival_index: usize, channels: usize) -> usize {
        match self {
            ShardingPolicy::HashByTable => table.index() % channels,
            ShardingPolicy::RoundRobin => arrival_index % channels,
        }
    }
}

/// One physical SLS workload: the single source of truth every
/// [`SlsBackend`](crate::SlsBackend) serves.
///
/// Batches are kept in arrival order (the parallel-SLS-thread interleave
/// of production serving); backends derive whatever internal form they
/// need — the flat vector trace for the host baseline and the DIMM-level
/// comparators, or the NMP packet stream for RecNMP.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SlsTrace {
    /// The translated batches, in arrival order.
    pub batches: Vec<TraceBatch>,
}

impl SlsTrace {
    /// Builds a trace from logical batches and a shared translation
    /// function (`(table_index, row) → physical address`).
    ///
    /// # Panics
    ///
    /// Panics when batches mix vector sizes: the flat-trace backends
    /// (host, TensorDIMM, Chameleon) read every vector with one burst
    /// count taken from [`bursts_per_vector`](Self::bursts_per_vector),
    /// so a mixed-size trace would be silently mis-served. The paper's
    /// workloads are uniform (128-byte DLRM vectors).
    pub fn from_batches(
        batches: &[SlsBatch],
        translate: &mut dyn FnMut(usize, u64) -> PhysAddr,
    ) -> Self {
        if let Some(first) = batches.first() {
            assert!(
                batches
                    .iter()
                    .all(|b| b.spec.vector_bytes == first.spec.vector_bytes),
                "SlsTrace requires a uniform vector size across batches"
            );
        }
        Self {
            batches: batches
                .iter()
                .map(|b| {
                    let t = b.table.index();
                    TraceBatch::new(b.clone(), &mut |row| translate(t, row))
                })
                .collect(),
        }
    }

    /// Total lookups across all batches.
    pub fn total_lookups(&self) -> u64 {
        self.batches.iter().map(TraceBatch::lookups).sum()
    }

    /// 64-byte bursts per embedding vector (from the first batch's table
    /// spec; 1 for an empty trace). All batches of one workload share a
    /// vector size, as in the paper's DLRM configuration.
    pub fn bursts_per_vector(&self) -> u8 {
        self.batches
            .first()
            .map_or(1, |b| b.batch.spec.bursts_per_vector() as u8)
    }

    /// Bytes per embedding vector (from the first batch's table spec).
    pub fn vector_bytes(&self) -> u64 {
        self.batches
            .first()
            .map_or(64, |b| b.batch.spec.vector_bytes)
    }

    /// Number of distinct tables referenced.
    pub fn tables(&self) -> usize {
        let mut ids: Vec<usize> = self.batches.iter().map(|b| b.table().index()).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// The flat physical vector trace in arrival order — what the host
    /// baseline and the DIMM-level NMP systems serve.
    pub fn flat(&self) -> Vec<PhysAddr> {
        self.batches
            .iter()
            .flat_map(TraceBatch::flat_addrs)
            .collect()
    }

    /// Splits the trace into `channels` sub-traces under `policy`.
    ///
    /// Every batch lands in exactly one shard; shard order preserves
    /// arrival order. Shards may be empty (e.g. more channels than
    /// tables under [`ShardingPolicy::HashByTable`]).
    ///
    /// [`ShardingPolicy::HashByTable`] is served by building a
    /// [`PlacementPlan`] under [`PlacementPolicy::Hash`] and dispatching
    /// through it — the plan is the single sharding mechanism; the
    /// legacy per-batch hash survives only as that plan's policy.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn shard(&self, channels: usize, policy: ShardingPolicy) -> Vec<SlsTrace> {
        assert!(channels > 0, "need at least one channel");
        match policy {
            ShardingPolicy::HashByTable => {
                let usage = TableUsage::from_trace(self);
                let plan = PlacementPlan::build(channels, None, &usage, PlacementPolicy::Hash)
                    .expect("uncapped hash placement cannot fail");
                self.shard_with_plan(&plan)
            }
            ShardingPolicy::RoundRobin => {
                let mut shards = vec![SlsTrace::default(); channels];
                for (i, batch) in self.batches.iter().enumerate() {
                    let c = policy.channel_for(batch.table(), i, channels);
                    shards[c].batches.push(batch.clone());
                }
                shards
            }
        }
    }

    /// Splits the trace across the channels of a [`PlacementPlan`]: each
    /// batch lands on one replica of its table, picked deterministically
    /// from the batch's arrival index. Shard order preserves arrival
    /// order; shards of channels owning no referenced table are empty.
    ///
    /// # Panics
    ///
    /// Panics when a batch references a table the plan does not place —
    /// plans must be built from (a superset of) the workload's tables.
    pub fn shard_with_plan(&self, plan: &PlacementPlan) -> Vec<SlsTrace> {
        let mut shards = vec![SlsTrace::default(); plan.channels()];
        for (i, batch) in self.batches.iter().enumerate() {
            let c = plan
                .channel_for(batch.table(), i)
                .unwrap_or_else(|| panic!("table {} missing from placement plan", batch.table()));
            shards[c].batches.push(batch.clone());
        }
        shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_trace::{EmbeddingTableSpec, Pooling};

    fn batch(table: u32, poolings: usize, len: usize) -> SlsBatch {
        SlsBatch {
            table: TableId::new(table),
            spec: EmbeddingTableSpec::dlrm_default(),
            poolings: (0..poolings)
                .map(|p| Pooling::unweighted((0..len as u64).map(|i| i + p as u64).collect()))
                .collect(),
        }
    }

    fn trace(tables: u32) -> SlsTrace {
        let batches: Vec<_> = (0..tables).map(|t| batch(t, 2, 5)).collect();
        SlsTrace::from_batches(&batches, &mut |t, row| {
            PhysAddr::new(((t as u64) << 40) | (row * 128))
        })
    }

    #[test]
    fn translation_aligns_with_indices() {
        let tr = trace(2);
        assert_eq!(tr.total_lookups(), 2 * 2 * 5);
        assert_eq!(tr.tables(), 2);
        for tb in &tr.batches {
            for (pooling, addrs) in tb.batch.poolings.iter().zip(&tb.addrs) {
                assert_eq!(pooling.indices.len(), addrs.len());
                for (&row, &addr) in pooling.indices.iter().zip(addrs) {
                    assert_eq!(addr.get() & 0xffff_ffff, row * 128);
                }
            }
        }
    }

    #[test]
    fn flat_preserves_arrival_order() {
        let tr = trace(2);
        let flat = tr.flat();
        assert_eq!(flat.len(), 20);
        // First batch's lookups precede the second's.
        assert!(flat[..10].iter().all(|a| a.get() >> 40 == 0));
        assert!(flat[10..].iter().all(|a| a.get() >> 40 == 1));
    }

    #[test]
    fn hash_by_table_keeps_tables_whole() {
        let tr = trace(8);
        let shards = tr.shard(4, ShardingPolicy::HashByTable);
        assert_eq!(shards.len(), 4);
        for (c, shard) in shards.iter().enumerate() {
            for b in &shard.batches {
                assert_eq!(b.table().index() % 4, c);
            }
        }
        let total: u64 = shards.iter().map(SlsTrace::total_lookups).sum();
        assert_eq!(total, tr.total_lookups());
    }

    #[test]
    fn round_robin_balances_batches() {
        let tr = trace(8);
        let shards = tr.shard(4, ShardingPolicy::RoundRobin);
        assert!(shards.iter().all(|s| s.batches.len() == 2));
    }

    #[test]
    #[should_panic(expected = "uniform vector size")]
    fn mixed_vector_sizes_are_rejected() {
        let batches = vec![
            SlsBatch {
                table: TableId::new(0),
                spec: EmbeddingTableSpec::new(100, 64),
                poolings: vec![Pooling::unweighted(vec![1, 2])],
            },
            SlsBatch {
                table: TableId::new(1),
                spec: EmbeddingTableSpec::new(100, 256),
                poolings: vec![Pooling::unweighted(vec![3])],
            },
        ];
        SlsTrace::from_batches(&batches, &mut |_, row| PhysAddr::new(row * 64));
    }

    #[test]
    fn plan_sharding_conserves_and_rotates_replicas() {
        let tr = trace(4);
        let usage = TableUsage::from_trace(&tr);
        let plan = PlacementPlan::build(
            2,
            None,
            &usage,
            PlacementPolicy::FrequencyBalanced { replicate: 1 },
        )
        .unwrap();
        let shards = tr.shard_with_plan(&plan);
        assert_eq!(shards.len(), 2);
        let total: u64 = shards.iter().map(SlsTrace::total_lookups).sum();
        assert_eq!(total, tr.total_lookups());
        // Every batch landed on a replica of its table.
        for (c, shard) in shards.iter().enumerate() {
            for b in &shard.batches {
                assert!(plan.replicas(b.table()).contains(&c));
            }
        }
    }

    #[test]
    #[should_panic(expected = "missing from placement plan")]
    fn plan_sharding_rejects_unplaced_tables() {
        let tr = trace(3);
        let usage = TableUsage::from_trace(&trace(1));
        let plan = PlacementPlan::build(2, None, &usage, PlacementPolicy::Hash).unwrap();
        tr.shard_with_plan(&plan);
    }

    #[test]
    fn single_shard_is_identity() {
        let tr = trace(3);
        let shards = tr.shard(1, ShardingPolicy::HashByTable);
        assert_eq!(shards[0], tr);
    }
}
