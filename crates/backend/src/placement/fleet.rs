//! Fleet-scale placement: which node(s) each table lives on, then which
//! channel within each node.
//!
//! A serving fleet is N RecNMP nodes (each a multi-channel cluster)
//! behind a front-end router. Placement therefore happens twice:
//!
//! 1. **Tables → nodes** — a flat [`PlacementPlan`](super::PlacementPlan)
//!    over the node space. Under
//!    [`FrequencyBalanced`](super::PlacementPolicy::FrequencyBalanced)
//!    the hottest tables are *replicated across nodes* (RecFlash-style
//!    frequency mapping lifted one level), so top-load traffic has more
//!    than one home and the router can spread it;
//! 2. **Tables → channels within each node** — one flat plan per node
//!    over the subset of tables resident there, with a replicated
//!    table's accesses split evenly across its node replicas so each
//!    node's channel plan balances the share it will actually serve.
//!
//! The [`FleetPlacementPlan`] materializes both levels; the serving-side
//! router consults level 1 per batch and each node's scatter consults
//! level 2 — neither recomputes anything per lookup.
//!
//! # Examples
//!
//! ```
//! use recnmp_backend::placement::fleet::FleetPlacementPlan;
//! use recnmp_backend::placement::{PlacementPolicy, TableUsage};
//! use recnmp_types::TableId;
//!
//! // One hot table, three cold ones, two 2-channel nodes; replicate the
//! // hottest table onto every node.
//! let usage = vec![
//!     TableUsage::new(TableId::new(0), 1 << 20, 900),
//!     TableUsage::new(TableId::new(1), 1 << 20, 50),
//!     TableUsage::new(TableId::new(2), 1 << 20, 30),
//!     TableUsage::new(TableId::new(3), 1 << 20, 20),
//! ];
//! let plan = FleetPlacementPlan::build(
//!     2,
//!     2,
//!     None,
//!     &usage,
//!     PlacementPolicy::FrequencyBalanced { replicate: 1 },
//!     PlacementPolicy::FrequencyBalanced { replicate: 0 },
//! )
//! .unwrap();
//! // The hot table lives on both nodes; every node's channel plan
//! // places every table resident there.
//! assert_eq!(plan.node_replicas(TableId::new(0)), &[0, 1]);
//! for n in 0..plan.nodes() {
//!     assert!(!plan.per_node(n).replicas(TableId::new(0)).is_empty());
//! }
//! ```

use recnmp_types::{ConfigError, NodeId, TableId};
use serde::{Deserialize, Serialize};

use super::{PlacementPlan, PlacementPolicy, TableUsage};

/// The materialized two-level table assignment of one fleet workload:
/// a node-level [`PlacementPlan`] (level 1) plus one channel-level plan
/// per node (level 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetPlacementPlan {
    channels_per_node: usize,
    /// Level 1: tables → nodes (hot tables may be replicated).
    node_plan: PlacementPlan,
    /// Level 2: per node, the resident tables → that node's channels.
    per_node: Vec<PlacementPlan>,
}

impl FleetPlacementPlan {
    /// Builds the two-level plan: `tables` onto `nodes` nodes of
    /// `channels_per_node` channels each, under `node_policy` across
    /// nodes and `within_policy` across each node's channels.
    ///
    /// `channel_capacity` bounds each channel's bytes; the node-level
    /// plan packs against `channels_per_node * channel_capacity` (a
    /// node's total DRAM) and the per-node plans then enforce the
    /// per-channel bound exactly.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when either level cannot place a table
    /// under its capacity bound, when a table is profiled twice, or when
    /// `nodes`/`channels_per_node` is zero.
    pub fn build(
        nodes: usize,
        channels_per_node: usize,
        channel_capacity: Option<u64>,
        tables: &[TableUsage],
        node_policy: PlacementPolicy,
        within_policy: PlacementPolicy,
    ) -> Result<Self, ConfigError> {
        if channels_per_node == 0 {
            return Err(ConfigError::new(
                "fleet-placement",
                "need at least one channel per node",
            ));
        }
        let node_capacity = channel_capacity.map(|c| c * channels_per_node as u64);
        let node_plan = PlacementPlan::build(nodes, node_capacity, tables, node_policy)?;
        let per_node = (0..nodes)
            .map(|n| {
                // The node's resident subset, with a replicated table's
                // accesses split across its node replicas — each node
                // balances the traffic share it will actually serve.
                let resident: Vec<TableUsage> = tables
                    .iter()
                    .filter_map(|u| {
                        let reps = node_plan.replicas(u.table);
                        reps.contains(&n).then(|| {
                            TableUsage::new(u.table, u.bytes, u.accesses / reps.len() as u64)
                        })
                    })
                    .collect();
                PlacementPlan::build(
                    channels_per_node,
                    channel_capacity,
                    &resident,
                    within_policy,
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            channels_per_node,
            node_plan,
            per_node,
        })
    }

    /// Builds a cache-aware two-level plan: like [`build`](Self::build),
    /// but both levels balance each table's *residual* accesses after the
    /// expected host-cache absorption (see
    /// [`apply_absorption`](super::apply_absorption)) — node replication
    /// and channel load both follow the traffic that will actually cross
    /// the fleet once hot rows are served at the hosts.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] under the conditions of
    /// [`build`](Self::build) and
    /// [`apply_absorption`](super::apply_absorption).
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_absorption(
        nodes: usize,
        channels_per_node: usize,
        channel_capacity: Option<u64>,
        tables: &[TableUsage],
        absorbed: &[(TableId, u64)],
        node_policy: PlacementPolicy,
        within_policy: PlacementPolicy,
    ) -> Result<Self, ConfigError> {
        let residual = super::apply_absorption(tables, absorbed)?;
        Self::build(
            nodes,
            channels_per_node,
            channel_capacity,
            &residual,
            node_policy,
            within_policy,
        )
    }

    /// Number of nodes the plan places onto.
    pub fn nodes(&self) -> usize {
        self.per_node.len()
    }

    /// Channels per node.
    pub fn channels_per_node(&self) -> usize {
        self.channels_per_node
    }

    /// Number of placed tables.
    pub fn tables(&self) -> usize {
        self.node_plan.tables()
    }

    /// The node-level plan (level 1).
    pub fn node_plan(&self) -> &PlacementPlan {
        &self.node_plan
    }

    /// The sorted node replicas of `table`; empty when the table is not
    /// in the plan.
    pub fn node_replicas(&self, table: TableId) -> &[usize] {
        self.node_plan.replicas(table)
    }

    /// Deterministic node pick for a batch of `table` given a dispatch
    /// `salt` (replicated tables rotate through their node set). `None`
    /// for tables the plan does not place.
    pub fn node_for(&self, table: TableId, salt: usize) -> Option<NodeId> {
        self.node_plan
            .channel_for(table, salt)
            .map(|n| NodeId::new(n as u32))
    }

    /// The channel-level plan of node `n` (level 2).
    ///
    /// # Panics
    ///
    /// Panics when `n >= self.nodes()`.
    pub fn per_node(&self, n: usize) -> &PlacementPlan {
        &self.per_node[n]
    }

    /// Tables resident on more than one node — the cross-node replicas
    /// level 1 created for the hottest traffic.
    pub fn replicated_tables(&self) -> usize {
        self.node_plan
            .assignments()
            .filter(|(_, reps)| reps.len() > 1)
            .count()
    }

    /// Access-load imbalance across nodes (1.0 = perfectly even), under
    /// the same degenerate-plan convention as
    /// [`PlacementPlan::load_imbalance`].
    pub fn node_load_imbalance(&self) -> f64 {
        self.node_plan.load_imbalance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(specs: &[(u32, u64, u64)]) -> Vec<TableUsage> {
        specs
            .iter()
            .map(|&(t, bytes, acc)| TableUsage::new(TableId::new(t), bytes, acc))
            .collect()
    }

    const FREQ0: PlacementPolicy = PlacementPolicy::FrequencyBalanced { replicate: 0 };

    #[test]
    fn two_levels_are_consistent() {
        let u = usage(&[(0, 10, 100), (1, 10, 50), (2, 10, 20), (3, 10, 10)]);
        let plan = FleetPlacementPlan::build(2, 2, None, &u, FREQ0, FREQ0).unwrap();
        assert_eq!(plan.nodes(), 2);
        assert_eq!(plan.channels_per_node(), 2);
        assert_eq!(plan.tables(), 4);
        // Every table's node replicas each hold a channel assignment for
        // it, and no other node does.
        for t in &u {
            let reps = plan.node_replicas(t.table);
            assert!(!reps.is_empty());
            for n in 0..plan.nodes() {
                let placed = !plan.per_node(n).replicas(t.table).is_empty();
                assert_eq!(placed, reps.contains(&n), "table {} node {n}", t.table);
            }
        }
    }

    #[test]
    fn hot_table_replicates_across_nodes_and_splits_load() {
        let u = usage(&[(0, 10, 900), (1, 10, 60), (2, 10, 40), (3, 10, 20)]);
        let plan = FleetPlacementPlan::build(
            2,
            2,
            None,
            &u,
            PlacementPolicy::FrequencyBalanced { replicate: 1 },
            FREQ0,
        )
        .unwrap();
        assert_eq!(plan.node_replicas(TableId::new(0)), &[0, 1]);
        assert_eq!(plan.replicated_tables(), 1);
        // Each node's channel plan accounts only half the hot table's
        // accesses: the share that node actually serves.
        let half: f64 = (0..2)
            .map(|c| plan.per_node(0).load_on(c))
            .sum::<f64>()
            .min((0..2).map(|c| plan.per_node(1).load_on(c)).sum::<f64>());
        assert!((450.0..900.0).contains(&half));
        // Replication beats pure sharding on node-level imbalance here:
        // without it the 900-access table pins one node.
        let sharded = FleetPlacementPlan::build(2, 2, None, &u, FREQ0, FREQ0).unwrap();
        assert!(plan.node_load_imbalance() <= sharded.node_load_imbalance());
    }

    #[test]
    fn node_pick_rotates_replicas() {
        let u = usage(&[(0, 10, 900), (1, 10, 10)]);
        let plan = FleetPlacementPlan::build(
            2,
            1,
            None,
            &u,
            PlacementPolicy::FrequencyBalanced { replicate: 1 },
            PlacementPolicy::Hash,
        )
        .unwrap();
        assert_eq!(plan.node_for(TableId::new(0), 0), Some(NodeId::new(0)));
        assert_eq!(plan.node_for(TableId::new(0), 1), Some(NodeId::new(1)));
        assert_eq!(plan.node_for(TableId::new(9), 0), None);
    }

    #[test]
    fn capacity_bounds_apply_at_both_levels() {
        // Two tables of 60 bytes on 1-channel nodes of 100 bytes: each
        // node fits one, so 2 nodes place and 1 node overflows.
        let u = usage(&[(0, 60, 10), (1, 60, 5)]);
        assert!(FleetPlacementPlan::build(2, 1, Some(100), &u, FREQ0, FREQ0).is_ok());
        assert!(FleetPlacementPlan::build(1, 1, Some(100), &u, FREQ0, FREQ0).is_err());
        // Node-level fit but channel-level overflow: a 2-channel node
        // holds 200 bytes total but only 100 per channel.
        let fat = usage(&[(0, 150, 10)]);
        assert!(FleetPlacementPlan::build(1, 2, Some(100), &fat, FREQ0, FREQ0).is_err());
    }

    #[test]
    fn absorption_flows_through_both_levels() {
        // Table 0 dominates raw counts but is almost fully host-cached;
        // the residual-aware node plan balances on what remains.
        let u = usage(&[(0, 10, 900), (1, 10, 100), (2, 10, 80), (3, 10, 60)]);
        let absorbed = [(TableId::new(0), 880)];
        let aware =
            FleetPlacementPlan::build_with_absorption(2, 2, None, &u, &absorbed, FREQ0, FREQ0)
                .unwrap();
        // Residual loads: 20, 100, 80, 60 → level-1 accounting sums to
        // the residual total on both nodes combined.
        let total: f64 = (0..2).map(|n| aware.node_plan().load_on(n)).sum();
        assert_eq!(total, 260.0);
        // The blind plan isolates table 0 on its own node; the aware one
        // pairs it with hotter residual tables.
        let blind = FleetPlacementPlan::build(2, 2, None, &u, FREQ0, FREQ0).unwrap();
        assert!(blind.node_plan().load_imbalance() > aware.node_plan().load_imbalance());
        // Over-absorption is rejected.
        assert!(FleetPlacementPlan::build_with_absorption(
            2,
            2,
            None,
            &u,
            &[(TableId::new(0), 901)],
            FREQ0,
            FREQ0
        )
        .is_err());
    }

    #[test]
    fn build_rejects_degenerate_inputs() {
        let u = usage(&[(0, 10, 1)]);
        assert!(FleetPlacementPlan::build(0, 2, None, &u, FREQ0, FREQ0).is_err());
        assert!(FleetPlacementPlan::build(2, 0, None, &u, FREQ0, FREQ0).is_err());
        let dup = usage(&[(0, 10, 1), (0, 10, 1)]);
        assert!(FleetPlacementPlan::build(2, 2, None, &dup, FREQ0, FREQ0).is_err());
    }

    #[test]
    fn single_node_fleet_degenerates_to_the_flat_plan() {
        // On one node the channel-level plan must equal a bare flat plan
        // over the same channels — the fleet layer adds nothing.
        let u = usage(&[(0, 10, 100), (1, 10, 50), (2, 10, 20), (3, 10, 10)]);
        let fleet = FleetPlacementPlan::build(1, 4, None, &u, FREQ0, FREQ0).unwrap();
        let flat = PlacementPlan::build(4, None, &u, FREQ0).unwrap();
        assert_eq!(fleet.per_node(0), &flat);
    }
}
