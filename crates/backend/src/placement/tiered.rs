//! Capacity-tiered placement: DRAM-NMP channels for the hot tables, an
//! SSD near-data tier for the cold tail.
//!
//! The flat [`PlacementPlan`](super::PlacementPlan) assumes every table
//! fits in channel DRAM. Production embedding footprints do not (ROADMAP
//! item 3: multi-TB models vs. tens of GB of channel DRAM), so this module
//! adds a second, much larger but much slower tier and makes the
//! hot/cold split an explicit placement decision, RecFlash-style:
//!
//! * [`TierSpec`] — the capacity geometry: how many DRAM channels and SSD
//!   units exist and how many bytes each holds ([`ByteSize`]-typed);
//! * [`TieredPolicy`] — [`Hash`](TieredPolicy::Hash) (frequency-blind
//!   DRAM-first spill, the baseline) vs.
//!   [`FrequencyTiered`](TieredPolicy::FrequencyTiered) (hottest tables
//!   claim DRAM, the cold tail goes to SSD);
//! * [`TieredPlacementPlan`] — the materialized assignment over the
//!   *combined* unit space (DRAM channels `0..d`, SSD units `d..d+s`),
//!   holding a flat [`PlacementPlan`](super::PlacementPlan) so every
//!   existing scatter/shard consumer works unchanged, plus per-tier
//!   accounting;
//! * [`PromotionPolicy`] / [`TieredPlacementPlan::epoch_rebalance`] — the
//!   epoch loop: observe an epoch of traffic, rebuild frequency-tiered
//!   with a hysteresis bonus for resident tables, and report
//!   promotions/demotions with a modeled migration cost.
//!
//! # Examples
//!
//! ```
//! use recnmp_backend::placement::tiered::{
//!     StorageTier, TierSpec, TieredPlacementPlan, TieredPolicy,
//! };
//! use recnmp_backend::placement::TableUsage;
//! use recnmp_types::{ByteSize, TableId};
//!
//! // Two 1 MiB DRAM channels and one big SSD unit; three 1 MiB tables,
//! // so one table must spill.
//! let spec = TierSpec {
//!     dram_channels: 2,
//!     dram_channel_capacity: ByteSize::mib(1),
//!     ssd_units: 1,
//!     ssd_unit_capacity: ByteSize::gib(1),
//! };
//! let usage = vec![
//!     TableUsage::new(TableId::new(0), 1 << 20, 10),
//!     TableUsage::new(TableId::new(1), 1 << 20, 900),
//!     TableUsage::new(TableId::new(2), 1 << 20, 90),
//! ];
//! let plan = TieredPlacementPlan::build(
//!     spec,
//!     &usage,
//!     TieredPolicy::FrequencyTiered { replicate_hot: 0 },
//! )
//! .unwrap();
//! // The two hot tables hold the DRAM channels; the coldest spills.
//! assert_eq!(plan.tier_of_table(TableId::new(1)), Some(StorageTier::Dram));
//! assert_eq!(plan.tier_of_table(TableId::new(0)), Some(StorageTier::Ssd));
//! ```

use recnmp_types::units::KIB;
use recnmp_types::{ByteSize, ConfigError, Cycle, TableId};
use serde::{Deserialize, Serialize};

use super::{imbalance, PlacementPlan, PlacementPolicy, TableUsage};

/// The two storage tiers of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StorageTier {
    /// Near-memory DRAM channels — fast, capacity-bound.
    Dram,
    /// Near-data SSD units — slow, effectively capacity-unbound.
    Ssd,
}

impl StorageTier {
    /// Both tiers, DRAM first.
    pub const ALL: [StorageTier; 2] = [StorageTier::Dram, StorageTier::Ssd];

    /// Short stable label for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            StorageTier::Dram => "dram",
            StorageTier::Ssd => "ssd",
        }
    }
}

impl std::fmt::Display for StorageTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The capacity geometry of a tiered system: unit counts and per-unit
/// byte capacities for both tiers.
///
/// Units are numbered over a combined space — DRAM channels first
/// (`0..dram_channels`), then SSD units — so a flat
/// [`PlacementPlan`](super::PlacementPlan) over `units()` channels
/// describes a tiered assignment and existing scatter machinery needs no
/// changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierSpec {
    /// Number of DRAM-NMP channels.
    pub dram_channels: usize,
    /// Byte capacity of each DRAM channel.
    pub dram_channel_capacity: ByteSize,
    /// Number of SSD near-data units.
    pub ssd_units: usize,
    /// Byte capacity of each SSD unit.
    pub ssd_unit_capacity: ByteSize,
}

impl TierSpec {
    /// Total units across both tiers.
    pub fn units(&self) -> usize {
        self.dram_channels + self.ssd_units
    }

    /// The tier a combined-space unit index belongs to.
    ///
    /// # Panics
    ///
    /// Panics when `unit >= self.units()`.
    pub fn tier_of(&self, unit: usize) -> StorageTier {
        assert!(unit < self.units(), "unit {unit} out of range");
        if unit < self.dram_channels {
            StorageTier::Dram
        } else {
            StorageTier::Ssd
        }
    }

    /// Byte capacity of a combined-space unit.
    pub fn capacity_of(&self, unit: usize) -> u64 {
        match self.tier_of(unit) {
            StorageTier::Dram => self.dram_channel_capacity.get(),
            StorageTier::Ssd => self.ssd_unit_capacity.get(),
        }
    }

    /// Combined-space unit indices of `tier`.
    pub fn unit_range(&self, tier: StorageTier) -> std::ops::Range<usize> {
        match tier {
            StorageTier::Dram => 0..self.dram_channels,
            StorageTier::Ssd => self.dram_channels..self.units(),
        }
    }

    /// Total byte capacity of `tier`.
    pub fn tier_capacity(&self, tier: StorageTier) -> u64 {
        match tier {
            StorageTier::Dram => self.dram_channels as u64 * self.dram_channel_capacity.get(),
            StorageTier::Ssd => self.ssd_units as u64 * self.ssd_unit_capacity.get(),
        }
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.dram_channels == 0 {
            return Err(ConfigError::new(
                "tiered-placement",
                "need at least one DRAM channel",
            ));
        }
        Ok(())
    }
}

/// How tables are split across tiers and spread within them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TieredPolicy {
    /// Frequency-blind baseline: table `t` homes on DRAM channel
    /// `t mod dram_channels`, wrap-scans DRAM for the first channel with
    /// room, and only then spills to SSD (same wrap-scan over units).
    /// DRAM-preferring but blind to traffic, so under skew it strands hot
    /// tables on the slow tier exactly as often as cold ones.
    #[default]
    Hash,
    /// RecFlash-style frequency split: tables are placed hottest-first;
    /// each joins the least-loaded DRAM channel with room, and falls to
    /// the least-loaded SSD unit only when no DRAM channel fits — so the
    /// cold tail, and only the cold tail, lives on SSD. The
    /// `replicate_hot` hottest tables are additionally replicated across
    /// every DRAM channel they fit on.
    FrequencyTiered {
        /// Number of hottest tables to replicate across DRAM channels.
        replicate_hot: usize,
    },
}

impl TieredPolicy {
    /// Short stable label for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            TieredPolicy::Hash => "tiered-hash",
            TieredPolicy::FrequencyTiered { .. } => "tiered-frequency",
        }
    }

    /// The two policies the capacity experiments compare.
    pub const COMPARED: [TieredPolicy; 2] = [
        TieredPolicy::Hash,
        TieredPolicy::FrequencyTiered { replicate_hot: 0 },
    ];
}

impl std::fmt::Display for TieredPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The materialized tiered assignment: a flat
/// [`PlacementPlan`](super::PlacementPlan) over the combined unit space
/// plus the [`TierSpec`] that gives those units capacities and tiers.
///
/// Replica sets never span tiers (replication is DRAM-only), so a table
/// has exactly one tier and [`tier_of_table`](Self::tier_of_table) is
/// well-defined.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TieredPlacementPlan {
    spec: TierSpec,
    policy: TieredPolicy,
    flat: PlacementPlan,
}

impl TieredPlacementPlan {
    /// Builds a tiered plan placing `tables` under `policy`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the spec has no DRAM channels, when
    /// a table appears twice, or when a table fits on no unit of either
    /// tier.
    pub fn build(
        spec: TierSpec,
        tables: &[TableUsage],
        policy: TieredPolicy,
    ) -> Result<Self, ConfigError> {
        spec.validate()?;
        let mut seen = std::collections::BTreeSet::new();
        for u in tables {
            if !seen.insert(u.table) {
                return Err(ConfigError::new(
                    "tiered-placement",
                    format!("table {} profiled twice", u.table),
                ));
            }
        }
        let units = spec.units();
        // The embedded flat plan carries the closest legacy policy label
        // and no uniform capacity: per-unit bounds are heterogeneous
        // across tiers, so this module enforces them itself via `fits`.
        let mut flat = PlacementPlan {
            channels: units,
            policy: match policy {
                TieredPolicy::Hash => PlacementPolicy::Hash,
                TieredPolicy::FrequencyTiered { replicate_hot } => {
                    PlacementPolicy::FrequencyBalanced {
                        replicate: replicate_hot,
                    }
                }
            },
            capacity: None,
            entries: Vec::with_capacity(tables.len()),
            bytes: vec![0; units],
            load: vec![0.0; units],
        };
        let fits = |flat: &PlacementPlan, unit: usize, bytes: u64| {
            flat.bytes[unit] + bytes <= spec.capacity_of(unit)
        };
        let overflow = |flat: &PlacementPlan, u: &TableUsage| {
            ConfigError::new(
                "tiered-placement",
                format!(
                    "no unit of either tier can hold table {} ({} bytes; DRAM cap {}, SSD cap {}, \
                     placed bytes per unit: {:?})",
                    u.table,
                    u.bytes,
                    spec.dram_channel_capacity,
                    spec.ssd_unit_capacity,
                    flat.bytes,
                ),
            )
        };

        let mut order: Vec<&TableUsage> = tables.iter().collect();
        match policy {
            TieredPolicy::Hash => {
                // Deterministic in table-id order regardless of input
                // order, matching the flat hash policy's spirit.
                order.sort_by_key(|u| u.table);
                for u in order {
                    let home = u.table.index() % spec.dram_channels;
                    let dram = (0..spec.dram_channels)
                        .map(|i| (home + i) % spec.dram_channels)
                        .find(|&c| fits(&flat, c, u.bytes));
                    let unit = dram.or_else(|| {
                        (spec.ssd_units > 0)
                            .then(|| {
                                (0..spec.ssd_units)
                                    .map(|i| {
                                        spec.dram_channels + (u.table.index() + i) % spec.ssd_units
                                    })
                                    .find(|&s| fits(&flat, s, u.bytes))
                            })
                            .flatten()
                    });
                    match unit {
                        Some(c) => flat.place(u, vec![c]),
                        None => return Err(overflow(&flat, u)),
                    }
                }
            }
            TieredPolicy::FrequencyTiered { replicate_hot } => {
                order.sort_by_key(|u| (std::cmp::Reverse(u.accesses), u.table));
                for (rank, u) in order.into_iter().enumerate() {
                    if rank < replicate_hot {
                        let replicas: Vec<usize> = spec
                            .unit_range(StorageTier::Dram)
                            .filter(|&c| fits(&flat, c, u.bytes))
                            .collect();
                        if !replicas.is_empty() {
                            flat.place(u, replicas);
                            continue;
                        }
                        // No DRAM room to replicate: fall through and
                        // place the table like any other.
                    }
                    let pick = |range: std::ops::Range<usize>, flat: &PlacementPlan| {
                        range.filter(|&c| fits(flat, c, u.bytes)).min_by(|&a, &b| {
                            flat.load[a]
                                .total_cmp(&flat.load[b])
                                .then(flat.bytes[a].cmp(&flat.bytes[b]))
                                .then(a.cmp(&b))
                        })
                    };
                    let unit = pick(spec.unit_range(StorageTier::Dram), &flat)
                        .or_else(|| pick(spec.unit_range(StorageTier::Ssd), &flat));
                    match unit {
                        Some(c) => flat.place(u, vec![c]),
                        None => return Err(overflow(&flat, u)),
                    }
                }
            }
        }
        flat.entries.sort_by_key(|(t, _)| *t);
        Ok(Self { spec, policy, flat })
    }

    /// Builds a cache-aware tiered plan: like [`build`](Self::build), but
    /// the hot/cold split is decided on each table's *residual* accesses
    /// after the expected host-cache absorption (see
    /// [`apply_absorption`](super::apply_absorption)) — a table whose
    /// heat the host cache soaks up no longer claims DRAM it won't use.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] under the conditions of
    /// [`build`](Self::build) and
    /// [`apply_absorption`](super::apply_absorption).
    pub fn build_with_absorption(
        spec: TierSpec,
        tables: &[TableUsage],
        absorbed: &[(TableId, u64)],
        policy: TieredPolicy,
    ) -> Result<Self, ConfigError> {
        let residual = super::apply_absorption(tables, absorbed)?;
        Self::build(spec, &residual, policy)
    }

    /// The capacity geometry the plan was built for.
    pub fn spec(&self) -> TierSpec {
        self.spec
    }

    /// The policy the plan was built under.
    pub fn policy(&self) -> TieredPolicy {
        self.policy
    }

    /// The flat combined-space plan — what scatter/shard machinery
    /// consumes. DRAM channels are units `0..dram_channels`, SSD units
    /// follow.
    pub fn flat(&self) -> &PlacementPlan {
        &self.flat
    }

    /// The tier `table` lives on; `None` when the plan does not place it.
    /// Well-defined because replica sets never span tiers.
    pub fn tier_of_table(&self, table: TableId) -> Option<StorageTier> {
        self.flat
            .replicas(table)
            .first()
            .map(|&c| self.spec.tier_of(c))
    }

    /// Deterministic unit pick for a batch of `table` (delegates to the
    /// flat plan's replica rotation).
    pub fn unit_for(&self, table: TableId, salt: usize) -> Option<usize> {
        self.flat.channel_for(table, salt)
    }

    /// Number of tables resident on `tier`.
    pub fn tables_in(&self, tier: StorageTier) -> usize {
        self.flat
            .assignments()
            .filter(|(_, reps)| reps.first().is_some_and(|&c| self.spec.tier_of(c) == tier))
            .count()
    }

    /// Bytes placed on `tier` (replicas count fully).
    pub fn bytes_in(&self, tier: StorageTier) -> u64 {
        self.spec
            .unit_range(tier)
            .map(|c| self.flat.bytes_on(c))
            .sum()
    }

    /// Access load attributed to `tier`.
    pub fn load_in(&self, tier: StorageTier) -> f64 {
        self.spec
            .unit_range(tier)
            .map(|c| self.flat.load_on(c))
            .sum()
    }

    /// Fraction of all placed accesses that `tier` serves; zero when the
    /// plan carries no accesses.
    pub fn load_share(&self, tier: StorageTier) -> f64 {
        let total: f64 = StorageTier::ALL.iter().map(|&t| self.load_in(t)).sum();
        if total == 0.0 {
            0.0
        } else {
            self.load_in(tier) / total
        }
    }

    /// Access-load imbalance *within* `tier`, under the same convention
    /// as [`PlacementPlan::load_imbalance`] (idle and one-unit tiers read
    /// exactly 1.0).
    pub fn tier_load_imbalance(&self, tier: StorageTier) -> f64 {
        let r = self.spec.unit_range(tier);
        imbalance(&self.flat.load[r])
    }

    /// One epoch of the promotion/demotion loop: rebuilds a
    /// frequency-tiered plan from `observed` usage — with resident DRAM
    /// tables' access counts inflated by the hysteresis bonus so
    /// borderline tables don't ping-pong — and reports which tables moved
    /// between tiers and what migrating their bytes costs.
    ///
    /// The returned plan's load accounting uses the *true* observed
    /// accesses (the hysteresis bonus only biases the assignment order).
    /// Tables absent from the old plan are placed fresh and not counted
    /// as migrations. A plan built under [`TieredPolicy::Hash`] rebalances
    /// into `FrequencyTiered { replicate_hot: 0 }` — the cold-start path:
    /// start frequency-blind, observe an epoch, earn the split.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] under the same conditions as
    /// [`build`](Self::build).
    pub fn epoch_rebalance(
        &self,
        observed: &[TableUsage],
        policy: PromotionPolicy,
    ) -> Result<(Self, MigrationReport), ConfigError> {
        let mut boosted: Vec<TableUsage> = observed.to_vec();
        for u in &mut boosted {
            if self.tier_of_table(u.table) == Some(StorageTier::Dram) {
                let scaled = u.accesses as u128 * (100 + policy.hysteresis_pct) as u128 / 100;
                u.accesses = scaled.min(u64::MAX as u128) as u64;
            }
        }
        let replicate_hot = match self.policy {
            TieredPolicy::FrequencyTiered { replicate_hot } => replicate_hot,
            TieredPolicy::Hash => 0,
        };
        let next_policy = TieredPolicy::FrequencyTiered { replicate_hot };
        let shadow = Self::build(self.spec, &boosted, next_policy)?;
        // Replay the shadow's assignment with the true accesses so the
        // new plan's load accounting is unbiased by the hysteresis bonus.
        let mut flat = PlacementPlan {
            channels: self.spec.units(),
            policy: shadow.flat.policy,
            capacity: None,
            entries: Vec::with_capacity(observed.len()),
            bytes: vec![0; self.spec.units()],
            load: vec![0.0; self.spec.units()],
        };
        for u in observed {
            flat.place(u, shadow.flat.replicas(u.table).to_vec());
        }
        flat.entries.sort_by_key(|(t, _)| *t);
        let next = Self {
            spec: self.spec,
            policy: next_policy,
            flat,
        };

        let mut report = MigrationReport::default();
        for u in observed {
            let (old, new) = (self.tier_of_table(u.table), next.tier_of_table(u.table));
            match (old, new) {
                (Some(StorageTier::Ssd), Some(StorageTier::Dram)) => {
                    report.promoted.push(u.table);
                    report.moved_bytes += u.bytes;
                }
                (Some(StorageTier::Dram), Some(StorageTier::Ssd)) => {
                    report.demoted.push(u.table);
                    report.moved_bytes += u.bytes;
                }
                _ => {}
            }
        }
        report.stall_cycles = policy.migration.cost_of(report.moved_bytes);
        Ok((next, report))
    }
}

/// The modeled cost of moving table bytes between tiers: a fixed setup
/// cost plus a per-KiB transfer cost, charged as stall cycles on the
/// affected units at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationCost {
    /// Fixed cycles per migration event (any nonzero move).
    pub base: Cycle,
    /// Cycles per KiB moved (rounded up).
    pub cycles_per_kib: Cycle,
}

impl MigrationCost {
    /// Creates a migration cost model.
    pub const fn new(base: Cycle, cycles_per_kib: Cycle) -> Self {
        Self {
            base,
            cycles_per_kib,
        }
    }

    /// Stall cycles for moving `bytes`; zero cost when nothing moves.
    pub fn cost_of(self, bytes: u64) -> Cycle {
        if bytes == 0 {
            0
        } else {
            self.base + bytes.div_ceil(KIB) * self.cycles_per_kib
        }
    }
}

/// Epoch promotion/demotion configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PromotionPolicy {
    /// Stickiness bonus, in percent, added to the observed access count
    /// of tables already resident in DRAM when re-sorting — a table on
    /// SSD must beat a resident table by this margin to displace it.
    pub hysteresis_pct: u32,
    /// The migration cost model charged for moved bytes.
    pub migration: MigrationCost,
}

/// What one [`epoch_rebalance`](TieredPlacementPlan::epoch_rebalance)
/// moved and what it cost.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MigrationReport {
    /// Tables moved SSD → DRAM.
    pub promoted: Vec<TableId>,
    /// Tables moved DRAM → SSD.
    pub demoted: Vec<TableId>,
    /// Total bytes moved in either direction.
    pub moved_bytes: u64,
    /// Modeled stall charged to the affected units at the boundary.
    pub stall_cycles: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(specs: &[(u32, u64, u64)]) -> Vec<TableUsage> {
        specs
            .iter()
            .map(|&(t, bytes, acc)| TableUsage::new(TableId::new(t), bytes, acc))
            .collect()
    }

    fn spec2x1(dram_cap: u64) -> TierSpec {
        TierSpec {
            dram_channels: 2,
            dram_channel_capacity: ByteSize::bytes(dram_cap),
            ssd_units: 1,
            ssd_unit_capacity: ByteSize::gib(1),
        }
    }

    #[test]
    fn hash_spills_blindly_frequency_spills_cold() {
        // Four equal tables, one DRAM slot per channel: two must spill.
        // Hotness is on tables 2 and 3 — hash (id order) strands table 3
        // on SSD, frequency strands the two coldest.
        let u = usage(&[(0, 100, 5), (1, 100, 10), (2, 100, 900), (3, 100, 800)]);
        let hash = TieredPlacementPlan::build(spec2x1(100), &u, TieredPolicy::Hash).unwrap();
        assert_eq!(hash.tier_of_table(TableId::new(0)), Some(StorageTier::Dram));
        assert_eq!(hash.tier_of_table(TableId::new(1)), Some(StorageTier::Dram));
        assert_eq!(hash.tier_of_table(TableId::new(3)), Some(StorageTier::Ssd));
        let freq = TieredPlacementPlan::build(
            spec2x1(100),
            &u,
            TieredPolicy::FrequencyTiered { replicate_hot: 0 },
        )
        .unwrap();
        assert_eq!(freq.tier_of_table(TableId::new(2)), Some(StorageTier::Dram));
        assert_eq!(freq.tier_of_table(TableId::new(3)), Some(StorageTier::Dram));
        assert_eq!(freq.tier_of_table(TableId::new(0)), Some(StorageTier::Ssd));
        assert_eq!(freq.tier_of_table(TableId::new(1)), Some(StorageTier::Ssd));
        // Frequency keeps (900+800)/1715 of the traffic in DRAM.
        assert!(freq.load_share(StorageTier::Dram) > hash.load_share(StorageTier::Dram));
        assert_eq!(freq.tables_in(StorageTier::Ssd), 2);
        assert_eq!(freq.bytes_in(StorageTier::Ssd), 200);
    }

    #[test]
    fn capacity_bounds_hold_per_unit() {
        let spec = spec2x1(150);
        let u = usage(&[(0, 100, 1), (1, 100, 2), (2, 100, 3), (3, 100, 4)]);
        for policy in TieredPolicy::COMPARED {
            let plan = TieredPlacementPlan::build(spec, &u, policy).unwrap();
            for unit in 0..spec.units() {
                assert!(
                    plan.flat().bytes_on(unit) <= spec.capacity_of(unit),
                    "{policy}: unit {unit} over capacity"
                );
            }
            // Every table placed exactly once (no DRAM replication here).
            assert_eq!(plan.flat().tables(), 4);
            for t in 0..4u32 {
                assert_eq!(plan.flat().replicas(TableId::new(t)).len(), 1);
            }
        }
    }

    #[test]
    fn everything_fits_in_dram_means_empty_ssd() {
        let spec = spec2x1(1000);
        let u = usage(&[(0, 100, 5), (1, 100, 10), (2, 100, 900)]);
        for policy in TieredPolicy::COMPARED {
            let plan = TieredPlacementPlan::build(spec, &u, policy).unwrap();
            assert_eq!(plan.tables_in(StorageTier::Ssd), 0, "{policy}");
            assert_eq!(plan.load_share(StorageTier::Dram), 1.0, "{policy}");
            assert_eq!(plan.tier_load_imbalance(StorageTier::Ssd), 1.0, "{policy}");
        }
    }

    #[test]
    fn replication_stays_in_dram() {
        let spec = spec2x1(250);
        let u = usage(&[(0, 100, 900), (1, 100, 10), (2, 100, 5)]);
        let plan = TieredPlacementPlan::build(
            spec,
            &u,
            TieredPolicy::FrequencyTiered { replicate_hot: 1 },
        )
        .unwrap();
        let reps = plan.flat().replicas(TableId::new(0));
        assert_eq!(reps, &[0, 1]);
        assert!(reps.iter().all(|&c| spec.tier_of(c) == StorageTier::Dram));
        assert_eq!(plan.tier_of_table(TableId::new(0)), Some(StorageTier::Dram));
    }

    #[test]
    fn absorption_moves_cached_hot_table_off_dram() {
        // Table 2 looks hottest but the host cache absorbs nearly all of
        // it; the residual-aware split keeps the truly hot post-cache
        // tables (1 and 3) in DRAM and lets 2 spill.
        let u = usage(&[(0, 100, 5), (1, 100, 200), (2, 100, 900), (3, 100, 300)]);
        let policy = TieredPolicy::FrequencyTiered { replicate_hot: 0 };
        let blind = TieredPlacementPlan::build(spec2x1(100), &u, policy).unwrap();
        assert_eq!(
            blind.tier_of_table(TableId::new(2)),
            Some(StorageTier::Dram)
        );
        let aware = TieredPlacementPlan::build_with_absorption(
            spec2x1(100),
            &u,
            &[(TableId::new(2), 890)],
            policy,
        )
        .unwrap();
        assert_eq!(
            aware.tier_of_table(TableId::new(1)),
            Some(StorageTier::Dram)
        );
        assert_eq!(
            aware.tier_of_table(TableId::new(3)),
            Some(StorageTier::Dram)
        );
        assert_eq!(aware.tier_of_table(TableId::new(2)), Some(StorageTier::Ssd));
        // Over-absorption is rejected here too.
        assert!(TieredPlacementPlan::build_with_absorption(
            spec2x1(100),
            &u,
            &[(TableId::new(2), 901)],
            policy,
        )
        .is_err());
    }

    #[test]
    fn build_rejects_degenerate_inputs() {
        let no_dram = TierSpec {
            dram_channels: 0,
            dram_channel_capacity: ByteSize::mib(1),
            ssd_units: 1,
            ssd_unit_capacity: ByteSize::gib(1),
        };
        let u = usage(&[(0, 100, 1)]);
        assert!(TieredPlacementPlan::build(no_dram, &u, TieredPolicy::Hash).is_err());
        let dup = usage(&[(0, 10, 1), (0, 10, 1)]);
        assert!(TieredPlacementPlan::build(spec2x1(100), &dup, TieredPolicy::Hash).is_err());
        // A table too fat for both tiers errors.
        let fat = usage(&[(0, 2 << 30, 1)]);
        assert!(TieredPlacementPlan::build(spec2x1(100), &fat, TieredPolicy::Hash).is_err());
    }

    #[test]
    fn epoch_promotes_newly_hot_and_respects_hysteresis() {
        let spec = spec2x1(100);
        // Start with 0 and 1 hot (in DRAM), 2 and 3 cold (on SSD).
        let before = usage(&[(0, 100, 900), (1, 100, 800), (2, 100, 10), (3, 100, 5)]);
        let plan = TieredPlacementPlan::build(
            spec,
            &before,
            TieredPolicy::FrequencyTiered { replicate_hot: 0 },
        )
        .unwrap();
        let policy = PromotionPolicy {
            hysteresis_pct: 20,
            migration: MigrationCost::new(1000, 10),
        };
        // Table 2 becomes clearly hottest and earns promotion. Table 3
        // (920) out-accesses resident table 0 (900) but not its boosted
        // count (1080), so hysteresis keeps 0 resident and 3 on SSD.
        let observed = usage(&[(0, 100, 900), (1, 100, 500), (2, 100, 950), (3, 100, 920)]);
        let (next, report) = plan.epoch_rebalance(&observed, policy).unwrap();
        assert_eq!(next.tier_of_table(TableId::new(2)), Some(StorageTier::Dram));
        assert_eq!(next.tier_of_table(TableId::new(0)), Some(StorageTier::Dram));
        assert_eq!(next.tier_of_table(TableId::new(3)), Some(StorageTier::Ssd));
        assert_eq!(report.promoted, vec![TableId::new(2)]);
        assert_eq!(report.demoted, vec![TableId::new(1)]);
        assert_eq!(report.moved_bytes, 200);
        assert_eq!(report.stall_cycles, 1000 + 10); // 200 B rounds to 1 KiB
                                                    // Load accounting in the new plan uses the true observed counts.
        let total: f64 = StorageTier::ALL.iter().map(|&t| next.load_in(t)).sum();
        assert_eq!(total, 900.0 + 500.0 + 950.0 + 920.0);
        // A second epoch with the same traffic is stable: no ping-pong.
        let (next2, report2) = next.epoch_rebalance(&observed, policy).unwrap();
        assert!(report2.promoted.is_empty() && report2.demoted.is_empty());
        assert_eq!(report2.stall_cycles, 0);
        assert_eq!(next2.flat().tables(), 4);
    }

    #[test]
    fn hash_plan_rebalances_into_frequency_plan() {
        // The cold-start path: begin frequency-blind, observe, replan.
        let spec = spec2x1(100);
        let u = usage(&[(0, 100, 5), (1, 100, 10), (2, 100, 900), (3, 100, 800)]);
        let hash = TieredPlacementPlan::build(spec, &u, TieredPolicy::Hash).unwrap();
        let policy = PromotionPolicy {
            hysteresis_pct: 10,
            migration: MigrationCost::new(0, 1),
        };
        let (next, report) = hash.epoch_rebalance(&u, policy).unwrap();
        assert_eq!(
            next.policy(),
            TieredPolicy::FrequencyTiered { replicate_hot: 0 }
        );
        assert_eq!(next.tier_of_table(TableId::new(2)), Some(StorageTier::Dram));
        assert_eq!(next.tier_of_table(TableId::new(3)), Some(StorageTier::Dram));
        assert!(!report.promoted.is_empty());
    }
}
