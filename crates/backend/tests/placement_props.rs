//! Property-based tests for the placement subsystem's invariants:
//!
//! * every profiled table is placed on at least one channel;
//! * per-channel capacity bounds hold whenever a build succeeds;
//! * replica sets are sorted lists of distinct, in-range channels;
//! * plan-driven sharding conserves lookups (the sum over shards equals
//!   the trace total) and respects the replica sets.

use proptest::prelude::*;
use recnmp_backend::{PlacementPlan, PlacementPolicy, SlsTrace, TableUsage};
use recnmp_trace::{EmbeddingTableSpec, Pooling, SlsBatch};
use recnmp_types::{PhysAddr, TableId};

/// A random usage set: table `i` with the given bytes/accesses.
fn usage_strategy() -> impl Strategy<Value = Vec<TableUsage>> {
    prop::collection::vec((1u64..200, 0u64..1000), 1..12).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (bytes, accesses))| TableUsage::new(TableId::new(i as u32), bytes, accesses))
            .collect()
    })
}

fn policy_strategy() -> impl Strategy<Value = PlacementPolicy> {
    prop_oneof![
        Just(PlacementPolicy::Hash),
        Just(PlacementPolicy::CapacityGreedy),
        Just(PlacementPolicy::FrequencyBalanced { replicate: 0 }),
        Just(PlacementPolicy::FrequencyBalanced { replicate: 1 }),
        Just(PlacementPolicy::FrequencyBalanced { replicate: 3 }),
    ]
}

/// A trace over `tables` tables with the given per-table pooling sizes.
fn trace_for(poolings: &[usize]) -> SlsTrace {
    let spec = EmbeddingTableSpec::new(10_000, 128);
    let batches: Vec<SlsBatch> = poolings
        .iter()
        .enumerate()
        .map(|(t, &len)| SlsBatch {
            table: TableId::new(t as u32),
            spec,
            poolings: vec![Pooling::unweighted(
                (0..len as u64)
                    .map(|i| (i * 37 + t as u64) % 10_000)
                    .collect(),
            )],
        })
        .collect();
    SlsTrace::from_batches(&batches, &mut |t, row| {
        PhysAddr::new(((t as u64) << 30) ^ (row * 128))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_table_is_placed_and_replicas_are_sane(
        usage in usage_strategy(),
        channels in 1usize..6,
        policy in policy_strategy(),
    ) {
        let plan = PlacementPlan::build(channels, None, &usage, policy).unwrap();
        prop_assert_eq!(plan.tables(), usage.len());
        for u in &usage {
            let reps = plan.replicas(u.table);
            // Placed on at least one channel.
            prop_assert!(!reps.is_empty(), "table {} unplaced", u.table);
            // Replica channels are sorted, distinct and in range.
            prop_assert!(reps.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(reps.iter().all(|&c| c < channels));
        }
    }

    #[test]
    fn capacity_bound_holds_when_build_succeeds(
        usage in usage_strategy(),
        channels in 1usize..6,
        policy in policy_strategy(),
        capacity in 50u64..2000,
    ) {
        if let Ok(plan) = PlacementPlan::build(channels, Some(capacity), &usage, policy) {
            for c in 0..channels {
                prop_assert!(
                    plan.bytes_on(c) <= capacity,
                    "channel {} holds {} > capacity {}",
                    c,
                    plan.bytes_on(c),
                    capacity
                );
            }
            // The per-channel accounting matches the replica sets.
            let mut expect = vec![0u64; channels];
            for u in &usage {
                for &c in plan.replicas(u.table) {
                    expect[c] += u.bytes;
                }
            }
            for (c, &bytes) in expect.iter().enumerate() {
                prop_assert_eq!(plan.bytes_on(c), bytes);
            }
        }
    }

    #[test]
    fn plan_sharding_conserves_lookups(
        poolings in prop::collection::vec(1usize..40, 1..10),
        channels in 1usize..5,
        policy in policy_strategy(),
    ) {
        let trace = trace_for(&poolings);
        let usage = TableUsage::from_trace(&trace);
        let plan = PlacementPlan::build(channels, None, &usage, policy).unwrap();
        let shards = trace.shard_with_plan(&plan);
        prop_assert_eq!(shards.len(), channels);
        // Conservation: the sum over shards equals the query total, and
        // batch counts add up (nothing is dropped or duplicated).
        let total: u64 = shards.iter().map(SlsTrace::total_lookups).sum();
        prop_assert_eq!(total, trace.total_lookups());
        let batches: usize = shards.iter().map(|s| s.batches.len()).sum();
        prop_assert_eq!(batches, trace.batches.len());
        // Every batch landed on a replica of its table.
        for (c, shard) in shards.iter().enumerate() {
            for b in &shard.batches {
                prop_assert!(plan.replicas(b.table()).contains(&c));
            }
        }
    }

    #[test]
    fn load_accounting_conserves_accesses(
        usage in usage_strategy(),
        channels in 1usize..6,
        policy in policy_strategy(),
    ) {
        let plan = PlacementPlan::build(channels, None, &usage, policy).unwrap();
        let placed: f64 = (0..channels).map(|c| plan.load_on(c)).sum();
        let offered: u64 = usage.iter().map(|u| u.accesses).sum();
        prop_assert!((placed - offered as f64).abs() < 1e-6);
    }
}
