//! Property-based tests for the tiered-placement invariants:
//!
//! * per-unit (and hence per-tier) capacity bounds hold whenever a build
//!   succeeds, for both tiers' heterogeneous capacities;
//! * every profiled table is placed on exactly one replica set whose
//!   units are sorted, distinct, in range and all on one tier;
//! * an epoch rebalance conserves the table set, respects capacity, and
//!   reports exactly the tables that changed tier.

use proptest::prelude::*;
use recnmp_backend::{
    MigrationCost, PromotionPolicy, StorageTier, TableUsage, TierSpec, TieredPlacementPlan,
    TieredPolicy,
};
use recnmp_types::{ByteSize, TableId};

/// A random usage set: table `i` with the given bytes/accesses.
fn usage_strategy() -> impl Strategy<Value = Vec<TableUsage>> {
    prop::collection::vec((1u64..200, 0u64..1000), 1..12).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (bytes, accesses))| TableUsage::new(TableId::new(i as u32), bytes, accesses))
            .collect()
    })
}

fn spec_strategy() -> impl Strategy<Value = TierSpec> {
    (1usize..5, 50u64..600, 1usize..4, 200u64..4000).prop_map(
        |(dram_channels, dram_cap, ssd_units, ssd_cap)| TierSpec {
            dram_channels,
            dram_channel_capacity: ByteSize::bytes(dram_cap),
            ssd_units,
            ssd_unit_capacity: ByteSize::bytes(ssd_cap),
        },
    )
}

fn policy_strategy() -> impl Strategy<Value = TieredPolicy> {
    prop_oneof![
        Just(TieredPolicy::Hash),
        Just(TieredPolicy::FrequencyTiered { replicate_hot: 0 }),
        Just(TieredPolicy::FrequencyTiered { replicate_hot: 2 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn per_unit_capacity_never_exceeded(
        usage in usage_strategy(),
        spec in spec_strategy(),
        policy in policy_strategy(),
    ) {
        if let Ok(plan) = TieredPlacementPlan::build(spec, &usage, policy) {
            for unit in 0..spec.units() {
                prop_assert!(
                    plan.flat().bytes_on(unit) <= spec.capacity_of(unit),
                    "unit {} holds {} > capacity {}",
                    unit,
                    plan.flat().bytes_on(unit),
                    spec.capacity_of(unit)
                );
            }
            // Per-tier totals follow from the per-unit bounds.
            for tier in StorageTier::ALL {
                prop_assert!(plan.bytes_in(tier) <= spec.tier_capacity(tier));
            }
        }
    }

    #[test]
    fn every_table_placed_exactly_once_on_one_tier(
        usage in usage_strategy(),
        spec in spec_strategy(),
        policy in policy_strategy(),
    ) {
        if let Ok(plan) = TieredPlacementPlan::build(spec, &usage, policy) {
            prop_assert_eq!(plan.flat().tables(), usage.len());
            prop_assert_eq!(
                plan.tables_in(StorageTier::Dram) + plan.tables_in(StorageTier::Ssd),
                usage.len()
            );
            for u in &usage {
                let reps = plan.flat().replicas(u.table);
                // One replica set per table: non-empty, sorted, distinct,
                // in range.
                prop_assert!(!reps.is_empty(), "table {} unplaced", u.table);
                prop_assert!(reps.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(reps.iter().all(|&c| c < spec.units()));
                // Replica sets never span tiers, so the table's tier is
                // well-defined.
                let tier = plan.tier_of_table(u.table).unwrap();
                prop_assert!(reps.iter().all(|&c| spec.tier_of(c) == tier));
                // SSD never replicates (replication is a DRAM affair).
                if tier == StorageTier::Ssd {
                    prop_assert_eq!(reps.len(), 1);
                }
            }
        }
    }

    #[test]
    fn epoch_rebalance_conserves_tables_and_capacity(
        before in usage_strategy(),
        shuffle in prop::collection::vec(0u64..1000, 12..13),
        spec in spec_strategy(),
        policy in policy_strategy(),
        hysteresis in 0u32..50,
    ) {
        let Ok(plan) = TieredPlacementPlan::build(spec, &before, policy) else {
            return;
        };
        // Same tables and sizes, new traffic: the epoch's observation.
        let observed: Vec<TableUsage> = before
            .iter()
            .zip(&shuffle)
            .map(|(u, &acc)| TableUsage::new(u.table, u.bytes, acc))
            .collect();
        let promo = PromotionPolicy {
            hysteresis_pct: hysteresis,
            migration: MigrationCost::new(100, 1),
        };
        let Ok((next, report)) = plan.epoch_rebalance(&observed, promo) else {
            return;
        };
        // Conservation: the new plan places exactly the observed tables.
        prop_assert_eq!(next.flat().tables(), observed.len());
        for u in &observed {
            prop_assert!(!next.flat().replicas(u.table).is_empty());
        }
        // Capacity holds after the moves, per unit.
        for unit in 0..spec.units() {
            prop_assert!(next.flat().bytes_on(unit) <= spec.capacity_of(unit));
        }
        // The report names exactly the tables whose tier changed, each
        // in one direction only, and charges their bytes.
        let mut moved_bytes = 0u64;
        for u in &observed {
            let (old, new) = (plan.tier_of_table(u.table), next.tier_of_table(u.table));
            let promoted = report.promoted.contains(&u.table);
            let demoted = report.demoted.contains(&u.table);
            prop_assert!(!(promoted && demoted));
            match (old, new) {
                (Some(StorageTier::Ssd), Some(StorageTier::Dram)) => {
                    prop_assert!(promoted);
                    moved_bytes += u.bytes;
                }
                (Some(StorageTier::Dram), Some(StorageTier::Ssd)) => {
                    prop_assert!(demoted);
                    moved_bytes += u.bytes;
                }
                _ => prop_assert!(!promoted && !demoted),
            }
        }
        prop_assert_eq!(report.moved_bytes, moved_bytes);
        // No moves, no stall; any move pays at least the base cost.
        if moved_bytes == 0 {
            prop_assert_eq!(report.stall_cycles, 0);
        } else {
            prop_assert!(report.stall_cycles >= promo.migration.base);
        }
    }
}
