//! Property-based tests for cache-aware placement
//! ([`PlacementPlan::build_with_absorption`]): the residual-load build
//! used when a host-side hot-embedding cache absorbs part of the
//! profiled traffic before placement.
//!
//! Invariants:
//!
//! * residual load conservation — the placed load equals offered minus
//!   absorbed accesses;
//! * absorption never unplaces a table, shrinks bytes, or loosens the
//!   per-channel capacity bound;
//! * over-absorption (more than observed), duplicate entries, and
//!   unprofiled tables are rejected.

use proptest::prelude::*;
use recnmp_backend::{PlacementPlan, PlacementPolicy, TableUsage};
use recnmp_types::TableId;

/// A random usage set: table `i` with the given bytes/accesses.
fn usage_strategy() -> impl Strategy<Value = Vec<TableUsage>> {
    prop::collection::vec((1u64..200, 0u64..1000), 1..12).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (bytes, accesses))| TableUsage::new(TableId::new(i as u32), bytes, accesses))
            .collect()
    })
}

fn policy_strategy() -> impl Strategy<Value = PlacementPolicy> {
    prop_oneof![
        Just(PlacementPolicy::Hash),
        Just(PlacementPolicy::CapacityGreedy),
        Just(PlacementPolicy::FrequencyBalanced { replicate: 0 }),
        Just(PlacementPolicy::FrequencyBalanced { replicate: 1 }),
    ]
}

/// Absorbs a per-table fraction (num/64) of each table's observed
/// accesses — always a legal absorption set.
fn absorb_fraction(usage: &[TableUsage], num: u64) -> Vec<(TableId, u64)> {
    usage
        .iter()
        .map(|u| (u.table, u.accesses * num / 64))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn residual_load_is_offered_minus_absorbed(
        usage in usage_strategy(),
        channels in 1usize..6,
        policy in policy_strategy(),
        num in 0u64..65,
    ) {
        let absorbed = absorb_fraction(&usage, num);
        let plan =
            PlacementPlan::build_with_absorption(channels, None, &usage, &absorbed, policy)
                .unwrap();
        let placed: f64 = (0..channels).map(|c| plan.load_on(c)).sum();
        let offered: u64 = usage.iter().map(|u| u.accesses).sum();
        let hits: u64 = absorbed.iter().map(|&(_, n)| n).sum();
        prop_assert!(hits <= offered, "absorbed {hits} > observed {offered}");
        prop_assert!(
            (placed - (offered - hits) as f64).abs() < 1e-6,
            "placed {placed} != offered {offered} - absorbed {hits}"
        );
    }

    #[test]
    fn absorption_keeps_every_table_placed_with_full_bytes(
        usage in usage_strategy(),
        channels in 1usize..6,
        policy in policy_strategy(),
        num in 0u64..65,
    ) {
        let absorbed = absorb_fraction(&usage, num);
        let plan =
            PlacementPlan::build_with_absorption(channels, None, &usage, &absorbed, policy)
                .unwrap();
        prop_assert_eq!(plan.tables(), usage.len());
        // The cache absorbs lookups, not rows: every table still needs
        // its full bytes resident on each replica channel.
        let mut expect = vec![0u64; channels];
        for u in &usage {
            let reps = plan.replicas(u.table);
            prop_assert!(!reps.is_empty(), "table {} unplaced", u.table);
            prop_assert!(reps.iter().all(|&c| c < channels));
            for &c in reps {
                expect[c] += u.bytes;
            }
        }
        for (c, &bytes) in expect.iter().enumerate() {
            prop_assert_eq!(plan.bytes_on(c), bytes);
        }
    }

    #[test]
    fn capacity_bound_survives_absorption(
        usage in usage_strategy(),
        channels in 1usize..6,
        policy in policy_strategy(),
        num in 0u64..65,
        capacity in 50u64..2000,
    ) {
        let absorbed = absorb_fraction(&usage, num);
        if let Ok(plan) = PlacementPlan::build_with_absorption(
            channels,
            Some(capacity),
            &usage,
            &absorbed,
            policy,
        ) {
            for c in 0..channels {
                prop_assert!(
                    plan.bytes_on(c) <= capacity,
                    "channel {} holds {} > capacity {}",
                    c,
                    plan.bytes_on(c),
                    capacity
                );
            }
        }
    }

    #[test]
    fn over_absorption_is_rejected(
        usage in usage_strategy(),
        channels in 1usize..6,
        policy in policy_strategy(),
    ) {
        let victim = &usage[0];
        let absorbed = vec![(victim.table, victim.accesses + 1)];
        prop_assert!(PlacementPlan::build_with_absorption(
            channels, None, &usage, &absorbed, policy
        )
        .is_err());
    }

    #[test]
    fn duplicate_and_unprofiled_tables_are_rejected(
        usage in usage_strategy(),
        channels in 1usize..6,
        policy in policy_strategy(),
    ) {
        let dup = vec![(usage[0].table, 0), (usage[0].table, 0)];
        prop_assert!(PlacementPlan::build_with_absorption(
            channels, None, &usage, &dup, policy
        )
        .is_err());
        let ghost = vec![(TableId::new(usage.len() as u32 + 7), 0)];
        prop_assert!(PlacementPlan::build_with_absorption(
            channels, None, &usage, &ghost, policy
        )
        .is_err());
    }
}
