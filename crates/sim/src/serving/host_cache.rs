//! The host-side hot-embedding cache and the inter-query hot-vector
//! tracker — the serving-layer half of cache-aware serving.
//!
//! [`HostCache`] sits *in front of* dispatch: each job's trace is
//! filtered through a capacity-bounded LRU vector cache restricted to
//! the stream's hottest tables, absorbed lookups are removed from the
//! dispatched work (shards genuinely shrink), and the scheduler charges
//! the host-side hit cost instead. [`HotVectorTracker`] accumulates the
//! dispatched (post-cache) traffic so idle channels can stage the
//! vectors most likely to recur — the candidate source for
//! [`SlsBackend::prefetch_on`](recnmp_backend::SlsBackend::prefetch_on).

use std::collections::{BTreeMap, BTreeSet};

use recnmp_backend::{SlsTrace, TableUsage};
use recnmp_cache::{CacheConfig, SetAssocCache};
use recnmp_types::{ConfigError, Cycle, TableId};

use super::policy::HostCacheSpec;

/// The host-side hot-embedding cache: a set-associative vector cache
/// (one line per embedding vector) with a hottest-tables admission
/// filter. Purely trace-driven — it tracks presence, not contents.
#[derive(Debug, Clone)]
pub(super) struct HostCache {
    cache: SetAssocCache,
    admitted: BTreeSet<TableId>,
    hit_cycles: Cycle,
    hits: u64,
    misses: u64,
    absorbed_bytes: u64,
    per_table_hits: BTreeMap<TableId, u64>,
}

impl HostCache {
    /// Builds the cache for a stream whose profile is `usage`: lines are
    /// sized to the stream's largest vector and only the
    /// `spec.hot_tables` hottest tables (by observed accesses, ties to
    /// the lower table id) are admitted.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the capacity cannot hold even one
    /// vector-sized line (or is not a power-of-two line multiple).
    pub fn build(
        spec: HostCacheSpec,
        usage: &[TableUsage],
        vector_bytes: u64,
    ) -> Result<Self, ConfigError> {
        let mut by_heat: Vec<&TableUsage> = usage.iter().collect();
        by_heat.sort_by_key(|u| (std::cmp::Reverse(u.accesses), u.table));
        let admitted = by_heat
            .into_iter()
            .take(spec.hot_tables)
            .map(|u| u.table)
            .collect();
        let cache = SetAssocCache::new(CacheConfig::new(
            spec.capacity.get(),
            vector_bytes.max(1),
            8,
        ))?;
        Ok(Self {
            cache,
            admitted,
            hit_cycles: spec.hit_cycles,
            hits: 0,
            misses: 0,
            absorbed_bytes: 0,
            per_table_hits: BTreeMap::new(),
        })
    }

    /// Host-side cycles charged per absorbed lookup.
    pub fn hit_cycles(&self) -> Cycle {
        self.hit_cycles
    }

    /// Filters one job's trace through the cache: every lookup of an
    /// admitted table probes it, hits are absorbed (dropped from the
    /// dispatched trace, indices/weights/addresses rebuilt in lockstep),
    /// misses allocate and stay in the trace. Non-admitted tables bypass
    /// the cache and count as misses. Returns the residual trace and the
    /// number of lookups this job absorbed.
    ///
    /// Conservation: over a run, `hits + misses` equals the offered
    /// lookups exactly.
    pub fn filter(&mut self, trace: SlsTrace) -> (SlsTrace, u64) {
        let mut residual = SlsTrace::default();
        let mut job_hits = 0u64;
        for mut batch in trace.batches {
            let table = batch.batch.table;
            if !self.admitted.contains(&table) {
                self.misses += batch.lookups();
                residual.batches.push(batch);
                continue;
            }
            let vbytes = batch.batch.spec.vector_bytes;
            let mut kept_poolings = Vec::with_capacity(batch.batch.poolings.len());
            let mut kept_addrs = Vec::with_capacity(batch.addrs.len());
            for (pooling, addrs) in batch.batch.poolings.drain(..).zip(batch.addrs.drain(..)) {
                let weighted = !pooling.weights.is_empty();
                let mut indices = Vec::with_capacity(pooling.indices.len());
                let mut weights = Vec::with_capacity(pooling.weights.len());
                let mut kept = Vec::with_capacity(addrs.len());
                for (slot, addr) in addrs.iter().enumerate() {
                    if self.cache.access(addr.get()).is_hit() {
                        self.hits += 1;
                        job_hits += 1;
                        self.absorbed_bytes += vbytes;
                        *self.per_table_hits.entry(table).or_insert(0) += 1;
                    } else {
                        self.misses += 1;
                        indices.push(pooling.indices[slot]);
                        if weighted {
                            weights.push(pooling.weights[slot]);
                        }
                        kept.push(*addr);
                    }
                }
                // A fully-absorbed pooling is computed entirely on the
                // host; it leaves the dispatched batch.
                if !indices.is_empty() {
                    kept_poolings.push(recnmp_trace::Pooling { indices, weights });
                    kept_addrs.push(kept);
                }
            }
            if !kept_poolings.is_empty() {
                batch.batch.poolings = kept_poolings;
                batch.addrs = kept_addrs;
                residual.batches.push(batch);
            }
        }
        (residual, job_hits)
    }

    /// `(hits, misses, absorbed_bytes)` accumulated so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.absorbed_bytes)
    }

    /// Per-table absorbed lookups so far, ascending by table — the
    /// expected-absorption profile
    /// [`apply_absorption`](recnmp_backend::apply_absorption) consumes.
    pub fn absorbed_profile(&self) -> Vec<(TableId, u64)> {
        self.per_table_hits.iter().map(|(&t, &n)| (t, n)).collect()
    }

    /// Returns the cache to cold: contents and every counter cleared.
    /// The placement dry-run uses this so the measured pass starts from
    /// the same cold state a fresh cache would.
    pub fn reset(&mut self) {
        self.cache.reset();
        self.hits = 0;
        self.misses = 0;
        self.absorbed_bytes = 0;
        self.per_table_hits.clear();
    }
}

/// Accumulates the dispatched traffic's per-vector access counts and
/// surfaces the hottest candidates — the inter-query prediction that past
/// hot vectors recur (Zipf-skewed index streams make this a good bet).
#[derive(Debug, Clone)]
pub(super) struct HotVectorTracker {
    candidates: usize,
    counts: BTreeMap<u64, (u64, TableId, u32)>,
}

impl HotVectorTracker {
    /// A tracker surfacing the `candidates` hottest vectors.
    pub fn new(candidates: usize) -> Self {
        Self {
            candidates,
            counts: BTreeMap::new(),
        }
    }

    /// Accumulates every lookup of `trace` (call with the *dispatched*
    /// trace: host-cache-absorbed vectors never reach a channel, so
    /// staging them would waste idle budget).
    pub fn observe(&mut self, trace: &SlsTrace) {
        for batch in &trace.batches {
            let table = batch.batch.table;
            let vbytes = batch.batch.spec.vector_bytes.min(u64::from(u32::MAX)) as u32;
            for addrs in &batch.addrs {
                for addr in addrs {
                    let e = self.counts.entry(addr.get()).or_insert((0, table, vbytes));
                    e.0 += 1;
                }
            }
        }
    }

    /// The hottest vectors seen so far as `(addr, table, vector_bytes)`,
    /// hottest-first (count descending, ties to the lower address — fully
    /// deterministic).
    pub fn hottest(&self) -> Vec<(u64, TableId, u32)> {
        let mut all: Vec<(u64, u64, TableId, u32)> = self
            .counts
            .iter()
            .map(|(&addr, &(n, table, vb))| (addr, n, table, vb))
            .collect();
        all.sort_by_key(|&(addr, n, _, _)| (std::cmp::Reverse(n), addr));
        all.truncate(self.candidates);
        all.into_iter().map(|(a, _, t, vb)| (a, t, vb)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_types::{ByteSize, PhysAddr};

    fn trace(tables: u32, batch: usize, pool: usize) -> SlsTrace {
        let batches: Vec<recnmp_trace::SlsBatch> = (0..tables)
            .map(|t| {
                recnmp_trace::TraceGenerator::new(
                    TableId::new(t),
                    recnmp_trace::EmbeddingTableSpec::dlrm_default(),
                    recnmp_trace::IndexDistribution::Zipf { s: 0.9 },
                    7 + t as u64,
                )
                .batch(batch, pool)
            })
            .collect();
        SlsTrace::from_batches(&batches, &mut |t, row| {
            PhysAddr::new(((t as u64) << 31) ^ (row * 131 * 128))
        })
    }

    fn spec() -> HostCacheSpec {
        HostCacheSpec {
            capacity: ByteSize::kib(64),
            hot_tables: 2,
            hit_cycles: 2,
        }
    }

    #[test]
    fn filter_conserves_lookups_and_shrinks_reoffered_traffic() {
        let t = trace(4, 4, 20);
        let offered = t.total_lookups();
        let usage = TableUsage::from_trace(&t);
        let mut hc = HostCache::build(spec(), &usage, 128).unwrap();
        let (first, first_hits) = hc.filter(t.clone());
        assert_eq!(first.total_lookups() + first_hits, offered);
        // Re-offering the same traffic hits what the first pass cached.
        let (second, second_hits) = hc.filter(t);
        assert!(second_hits > first_hits);
        assert!(second.total_lookups() < first.total_lookups());
        let (hits, misses, bytes) = hc.stats();
        assert_eq!(hits + misses, 2 * offered, "conservation over the run");
        assert_eq!(hits, first_hits + second_hits);
        assert_eq!(bytes, hits * 128);
        // Only admitted (hot) tables absorb.
        let admitted: Vec<TableId> = hc.absorbed_profile().iter().map(|&(t, _)| t).collect();
        assert!(admitted.len() <= 2);
        assert!(hc.absorbed_profile().iter().all(|&(_, n)| n > 0));
    }

    #[test]
    fn filter_rebuilds_indices_and_addrs_in_lockstep() {
        let t = trace(2, 2, 30);
        let usage = TableUsage::from_trace(&t);
        let mut hc = HostCache::build(spec(), &usage, 128).unwrap();
        let _ = hc.filter(t.clone());
        let (residual, _) = hc.filter(t);
        for batch in &residual.batches {
            assert_eq!(batch.batch.poolings.len(), batch.addrs.len());
            for (pooling, addrs) in batch.batch.poolings.iter().zip(&batch.addrs) {
                assert_eq!(pooling.indices.len(), addrs.len());
                assert!(!pooling.indices.is_empty(), "empty poolings are dropped");
            }
        }
    }

    #[test]
    fn reset_restores_cold_behaviour() {
        let t = trace(2, 2, 20);
        let usage = TableUsage::from_trace(&t);
        let mut hc = HostCache::build(spec(), &usage, 128).unwrap();
        let (cold, cold_hits) = hc.filter(t.clone());
        let _ = hc.filter(t.clone());
        hc.reset();
        assert_eq!(hc.stats(), (0, 0, 0));
        assert!(hc.absorbed_profile().is_empty());
        let (again, again_hits) = hc.filter(t);
        assert_eq!(again_hits, cold_hits);
        assert_eq!(again, cold);
    }

    #[test]
    fn tracker_ranks_by_count_then_address() {
        let t = trace(2, 4, 25);
        let mut tr = HotVectorTracker::new(8);
        tr.observe(&t);
        let hot = tr.hottest();
        assert_eq!(hot.len(), 8);
        // Deterministic: observing the same trace again doubles counts
        // but preserves the ranking.
        let mut tr2 = HotVectorTracker::new(8);
        tr2.observe(&t);
        tr2.observe(&t);
        assert_eq!(
            hot.iter().map(|h| h.0).collect::<Vec<_>>(),
            tr2.hottest().iter().map(|h| h.0).collect::<Vec<_>>()
        );
        assert!(hot.iter().all(|&(_, _, vb)| vb == 128));
    }
}
