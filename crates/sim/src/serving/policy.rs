//! Dispatch policies, sharded scatter/gather dispatch, and batch
//! coalescing for the query scheduler.

use recnmp_backend::{PlacementPolicy, PromotionPolicy, TierSpec, TieredPolicy};
use recnmp_types::{ByteSize, Cycle};
use serde::{Deserialize, Serialize};

/// How the scheduler places dispatched jobs onto the backend's servers
/// (channels of a cluster; the single pipeline of a one-channel system).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// One global FIFO queue: each job goes to whichever server frees
    /// first (central-queue M/G/k — the work-conserving reference).
    FifoSingleQueue,
    /// Jobs rotate across servers in dispatch order regardless of load —
    /// cheap, stateless, but blind to service-time variance.
    RoundRobin,
    /// Join-least-work: each job goes to the server with the fewest
    /// outstanding *lookups* at dispatch time, a size-aware variant of
    /// join-shortest-queue.
    LeastOutstanding,
}

impl DispatchPolicy {
    /// Every policy, in report order.
    pub const ALL: [DispatchPolicy; 3] = [
        DispatchPolicy::FifoSingleQueue,
        DispatchPolicy::RoundRobin,
        DispatchPolicy::LeastOutstanding,
    ];

    /// Short stable label for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            DispatchPolicy::FifoSingleQueue => "fifo",
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastOutstanding => "least-outstanding",
        }
    }
}

impl std::fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The host-side cost of merging a scattered query's partial results.
///
/// A sharded query returns one set of partial pooled sums per shard; the
/// host reduces them into the final SLS output. The cost model is affine:
/// a fixed `base` (kernel launch, result-buffer setup) plus `per_shard`
/// cycles for each partial result merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatherCost {
    /// Fixed merge overhead per query.
    pub base: Cycle,
    /// Additional cycles per shard whose partials are merged.
    pub per_shard: Cycle,
}

impl GatherCost {
    /// An explicit cost model.
    pub const fn new(base: Cycle, per_shard: Cycle) -> Self {
        Self { base, per_shard }
    }

    /// The default host merge cost: ~50 ns of fixed overhead (60 cycles
    /// at DDR4-2400) plus 20 cycles per partial-sum set — small against
    /// per-query service times, as host-side final reduction is in
    /// production SLS serving.
    pub const fn host_default() -> Self {
        Self::new(60, 20)
    }
}

impl Default for GatherCost {
    fn default() -> Self {
        Self::host_default()
    }
}

/// Sharded scatter/gather dispatch: each query fans out to every channel
/// owning one of its tables under a
/// [`PlacementPlan`](recnmp_backend::PlacementPlan) built from the query
/// stream's table profile, and completes at the slowest shard plus the
/// host [`GatherCost`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardedDispatch {
    /// How tables are placed on channels.
    pub placement: PlacementPolicy,
    /// Host-side merge cost added after the slowest shard completes.
    pub gather: GatherCost,
    /// Optional per-channel byte capacity for the placement plan.
    pub channel_capacity: Option<ByteSize>,
}

impl ShardedDispatch {
    /// Sharded dispatch under `placement`, default gather cost, no
    /// capacity bound.
    pub const fn new(placement: PlacementPolicy) -> Self {
        Self {
            placement,
            gather: GatherCost::host_default(),
            channel_capacity: None,
        }
    }
}

/// Epoch-based promotion/demotion layered on tiered serving: every
/// `epoch_queries` dispatched jobs the scheduler rebuilds the tiered
/// plan from the traffic observed in the finished epoch
/// ([`TieredPlacementPlan::epoch_rebalance`][rebal]) and stalls the
/// units that gained or lost tables by the modeled migration cost.
///
/// [rebal]: recnmp_backend::TieredPlacementPlan::epoch_rebalance
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochPromotion {
    /// Jobs per epoch (a rebalance happens at each epoch boundary).
    pub epoch_queries: usize,
    /// Hysteresis and migration-cost model of each rebalance.
    pub policy: PromotionPolicy,
}

/// Tiered scatter/gather dispatch: a
/// [`TieredPlacementPlan`](recnmp_backend::TieredPlacementPlan) assigns
/// each table to a DRAM channel or an SSD unit of the combined server
/// space; queries whose tables span tiers fan out to both and complete
/// at the slowest tier plus the host [`GatherCost`] — so tail latency
/// reflects the slow tier exactly when placement puts hot data there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TieredDispatch {
    /// How tables split across tiers.
    pub policy: TieredPolicy,
    /// Host-side merge cost added after the slowest shard completes.
    pub gather: GatherCost,
    /// The capacity geometry (must match the backend's server space:
    /// DRAM channels first, SSD units after).
    pub tiers: TierSpec,
    /// Optional epoch-based promotion/demotion; `None` serves a static
    /// plan built from the query stream's table profile.
    pub promotion: Option<EpochPromotion>,
}

impl TieredDispatch {
    /// Tiered dispatch under `policy` over `tiers`, default gather cost,
    /// no promotion epochs.
    pub const fn new(policy: TieredPolicy, tiers: TierSpec) -> Self {
        Self {
            policy,
            gather: GatherCost::host_default(),
            tiers,
            promotion: None,
        }
    }
}

/// How the scheduler turns queries into backend work: whole-query
/// dispatch onto one server under a [`DispatchPolicy`], sharded
/// scatter/gather across the servers owning the query's tables, or
/// tier-aware scatter/gather over a DRAM+SSD server space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServingMode {
    /// Each job runs unsharded on a single server picked by the policy —
    /// the pre-placement serving model, kept as a first-class mode.
    Queued(DispatchPolicy),
    /// Each job scatters across the channels its tables live on and
    /// gathers on the host.
    Sharded(ShardedDispatch),
    /// Each job scatters across both storage tiers under a
    /// [`TieredPlacementPlan`](recnmp_backend::TieredPlacementPlan).
    Tiered(TieredDispatch),
}

impl ServingMode {
    /// Short stable label for reports and JSON (queued modes keep their
    /// dispatch-policy names, so pre-placement report formats are
    /// unchanged).
    pub fn name(self) -> &'static str {
        match self {
            ServingMode::Queued(p) => p.name(),
            ServingMode::Sharded(s) => match s.placement {
                PlacementPolicy::Hash => "sharded-hash",
                PlacementPolicy::CapacityGreedy => "sharded-capacity",
                PlacementPolicy::FrequencyBalanced { .. } => "sharded-frequency",
            },
            ServingMode::Tiered(t) => match (t.policy, t.promotion) {
                (TieredPolicy::Hash, None) => "tiered-hash",
                (TieredPolicy::FrequencyTiered { .. }, None) => "tiered-frequency",
                // With epochs the plan converges to frequency-tiered
                // regardless of the cold-start policy; the name records
                // that the split was *learned*, not given.
                (_, Some(_)) => "tiered-promote",
            },
        }
    }

    /// Sharded mode under `placement` with default gather cost.
    pub const fn sharded(placement: PlacementPolicy) -> Self {
        ServingMode::Sharded(ShardedDispatch::new(placement))
    }

    /// Tiered mode under `policy` over `tiers` with default gather cost
    /// and no promotion epochs.
    pub const fn tiered(policy: TieredPolicy, tiers: TierSpec) -> Self {
        ServingMode::Tiered(TieredDispatch::new(policy, tiers))
    }
}

impl From<DispatchPolicy> for ServingMode {
    fn from(p: DispatchPolicy) -> Self {
        ServingMode::Queued(p)
    }
}

impl std::fmt::Display for ServingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Batch coalescing: merge queries that arrive close together into one
/// backend run, trading per-query latency (waiting for the group to
/// close) for service efficiency (bigger traces amortize row activations
/// and packet headers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coalescing {
    /// A group dispatches as soon as it holds this many queries.
    pub max_queries: usize,
    /// ... or when its oldest member has waited this long, whichever
    /// comes first.
    pub max_wait: Cycle,
}

impl Coalescing {
    /// A coalescer closing groups at `max_queries` queries or `max_wait`
    /// cycles of oldest-member wait.
    ///
    /// # Panics
    ///
    /// Panics when `max_queries` is zero.
    pub fn new(max_queries: usize, max_wait: Cycle) -> Self {
        assert!(max_queries > 0, "coalescing groups need at least 1 query");
        Self {
            max_queries,
            max_wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            DispatchPolicy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), DispatchPolicy::ALL.len());
        assert_eq!(DispatchPolicy::FifoSingleQueue.to_string(), "fifo");
    }

    #[test]
    fn mode_names_cover_queued_and_sharded() {
        // Queued names match their dispatch policies (report-format
        // compatibility); sharded names are distinct per placement.
        for p in DispatchPolicy::ALL {
            assert_eq!(ServingMode::Queued(p).name(), p.name());
        }
        let sharded: std::collections::HashSet<&str> = PlacementPolicy::COMPARED
            .iter()
            .map(|&p| ServingMode::sharded(p).name())
            .collect();
        assert_eq!(sharded.len(), PlacementPolicy::COMPARED.len());
        assert!(sharded.iter().all(|n| n.starts_with("sharded-")));
    }

    #[test]
    fn tiered_mode_names_distinguish_policy_and_promotion() {
        use recnmp_backend::MigrationCost;
        use recnmp_types::ByteSize;
        let tiers = TierSpec {
            dram_channels: 4,
            dram_channel_capacity: ByteSize::mib(128),
            ssd_units: 2,
            ssd_unit_capacity: ByteSize::gib(64),
        };
        assert_eq!(
            ServingMode::tiered(TieredPolicy::Hash, tiers).name(),
            "tiered-hash"
        );
        assert_eq!(
            ServingMode::tiered(TieredPolicy::FrequencyTiered { replicate_hot: 0 }, tiers).name(),
            "tiered-frequency"
        );
        let mut promote = TieredDispatch::new(TieredPolicy::Hash, tiers);
        promote.promotion = Some(EpochPromotion {
            epoch_queries: 8,
            policy: PromotionPolicy {
                hysteresis_pct: 10,
                migration: MigrationCost::new(1000, 10),
            },
        });
        assert_eq!(ServingMode::Tiered(promote).name(), "tiered-promote");
    }

    #[test]
    #[should_panic(expected = "at least 1 query")]
    fn zero_group_size_is_rejected() {
        Coalescing::new(0, 100);
    }
}
