//! Dispatch policies, sharded scatter/gather dispatch, and batch
//! coalescing for the query scheduler.

use recnmp_backend::{PlacementPolicy, PromotionPolicy, TierSpec, TieredPolicy};
use recnmp_types::{ByteSize, Cycle};
use serde::{Deserialize, Serialize};

/// How the scheduler places dispatched jobs onto the backend's servers
/// (channels of a cluster; the single pipeline of a one-channel system).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// One global FIFO queue: each job goes to whichever server frees
    /// first (central-queue M/G/k — the work-conserving reference).
    FifoSingleQueue,
    /// Jobs rotate across servers in dispatch order regardless of load —
    /// cheap, stateless, but blind to service-time variance.
    RoundRobin,
    /// Join-least-work: each job goes to the server with the fewest
    /// outstanding *lookups* at dispatch time, a size-aware variant of
    /// join-shortest-queue.
    LeastOutstanding,
}

impl DispatchPolicy {
    /// Every policy, in report order.
    pub const ALL: [DispatchPolicy; 3] = [
        DispatchPolicy::FifoSingleQueue,
        DispatchPolicy::RoundRobin,
        DispatchPolicy::LeastOutstanding,
    ];

    /// Short stable label for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            DispatchPolicy::FifoSingleQueue => "fifo",
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastOutstanding => "least-outstanding",
        }
    }
}

impl std::fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The host-side cost of merging a scattered query's partial results.
///
/// A sharded query returns one set of partial pooled sums per shard; the
/// host reduces them into the final SLS output. The cost model is affine:
/// a fixed `base` (kernel launch, result-buffer setup) plus `per_shard`
/// cycles for each partial result merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatherCost {
    /// Fixed merge overhead per query.
    pub base: Cycle,
    /// Additional cycles per shard whose partials are merged.
    pub per_shard: Cycle,
}

impl GatherCost {
    /// An explicit cost model.
    pub const fn new(base: Cycle, per_shard: Cycle) -> Self {
        Self { base, per_shard }
    }

    /// The default host merge cost: ~50 ns of fixed overhead (60 cycles
    /// at DDR4-2400) plus 20 cycles per partial-sum set — small against
    /// per-query service times, as host-side final reduction is in
    /// production SLS serving.
    pub const fn host_default() -> Self {
        Self::new(60, 20)
    }
}

impl Default for GatherCost {
    fn default() -> Self {
        Self::host_default()
    }
}

/// A host-side hot-embedding cache in front of dispatch: a
/// capacity-bounded LRU vector cache that absorbs lookups to hot rows of
/// the hottest tables *before* they reach any channel. An absorbed
/// lookup is removed from the dispatched trace (the shard runs genuinely
/// less work) and costs `hit_cycles` of host time instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostCacheSpec {
    /// Total cache capacity in bytes (whole vectors are cached).
    pub capacity: ByteSize,
    /// Admission filter: only the `hot_tables` hottest tables of the
    /// stream's profile are cacheable — cold-table traffic bypasses the
    /// cache entirely instead of thrashing it.
    pub hot_tables: usize,
    /// Host-side cycles charged per absorbed lookup (the hit still reads
    /// host DRAM and feeds the final reduction).
    pub hit_cycles: Cycle,
}

impl HostCacheSpec {
    /// A host cache of `capacity` admitting the 4 hottest tables at the
    /// default hit cost.
    pub const fn with_capacity(capacity: ByteSize) -> Self {
        Self {
            capacity,
            hot_tables: 4,
            hit_cycles: 2,
        }
    }
}

/// Inter-query rank-cache prefetch: between arrivals, idle channels stage
/// the hottest vectors observed so far into their RankCaches as
/// low-priority traffic (the idle gap is the budget, so prefetch always
/// yields to demand work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchSpec {
    /// Hottest-first candidate list length (vectors), across channels.
    pub candidates: usize,
}

impl PrefetchSpec {
    /// A prefetcher tracking the `candidates` hottest vectors.
    pub const fn new(candidates: usize) -> Self {
        Self { candidates }
    }
}

/// Sharded scatter/gather dispatch: each query fans out to every channel
/// owning one of its tables under a
/// [`PlacementPlan`](recnmp_backend::PlacementPlan) built from the query
/// stream's table profile, and completes at the slowest shard plus the
/// host [`GatherCost`].
///
/// With `host_cache` set, a [`HostCacheSpec`] absorbs hot lookups before
/// sharding and the placement plan is built from the *residual* traffic
/// (cache/placement co-design via
/// [`apply_absorption`](recnmp_backend::apply_absorption)); with
/// `prefetch` set, idle channels stage predicted-hot vectors between
/// arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardedDispatch {
    /// How tables are placed on channels.
    pub placement: PlacementPolicy,
    /// Host-side merge cost added after the slowest shard completes.
    pub gather: GatherCost,
    /// Optional per-channel byte capacity for the placement plan.
    pub channel_capacity: Option<ByteSize>,
    /// Optional host-side hot-embedding cache ahead of dispatch.
    pub host_cache: Option<HostCacheSpec>,
    /// Optional inter-query prefetch into channel RankCaches.
    pub prefetch: Option<PrefetchSpec>,
}

impl ShardedDispatch {
    /// Sharded dispatch under `placement`, default gather cost, no
    /// capacity bound, no host cache, no prefetch.
    pub const fn new(placement: PlacementPolicy) -> Self {
        Self {
            placement,
            gather: GatherCost::host_default(),
            channel_capacity: None,
            host_cache: None,
            prefetch: None,
        }
    }

    /// The same dispatch with a host cache in front.
    pub const fn with_host_cache(mut self, cache: HostCacheSpec) -> Self {
        self.host_cache = Some(cache);
        self
    }

    /// The same dispatch with inter-query prefetch enabled.
    pub const fn with_prefetch(mut self, prefetch: PrefetchSpec) -> Self {
        self.prefetch = Some(prefetch);
        self
    }
}

/// Epoch-based promotion/demotion layered on tiered serving: every
/// `epoch_queries` dispatched jobs the scheduler rebuilds the tiered
/// plan from the traffic observed in the finished epoch
/// ([`TieredPlacementPlan::epoch_rebalance`][rebal]) and stalls the
/// units that gained or lost tables by the modeled migration cost.
///
/// [rebal]: recnmp_backend::TieredPlacementPlan::epoch_rebalance
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochPromotion {
    /// Jobs per epoch (a rebalance happens at each epoch boundary).
    pub epoch_queries: usize,
    /// Hysteresis and migration-cost model of each rebalance.
    pub policy: PromotionPolicy,
}

/// Tiered scatter/gather dispatch: a
/// [`TieredPlacementPlan`](recnmp_backend::TieredPlacementPlan) assigns
/// each table to a DRAM channel or an SSD unit of the combined server
/// space; queries whose tables span tiers fan out to both and complete
/// at the slowest tier plus the host [`GatherCost`] — so tail latency
/// reflects the slow tier exactly when placement puts hot data there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TieredDispatch {
    /// How tables split across tiers.
    pub policy: TieredPolicy,
    /// Host-side merge cost added after the slowest shard completes.
    pub gather: GatherCost,
    /// The capacity geometry (must match the backend's server space:
    /// DRAM channels first, SSD units after).
    pub tiers: TierSpec,
    /// Optional epoch-based promotion/demotion; `None` serves a static
    /// plan built from the query stream's table profile.
    pub promotion: Option<EpochPromotion>,
}

impl TieredDispatch {
    /// Tiered dispatch under `policy` over `tiers`, default gather cost,
    /// no promotion epochs.
    pub const fn new(policy: TieredPolicy, tiers: TierSpec) -> Self {
        Self {
            policy,
            gather: GatherCost::host_default(),
            tiers,
            promotion: None,
        }
    }
}

/// How the scheduler turns queries into backend work: whole-query
/// dispatch onto one server under a [`DispatchPolicy`], sharded
/// scatter/gather across the servers owning the query's tables, or
/// tier-aware scatter/gather over a DRAM+SSD server space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServingMode {
    /// Each job runs unsharded on a single server picked by the policy —
    /// the pre-placement serving model, kept as a first-class mode.
    Queued(DispatchPolicy),
    /// Each job scatters across the channels its tables live on and
    /// gathers on the host.
    Sharded(ShardedDispatch),
    /// Each job scatters across both storage tiers under a
    /// [`TieredPlacementPlan`](recnmp_backend::TieredPlacementPlan).
    Tiered(TieredDispatch),
}

impl ServingMode {
    /// Short stable label for reports and JSON (queued modes keep their
    /// dispatch-policy names, so pre-placement report formats are
    /// unchanged).
    pub fn name(self) -> &'static str {
        match self {
            ServingMode::Queued(p) => p.name(),
            // A host cache changes the measured system, so cached runs get
            // their own label family; bare sharded names are unchanged and
            // the pre-caching report formats stay stable.
            ServingMode::Sharded(s) if s.host_cache.is_some() => match s.placement {
                PlacementPolicy::Hash => "cached-hash",
                PlacementPolicy::CapacityGreedy => "cached-capacity",
                PlacementPolicy::FrequencyBalanced { .. } => "cached-frequency",
            },
            ServingMode::Sharded(s) => match s.placement {
                PlacementPolicy::Hash => "sharded-hash",
                PlacementPolicy::CapacityGreedy => "sharded-capacity",
                PlacementPolicy::FrequencyBalanced { .. } => "sharded-frequency",
            },
            ServingMode::Tiered(t) => match (t.policy, t.promotion) {
                (TieredPolicy::Hash, None) => "tiered-hash",
                (TieredPolicy::FrequencyTiered { .. }, None) => "tiered-frequency",
                // With epochs the plan converges to frequency-tiered
                // regardless of the cold-start policy; the name records
                // that the split was *learned*, not given.
                (_, Some(_)) => "tiered-promote",
            },
        }
    }

    /// Sharded mode under `placement` with default gather cost.
    pub const fn sharded(placement: PlacementPolicy) -> Self {
        ServingMode::Sharded(ShardedDispatch::new(placement))
    }

    /// Sharded mode under `placement` with a host cache in front (default
    /// gather cost, no prefetch).
    pub const fn cached(placement: PlacementPolicy, cache: HostCacheSpec) -> Self {
        ServingMode::Sharded(ShardedDispatch::new(placement).with_host_cache(cache))
    }

    /// Tiered mode under `policy` over `tiers` with default gather cost
    /// and no promotion epochs.
    pub const fn tiered(policy: TieredPolicy, tiers: TierSpec) -> Self {
        ServingMode::Tiered(TieredDispatch::new(policy, tiers))
    }
}

impl From<DispatchPolicy> for ServingMode {
    fn from(p: DispatchPolicy) -> Self {
        ServingMode::Queued(p)
    }
}

impl std::fmt::Display for ServingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Batch coalescing: merge queries that arrive close together into one
/// backend run, trading per-query latency (waiting for the group to
/// close) for service efficiency (bigger traces amortize row activations
/// and packet headers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coalescing {
    /// A group dispatches as soon as it holds this many queries.
    pub max_queries: usize,
    /// ... or when its oldest member has waited this long, whichever
    /// comes first.
    pub max_wait: Cycle,
}

impl Coalescing {
    /// A coalescer closing groups at `max_queries` queries or `max_wait`
    /// cycles of oldest-member wait.
    ///
    /// # Panics
    ///
    /// Panics when `max_queries` is zero.
    pub fn new(max_queries: usize, max_wait: Cycle) -> Self {
        assert!(max_queries > 0, "coalescing groups need at least 1 query");
        Self {
            max_queries,
            max_wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            DispatchPolicy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), DispatchPolicy::ALL.len());
        assert_eq!(DispatchPolicy::FifoSingleQueue.to_string(), "fifo");
    }

    #[test]
    fn mode_names_cover_queued_and_sharded() {
        // Queued names match their dispatch policies (report-format
        // compatibility); sharded names are distinct per placement.
        for p in DispatchPolicy::ALL {
            assert_eq!(ServingMode::Queued(p).name(), p.name());
        }
        let sharded: std::collections::HashSet<&str> = PlacementPolicy::COMPARED
            .iter()
            .map(|&p| ServingMode::sharded(p).name())
            .collect();
        assert_eq!(sharded.len(), PlacementPolicy::COMPARED.len());
        assert!(sharded.iter().all(|n| n.starts_with("sharded-")));
    }

    #[test]
    fn cached_mode_names_are_distinct_from_bare_sharded() {
        use recnmp_types::ByteSize;
        let cache = HostCacheSpec::with_capacity(ByteSize::kib(64));
        let mut seen = std::collections::HashSet::new();
        for p in PlacementPolicy::COMPARED {
            let bare = ServingMode::sharded(p).name();
            let cached = ServingMode::cached(p, cache).name();
            assert!(bare.starts_with("sharded-"));
            assert!(cached.starts_with("cached-"), "{cached}");
            assert!(seen.insert(bare) && seen.insert(cached));
        }
        // Prefetch alone does not rename the mode: the system under
        // measurement is still bare sharded serving.
        let pf = ShardedDispatch::new(PlacementPolicy::Hash).with_prefetch(PrefetchSpec::new(32));
        assert_eq!(ServingMode::Sharded(pf).name(), "sharded-hash");
    }

    #[test]
    fn tiered_mode_names_distinguish_policy_and_promotion() {
        use recnmp_backend::MigrationCost;
        use recnmp_types::ByteSize;
        let tiers = TierSpec {
            dram_channels: 4,
            dram_channel_capacity: ByteSize::mib(128),
            ssd_units: 2,
            ssd_unit_capacity: ByteSize::gib(64),
        };
        assert_eq!(
            ServingMode::tiered(TieredPolicy::Hash, tiers).name(),
            "tiered-hash"
        );
        assert_eq!(
            ServingMode::tiered(TieredPolicy::FrequencyTiered { replicate_hot: 0 }, tiers).name(),
            "tiered-frequency"
        );
        let mut promote = TieredDispatch::new(TieredPolicy::Hash, tiers);
        promote.promotion = Some(EpochPromotion {
            epoch_queries: 8,
            policy: PromotionPolicy {
                hysteresis_pct: 10,
                migration: MigrationCost::new(1000, 10),
            },
        });
        assert_eq!(ServingMode::Tiered(promote).name(), "tiered-promote");
    }

    #[test]
    #[should_panic(expected = "at least 1 query")]
    fn zero_group_size_is_rejected() {
        Coalescing::new(0, 100);
    }
}
