//! Dispatch policies and batch coalescing for the query scheduler.

use recnmp_types::Cycle;
use serde::{Deserialize, Serialize};

/// How the scheduler places dispatched jobs onto the backend's servers
/// (channels of a cluster; the single pipeline of a one-channel system).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// One global FIFO queue: each job goes to whichever server frees
    /// first (central-queue M/G/k — the work-conserving reference).
    FifoSingleQueue,
    /// Jobs rotate across servers in dispatch order regardless of load —
    /// cheap, stateless, but blind to service-time variance.
    RoundRobin,
    /// Join-least-work: each job goes to the server with the fewest
    /// outstanding *lookups* at dispatch time, a size-aware variant of
    /// join-shortest-queue.
    LeastOutstanding,
}

impl DispatchPolicy {
    /// Every policy, in report order.
    pub const ALL: [DispatchPolicy; 3] = [
        DispatchPolicy::FifoSingleQueue,
        DispatchPolicy::RoundRobin,
        DispatchPolicy::LeastOutstanding,
    ];

    /// Short stable label for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            DispatchPolicy::FifoSingleQueue => "fifo",
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastOutstanding => "least-outstanding",
        }
    }
}

impl std::fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Batch coalescing: merge queries that arrive close together into one
/// backend run, trading per-query latency (waiting for the group to
/// close) for service efficiency (bigger traces amortize row activations
/// and packet headers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coalescing {
    /// A group dispatches as soon as it holds this many queries.
    pub max_queries: usize,
    /// ... or when its oldest member has waited this long, whichever
    /// comes first.
    pub max_wait: Cycle,
}

impl Coalescing {
    /// A coalescer closing groups at `max_queries` queries or `max_wait`
    /// cycles of oldest-member wait.
    ///
    /// # Panics
    ///
    /// Panics when `max_queries` is zero.
    pub fn new(max_queries: usize, max_wait: Cycle) -> Self {
        assert!(max_queries > 0, "coalescing groups need at least 1 query");
        Self {
            max_queries,
            max_wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            DispatchPolicy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), DispatchPolicy::ALL.len());
        assert_eq!(DispatchPolicy::FifoSingleQueue.to_string(), "fifo");
    }

    #[test]
    #[should_panic(expected = "at least 1 query")]
    fn zero_group_size_is_rejected() {
        Coalescing::new(0, 100);
    }
}
