//! Open-loop load generation: deterministic arrival processes and the
//! per-query SLS trace stream.
//!
//! An open-loop generator emits queries on a schedule that does **not**
//! react to the system under test — the defining property of tail-latency
//! methodology (a closed loop self-throttles and hides queueing delay).
//! Both processes here are driven by [`DetRng`], so a (seed, QPS, count)
//! triple always yields the same arrival schedule.

use recnmp_backend::SlsTrace;
use recnmp_model::{ModelConfig, RecModelKind};
use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, SlsBatch, TraceGenerator};
use recnmp_types::rng::DetRng;
use recnmp_types::units::qps_to_interarrival_cycles;
use recnmp_types::{Cycle, PhysAddr, TableId};
use serde::{Deserialize, Serialize};

/// The inter-arrival distribution of the open-loop generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Exponential inter-arrival gaps (memoryless bursty traffic — the
    /// standard model of independent user queries).
    Poisson,
    /// A fixed gap between consecutive queries (perfectly paced traffic;
    /// isolates service-time variance from arrival burstiness).
    Uniform,
}

impl ArrivalProcess {
    /// Short stable label for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Uniform => "uniform",
        }
    }

    /// The arrival cycle of each of `queries` queries at offered rate
    /// `qps`, in non-decreasing order starting after cycle 0.
    ///
    /// # Panics
    ///
    /// Panics when `qps` is not positive and finite.
    pub fn arrival_times(self, qps: f64, queries: usize, rng: &mut DetRng) -> Vec<Cycle> {
        let mean = qps_to_interarrival_cycles(qps);
        let mut t = 0.0f64;
        (0..queries)
            .map(|_| {
                let gap = match self {
                    // Inverse-CDF exponential draw; `1 - u` is in (0, 1]
                    // so the log is finite.
                    ArrivalProcess::Poisson => -mean * (1.0 - rng.unit_f64()).ln(),
                    ArrivalProcess::Uniform => mean,
                };
                t += gap;
                t as Cycle
            })
            .collect()
    }
}

/// The shape of one query: how much SLS work a single inference request
/// carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryShape {
    /// Embedding tables touched per query.
    pub tables: usize,
    /// Samples per query batch (poolings per table).
    pub batch: usize,
    /// Lookups reduced per pooling.
    pub pooling: usize,
}

impl QueryShape {
    /// A custom shape.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero.
    pub fn new(tables: usize, batch: usize, pooling: usize) -> Self {
        assert!(
            tables > 0 && batch > 0 && pooling > 0,
            "query shape dimensions must be positive"
        );
        Self {
            tables,
            batch,
            pooling,
        }
    }

    /// The embedding-side shape of one paper model (`num_tables` tables,
    /// pooling 80) at `batch` samples per query.
    pub fn for_model(kind: RecModelKind, batch: usize) -> Self {
        let cfg = ModelConfig::new(kind);
        Self::new(cfg.num_tables, batch, cfg.pooling)
    }

    /// Embedding lookups one query performs.
    pub fn lookups_per_query(&self) -> u64 {
        (self.tables * self.batch * self.pooling) as u64
    }
}

/// A deterministic stream of per-query [`SlsTrace`]s.
///
/// One persistent generator per table keeps the index stream warm across
/// queries (successive queries of one user population share hot entries),
/// and one shared hash translation places every table in a distinct
/// physical region — the same placement idiom the conformance tests use.
#[derive(Debug)]
pub struct QueryStream {
    shape: QueryShape,
    gens: Vec<TraceGenerator>,
}

impl QueryStream {
    /// A stream of `shape`-sized queries over production-like skewed
    /// (Zipf 0.9) index streams.
    pub fn new(shape: QueryShape, seed: u64) -> Self {
        let spec = EmbeddingTableSpec::dlrm_default();
        let gens = (0..shape.tables)
            .map(|t| {
                TraceGenerator::new(
                    TableId::new(t as u32),
                    spec,
                    IndexDistribution::Zipf { s: 0.9 },
                    seed.wrapping_add(131 * t as u64),
                )
            })
            .collect();
        Self { shape, gens }
    }

    /// The shape every query of this stream has.
    pub fn shape(&self) -> QueryShape {
        self.shape
    }

    /// Generates the next query: one batch per table, translated with the
    /// shared deterministic placement.
    pub fn next_query(&mut self) -> SlsTrace {
        let batches: Vec<SlsBatch> = self
            .gens
            .iter_mut()
            .map(|g| g.batch(self.shape.batch, self.shape.pooling))
            .collect();
        SlsTrace::from_batches(&batches, &mut |t, row| {
            PhysAddr::new(((t as u64) << 31) ^ (row * 131 * 128))
        })
    }

    /// Generates the next `n` queries.
    pub fn take_queries(&mut self, n: usize) -> Vec<SlsTrace> {
        (0..n).map(|_| self.next_query()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_arrivals_are_deterministic_and_sorted() {
        let a = ArrivalProcess::Poisson.arrival_times(1e6, 200, &mut DetRng::seed(9));
        let b = ArrivalProcess::Poisson.arrival_times(1e6, 200, &mut DetRng::seed(9));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn poisson_mean_gap_matches_offered_rate() {
        // 1e6 QPS at 1.2 GHz: mean gap 1200 cycles; the 4000-sample mean
        // should land within a few percent.
        let a = ArrivalProcess::Poisson.arrival_times(1e6, 4000, &mut DetRng::seed(3));
        let mean = *a.last().unwrap() as f64 / a.len() as f64;
        assert!((mean - 1200.0).abs() < 120.0, "mean gap {mean}");
    }

    #[test]
    fn uniform_arrivals_are_evenly_paced() {
        let a = ArrivalProcess::Uniform.arrival_times(1e6, 5, &mut DetRng::seed(1));
        assert_eq!(a, vec![1200, 2400, 3600, 4800, 6000]);
    }

    #[test]
    fn model_shapes_follow_table1() {
        let s = QueryShape::for_model(RecModelKind::Rm1Small, 4);
        assert_eq!((s.tables, s.batch, s.pooling), (8, 4, 80));
        assert_eq!(s.lookups_per_query(), 8 * 4 * 80);
    }

    #[test]
    fn query_stream_is_deterministic() {
        let shape = QueryShape::new(2, 3, 5);
        let mut s1 = QueryStream::new(shape, 7);
        let mut s2 = QueryStream::new(shape, 7);
        let (q1, q2) = (s1.take_queries(4), s2.take_queries(4));
        assert_eq!(q1, q2);
        for q in &q1 {
            assert_eq!(q.total_lookups(), shape.lookups_per_query());
        }
        // Successive queries differ (the index stream advances).
        assert_ne!(q1[0], q1[1]);
    }
}
