//! Open-loop load generation: deterministic arrival processes and the
//! per-query SLS trace stream.
//!
//! An open-loop generator emits queries on a schedule that does **not**
//! react to the system under test — the defining property of tail-latency
//! methodology (a closed loop self-throttles and hides queueing delay).
//! Both processes here are driven by [`DetRng`], so a (seed, QPS, count)
//! triple always yields the same arrival schedule.

use recnmp_backend::SlsTrace;
use recnmp_model::{ModelConfig, RecModelKind};
use recnmp_trace::{EmbeddingTableSpec, IndexDistribution, SlsBatch, TraceGenerator};
use recnmp_types::rng::DetRng;
use recnmp_types::units::qps_to_interarrival_cycles;
use recnmp_types::{Cycle, PhysAddr, TableId};
use serde::{Deserialize, Serialize};

/// The inter-arrival distribution of the open-loop generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Exponential inter-arrival gaps (memoryless bursty traffic — the
    /// standard model of independent user queries).
    Poisson,
    /// A fixed gap between consecutive queries (perfectly paced traffic;
    /// isolates service-time variance from arrival burstiness).
    Uniform,
}

impl ArrivalProcess {
    /// Short stable label for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Uniform => "uniform",
        }
    }

    /// The arrival cycle of each of `queries` queries at offered rate
    /// `qps`, in non-decreasing order starting after cycle 0.
    ///
    /// # Panics
    ///
    /// Panics when `qps` is not positive and finite.
    pub fn arrival_times(self, qps: f64, queries: usize, rng: &mut DetRng) -> Vec<Cycle> {
        let mean = qps_to_interarrival_cycles(qps);
        let mut t = 0.0f64;
        (0..queries)
            .map(|_| {
                let gap = match self {
                    // Inverse-CDF exponential draw; `1 - u` is in (0, 1]
                    // so the log is finite.
                    ArrivalProcess::Poisson => -mean * (1.0 - rng.unit_f64()).ln(),
                    ArrivalProcess::Uniform => mean,
                };
                t += gap;
                t as Cycle
            })
            .collect()
    }
}

/// The shape of one query: how much SLS work a single inference request
/// carries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryShape {
    /// Embedding tables touched per query.
    pub tables: usize,
    /// Samples per query batch (poolings per table).
    pub batch: usize,
    /// Lookups reduced per pooling, before table skew.
    pub pooling: usize,
    /// Skew of per-table traffic: 0 gives every table the same pooling
    /// factor; larger values concentrate lookups on low-numbered tables
    /// with Zipf-like weights `(t+1)^-skew` (Figure 7's observation that
    /// a few tables carry most of the traffic).
    pub table_skew: f64,
    /// Decorrelation stride of the skew: table `t` takes the Zipf weight
    /// of rank `(t * skew_rotate) % tables`, so hotness need not follow
    /// table-id order. The default stride 1 is the identity; a stride
    /// coprime to `tables` permutes the ranks (table 0 stays pinned at
    /// rank 0, every other hot rank scatters across the id space), which
    /// keeps id-ordered placements (hash) honest — they no longer get
    /// the frequency ordering for free.
    pub skew_rotate: usize,
    /// Tables drawn per query: 0 (the default) touches every table each
    /// query; `k > 0` samples `k` distinct tables per query, weighted by
    /// the skew weights, each at the flat [`pooling`](Self::pooling)
    /// factor. Sampling turns the skew from "hot tables pool more" into
    /// "hot tables appear in more queries" — the access pattern that
    /// lets a query avoid a storage tier entirely when none of its
    /// tables live there.
    pub sample_tables: usize,
    /// Zipf exponent of each table's *row* index stream (which rows
    /// within a table get looked up). The default 0.9 is the
    /// production-like skew of the trace conformance suite; the
    /// cache-aware serving workloads raise it (≈1.2) so that a bounded
    /// host cache sees enough repeat rows to matter within a short run.
    pub row_skew: f64,
}

impl QueryShape {
    /// A custom shape with uniform per-table traffic.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero.
    pub fn new(tables: usize, batch: usize, pooling: usize) -> Self {
        assert!(
            tables > 0 && batch > 0 && pooling > 0,
            "query shape dimensions must be positive"
        );
        Self {
            tables,
            batch,
            pooling,
            table_skew: 0.0,
            skew_rotate: 1,
            sample_tables: 0,
            row_skew: 0.9,
        }
    }

    /// Sets the Zipf exponent of the per-table row index streams (see
    /// [`row_skew`](Self::row_skew)).
    ///
    /// # Panics
    ///
    /// Panics when `skew` is negative or not finite.
    pub fn with_row_skew(mut self, skew: f64) -> Self {
        assert!(
            skew >= 0.0 && skew.is_finite(),
            "row skew must be finite and non-negative"
        );
        self.row_skew = skew;
        self
    }

    /// Skews per-table traffic with exponent `skew` (see
    /// [`table_skew`](Self::table_skew)). The total lookups per query
    /// stay close to the uniform shape's; per-table shares follow the
    /// Zipf-like weights.
    ///
    /// # Panics
    ///
    /// Panics when `skew` is negative or not finite.
    pub fn with_table_skew(mut self, skew: f64) -> Self {
        assert!(
            skew >= 0.0 && skew.is_finite(),
            "table skew must be finite and non-negative"
        );
        self.table_skew = skew;
        self
    }

    /// Strides the skew ranks by `rotate` (see
    /// [`skew_rotate`](Self::skew_rotate)), decorrelating table-id order
    /// from traffic order.
    ///
    /// # Panics
    ///
    /// Panics when `rotate` is not coprime to the table count (the rank
    /// map must be a permutation, or two tables would share one weight
    /// and another weight would go unused).
    pub fn with_skew_rotation(mut self, rotate: usize) -> Self {
        assert!(
            gcd(rotate, self.tables) == 1,
            "skew rotation {rotate} must be coprime to {} tables",
            self.tables
        );
        self.skew_rotate = rotate;
        self
    }

    /// Samples `k` distinct tables per query instead of touching all of
    /// them (see [`sample_tables`](Self::sample_tables)).
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero or exceeds the table count.
    pub fn with_table_sampling(mut self, k: usize) -> Self {
        assert!(
            k > 0 && k <= self.tables,
            "sample size {k} must be in 1..={} tables",
            self.tables
        );
        self.sample_tables = k;
        self
    }

    /// The embedding-side shape of one paper model (`num_tables` tables,
    /// pooling 80) at `batch` samples per query.
    pub fn for_model(kind: RecModelKind, batch: usize) -> Self {
        let cfg = ModelConfig::new(kind);
        Self::new(cfg.num_tables, batch, cfg.pooling)
    }

    /// The reference skewed quick/smoke workload of the placement
    /// artifacts — 8 tables, batch 2, pooling 8, per-table traffic
    /// `(t+1)^-1.5` — one definition shared by `fig19_placement`
    /// (quick), `serve_sweep --placement --smoke`, the placement
    /// acceptance tests and the Criterion bench, so none can silently
    /// measure a different workload than the committed golden.
    pub fn reference_skewed() -> Self {
        Self::new(8, 2, 8).with_table_skew(1.5)
    }

    /// The pooling factor of every table under the configured skew:
    /// uniformly [`pooling`](Self::pooling) when unskewed, otherwise each
    /// table's Zipf-weighted share of the query's lookup budget (at
    /// least 1, so every table stays referenced). One O(tables) pass —
    /// per-query consumers compute this once and index into it.
    pub fn table_poolings(&self) -> Vec<usize> {
        if self.table_skew == 0.0 {
            return vec![self.pooling; self.tables];
        }
        let weights = self.table_weights();
        let total: f64 = weights.iter().sum();
        let budget = (self.tables * self.pooling) as f64;
        weights
            .iter()
            .map(|w| ((budget * w / total).round() as usize).max(1))
            .collect()
    }

    /// The pooling factor of table `t` (see
    /// [`table_poolings`](Self::table_poolings), which amortizes the
    /// weight normalization over all tables).
    pub fn pooling_for_table(&self, t: usize) -> usize {
        debug_assert!(t < self.tables);
        self.table_poolings()[t]
    }

    /// The Zipf-like traffic weight of every table under the configured
    /// skew and rotation (uniformly 1 when unskewed).
    pub fn table_weights(&self) -> Vec<f64> {
        (0..self.tables)
            .map(|i| {
                let rank = (i * self.skew_rotate) % self.tables;
                ((rank + 1) as f64).powf(-self.table_skew)
            })
            .collect()
    }

    /// Embedding lookups one query performs: the sum of the per-table
    /// pooling factors times the batch size, or — under table sampling —
    /// the flat pooling over the sampled tables.
    pub fn lookups_per_query(&self) -> u64 {
        if self.sample_tables > 0 {
            return (self.sample_tables * self.batch * self.pooling) as u64;
        }
        let per_sample: usize = self.table_poolings().iter().sum();
        (self.batch * per_sample) as u64
    }
}

/// Greatest common divisor (Euclid), for the skew-rotation coprimality
/// check.
fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// A deterministic stream of per-query [`SlsTrace`]s.
///
/// One persistent generator per table keeps the index stream warm across
/// queries (successive queries of one user population share hot entries),
/// and one shared hash translation places every table in a distinct
/// physical region — the same placement idiom the conformance tests use.
#[derive(Debug)]
pub struct QueryStream {
    shape: QueryShape,
    /// Per-table pooling factors, computed once from the shape's skew.
    poolings: Vec<usize>,
    /// Per-table sampling weights and the sampler's own RNG, present
    /// only when the shape samples tables per query.
    sampler: Option<(Vec<f64>, DetRng)>,
    gens: Vec<TraceGenerator>,
}

impl QueryStream {
    /// A stream of `shape`-sized queries over production-like skewed
    /// (Zipf [`QueryShape::row_skew`], default 0.9) index streams.
    pub fn new(shape: QueryShape, seed: u64) -> Self {
        let spec = EmbeddingTableSpec::dlrm_default();
        let gens = (0..shape.tables)
            .map(|t| {
                TraceGenerator::new(
                    TableId::new(t as u32),
                    spec,
                    IndexDistribution::Zipf { s: shape.row_skew },
                    seed.wrapping_add(131 * t as u64),
                )
            })
            .collect();
        let sampler = (shape.sample_tables > 0).then(|| {
            (
                shape.table_weights(),
                DetRng::seed(seed ^ 0x7ab1_e5a2_90d3_11c7),
            )
        });
        Self {
            shape,
            poolings: shape.table_poolings(),
            sampler,
            gens,
        }
    }

    /// The shape every query of this stream has.
    pub fn shape(&self) -> QueryShape {
        self.shape
    }

    /// Generates the next query, translated with the shared
    /// deterministic placement: one batch per table (pooling factors
    /// following the shape's table skew), or — under table sampling —
    /// one flat-pooling batch per sampled table.
    pub fn next_query(&mut self) -> SlsTrace {
        let batch_size = self.shape.batch;
        let batches: Vec<SlsBatch> = match &mut self.sampler {
            None => self
                .gens
                .iter_mut()
                .zip(&self.poolings)
                .map(|(g, &pooling)| g.batch(batch_size, pooling))
                .collect(),
            Some((weights, rng)) => {
                // Efraimidis–Spirakis weighted sampling without
                // replacement: key each table `u^(1/w)` and keep the k
                // largest. One RNG draw per table per query, so the
                // stream's draw sequence is independent of k.
                let mut keyed: Vec<(f64, usize)> = weights
                    .iter()
                    .enumerate()
                    .map(|(t, &w)| (rng.unit_f64().powf(1.0 / w), t))
                    .collect();
                keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
                let mut chosen: Vec<usize> = keyed[..self.shape.sample_tables]
                    .iter()
                    .map(|&(_, t)| t)
                    .collect();
                chosen.sort_unstable();
                chosen
                    .into_iter()
                    .map(|t| self.gens[t].batch(batch_size, self.shape.pooling))
                    .collect()
            }
        };
        SlsTrace::from_batches(&batches, &mut |t, row| {
            PhysAddr::new(((t as u64) << 31) ^ (row * 131 * 128))
        })
    }

    /// Generates the next `n` queries.
    pub fn take_queries(&mut self, n: usize) -> Vec<SlsTrace> {
        (0..n).map(|_| self.next_query()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_arrivals_are_deterministic_and_sorted() {
        let a = ArrivalProcess::Poisson.arrival_times(1e6, 200, &mut DetRng::seed(9));
        let b = ArrivalProcess::Poisson.arrival_times(1e6, 200, &mut DetRng::seed(9));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn poisson_mean_gap_matches_offered_rate() {
        // 1e6 QPS at 1.2 GHz: mean gap 1200 cycles; the 4000-sample mean
        // should land within a few percent.
        let a = ArrivalProcess::Poisson.arrival_times(1e6, 4000, &mut DetRng::seed(3));
        let mean = *a.last().unwrap() as f64 / a.len() as f64;
        assert!((mean - 1200.0).abs() < 120.0, "mean gap {mean}");
    }

    #[test]
    fn uniform_arrivals_are_evenly_paced() {
        let a = ArrivalProcess::Uniform.arrival_times(1e6, 5, &mut DetRng::seed(1));
        assert_eq!(a, vec![1200, 2400, 3600, 4800, 6000]);
    }

    #[test]
    fn model_shapes_follow_table1() {
        let s = QueryShape::for_model(RecModelKind::Rm1Small, 4);
        assert_eq!((s.tables, s.batch, s.pooling), (8, 4, 80));
        assert_eq!(s.lookups_per_query(), 8 * 4 * 80);
    }

    #[test]
    fn table_skew_concentrates_traffic_and_conserves_budget() {
        let flat = QueryShape::new(8, 2, 10);
        assert_eq!(flat.pooling_for_table(0), 10);
        assert_eq!(flat.lookups_per_query(), 8 * 2 * 10);

        let skewed = flat.with_table_skew(1.5);
        let poolings: Vec<usize> = (0..8).map(|t| skewed.pooling_for_table(t)).collect();
        // Monotone non-increasing, table 0 dominates, every table kept.
        assert!(poolings.windows(2).all(|w| w[0] >= w[1]));
        assert!(poolings[0] > 4 * poolings[7]);
        assert!(poolings.iter().all(|&p| p >= 1));
        // The lookup budget stays within rounding of the uniform shape.
        let total = skewed.lookups_per_query() as f64;
        let uniform = flat.lookups_per_query() as f64;
        assert!(
            (total - uniform).abs() / uniform < 0.15,
            "{total} vs {uniform}"
        );
        // The stream honors the skewed poolings.
        let mut s = QueryStream::new(skewed, 3);
        let q = s.next_query();
        assert_eq!(q.total_lookups(), skewed.lookups_per_query());
        for (t, b) in q.batches.iter().enumerate() {
            assert!(b
                .batch
                .poolings
                .iter()
                .all(|p| p.indices.len() == skewed.pooling_for_table(t)));
        }
    }

    #[test]
    fn skew_rotation_permutes_ranks_and_conserves_budget() {
        let plain = QueryShape::new(8, 2, 10).with_table_skew(1.5);
        let rotated = plain.with_skew_rotation(5);
        let (a, b) = (plain.table_poolings(), rotated.table_poolings());
        // Same multiset of pooling factors, different assignment — the
        // hottest table is no longer id 0.
        let (mut sa, mut sb) = (a.clone(), b.clone());
        sa.sort_unstable();
        sb.sort_unstable();
        assert_eq!(sa, sb);
        assert_ne!(a, b);
        // Table 0 is pinned at rank 0 (0·r ≡ 0), but the rest scramble:
        // table 1 drops from rank 1 to rank 5 under stride 5.
        assert_eq!(b[0], a[0]);
        assert!(b[1] < a[1]);
        assert_eq!(rotated.lookups_per_query(), plain.lookups_per_query());
        // Stride 1 is the identity, so default shapes are unchanged.
        assert_eq!(plain.with_skew_rotation(1).table_poolings(), a);
    }

    #[test]
    #[should_panic(expected = "coprime")]
    fn non_coprime_rotation_is_rejected() {
        QueryShape::new(8, 2, 10).with_skew_rotation(4);
    }

    #[test]
    fn row_skew_defaults_to_reference_and_raises_repeat_rate() {
        let base = QueryShape::new(4, 2, 8);
        assert!((base.row_skew - 0.9).abs() < f64::EPSILON);
        // The default-skew stream is byte-identical to an explicit 0.9
        // stream — existing goldens see no change from the new knob.
        let mut a = QueryStream::new(base, 11);
        let mut b = QueryStream::new(base.with_row_skew(0.9), 11);
        assert_eq!(a.take_queries(6), b.take_queries(6));
        // A hotter row stream concentrates lookups on fewer distinct
        // rows: count unique addresses over the same query budget.
        let distinct = |shape: QueryShape| {
            let mut s = QueryStream::new(shape, 11);
            let mut seen = std::collections::BTreeSet::new();
            for q in s.take_queries(24) {
                for tb in &q.batches {
                    for addrs in &tb.addrs {
                        seen.extend(addrs.iter().map(|a| a.get()));
                    }
                }
            }
            seen.len()
        };
        assert!(distinct(base.with_row_skew(1.2)) < distinct(base));
    }

    #[test]
    fn query_stream_is_deterministic() {
        let shape = QueryShape::new(2, 3, 5);
        let mut s1 = QueryStream::new(shape, 7);
        let mut s2 = QueryStream::new(shape, 7);
        let (q1, q2) = (s1.take_queries(4), s2.take_queries(4));
        assert_eq!(q1, q2);
        for q in &q1 {
            assert_eq!(q.total_lookups(), shape.lookups_per_query());
        }
        // Successive queries differ (the index stream advances).
        assert_ne!(q1[0], q1[1]);
    }
}
