//! Fault injection and resilience policies for fleet serving.
//!
//! A [`FaultPlan`] is a deterministic schedule of infrastructure faults
//! — node crashes, per-channel service degradation, and transient
//! per-shard timeout windows — pinned to simulated cycles before the run
//! starts. Handing the scheduler a *plan* rather than sampling faults
//! inline keeps every run byte-identical at any worker count: the plan
//! is either written explicitly (tests, experiments) or drawn once from
//! a seeded [`DetRng`] ([`FaultPlan::seeded`]), and the serving loop
//! itself stays pure arithmetic.
//!
//! The companion policies say how the fleet *reacts*:
//!
//! * [`RetryPolicy`] — per-shard attempt deadline with bounded
//!   exponential backoff; a timed-out attempt re-dispatches onto the
//!   least-backlogged replica channel still owning the shard's tables;
//! * [`HedgePolicy`] — duplicate a straggler node job onto a surviving
//!   replica after a delay anchored at a high quantile of observed
//!   node-job latencies (first completion wins);
//! * [`SloPolicy`] — admission control (reject when the estimated queue
//!   delay already exceeds the deadline) and deadline shedding (drop a
//!   query whose actual service start would land past the deadline);
//! * [`ResilienceConfig`] — the bundle the resilient fleet scheduler
//!   ([`serve_fleet_resilient`](super::fleet::serve_fleet_resilient))
//!   consumes, including the failover re-dispatch penalty and the EWMA
//!   health-tracking knobs.
//!
//! An all-zero plan ([`FaultPlan::none`]) with the default policies is a
//! strict no-op: the resilient scheduler then reproduces the plain
//! [`serve_fleet`](super::fleet::serve_fleet) completion schedule
//! byte-for-byte (pinned by `resilience_determinism`).
//!
//! # Examples
//!
//! ```
//! use recnmp_sim::serving::faults::{FaultPlan, ResilienceConfig, SloPolicy};
//!
//! let plan = FaultPlan::none()
//!     .with_crash(1, 500_000)
//!     .with_degrade(0, 2, 0, u64::MAX, 4);
//! assert!(plan.crashed(1, 500_000) && !plan.crashed(1, 499_999));
//! assert_eq!(plan.degrade_multiplier(0, 2, 123), 4);
//! let res = ResilienceConfig::new(plan).with_slo(SloPolicy::new(2_000_000));
//! assert!(res.slo.is_some());
//! ```

use recnmp_types::rng::DetRng;
use recnmp_types::Cycle;
use serde::{Deserialize, Serialize};

/// A node that stops serving at a scheduled cycle and never recovers
/// within the run. Queries dispatched from `at` onward must fail over to
/// a surviving replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCrash {
    /// The crashed node.
    pub node: usize,
    /// First cycle at which the node is down.
    pub at: Cycle,
}

/// One channel serving slowly for a window of simulated time: every
/// shard whose service *starts* inside `[from, until)` takes
/// `multiplier`× its clean cycle count. `until == u64::MAX` models a
/// stuck-at-slow channel that never recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelDegrade {
    /// Node owning the slow channel.
    pub node: usize,
    /// The slow channel within the node.
    pub channel: usize,
    /// First cycle of the window.
    pub from: Cycle,
    /// First cycle past the window (`u64::MAX` = stuck-at-slow).
    pub until: Cycle,
    /// Integer service-time multiplier (≥ 1; 1 is a no-op).
    pub multiplier: u64,
}

/// A transient per-shard fault: every shard attempt *starting* inside
/// `[from, until)` on this channel times out instead of completing, and
/// must be retried under the run's [`RetryPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardTimeout {
    /// Node owning the faulty channel.
    pub node: usize,
    /// The faulty channel within the node.
    pub channel: usize,
    /// First cycle of the window.
    pub from: Cycle,
    /// First cycle past the window.
    pub until: Cycle,
}

/// A deterministic schedule of infrastructure faults, fixed before the
/// run starts.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Permanent node crashes.
    pub crashes: Vec<NodeCrash>,
    /// Per-channel degradation windows.
    pub degrades: Vec<ChannelDegrade>,
    /// Per-channel transient timeout windows.
    pub timeouts: Vec<ShardTimeout>,
}

impl FaultPlan {
    /// The empty plan: no faults, a strict no-op for the scheduler.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_zero(&self) -> bool {
        self.crashes.is_empty() && self.degrades.is_empty() && self.timeouts.is_empty()
    }

    /// Adds a permanent node crash at `at`.
    #[must_use]
    pub fn with_crash(mut self, node: usize, at: Cycle) -> Self {
        self.crashes.push(NodeCrash { node, at });
        self
    }

    /// Adds a degradation window on `(node, channel)`.
    #[must_use]
    pub fn with_degrade(
        mut self,
        node: usize,
        channel: usize,
        from: Cycle,
        until: Cycle,
        multiplier: u64,
    ) -> Self {
        self.degrades.push(ChannelDegrade {
            node,
            channel,
            from,
            until,
            multiplier: multiplier.max(1),
        });
        self
    }

    /// Adds a transient timeout window on `(node, channel)`.
    #[must_use]
    pub fn with_timeout(mut self, node: usize, channel: usize, from: Cycle, until: Cycle) -> Self {
        self.timeouts.push(ShardTimeout {
            node,
            channel,
            from,
            until,
        });
        self
    }

    /// Is `node` down at `cycle`?
    pub fn crashed(&self, node: usize, cycle: Cycle) -> bool {
        self.crashes.iter().any(|c| c.node == node && cycle >= c.at)
    }

    /// The earliest crash cycle of `node`, if it ever crashes.
    pub fn crash_cycle(&self, node: usize) -> Option<Cycle> {
        self.crashes
            .iter()
            .filter(|c| c.node == node)
            .map(|c| c.at)
            .min()
    }

    /// Service-time multiplier for a shard starting at `cycle` on
    /// `(node, channel)` — the max over all overlapping windows, 1 when
    /// the channel is clean.
    pub fn degrade_multiplier(&self, node: usize, channel: usize, cycle: Cycle) -> u64 {
        self.degrades
            .iter()
            .filter(|d| {
                d.node == node && d.channel == channel && cycle >= d.from && cycle < d.until
            })
            .map(|d| d.multiplier)
            .max()
            .unwrap_or(1)
            .max(1)
    }

    /// Does a shard attempt starting at `cycle` on `(node, channel)`
    /// time out?
    pub fn times_out(&self, node: usize, channel: usize, cycle: Cycle) -> bool {
        self.timeouts
            .iter()
            .any(|t| t.node == node && t.channel == channel && cycle >= t.from && cycle < t.until)
    }

    /// Draws a random plan from `spec` for a `nodes` × `channels` fleet,
    /// deterministically from `seed`: crash victims, degraded channels
    /// and timeout channels are sampled without replacement, and every
    /// onset cycle lands inside `spec.window`.
    pub fn seeded(seed: u64, spec: &FaultSpec, nodes: usize, channels: usize) -> Self {
        let mut rng = DetRng::seed(seed ^ 0xfa_17_fa_17);
        let mut plan = FaultPlan::none();
        let (lo, hi) = spec.window;
        let span = hi.saturating_sub(lo).max(1);
        let draw_at = |rng: &mut DetRng| lo + rng.below(span);

        let mut victims: Vec<usize> = (0..nodes).collect();
        rng.shuffle(&mut victims);
        for &node in victims.iter().take(spec.crashes.min(nodes)) {
            let at = draw_at(&mut rng);
            plan = plan.with_crash(node, at);
        }

        let mut slots: Vec<(usize, usize)> = (0..nodes)
            .flat_map(|n| (0..channels).map(move |c| (n, c)))
            .collect();
        rng.shuffle(&mut slots);
        let (slow, rest) = slots.split_at(spec.degraded_channels.min(slots.len()));
        for &(n, c) in slow {
            let from = draw_at(&mut rng);
            plan = plan.with_degrade(n, c, from, u64::MAX, spec.degrade_multiplier);
        }
        for &(n, c) in rest.iter().take(spec.timeout_channels) {
            let from = draw_at(&mut rng);
            plan = plan.with_timeout(n, c, from, from + spec.timeout_cycles);
        }
        plan
    }
}

/// What [`FaultPlan::seeded`] draws: how many faults of each kind and
/// where in simulated time their onsets may land.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Distinct nodes to crash (capped at the fleet size).
    pub crashes: usize,
    /// `[from, until)` cycle window fault onsets are drawn from.
    pub window: (Cycle, Cycle),
    /// Channels degraded stuck-at-slow.
    pub degraded_channels: usize,
    /// Service multiplier of each degraded channel.
    pub degrade_multiplier: u64,
    /// Channels given one transient timeout window each.
    pub timeout_channels: usize,
    /// Length of each transient timeout window.
    pub timeout_cycles: Cycle,
}

/// Per-shard retry discipline: every attempt gets `timeout` cycles from
/// its dispatch; a blown attempt re-dispatches after an exponentially
/// growing backoff, up to `max_attempts` total attempts. A shard that
/// exhausts its attempts fails its query
/// ([`SimError::DeadlineExceeded`](recnmp_types::SimError)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts, the first dispatch included (≥ 1).
    pub max_attempts: u32,
    /// Per-attempt deadline in cycles; 0 disables the deadline (attempts
    /// then only fail inside injected timeout windows, which abort after
    /// the shard's own service time).
    pub timeout: Cycle,
    /// Base backoff: attempt `k` re-dispatches `backoff * 2^k` cycles
    /// after the previous attempt aborted.
    pub backoff: Cycle,
}

impl RetryPolicy {
    /// No retry at all: one attempt, no deadline. The zero-resilience
    /// default.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            timeout: 0,
            backoff: 0,
        }
    }

    /// The reference serving discipline: three attempts, a generous
    /// per-attempt deadline, and a short base backoff.
    pub fn serving_default(timeout: Cycle) -> Self {
        Self {
            max_attempts: 3,
            timeout,
            backoff: 1_200,
        }
    }

    /// Backoff before attempt `attempt + 1` (0-indexed attempts).
    pub fn backoff_before(&self, attempt: u32) -> Cycle {
        self.backoff.saturating_mul(1u64 << attempt.min(20))
    }
}

/// Hedged requests: when a node job's completion would land more than a
/// high-quantile delay past its dispatch, duplicate it onto a surviving
/// replica node and take the earlier completion. The delay anchors at
/// the `quantile` of the last [`window`](Self::window) observed node-job
/// latencies, so the hedge threshold tracks the workload instead of a
/// hand-tuned constant ("p9x-based").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HedgePolicy {
    /// Latency quantile the hedge delay anchors at (e.g. 0.95).
    pub quantile: f64,
    /// Observations required before hedging activates.
    pub min_samples: usize,
    /// Ring-buffer size of the latency window the quantile is taken
    /// over.
    pub window: usize,
}

impl HedgePolicy {
    /// The reference hedge: p95 of the last 64 node-job latencies, after
    /// 16 warm-up observations.
    pub fn p95() -> Self {
        Self {
            quantile: 0.95,
            min_samples: 16,
            window: 64,
        }
    }
}

/// The serving SLO: a per-query deadline the overload controller guards.
/// Queries whose *estimated* queue delay already exceeds the deadline
/// are rejected at admission; queries whose *actual* service start would
/// land past the deadline are shed at dispatch. `target_p99` records the
/// latency the operator provisioned for (reporting only — the goodput
/// accounting uses `deadline`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloPolicy {
    /// Per-query completion deadline in cycles from arrival.
    pub deadline: Cycle,
    /// Provisioned p99 target in cycles (reporting only).
    pub target_p99: Cycle,
}

impl SloPolicy {
    /// A deadline-only policy with the p99 target at half the deadline —
    /// the common provisioning rule of thumb.
    pub fn new(deadline: Cycle) -> Self {
        Self {
            deadline,
            target_p99: deadline / 2,
        }
    }
}

/// Everything the resilient fleet scheduler needs: the fault schedule
/// and the reaction policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// The fault schedule.
    pub faults: FaultPlan,
    /// Per-shard retry discipline.
    pub retry: RetryPolicy,
    /// Optional hedged dispatch of straggler node jobs.
    pub hedge: Option<HedgePolicy>,
    /// Optional SLO guard (admission control + deadline shedding).
    pub slo: Option<SloPolicy>,
    /// Cycles a query pays when its router-preferred node turns out to
    /// be freshly crashed: the failure-detection plus re-dispatch cost.
    /// Later queries know the node is down (health tracking) and route
    /// around it for free.
    pub redispatch_penalty: Cycle,
    /// A node is marked degraded when its per-lookup service EWMA
    /// exceeds this multiple of the fleet-wide EWMA; the router then
    /// prefers healthier replicas.
    pub degraded_after: f64,
    /// EWMA smoothing factor for the health tracker.
    pub ewma_alpha: f64,
}

impl ResilienceConfig {
    /// Resilience around `faults` with the reference reaction policies:
    /// no retry deadline, no hedging, no SLO — observation-only health
    /// tracking plus crash failover. With a zero plan this is a strict
    /// no-op configuration.
    pub fn new(faults: FaultPlan) -> Self {
        Self {
            faults,
            retry: RetryPolicy::none(),
            hedge: None,
            slo: None,
            redispatch_penalty: 2_400,
            degraded_after: 3.0,
            ewma_alpha: 0.2,
        }
    }

    /// The all-zero configuration: [`FaultPlan::none`] and no-op
    /// policies.
    pub fn zero() -> Self {
        Self::new(FaultPlan::none())
    }

    /// Sets the retry discipline.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables hedged dispatch.
    #[must_use]
    pub fn with_hedge(mut self, hedge: HedgePolicy) -> Self {
        self.hedge = Some(hedge);
        self
    }

    /// Enables the SLO guard.
    #[must_use]
    pub fn with_slo(mut self, slo: SloPolicy) -> Self {
        self.slo = Some(slo);
        self
    }
}

/// What became of one offered query under resilient serving. Exactly one
/// outcome per query; `offered == completed + rejected + shed + failed`
/// is the conservation law `resilience_determinism` pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryOutcome {
    /// Served to completion (possibly after failover, retries or a
    /// hedge).
    Completed,
    /// Refused at admission: estimated queue delay past the SLO
    /// deadline.
    Rejected,
    /// Dropped at dispatch: actual service start past the SLO deadline.
    Shed,
    /// Failed: a table with no surviving replica, or retry exhaustion.
    Failed,
}

/// Per-node health as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeHealth {
    /// Serving normally.
    Healthy,
    /// Observed per-lookup service far above the fleet baseline; the
    /// router prefers healthier replicas but may still use the node as a
    /// last resort.
    Degraded,
    /// Known down; never routed to.
    Crashed,
}

/// The router's health tracker: a per-node EWMA of observed per-lookup
/// service cycles against the fleet *median* of those EWMAs (robust to
/// the outlier itself — a mean baseline would be dragged up by the very
/// node being diagnosed), plus the set of nodes discovered crashed.
/// Purely observational — it learns from what the scheduler measured,
/// not from the fault plan, so detection happens when (and only when)
/// traffic hits the fault.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    per_node: Vec<f64>,
    seen: Vec<bool>,
    crashed: Vec<bool>,
    alpha: f64,
    degraded_after: f64,
}

impl HealthTracker {
    /// A tracker for `nodes` nodes, all healthy and unobserved.
    pub fn new(nodes: usize, alpha: f64, degraded_after: f64) -> Self {
        Self {
            per_node: vec![0.0; nodes],
            seen: vec![false; nodes],
            crashed: vec![false; nodes],
            alpha,
            degraded_after,
        }
    }

    /// Records one observed node job: `service` cycles over `lookups`
    /// lookups.
    pub fn observe(&mut self, node: usize, service: Cycle, lookups: u64) {
        let per_lookup = service as f64 / lookups.max(1) as f64;
        if self.seen[node] {
            self.per_node[node] =
                self.alpha * per_lookup + (1.0 - self.alpha) * self.per_node[node];
        } else {
            self.per_node[node] = per_lookup;
            self.seen[node] = true;
        }
    }

    /// Marks a node discovered crashed.
    pub fn mark_crashed(&mut self, node: usize) {
        self.crashed[node] = true;
    }

    /// Has the router already discovered this node crashed?
    pub fn known_crashed(&self, node: usize) -> bool {
        self.crashed[node]
    }

    /// The fleet baseline: the lower median of the observed per-node
    /// EWMAs, or `None` before any node reports.
    fn baseline(&self) -> Option<f64> {
        let mut vals: Vec<f64> = self
            .per_node
            .iter()
            .zip(&self.seen)
            .filter(|(_, &s)| s)
            .map(|(&v, _)| v)
            .collect();
        if vals.is_empty() {
            return None;
        }
        vals.sort_by(f64::total_cmp);
        Some(vals[(vals.len() - 1) / 2])
    }

    /// The node's current health classification. A node whose EWMA
    /// exceeds `degraded_after` times the fleet median is degraded;
    /// unobserved nodes (and a fleet with nothing to compare against)
    /// stay healthy.
    pub fn health(&self, node: usize) -> NodeHealth {
        if self.crashed[node] {
            return NodeHealth::Crashed;
        }
        match self.baseline() {
            Some(base) if self.seen[node] && self.per_node[node] > self.degraded_after * base => {
                NodeHealth::Degraded
            }
            _ => NodeHealth::Healthy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_is_a_no_op() {
        let p = FaultPlan::none();
        assert!(p.is_zero());
        assert!(!p.crashed(0, u64::MAX));
        assert_eq!(p.degrade_multiplier(0, 0, 0), 1);
        assert!(!p.times_out(0, 0, 0));
        assert_eq!(p.crash_cycle(0), None);
    }

    #[test]
    fn windows_gate_on_start_cycle() {
        let p = FaultPlan::none()
            .with_crash(2, 1_000)
            .with_degrade(0, 1, 100, 200, 8)
            .with_timeout(1, 3, 50, 60);
        assert!(!p.crashed(2, 999) && p.crashed(2, 1_000));
        assert_eq!(p.crash_cycle(2), Some(1_000));
        assert_eq!(p.degrade_multiplier(0, 1, 99), 1);
        assert_eq!(p.degrade_multiplier(0, 1, 100), 8);
        assert_eq!(p.degrade_multiplier(0, 1, 199), 8);
        assert_eq!(p.degrade_multiplier(0, 1, 200), 1);
        assert_eq!(p.degrade_multiplier(0, 0, 150), 1, "other channel clean");
        assert!(p.times_out(1, 3, 55) && !p.times_out(1, 3, 60));
    }

    #[test]
    fn overlapping_degrades_take_the_worst_multiplier() {
        let p = FaultPlan::none()
            .with_degrade(0, 0, 0, 100, 2)
            .with_degrade(0, 0, 50, 150, 6);
        assert_eq!(p.degrade_multiplier(0, 0, 75), 6);
        assert_eq!(p.degrade_multiplier(0, 0, 120), 6);
        assert_eq!(p.degrade_multiplier(0, 0, 25), 2);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_window() {
        let spec = FaultSpec {
            crashes: 1,
            window: (1_000, 2_000),
            degraded_channels: 2,
            degrade_multiplier: 4,
            timeout_channels: 1,
            timeout_cycles: 500,
        };
        let a = FaultPlan::seeded(7, &spec, 4, 4);
        let b = FaultPlan::seeded(7, &spec, 4, 4);
        assert_eq!(a, b);
        assert_eq!(a.crashes.len(), 1);
        assert_eq!(a.degrades.len(), 2);
        assert_eq!(a.timeouts.len(), 1);
        for c in &a.crashes {
            assert!((1_000..2_000).contains(&c.at));
        }
        let other = FaultPlan::seeded(8, &spec, 4, 4);
        assert_ne!(a, other, "different seeds draw different plans");
        // Degraded and timeout channels never collide (sampled without
        // replacement from the same slot deck).
        let slow: Vec<(usize, usize)> = a.degrades.iter().map(|d| (d.node, d.channel)).collect();
        for t in &a.timeouts {
            assert!(!slow.contains(&(t.node, t.channel)));
        }
    }

    #[test]
    fn seeded_crash_count_caps_at_fleet_size() {
        let spec = FaultSpec {
            crashes: 10,
            window: (0, 1),
            degraded_channels: 0,
            degrade_multiplier: 1,
            timeout_channels: 0,
            timeout_cycles: 0,
        };
        let p = FaultPlan::seeded(1, &spec, 3, 2);
        assert_eq!(p.crashes.len(), 3);
        let nodes: std::collections::BTreeSet<usize> = p.crashes.iter().map(|c| c.node).collect();
        assert_eq!(nodes.len(), 3, "victims drawn without replacement");
    }

    #[test]
    fn retry_backoff_grows_exponentially() {
        let r = RetryPolicy {
            max_attempts: 4,
            timeout: 10_000,
            backoff: 100,
        };
        assert_eq!(r.backoff_before(0), 100);
        assert_eq!(r.backoff_before(1), 200);
        assert_eq!(r.backoff_before(2), 400);
        assert_eq!(RetryPolicy::none().backoff_before(3), 0);
    }

    #[test]
    fn health_tracker_classifies_from_observations() {
        let mut h = HealthTracker::new(3, 0.5, 2.0);
        assert_eq!(h.health(0), NodeHealth::Healthy, "unobserved is healthy");
        // Two nodes at ~100 cycles/lookup, one at 1000: the slow node is
        // degraded against the fleet baseline.
        for _ in 0..4 {
            h.observe(0, 1_000, 10);
            h.observe(1, 1_000, 10);
            h.observe(2, 10_000, 10);
        }
        assert_eq!(h.health(0), NodeHealth::Healthy);
        assert_eq!(h.health(1), NodeHealth::Healthy);
        assert_eq!(h.health(2), NodeHealth::Degraded);
        h.mark_crashed(1);
        assert!(h.known_crashed(1));
        assert_eq!(h.health(1), NodeHealth::Crashed);
    }

    #[test]
    fn zero_resilience_config_is_inert() {
        let r = ResilienceConfig::zero();
        assert!(r.faults.is_zero());
        assert_eq!(r.retry, RetryPolicy::none());
        assert!(r.hedge.is_none() && r.slo.is_none());
    }
}
