//! Throughput–latency curves: sweep offered QPS against a backend and
//! locate the saturation knee.
//!
//! Two shared drivers sit on top of the point sweep so the `serve_sweep`
//! bench binary and the experiment harness consume one code path:
//!
//! * [`sweep_matrix`] — every (backend factory × serving mode) pair, each
//!   swept at fractions of its *own* probed saturation rate;
//! * [`placement_sweep`] — one backend under every placement policy,
//!   swept at fractions of the *sharded-hash baseline's* saturation rate,
//!   so knee QPS and p99-at-fixed-load compare policies like for like.

use recnmp_backend::{PlacementPolicy, SlsBackend, TierSpec, TieredPolicy};
use recnmp_types::{ByteSize, SimError};

use super::arrivals::{ArrivalProcess, QueryShape, QueryStream};
use super::policy::{DispatchPolicy, GatherCost, ServingMode, ShardedDispatch, TieredDispatch};
use super::scheduler::{serve, serve_arrivals, LatencySummary, ServingConfig};

/// A factory producing fresh (cold) backends, so every sweep point starts
/// from identical hardware state.
pub type BackendFactory<'a> = dyn FnMut() -> Box<dyn SlsBackend> + 'a;

/// One measured point of a throughput–latency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Offered load (queries per simulated second).
    pub offered_qps: f64,
    /// Offered load as a fraction of the curve's reference saturation
    /// rate.
    pub utilization: f64,
    /// Completion throughput actually achieved.
    pub achieved_qps: f64,
    /// Latency distribution at this load.
    pub summary: LatencySummary,
}

impl SweepPoint {
    /// Whether this load was sustained: completion throughput kept up
    /// with at least 90% of the arrival rate (the slack absorbs arrival
    /// jitter over a finite run).
    pub fn sustained(&self) -> bool {
        self.achieved_qps >= 0.90 * self.offered_qps
    }
}

/// One backend×mode throughput–latency curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCurve {
    /// Backend label.
    pub system: String,
    /// Serving mode the curve was measured under.
    pub mode: ServingMode,
    /// Reference saturation throughput (queries per simulated second)
    /// the utilization fractions are anchored to.
    pub saturation_qps: f64,
    /// Measured points, in ascending offered-QPS order.
    pub points: Vec<SweepPoint>,
}

impl SweepCurve {
    /// The saturation knee: the highest offered load the system still
    /// sustained (achieved ≥ 90% of offered). `None` when even the
    /// lightest point was unsustainable.
    pub fn knee(&self) -> Option<&SweepPoint> {
        self.points.iter().rev().find(|p| p.sustained())
    }
}

/// Probes the back-to-back service capacity of a fresh backend under
/// `mode`: all `queries` queries arrive at cycle 0 and the completion
/// throughput of the resulting busy period is the saturation rate.
///
/// # Errors
///
/// Returns [`SimError::Stalled`] if a cycle-level run stalls, or
/// [`SimError::Config`] when sharded placement fails.
pub fn saturation_qps(
    make_backend: &mut BackendFactory<'_>,
    mode: ServingMode,
    shape: QueryShape,
    queries: usize,
    seed: u64,
) -> Result<f64, SimError> {
    let mut backend = make_backend();
    backend.reset_caches();
    let cfg = ServingConfig {
        process: ArrivalProcess::Uniform,
        qps: 1.0, // unused: arrivals are pinned to cycle 0 below
        queries,
        shape,
        mode,
        coalescing: None,
        max_queue_depth: None,
        seed,
    };
    let arrivals = vec![0; queries];
    let trace_queries = QueryStream::new(shape, seed).take_queries(queries);
    let report = serve_arrivals(backend.as_mut(), &cfg, &arrivals, &trace_queries)?;
    Ok(report.achieved_qps())
}

/// The serving mode a saturation probe should use for a sweep under
/// `mode`: queued sweeps probe with the work-conserving FIFO reference
/// (so all dispatch policies of one backend share an anchor), while
/// sharded and tiered sweeps probe with their own placement (capacity
/// depends on it).
fn probe_mode(mode: ServingMode) -> ServingMode {
    match mode {
        ServingMode::Queued(_) => ServingMode::Queued(DispatchPolicy::FifoSingleQueue),
        placed @ (ServingMode::Sharded(_) | ServingMode::Tiered(_)) => placed,
    }
}

/// Measures one throughput–latency curve at explicit offered loads,
/// anchored to a caller-provided `saturation` rate (each point's
/// `utilization` is `offered / saturation`).
///
/// The load points are independent simulations over fresh backends, so
/// each runs as one task on the deterministic worker pool
/// (`recnmp-exec`) and the curve is assembled in point order — results
/// are byte-identical to a serial sweep at any worker count, only
/// wall-clock changes. Backends are created on the calling thread, in
/// point order, so stateful factories observe the same creation
/// sequence as before; a point whose backend is itself a cluster fans
/// its per-channel tasks into the *same* pool (the engine lets waiting
/// tasks help), so a sweep over a many-channel cluster never
/// oversubscribes the machine the way nested `thread::scope` spawns
/// did.
///
/// # Errors
///
/// Returns [`SimError::Stalled`] if any cycle-level run stalls, or
/// [`SimError::Config`] when sharded placement fails.
#[allow(clippy::too_many_arguments)]
pub fn qps_sweep_at(
    make_backend: &mut BackendFactory<'_>,
    mode: ServingMode,
    process: ArrivalProcess,
    shape: QueryShape,
    saturation: f64,
    offered: &[f64],
    queries: usize,
    seed: u64,
) -> Result<SweepCurve, SimError> {
    let mut jobs: Vec<(Box<dyn SlsBackend>, ServingConfig)> = offered
        .iter()
        .map(|&qps| {
            assert!(qps > 0.0, "offered loads must be positive");
            let cfg = ServingConfig {
                process,
                qps,
                queries,
                shape,
                mode,
                coalescing: None,
                max_queue_depth: None,
                seed,
            };
            // Every load point starts from cold caches even if the
            // factory hands out warm (reused) backends — points must be
            // independent, byte-identical at any worker count.
            let mut backend = make_backend();
            backend.reset_caches();
            (backend, cfg)
        })
        .collect();
    let tasks: Vec<_> = jobs
        .iter_mut()
        .map(|(backend, cfg)| move || serve(backend.as_mut(), cfg))
        .collect();
    let reports = recnmp_exec::current().run_vec(tasks)?;
    let mut points = Vec::with_capacity(offered.len());
    let mut system = String::new();
    for (&qps, report) in offered.iter().zip(reports) {
        system = report.system.clone();
        points.push(SweepPoint {
            offered_qps: qps,
            utilization: qps / saturation,
            achieved_qps: report.achieved_qps(),
            summary: report.summary(),
        });
    }
    Ok(SweepCurve {
        system,
        mode,
        saturation_qps: saturation,
        points,
    })
}

/// Measures one backend×mode throughput–latency curve.
///
/// The offered loads are `utilizations` fractions of the probed
/// saturation rate, so curves from systems of very different capacity
/// (a host channel vs a 4-channel NMP cluster) sample comparable
/// operating regions — the knee lands inside the sweep by construction.
///
/// # Errors
///
/// Returns [`SimError::Stalled`] if any cycle-level run stalls, or
/// [`SimError::Config`] when sharded placement fails.
#[allow(clippy::too_many_arguments)]
pub fn qps_sweep(
    make_backend: &mut BackendFactory<'_>,
    mode: ServingMode,
    process: ArrivalProcess,
    shape: QueryShape,
    utilizations: &[f64],
    queries: usize,
    probe_queries: usize,
    seed: u64,
) -> Result<SweepCurve, SimError> {
    let saturation = saturation_qps(make_backend, probe_mode(mode), shape, probe_queries, seed)?;
    let offered: Vec<f64> = utilizations
        .iter()
        .inspect(|&&u| assert!(u > 0.0, "utilization fractions must be positive"))
        .map(|&u| u * saturation)
        .collect();
    qps_sweep_at(
        make_backend,
        mode,
        process,
        shape,
        saturation,
        &offered,
        queries,
        seed,
    )
}

/// The common knobs of a multi-curve sweep, shared by the `serve_sweep`
/// binary and the experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Arrival process of every measured point.
    pub process: ArrivalProcess,
    /// SLS work per query.
    pub shape: QueryShape,
    /// Offered loads as fractions of the reference saturation rate.
    pub utilizations: Vec<f64>,
    /// Queries per measured point.
    pub queries: usize,
    /// Queries in the saturation probe.
    pub probe_queries: usize,
    /// Seed for arrivals and query streams.
    pub seed: u64,
}

/// One backend's curve, labeled with the factory's name.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledCurve {
    /// Factory label (`"host"`, `"recnmp-cluster[4]"`, ...).
    pub backend: String,
    /// The measured curve.
    pub curve: SweepCurve,
}

/// Labeled backend factories a sweep iterates over.
pub type NamedFactories<'a> = Vec<(&'a str, Box<BackendFactory<'a>>)>;

/// The geometry of the reference serving cluster: 4 channels of 1 DIMM
/// × 2 ranks.
fn reference_cluster_config() -> recnmp::RecNmpClusterConfig {
    recnmp::RecNmpClusterConfig::builder()
        .channels(4)
        .dimms(1)
        .ranks_per_dimm(2)
        .build()
        .expect("reference cluster config")
}

/// The 4-channel reference cluster every serving artifact measures — one
/// definition, so the `serve_sweep` binary and the experiment harness
/// can never desynchronize their geometry from the committed goldens.
pub fn reference_cluster4() -> Box<dyn SlsBackend> {
    Box::new(recnmp::RecNmpCluster::new(reference_cluster_config()).expect("reference cluster"))
}

/// The RecNMP-opt variant of [`reference_cluster4`]: same geometry, but
/// every channel carries a RankCache and hot-entry profiling — the
/// backend the cache-aware serving sweeps measure, since inter-query
/// prefetch needs memory-side caches to stage into.
pub fn reference_cluster4_optimized() -> Box<dyn SlsBackend> {
    let config = recnmp::RecNmpClusterConfig::builder()
        .channels(4)
        .dimms(1)
        .ranks_per_dimm(2)
        .optimized(true)
        .build()
        .expect("reference optimized cluster config");
    Box::new(recnmp::RecNmpCluster::new(config).expect("reference optimized cluster"))
}

/// Per-channel DRAM capacity of the reference cluster — the capacity
/// model placement sweeps pack against. Derived from the same config as
/// [`reference_cluster4`], so the bound tracks the geometry.
pub fn reference_channel_capacity() -> ByteSize {
    ByteSize::bytes(
        reference_cluster_config()
            .channel
            .geometry()
            .capacity_bytes(),
    )
}

/// The reference tiered system for `spec`'s geometry: one Table-I RecNMP
/// channel per DRAM unit plus default-config SSD units — the factory the
/// tiering sweeps and the capacity experiment share.
pub fn reference_tiered(spec: TierSpec) -> Box<dyn SlsBackend> {
    Box::new(
        recnmp_storage::TieredCluster::reference(spec.dram_channels, spec.ssd_units)
            .expect("reference tiered cluster"),
    )
}

/// Sweeps every (backend × mode) pair, each at fractions of its own
/// probed saturation rate. Curves come back factory-major
/// (`factories[0]` under every mode, then `factories[1]`, ...).
///
/// # Errors
///
/// Returns the first failing sweep's error.
pub fn sweep_matrix(
    factories: &mut NamedFactories<'_>,
    modes: &[ServingMode],
    spec: &SweepSpec,
) -> Result<Vec<LabeledCurve>, SimError> {
    let mut curves = Vec::with_capacity(factories.len() * modes.len());
    for (label, factory) in factories.iter_mut() {
        for &mode in modes {
            let curve = qps_sweep(
                factory.as_mut(),
                mode,
                spec.process,
                spec.shape,
                &spec.utilizations,
                spec.queries,
                spec.probe_queries,
                spec.seed,
            )?;
            curves.push(LabeledCurve {
                backend: label.to_string(),
                curve,
            });
        }
    }
    Ok(curves)
}

/// Sweeps one backend under every placement `policy`, all at the same
/// absolute offered loads: fractions of the **sharded-hash baseline's**
/// saturation rate. Fixing the load axis makes the comparison direct —
/// a better placement shows up as a higher knee and a lower p99 at the
/// same offered QPS.
///
/// # Errors
///
/// Returns the first failing sweep's error.
pub fn placement_sweep(
    make_backend: &mut BackendFactory<'_>,
    policies: &[PlacementPolicy],
    gather: GatherCost,
    channel_capacity: Option<ByteSize>,
    spec: &SweepSpec,
) -> Result<Vec<SweepCurve>, SimError> {
    let sharded = |placement| {
        ServingMode::Sharded(ShardedDispatch {
            placement,
            gather,
            channel_capacity,
            host_cache: None,
            prefetch: None,
        })
    };
    let baseline = sharded(PlacementPolicy::Hash);
    let saturation = saturation_qps(
        make_backend,
        baseline,
        spec.shape,
        spec.probe_queries,
        spec.seed,
    )?;
    let offered: Vec<f64> = spec.utilizations.iter().map(|&u| u * saturation).collect();
    policies
        .iter()
        .map(|&policy| {
            qps_sweep_at(
                make_backend,
                sharded(policy),
                spec.process,
                spec.shape,
                saturation,
                &offered,
                spec.queries,
                spec.seed,
            )
        })
        .collect()
}

/// Sweeps one tiered backend under every tiering `policy`, all at the
/// same absolute offered loads: fractions of the **frequency-tiered**
/// plan's saturation rate. Frequency-tiered anchors because it is the
/// policy with a meaningful knee when the footprint exceeds DRAM — hash
/// saturates wherever its SSD-resident hot tables drag it, and pinning
/// the load axis to the informed policy shows exactly how far short the
/// uninformed one falls at each shared operating point.
///
/// # Errors
///
/// Returns the first failing sweep's error.
pub fn tiered_sweep(
    make_backend: &mut BackendFactory<'_>,
    policies: &[TieredPolicy],
    gather: GatherCost,
    tiers: TierSpec,
    spec: &SweepSpec,
) -> Result<Vec<SweepCurve>, SimError> {
    let tiered = |policy| {
        ServingMode::Tiered(TieredDispatch {
            policy,
            gather,
            tiers,
            promotion: None,
        })
    };
    let anchor = tiered(TieredPolicy::FrequencyTiered { replicate_hot: 0 });
    let saturation = saturation_qps(
        make_backend,
        anchor,
        spec.shape,
        spec.probe_queries,
        spec.seed,
    )?;
    let offered: Vec<f64> = spec.utilizations.iter().map(|&u| u * saturation).collect();
    policies
        .iter()
        .map(|&policy| {
            qps_sweep_at(
                make_backend,
                tiered(policy),
                spec.process,
                spec.shape,
                saturation,
                &offered,
                spec.queries,
                spec.seed,
            )
        })
        .collect()
}

/// The cache-aware serving arms every caching artifact measures, as
/// `(label, mode)` pairs with the **bare frequency-balanced anchor
/// first**: host caches swept over capacity × placement policy, plus
/// inter-query RankCache prefetch on the *cache-less* baseline —
/// prefetch re-warms hot vectors the small memory-side caches evict
/// between queries, which is exactly the traffic a host cache would
/// absorb before it ever reached a channel, so the two locality
/// mechanisms are alternatives, not a stack. Labels carry the capacity
/// (mode names alone cannot distinguish two `cached-frequency`
/// capacities). One definition shared by the `fig_cache_serving`
/// experiment, `serve_sweep --caching` and the acceptance tests, so
/// none can silently measure different arms than the committed golden.
pub fn reference_caching_arms() -> Vec<(String, ServingMode)> {
    use super::policy::{HostCacheSpec, PrefetchSpec};
    let dispatch = |placement| ShardedDispatch {
        placement,
        gather: GatherCost::host_default(),
        channel_capacity: Some(reference_channel_capacity()),
        host_cache: None,
        prefetch: None,
    };
    let frequency = PlacementPolicy::FrequencyBalanced { replicate: 1 };
    // 64 KiB holds 512 of the 128-byte reference vectors — only the very
    // head of the Zipf-1.2 row distribution; 1 MiB (8192 vectors) covers
    // most hot rows of the 4 admitted tables.
    let small = HostCacheSpec::with_capacity(ByteSize::kib(64));
    let large = HostCacheSpec::with_capacity(ByteSize::mib(1));
    let prefetch = PrefetchSpec::new(64);
    vec![
        (
            "sharded-frequency".to_string(),
            ServingMode::Sharded(dispatch(frequency)),
        ),
        (
            "cached-hash@1MiB".to_string(),
            ServingMode::Sharded(dispatch(PlacementPolicy::Hash).with_host_cache(large)),
        ),
        (
            "cached-frequency@64KiB".to_string(),
            ServingMode::Sharded(dispatch(frequency).with_host_cache(small)),
        ),
        (
            "cached-frequency@1MiB".to_string(),
            ServingMode::Sharded(dispatch(frequency).with_host_cache(large)),
        ),
        (
            "sharded-frequency+prefetch".to_string(),
            ServingMode::Sharded(dispatch(frequency).with_prefetch(prefetch)),
        ),
    ]
}

/// Sweeps one backend under every cache-aware serving `mode`, all at
/// the same absolute offered loads: fractions of the **anchor** mode's
/// saturation rate (the cache-less sharded-frequency baseline in the
/// shipped experiment). Fixing the load axis to the bare baseline makes
/// the co-design verdict direct: a host cache and cache-aware placement
/// earn their keep exactly when their curves knee later or tail lower
/// than the anchor's at the same offered QPS.
///
/// # Errors
///
/// Returns the first failing sweep's error.
pub fn caching_sweep(
    make_backend: &mut BackendFactory<'_>,
    anchor: ServingMode,
    modes: &[ServingMode],
    spec: &SweepSpec,
) -> Result<Vec<SweepCurve>, SimError> {
    let saturation = saturation_qps(
        make_backend,
        anchor,
        spec.shape,
        spec.probe_queries,
        spec.seed,
    )?;
    let offered: Vec<f64> = spec.utilizations.iter().map(|&u| u * saturation).collect();
    modes
        .iter()
        .map(|&mode| {
            qps_sweep_at(
                make_backend,
                mode,
                spec.process,
                spec.shape,
                saturation,
                &offered,
                spec.queries,
                spec.seed,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_baselines::HostBaseline;

    fn host_factory() -> Box<dyn SlsBackend> {
        Box::new(HostBaseline::new(1, 2).unwrap())
    }

    const FIFO: ServingMode = ServingMode::Queued(DispatchPolicy::FifoSingleQueue);

    #[test]
    fn saturation_probe_is_positive_and_deterministic() {
        let shape = QueryShape::new(2, 2, 8);
        let a = saturation_qps(&mut host_factory, FIFO, shape, 6, 5).unwrap();
        let b = saturation_qps(&mut host_factory, FIFO, shape, 6, 5).unwrap();
        assert!(a > 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_tail_grows_with_load_and_knee_exists() {
        let shape = QueryShape::new(2, 2, 8);
        let curve = qps_sweep(
            &mut host_factory,
            FIFO,
            ArrivalProcess::Uniform,
            shape,
            &[0.3, 0.7, 1.5],
            10,
            6,
            5,
        )
        .unwrap();
        assert_eq!(curve.points.len(), 3);
        // Latency is monotone-ish in load: the overloaded point's p99
        // strictly exceeds the light point's.
        assert!(curve.points[2].summary.p99 > curve.points[0].summary.p99);
        // Light load is sustained; the knee is at or above it.
        assert!(curve.points[0].sustained());
        assert!(curve.knee().unwrap().utilization >= 0.3);
    }

    #[test]
    fn matrix_is_factory_major_and_matches_single_sweeps() {
        let shape = QueryShape::new(2, 2, 8);
        let spec = SweepSpec {
            process: ArrivalProcess::Uniform,
            shape,
            utilizations: vec![0.4, 1.2],
            queries: 8,
            probe_queries: 6,
            seed: 5,
        };
        let mut factories: NamedFactories<'_> = vec![("host", Box::new(host_factory))];
        let modes = [FIFO, ServingMode::Queued(DispatchPolicy::RoundRobin)];
        let curves = sweep_matrix(&mut factories, &modes, &spec).unwrap();
        assert_eq!(curves.len(), 2);
        assert!(curves.iter().all(|c| c.backend == "host"));
        let solo = qps_sweep(
            &mut host_factory,
            FIFO,
            spec.process,
            shape,
            &spec.utilizations,
            spec.queries,
            spec.probe_queries,
            spec.seed,
        )
        .unwrap();
        assert_eq!(curves[0].curve, solo);
    }

    #[test]
    fn caching_sweep_anchors_to_the_bare_baseline() {
        use super::super::policy::HostCacheSpec;
        let shape = QueryShape::new(4, 2, 6).with_table_skew(1.0);
        let spec = SweepSpec {
            process: ArrivalProcess::Uniform,
            shape,
            utilizations: vec![0.5, 1.1],
            queries: 8,
            probe_queries: 6,
            seed: 9,
        };
        let frequency = PlacementPolicy::FrequencyBalanced { replicate: 1 };
        let anchor = ServingMode::sharded(frequency);
        let cached =
            ServingMode::cached(frequency, HostCacheSpec::with_capacity(ByteSize::kib(64)));
        let curves = caching_sweep(&mut host_factory, anchor, &[anchor, cached], &spec).unwrap();
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[1].mode.name(), "cached-frequency");
        assert_eq!(curves[1].saturation_qps, curves[0].saturation_qps);
        for (a, b) in curves[1].points.iter().zip(&curves[0].points) {
            assert_eq!(a.offered_qps, b.offered_qps);
        }
    }

    #[test]
    fn placement_sweep_shares_one_load_axis() {
        let shape = QueryShape::new(4, 2, 6).with_table_skew(1.0);
        let spec = SweepSpec {
            process: ArrivalProcess::Uniform,
            shape,
            utilizations: vec![0.5, 1.1],
            queries: 8,
            probe_queries: 6,
            seed: 9,
        };
        let curves = placement_sweep(
            &mut host_factory,
            &recnmp_backend::PlacementPolicy::COMPARED,
            GatherCost::host_default(),
            None,
            &spec,
        )
        .unwrap();
        assert_eq!(curves.len(), 3);
        // Every policy was swept at the same absolute offered loads.
        for c in &curves[1..] {
            assert_eq!(c.saturation_qps, curves[0].saturation_qps);
            for (a, b) in c.points.iter().zip(&curves[0].points) {
                assert_eq!(a.offered_qps, b.offered_qps);
            }
        }
    }
}
