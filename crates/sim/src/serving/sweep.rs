//! Throughput–latency curves: sweep offered QPS against a backend and
//! locate the saturation knee.

use recnmp_backend::SlsBackend;
use recnmp_types::SimError;

use super::arrivals::{ArrivalProcess, QueryShape, QueryStream};
use super::policy::DispatchPolicy;
use super::scheduler::{serve, serve_arrivals, LatencySummary, ServingConfig};

/// A factory producing fresh (cold) backends, so every sweep point starts
/// from identical hardware state.
pub type BackendFactory<'a> = dyn FnMut() -> Box<dyn SlsBackend> + 'a;

/// One measured point of a throughput–latency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Offered load (queries per simulated second).
    pub offered_qps: f64,
    /// Offered load as a fraction of the probed saturation rate.
    pub utilization: f64,
    /// Completion throughput actually achieved.
    pub achieved_qps: f64,
    /// Latency distribution at this load.
    pub summary: LatencySummary,
}

impl SweepPoint {
    /// Whether this load was sustained: completion throughput kept up
    /// with at least 90% of the arrival rate (the slack absorbs arrival
    /// jitter over a finite run).
    pub fn sustained(&self) -> bool {
        self.achieved_qps >= 0.90 * self.offered_qps
    }
}

/// One backend×policy throughput–latency curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCurve {
    /// Backend label.
    pub system: String,
    /// Dispatch policy the curve was measured under.
    pub policy: DispatchPolicy,
    /// Back-to-back saturation throughput (queries per simulated second)
    /// probed before the sweep.
    pub saturation_qps: f64,
    /// Measured points, in ascending offered-QPS order.
    pub points: Vec<SweepPoint>,
}

impl SweepCurve {
    /// The saturation knee: the highest offered load the system still
    /// sustained (achieved ≥ 90% of offered). `None` when even the
    /// lightest point was unsustainable.
    pub fn knee(&self) -> Option<&SweepPoint> {
        self.points.iter().rev().find(|p| p.sustained())
    }
}

/// Probes the back-to-back service capacity of a fresh backend: all
/// `queries` queries arrive at cycle 0 and the completion throughput of
/// the resulting busy period is the saturation rate.
///
/// # Errors
///
/// Returns [`SimError::Stalled`] if a cycle-level run stalls.
pub fn saturation_qps(
    make_backend: &mut BackendFactory<'_>,
    shape: QueryShape,
    queries: usize,
    seed: u64,
) -> Result<f64, SimError> {
    let mut backend = make_backend();
    let cfg = ServingConfig {
        process: ArrivalProcess::Uniform,
        qps: 1.0, // unused: arrivals are pinned to cycle 0 below
        queries,
        shape,
        policy: DispatchPolicy::FifoSingleQueue,
        coalescing: None,
        seed,
    };
    let arrivals = vec![0; queries];
    let trace_queries = QueryStream::new(shape, seed).take_queries(queries);
    let report = serve_arrivals(backend.as_mut(), &cfg, &arrivals, &trace_queries)?;
    Ok(report.achieved_qps())
}

/// Measures one backend×policy throughput–latency curve.
///
/// The offered loads are `utilizations` fractions of the probed
/// saturation rate, so curves from systems of very different capacity
/// (a host channel vs a 4-channel NMP cluster) sample comparable
/// operating regions — the knee lands inside the sweep by construction.
///
/// # Errors
///
/// Returns [`SimError::Stalled`] if any cycle-level run stalls.
#[allow(clippy::too_many_arguments)]
pub fn qps_sweep(
    make_backend: &mut BackendFactory<'_>,
    policy: DispatchPolicy,
    process: ArrivalProcess,
    shape: QueryShape,
    utilizations: &[f64],
    queries: usize,
    probe_queries: usize,
    seed: u64,
) -> Result<SweepCurve, SimError> {
    let saturation = saturation_qps(make_backend, shape, probe_queries, seed)?;
    let mut points = Vec::with_capacity(utilizations.len());
    let mut system = String::new();
    for &u in utilizations {
        assert!(u > 0.0, "utilization fractions must be positive");
        let mut backend = make_backend();
        let cfg = ServingConfig {
            process,
            qps: u * saturation,
            queries,
            shape,
            policy,
            coalescing: None,
            seed,
        };
        let report = serve(backend.as_mut(), &cfg)?;
        system = report.system.clone();
        points.push(SweepPoint {
            offered_qps: cfg.qps,
            utilization: u,
            achieved_qps: report.achieved_qps(),
            summary: report.summary(),
        });
    }
    Ok(SweepCurve {
        system,
        policy,
        saturation_qps: saturation,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recnmp_baselines::HostBaseline;

    fn host_factory() -> Box<dyn SlsBackend> {
        Box::new(HostBaseline::new(1, 2).unwrap())
    }

    #[test]
    fn saturation_probe_is_positive_and_deterministic() {
        let shape = QueryShape::new(2, 2, 8);
        let a = saturation_qps(&mut host_factory, shape, 6, 5).unwrap();
        let b = saturation_qps(&mut host_factory, shape, 6, 5).unwrap();
        assert!(a > 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_tail_grows_with_load_and_knee_exists() {
        let shape = QueryShape::new(2, 2, 8);
        let curve = qps_sweep(
            &mut host_factory,
            DispatchPolicy::FifoSingleQueue,
            ArrivalProcess::Uniform,
            shape,
            &[0.3, 0.7, 1.5],
            10,
            6,
            5,
        )
        .unwrap();
        assert_eq!(curve.points.len(), 3);
        // Latency is monotone-ish in load: the overloaded point's p99
        // strictly exceeds the light point's.
        assert!(curve.points[2].summary.p99 > curve.points[0].summary.p99);
        // Light load is sustained; the knee is at or above it.
        assert!(curve.points[0].sustained());
        assert!(curve.knee().unwrap().utilization >= 0.3);
    }
}
